#!/usr/bin/env python3
"""EV-charging relocation: the paper's motivating application.

The introduction of the paper motivates dispersion with "relocation of
self-driven electric cars (robots) to recharge stations (nodes)": a fleet of
cars parked at a few depots must spread out over a road network so that every
car ends up at its own charging station, using only on-board memory and local
communication (cars can only talk when parked at the same station).

This example models a city as a grid road network with a few high-degree
arterial shortcuts, places three depots with different fleet sizes, and runs
the general (multi-root) SYNC dispersion algorithm (Theorem 8.1).  It then
reports fleet-level statistics a dispatcher would care about: time to full
allocation, total distance driven, and the worst single car's driving distance.

Run:  python examples/ev_charging_relocation.py
"""

from __future__ import annotations

import random

from repro import generators
from repro.core.general_sync import general_sync_dispersion
from repro.graph.port_graph import PortLabeledGraph


def build_city(rows: int = 9, cols: int = 9, shortcuts: int = 10, seed: int = 3) -> PortLabeledGraph:
    """A grid road network plus a few random arterial shortcuts."""
    rng = random.Random(seed)
    edges = []
    nid = lambda r, c: r * cols + c
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((nid(r, c), nid(r, c + 1)))
            if r + 1 < rows:
                edges.append((nid(r, c), nid(r + 1, c)))
    n = rows * cols
    added = 0
    while added < shortcuts:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b and (min(a, b), max(a, b)) not in edges:
            edges.append((min(a, b), max(a, b)))
            added += 1
    return generators.from_edges(n, edges)


def main() -> None:
    city = build_city()
    n = city.num_nodes
    # Three depots: a big downtown depot and two smaller satellite ones.
    depots = {0: 30, n // 2: 18, n - 1: 12}
    fleet = sum(depots.values())
    print(f"road network: {n} charging stations, {city.num_edges} road segments")
    print(f"fleet: {fleet} cars at {len(depots)} depots {dict(depots)}\n")

    result = general_sync_dispersion(city, depots)

    print("dispatch result:", result.summary())
    print(f"  every car has its own station : {result.dispersed}")
    print(f"  time to full allocation       : {result.metrics.rounds} synchronized steps")
    print(f"  total distance driven         : {result.metrics.total_moves} road segments")
    print(f"  worst single car              : {result.metrics.max_moves_per_agent} segments")
    print(f"  on-board memory needed        : {result.metrics.peak_memory_bits} bits "
          f"({result.metrics.peak_memory_log_units:.1f}·log2(k+Δ))")

    # Which stations ended up occupied?
    occupied = sorted(result.positions.values())
    print(f"\n  stations occupied: {len(occupied)}/{n} "
          f"(first few: {occupied[:12]} ...)")


if __name__ == "__main__":
    main()
