#!/usr/bin/env python3
"""Scaling study: regenerate the qualitative content of the paper's Table 1.

Sweeps k over a topology family through the experiment runner
(:mod:`repro.runner`), runs the paper's algorithms and the prior-work
baselines, and prints (i) a Table-1-style comparison of measured times and
(ii) log–log power-law fits of time versus k, so the asymptotic claims can be
eyeballed directly:

* rooted_sync   — exponent ≈ 1        (Theorem 6.1, O(k))
* rooted_async  — exponent ≈ 1 + o(1) (Theorem 7.1, O(k log k))
* naive / KS DFS — exponent ≈ 2 on dense graphs (O(min{m, kΔ}))

Run:  python examples/scaling_study.py [--family complete|er|line]
          [--max-k 96] [--workers 4] [--out artifacts/scaling.json]
"""

from __future__ import annotations

import argparse

from repro.analysis.scaling import fit_power_law
from repro.analysis.tables import comparison_table
from repro.runner import (
    ScenarioSpec,
    SweepSpec,
    get_algorithm,
    records_to_results,
    run_sweep,
    write_json,
)

SYNC_ALGORITHMS = ["rooted_sync", "sudo_disc24", "naive_dfs"]
ASYNC_ALGORITHMS = ["rooted_async", "ks_opodis21"]
#: Activation-level ASYNC simulation is slower; cap its k to keep runs snappy.
ASYNC_MAX_K = 64


def make_scenario(family: str, k: int, **kwargs) -> ScenarioSpec:
    if family == "complete":
        return ScenarioSpec(family="complete", params={"n": k}, k=k, **kwargs)
    if family == "er":
        return ScenarioSpec(
            family="erdos_renyi",
            params={"n": int(k * 1.2), "p": min(0.9, 12.0 / k)},
            k=k,
            seed=k,
            **kwargs,
        )
    if family == "line":
        return ScenarioSpec(family="line", params={"n": k}, k=k, **kwargs)
    raise ValueError(f"unknown family {family!r}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--family", default="complete", choices=["complete", "er", "line"])
    parser.add_argument("--max-k", type=int, default=96)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--out", default=None, help="also write the sweep artifact JSON here")
    args = parser.parse_args()

    ks = [k for k in (12, 24, 48, 96, 192) if k <= args.max_k]
    # Two sweeps rather than one cross product: ASYNC simulation is
    # activation-level and must not even be *run* beyond ASYNC_MAX_K.
    sync_sweep = SweepSpec(
        name=f"scaling-{args.family}-sync",
        algorithms=SYNC_ALGORITHMS,
        scenarios=[make_scenario(args.family, k) for k in ks],
    )
    async_sweep = SweepSpec(
        name=f"scaling-{args.family}-async",
        algorithms=ASYNC_ALGORITHMS,
        scenarios=[make_scenario(args.family, k) for k in ks if k <= ASYNC_MAX_K],
    )
    records = run_sweep(sync_sweep, workers=args.workers) + run_sweep(
        async_sweep, workers=args.workers
    )
    for record in records:
        assert record.status == "ok", f"{record.algorithm}: {record.error}"
        assert record.dispersed, f"{record.algorithm} did not disperse"
    if args.out:
        write_json(records, args.out)
        print(f"wrote artifact to {args.out}\n")

    sync_records = [r for r in records if r.time_unit == "rounds"]
    async_records = [r for r in records if r.time_unit == "epochs"]
    bounds = {
        get_algorithm(name).display: get_algorithm(name).claimed_bound
        for name in SYNC_ALGORITHMS + ASYNC_ALGORITHMS
    }
    print(comparison_table(
        f"Rooted SYNC dispersion on '{args.family}' graphs",
        records_to_results(sync_records, time_field="rounds"),
        "rounds",
        bounds,
    ).render())
    print()
    print(comparison_table(
        f"Rooted ASYNC dispersion on '{args.family}' graphs",
        records_to_results(async_records, time_field="epochs"),
        "epochs",
        bounds,
    ).render())

    print("\nlog–log fits (time ≈ c·k^e):")
    for group in (sync_records, async_records):
        series = records_to_results(group)
        for name, points in series.items():
            if len(points) >= 3:
                fit = fit_power_law(list(points.keys()), list(points.values()))
                print(f"  {name:30s} {fit.describe()}")


if __name__ == "__main__":
    main()
