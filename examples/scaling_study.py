#!/usr/bin/env python3
"""Scaling study: regenerate the qualitative content of the paper's Table 1.

Sweeps k over a topology family, runs the paper's algorithms and the
prior-work baselines, and prints (i) a Table-1-style comparison of measured
times and (ii) log–log power-law fits of time versus k, so the asymptotic
claims can be eyeballed directly:

* RootedSyncDisp  — exponent ≈ 1        (Theorem 6.1, O(k))
* RootedAsyncDisp — exponent ≈ 1 + o(1) (Theorem 7.1, O(k log k))
* naive / KS DFS  — exponent ≈ 2 on dense graphs (O(min{m, kΔ}))

Run:  python examples/scaling_study.py [--family complete|er|line] [--max-k 96]
"""

from __future__ import annotations

import argparse

from repro import generators
from repro.analysis.scaling import fit_power_law
from repro.analysis.tables import comparison_table
from repro.baselines.ks_opodis21 import ks_async_dispersion
from repro.baselines.naive_dfs import naive_sync_dispersion
from repro.baselines.sudo_disc24 import sudo_sync_dispersion
from repro.core.rooted_async import rooted_async_dispersion
from repro.core.rooted_sync import rooted_sync_dispersion
from repro.sim.adversary import RoundRobinAdversary


def make_graph(family: str, k: int):
    if family == "complete":
        return generators.complete(k)
    if family == "er":
        return generators.erdos_renyi(int(k * 1.2), 12.0 / k, seed=k)
    if family == "line":
        return generators.line(k)
    raise ValueError(f"unknown family {family!r}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--family", default="complete", choices=["complete", "er", "line"])
    parser.add_argument("--max-k", type=int, default=96)
    args = parser.parse_args()

    ks = [k for k in (12, 24, 48, 96, 192) if k <= args.max_k]
    sync_algos = [
        ("RootedSyncDisp (ours)", lambda g, k: rooted_sync_dispersion(g, k)),
        ("Sudo'24-style", lambda g, k: sudo_sync_dispersion(g, k)),
        ("naive DFS (OPODIS'21 bound)", lambda g, k: naive_sync_dispersion(g, k)),
    ]
    async_algos = [
        ("RootedAsyncDisp (ours)",
         lambda g, k: rooted_async_dispersion(g, k, adversary=RoundRobinAdversary())),
        ("KS'21-style ASYNC",
         lambda g, k: ks_async_dispersion(g, k, adversary=RoundRobinAdversary())),
    ]

    sync_rows, async_rows = {}, {}
    for name, algo in sync_algos:
        sync_rows[name] = {}
        for k in ks:
            result = algo(make_graph(args.family, k), k)
            assert result.dispersed
            sync_rows[name][k] = result.metrics.rounds
    for name, algo in async_algos:
        async_rows[name] = {}
        for k in ks:
            if k > 64:  # keep the activation-level simulation fast
                continue
            result = algo(make_graph(args.family, k), k)
            assert result.dispersed
            async_rows[name][k] = result.metrics.epochs

    bounds = {
        "RootedSyncDisp (ours)": "O(k)",
        "Sudo'24-style": "O(k log k)",
        "naive DFS (OPODIS'21 bound)": "O(min{m, kΔ})",
        "RootedAsyncDisp (ours)": "O(k log k)",
        "KS'21-style ASYNC": "O(min{m, kΔ})",
    }
    print(comparison_table(
        f"Rooted SYNC dispersion on '{args.family}' graphs", sync_rows, "rounds", bounds
    ).render())
    print()
    print(comparison_table(
        f"Rooted ASYNC dispersion on '{args.family}' graphs", async_rows, "epochs", bounds
    ).render())

    print("\nlog–log fits (time ≈ c·k^e):")
    for name, series in {**sync_rows, **async_rows}.items():
        if len(series) >= 3:
            fit = fit_power_law(list(series.keys()), list(series.values()))
            print(f"  {name:30s} {fit.describe()}")


if __name__ == "__main__":
    main()
