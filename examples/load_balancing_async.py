#!/usr/bin/env python3
"""Load balancing under asynchrony: one task per server, no central scheduler.

Dispersion is closely related to load balancing (paper §3): k work items that
all arrive at one ingress node of a data-center network must spread out so that
each ends up on a distinct server, even though the items are migrated by
autonomous daemons that run at wildly different speeds (asynchrony) and servers
store nothing between visits (memoryless nodes).

This example builds a two-level fat-tree-ish data-center topology, injects all
work items at one edge switch, and runs the paper's ASYNC algorithm
(Theorem 7.1) under three different adversarial schedulers, comparing the
measured epochs against the O(min{m, kΔ}) prior-work baseline [OPODIS'21].

Run:  python examples/load_balancing_async.py
"""

from __future__ import annotations

from repro import generators, ks_async_dispersion, rooted_async_dispersion
from repro.sim.adversary import RandomAdversary, RoundRobinAdversary, StarvationAdversary


def build_fat_tree(racks: int = 8, servers_per_rack: int = 5) -> "PortLabeledGraph":
    """Two spine switches, ``racks`` top-of-rack switches, servers below."""
    edges = []
    spine_a, spine_b = 0, 1
    next_node = 2
    tor = []
    for _ in range(racks):
        t = next_node
        next_node += 1
        tor.append(t)
        edges.append((spine_a, t))
        edges.append((spine_b, t))
    for t in tor:
        for _ in range(servers_per_rack):
            edges.append((t, next_node))
            next_node += 1
    return generators.from_edges(next_node, edges)


def main() -> None:
    graph = build_fat_tree()
    k = 40  # work items, injected at the first top-of-rack switch (node 2)
    print(f"data-center fabric: n={graph.num_nodes} nodes, m={graph.num_edges} links, "
          f"Δ={graph.max_degree}")
    print(f"work items: k={k}, all at ingress switch 2\n")

    schedulers = [
        ("round-robin (worst-case epochs)", RoundRobinAdversary()),
        ("uniformly random daemons", RandomAdversary(seed=1)),
        ("coordinator daemon starved 5x", StarvationAdversary("largest", 1, slowdown=5, seed=2)),
    ]
    print(f"{'scheduler':38s} {'epochs':>8s} {'migrations':>11s} {'placed':>7s}")
    for name, adversary in schedulers:
        result = rooted_async_dispersion(graph, k, start_node=2, adversary=adversary)
        print(f"{name:38s} {result.metrics.epochs:8d} {result.metrics.total_moves:11d} "
              f"{str(result.dispersed):>7s}")

    baseline = ks_async_dispersion(graph, k, start_node=2, adversary=RoundRobinAdversary())
    print(f"{'[OPODIS 21] baseline, round-robin':38s} {baseline.metrics.epochs:8d} "
          f"{baseline.metrics.total_moves:11d} {str(baseline.dispersed):>7s}")

    print("\nEvery scheduler yields one work item per server; the epoch bound of "
          "Theorem 7.1 is scheduler-independent.")


if __name__ == "__main__":
    main()
