#!/usr/bin/env python3
"""Quickstart: disperse k agents on a random graph and inspect the result.

This is the 5-minute tour of the library:

1. build an anonymous port-labeled graph from the topology zoo,
2. run the paper's rooted SYNC algorithm (Theorem 6.1: O(k) rounds),
3. run the rooted ASYNC algorithm under an adversarial scheduler
   (Theorem 7.1: O(k log k) epochs),
4. verify both final configurations and compare against a prior-work baseline.

Run:  python examples/quickstart.py [k]
"""

from __future__ import annotations

import sys

from repro import (
    generators,
    naive_sync_dispersion,
    rooted_async_dispersion,
    rooted_sync_dispersion,
    RoundRobinAdversary,
)


def main(k: int = 48) -> None:
    # An Erdős–Rényi graph with a few more nodes than agents.
    graph = generators.erdos_renyi(n=int(k * 1.25), p=0.08, seed=7)
    print(f"graph: n={graph.num_nodes} m={graph.num_edges} Δ={graph.max_degree}")
    print(f"agents: k={k}, all starting on node 0 (rooted configuration)\n")

    # --- the paper's SYNC algorithm -----------------------------------------
    sync_result = rooted_sync_dispersion(graph, k)
    print("SYNC   (Theorem 6.1) :", sync_result.summary())

    # --- the paper's ASYNC algorithm, worst-case-ish adversary ---------------
    async_result = rooted_async_dispersion(graph, k, adversary=RoundRobinAdversary())
    print("ASYNC  (Theorem 7.1) :", async_result.summary())

    # --- a prior-work baseline for contrast ----------------------------------
    baseline = naive_sync_dispersion(graph, k)
    print("naive DFS baseline   :", baseline.summary())

    # --- the simulator, not the algorithm, certifies success ----------------
    print("\nboth final configurations verified:",
          sync_result.dispersed and async_result.dispersed)
    print(f"occupied nodes (SYNC): {sorted(sync_result.positions.values())[:10]} ...")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 48)
