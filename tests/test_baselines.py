"""Tests for the prior-work baseline algorithms."""

from __future__ import annotations

import pytest

from repro.baselines.ks_opodis21 import ks_async_dispersion
from repro.baselines.naive_dfs import naive_sync_dispersion
from repro.baselines.random_walk import random_walk_dispersion
from repro.baselines.sudo_disc24 import sudo_sync_dispersion
from repro.graph import generators
from repro.sim.adversary import RandomAdversary, RoundRobinAdversary
from tests.conftest import assert_valid_result, topology_zoo


@pytest.mark.parametrize("name,factory,k", topology_zoo())
def test_naive_dfs_disperses(name, factory, k):
    graph = factory()
    result = naive_sync_dispersion(graph, k)
    assert_valid_result(graph, result)


@pytest.mark.parametrize("name,factory,k", topology_zoo())
def test_sudo_style_disperses(name, factory, k):
    graph = factory()
    result = sudo_sync_dispersion(graph, k)
    assert_valid_result(graph, result)


@pytest.mark.parametrize("name,factory,k", [t for t in topology_zoo() if t[2] <= 26])
def test_ks_async_disperses(name, factory, k):
    graph = factory()
    result = ks_async_dispersion(graph, k, adversary=RoundRobinAdversary())
    assert_valid_result(graph, result)


def test_ks_async_under_random_adversary():
    graph = generators.random_tree(20, seed=2)
    result = ks_async_dispersion(graph, 20, adversary=RandomAdversary(4))
    assert result.dispersed


def test_naive_cost_tracks_sum_of_degrees():
    """The sequential-probe DFS pays ~2 rounds per (visited node, port) pair."""
    k = 20
    dense = naive_sync_dispersion(generators.complete(k), k)
    sparse = naive_sync_dispersion(generators.line(k), k)
    assert dense.metrics.rounds > 2.5 * sparse.metrics.rounds
    # Scout trips dominate and scale with m on the complete graph.
    assert dense.metrics.extra["scout_trips"] >= k * (k - 1) / 4


def test_sudo_probe_iterations_bounded_by_log():
    import math

    k = 32
    result = sudo_sync_dispersion(generators.star(k), k)
    calls = result.metrics.extra["probe_calls"]
    iterations = result.metrics.extra["probe_iterations"]
    assert iterations <= calls * (math.log2(k) + 2)


def test_baselines_handle_k_smaller_than_n():
    graph = generators.erdos_renyi(40, 0.15, seed=6)
    assert naive_sync_dispersion(graph, 17).dispersed
    assert sudo_sync_dispersion(graph, 17).dispersed
    assert ks_async_dispersion(graph, 17).dispersed


def test_baselines_k_one():
    graph = generators.line(3)
    assert naive_sync_dispersion(graph, 1).dispersed
    assert sudo_sync_dispersion(graph, 1).dispersed
    assert ks_async_dispersion(graph, 1).dispersed


def test_baselines_reject_bad_k():
    graph = generators.line(3)
    for fn in (naive_sync_dispersion, sudo_sync_dispersion, ks_async_dispersion):
        with pytest.raises(ValueError):
            fn(graph, 4)
        with pytest.raises(ValueError):
            fn(graph, 0)


def test_random_walk_usually_disperses_small_cases():
    graph = generators.erdos_renyi(30, 0.3, seed=1)
    result = random_walk_dispersion(graph, 15, seed=3)
    assert result.algorithm == "RandomWalkScatter"
    # The walk may fail on unlucky seeds; on this easy instance it should not.
    assert result.dispersed


def test_random_walk_reports_honest_failure_on_tiny_budget():
    graph = generators.line(30)
    result = random_walk_dispersion(graph, 30, seed=0, max_rounds=3)
    assert not result.dispersed  # budget far too small; flag must be honest


def test_memory_of_baselines_logarithmic():
    k = 40
    graph = generators.erdos_renyi(k, 0.15, seed=9)
    for fn in (naive_sync_dispersion, sudo_sync_dispersion):
        result = fn(graph, k)
        assert result.metrics.peak_memory_log_units < 12
