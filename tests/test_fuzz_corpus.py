"""Replay every committed fuzz fixture (``tests/fixtures/fuzz/``).

Each fixture is a bug the campaign once pinned, shrunk to its minimal
scenario and frozen as the canonical record bytes the *fixed* code produces.
Replaying asserts two things:

* **byte identity** -- the run's canonical record JSON equals the fixture's
  ``expected_record`` byte for byte, so reverting the fix (or any silent
  behaviour change on the pinned scenario) turns the test red; and
* **oracle cleanliness** -- the record still passes
  :func:`repro.fuzz.oracles.check_record`, so the bug stays *fixed*, not
  merely *different*.

New fixtures written by ``repro fuzz`` are picked up automatically: the
parametrization walks the corpus directory at collection time.
"""

from __future__ import annotations

import os

import pytest

from repro.fuzz import FIXTURE_FORMAT, load_fixtures, replay_fixture

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fixtures", "fuzz")

FIXTURES = load_fixtures(CORPUS_DIR)


def test_committed_corpus_is_not_empty():
    assert FIXTURES, f"expected committed fuzz fixtures under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path,entry", FIXTURES, ids=[os.path.basename(p) for p, _ in FIXTURES]
)
def test_fixture_replays_byte_identical_and_oracle_clean(path, entry):
    assert entry["format"] == FIXTURE_FORMAT
    record, verdict, matches = replay_fixture(entry)
    assert matches, (
        f"{path}: record bytes diverged from expected_record -- either the "
        "pinned bug regressed or behaviour on this scenario changed; if the "
        "change is deliberate, regenerate the fixture and say why"
    )
    assert verdict.ok, f"{path}: oracle failed ({verdict.kind}: {verdict.detail})"
