"""End-to-end tests for the rooted ASYNC algorithm (Theorem 7.1).

Every run uses strict mode: the port reported "fully unsettled" by
``Async_Probe`` is checked against ground truth, so a violation of the
Guest_See_Off ordering guarantee (Section 4.3) fails loudly.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rooted_async import RootedAsyncDispersion, rooted_async_dispersion
from repro.graph import generators
from repro.graph.properties import is_valid_tree_rooted_at
from repro.sim.adversary import RandomAdversary, RoundRobinAdversary, StarvationAdversary
from tests.conftest import assert_valid_result, topology_zoo


ASYNC_ZOO = [item for item in topology_zoo() if item[2] <= 32]


def epochs_bound(k):
    """Generous c·k·log k cap used to catch super-linear blowups."""
    return int(80 * k * (math.log2(k) + 1)) + 200


@pytest.mark.parametrize("name,factory,k", ASYNC_ZOO)
def test_disperses_on_zoo_round_robin(name, factory, k):
    graph = factory()
    driver = RootedAsyncDispersion(graph, k, adversary=RoundRobinAdversary())
    result = driver.run()
    assert_valid_result(graph, result, driver.agents.values())
    assert result.metrics.epochs <= epochs_bound(k)


@pytest.mark.parametrize("name,factory,k", ASYNC_ZOO[:8])
def test_disperses_under_random_adversary(name, factory, k):
    graph = factory()
    result = rooted_async_dispersion(graph, k, adversary=RandomAdversary(seed=11))
    assert result.dispersed
    assert result.metrics.epochs <= epochs_bound(k)


@pytest.mark.parametrize(
    "adversary_factory",
    [
        lambda: RoundRobinAdversary(),
        lambda: RandomAdversary(3),
        lambda: StarvationAdversary("largest", 1, slowdown=4, seed=5),
        lambda: StarvationAdversary("smallest", 2, slowdown=3, seed=6),
    ],
)
def test_adversary_independence(adversary_factory):
    """The epoch bound must hold no matter who the adversary starves."""
    graph = generators.erdos_renyi(30, 0.15, seed=8)
    result = rooted_async_dispersion(graph, 30, adversary=adversary_factory())
    assert result.dispersed
    assert result.metrics.epochs <= epochs_bound(30)


def test_builds_valid_dfs_tree():
    graph = generators.random_tree(28, seed=3)
    driver = RootedAsyncDispersion(graph, 28, adversary=RoundRobinAdversary())
    result = driver.run()
    members = [v for v in graph.nodes() if result.dfs_parent[v] is not None or v == 0]
    assert len(members) == 28
    assert is_valid_tree_rooted_at(result.dfs_parent, 0, members)


def test_every_visited_node_keeps_a_settler():
    """Unlike SYNC there are no empty tree nodes: settled == visited."""
    graph = generators.random_tree(24, seed=5)
    driver = RootedAsyncDispersion(graph, 24, adversary=RoundRobinAdversary())
    result = driver.run()
    assert result.metrics.extra["settled"] == 24
    assert result.metrics.extra["forward_moves"] == 23


def test_k_one_and_two():
    assert rooted_async_dispersion(generators.line(4), 1).dispersed
    assert rooted_async_dispersion(generators.line(4), 2).dispersed


def test_k_smaller_than_n():
    graph = generators.erdos_renyi(40, 0.12, seed=4)
    result = rooted_async_dispersion(graph, 18, adversary=RoundRobinAdversary())
    assert result.dispersed
    assert len(set(result.positions.values())) == 18


def test_start_node_choice():
    graph = generators.grid2d(5, 5)
    result = rooted_async_dispersion(graph, 20, start_node=12)
    assert result.dispersed


def test_rejects_bad_k():
    with pytest.raises(ValueError):
        rooted_async_dispersion(generators.line(3), 4)
    with pytest.raises(ValueError):
        rooted_async_dispersion(generators.line(3), 0)


def test_probe_iterations_logarithmic_on_star():
    """Lemma 5: each Async_Probe call needs O(log k) doubling iterations."""
    k = 32
    graph = generators.star(k)
    driver = RootedAsyncDispersion(graph, k, adversary=RoundRobinAdversary())
    result = driver.run()
    calls = result.metrics.extra["async_probe_calls"]
    iterations = result.metrics.extra["async_probe_iterations"]
    assert calls <= 2 * k
    assert iterations <= calls * (math.log2(k) + 2)


def test_guest_see_off_iterations_logarithmic():
    """Lemma 6: seeing off α guests takes ⌈log α⌉ + 1 halving iterations."""
    k = 32
    graph = generators.star(k)
    driver = RootedAsyncDispersion(graph, k, adversary=RoundRobinAdversary())
    result = driver.run()
    calls = result.metrics.extra.get("guest_see_off_calls", 0)
    iterations = result.metrics.extra.get("guest_see_off_iterations", 0)
    if calls:
        assert iterations <= calls * (math.log2(k) + 2)


def test_epochs_scale_near_linearly_on_lines():
    times = {}
    for k in (8, 16, 32):
        result = rooted_async_dispersion(
            generators.line(k), k, adversary=RoundRobinAdversary()
        )
        times[k] = result.metrics.epochs
    # O(k log k): quadrupling k should grow time by < ~6x.
    assert times[32] / times[8] < 8


def test_memory_stays_logarithmic_on_star():
    small = RootedAsyncDispersion(generators.star(12), 12, adversary=RoundRobinAdversary())
    small.run()
    big = RootedAsyncDispersion(generators.star(48), 48, adversary=RoundRobinAdversary())
    big.run()
    unit_small = max(a.memory.peak_in_log_units() for a in small.agents.values())
    unit_big = max(a.memory.peak_in_log_units() for a in big.agents.values())
    assert unit_big <= unit_small * 1.8 + 8


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=4, max_value=26),
    st.integers(min_value=0, max_value=5_000),
    st.integers(min_value=0, max_value=3),
)
def test_property_random_trees_disperse(k, seed, adv_seed):
    graph = generators.random_tree(k, seed=seed)
    result = rooted_async_dispersion(graph, k, adversary=RandomAdversary(adv_seed))
    assert result.dispersed
    assert sorted(result.positions.values()) == list(range(k))
