"""Tests for the verification and scaling-analysis layer."""

from __future__ import annotations

import math

import pytest

from repro.agents.agent import Agent
from repro.agents.memory import FieldKind, MemoryModel
from repro.analysis.scaling import fit_linear_ratio, fit_power_law, normalized_ratios
from repro.analysis.tables import Table, comparison_table
from repro.analysis.verification import (
    DispersionError,
    check_memory_bound,
    is_dispersed,
    verify_dispersion,
)
from repro.graph import generators


def make_settled_agents(nodes, k=None, delta=4):
    model = MemoryModel(k=k or len(nodes), max_degree=delta)
    agents = []
    for i, node in enumerate(nodes, start=1):
        a = Agent(i, node, model)
        a.settle(node, None)
        agents.append(a)
    return agents


class TestVerification:
    def test_valid_dispersion_passes(self):
        graph = generators.line(6)
        agents = make_settled_agents([0, 2, 4])
        assert is_dispersed(agents)
        verify_dispersion(graph, agents)

    def test_unsettled_agent_detected(self):
        graph = generators.line(4)
        agents = make_settled_agents([0, 1])
        agents[1].unsettle()
        assert not is_dispersed(agents)
        with pytest.raises(DispersionError, match="not settled"):
            verify_dispersion(graph, agents)

    def test_collision_detected(self):
        graph = generators.line(4)
        agents = make_settled_agents([2, 2])
        assert not is_dispersed(agents)
        with pytest.raises(DispersionError, match="both occupy"):
            verify_dispersion(graph, agents)

    def test_too_many_agents_detected(self):
        graph = generators.line(2)
        agents = make_settled_agents([0, 1, 1])
        with pytest.raises(DispersionError):
            verify_dispersion(graph, agents)

    def test_home_mismatch_detected(self):
        graph = generators.line(4)
        agents = make_settled_agents([0, 1])
        agents[0].position = 3  # simulator says elsewhere
        with pytest.raises(DispersionError, match="home"):
            verify_dispersion(graph, agents)

    def test_memory_bound_pass_and_fail(self):
        model = MemoryModel(k=8, max_degree=4)
        agent = Agent(1, 0, model)
        assert check_memory_bound([agent], k=8, max_degree=4, constant=12.0) is None
        for i in range(200):
            agent.memory.write(f"x{i}", i, FieldKind.PORT)
        assert check_memory_bound([agent], k=8, max_degree=4, constant=12.0) is not None


class TestScaling:
    def test_power_law_recovers_linear(self):
        ks = [10, 20, 40, 80, 160]
        times = [7 * k for k in ks]
        fit = fit_power_law(ks, times)
        assert fit.exponent == pytest.approx(1.0, abs=0.01)
        assert fit.r_squared > 0.999
        assert "k^1.0" in fit.describe()

    def test_power_law_recovers_quadratic(self):
        ks = [8, 16, 32, 64]
        times = [3 * k * k for k in ks]
        fit = fit_power_law(ks, times)
        assert fit.exponent == pytest.approx(2.0, abs=0.01)

    def test_power_law_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([4], [10])

    def test_normalized_ratios_flat_for_matching_bound(self):
        ks = [16, 32, 64, 128]
        times = [5 * k * math.log2(k) for k in ks]
        ratios = normalized_ratios(ks, times, lambda k: k * math.log2(k))
        assert max(ratios) / min(ratios) < 1.01

    def test_fit_linear_ratio_spread(self):
        ks = [10, 20, 40]
        times = [3 * k for k in ks]
        worst, spread = fit_linear_ratio(ks, times, lambda k: k)
        assert worst == pytest.approx(3.0)
        assert spread == pytest.approx(1.0)


class TestTables:
    def test_table_rendering_alignment(self):
        table = Table("demo", ["algo", "k=8"])
        table.add_row("ours", 17)
        text = table.render()
        assert "demo" in text and "ours" in text and "17" in text

    def test_table_rejects_wrong_arity(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only one")

    def test_comparison_table(self):
        table = comparison_table(
            "Table 1 (rooted, SYNC)",
            {"ours": {8: 100, 16: 210}, "baseline": {8: 300}},
            time_unit="rounds",
            bound_labels={"ours": "O(k)"},
        )
        text = table.render()
        assert "k=8" in text and "k=16" in text
        assert "O(k)" in text
        assert "-" in text  # missing value rendered as a dash
