"""The trace recorder: determinism, replay fidelity, and byte-stability.

Three guarantees anchor this suite:

* **Off means off** -- with tracing disabled, every record, artifact byte,
  and store fingerprint is identical to what the repo produced before traces
  existed (no ``code_version`` bump, no new serialized keys).
* **Determinism** -- the same spec+seed yields a byte-identical
  ``repro-trace-v1`` payload across repeated runs, kernel backends, and sweep
  worker counts.
* **Replay fidelity** -- applying a segment's event log to its initial state
  reproduces the recorded final positions and settled set exactly
  (:func:`repro.sim.trace.replay_segment` / :func:`verify_trace`).
"""

from __future__ import annotations

import json

import pytest

from repro.runner.execute import run_scenario
from repro.runner.scenario import ScenarioSpec
from repro.runner.sweep import SweepSpec, run_sweep
from repro.sim.trace import (
    TRACE_FORMAT,
    TraceError,
    canonical_trace_json,
    replay_segment,
    trace_digest,
    trace_stats,
    verify_trace,
)
from repro.store import RunStore, run_fingerprint

SYNC_SPEC = ScenarioSpec(family="complete", params={"n": 10}, k=6)
ASYNC_SPEC = ScenarioSpec(family="erdos_renyi", params={"n": 14, "p": 0.3}, k=8, seed=2)
FAULTY_SPEC = ScenarioSpec(
    family="line",
    params={"n": 14},
    k=8,
    faults={"freeze": 0.4, "freeze_duration": 15},
    check_invariants=True,
)


def _traced(algorithm: str, spec: ScenarioSpec):
    record = run_scenario(algorithm, spec.with_trace())
    assert record.trace is not None
    return record


# ------------------------------------------------------------ off means off
def test_disabled_tracing_serializes_nothing():
    spec = SYNC_SPEC
    assert "trace" not in spec.to_dict()
    record = run_scenario("rooted_sync", spec)
    assert record.trace is None
    assert "trace" not in record.to_dict()
    assert "trace" not in record.to_dict()["scenario"]


def test_disabled_tracing_keeps_fingerprints_stable():
    # The envelope gains a "trace" key only when enabled, so every
    # pre-trace store row keeps its fingerprint.
    off = run_fingerprint("rooted_sync", SYNC_SPEC)
    on = run_fingerprint("rooted_sync", SYNC_SPEC.with_trace())
    assert off != on
    assert off == run_fingerprint("rooted_sync", SYNC_SPEC.with_trace(False))


def test_traced_record_changes_nothing_but_the_trace():
    plain = run_scenario("rooted_sync", SYNC_SPEC).to_dict()
    traced = _traced("rooted_sync", SYNC_SPEC).to_dict()
    traced.pop("trace")
    assert traced["scenario"].pop("trace") is True
    assert traced == plain


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_traced_walk_metrics_match_untraced(backend):
    if backend == "vectorized":
        pytest.importorskip("numpy")
    spec = ScenarioSpec(
        family="erdos_renyi", params={"n": 16, "p": 0.3}, k=8, backend=backend
    )
    plain = run_scenario("random_walk", spec).to_dict()
    traced = run_scenario("random_walk", spec.with_trace()).to_dict()
    traced.pop("trace")
    traced["scenario"].pop("trace")
    plain["scenario"].pop("backend", None)
    traced["scenario"].pop("backend", None)
    assert traced == plain


# ------------------------------------------------------------- determinism
@pytest.mark.parametrize(
    "algorithm,spec",
    [
        ("rooted_sync", SYNC_SPEC),
        ("rooted_async", ASYNC_SPEC),
        ("naive_dfs", SYNC_SPEC),
        ("random_walk", ASYNC_SPEC),
    ],
)
def test_same_spec_same_bytes_across_repeats(algorithm, spec):
    first = _traced(algorithm, spec).trace
    second = _traced(algorithm, spec).trace
    assert canonical_trace_json(first) == canonical_trace_json(second)
    assert trace_digest(first) == trace_digest(second)


@pytest.mark.parametrize("algorithm", ["rooted_sync", "rooted_async", "naive_dfs"])
def test_same_bytes_across_backends(algorithm):
    pytest.importorskip("numpy")
    spec = ASYNC_SPEC if algorithm == "rooted_async" else SYNC_SPEC
    reference = _traced(algorithm, spec.with_backend("reference")).trace
    vectorized = _traced(algorithm, spec.with_backend("vectorized")).trace
    assert canonical_trace_json(reference) == canonical_trace_json(vectorized)


def test_same_bytes_across_sweep_worker_counts():
    sweep = SweepSpec.from_grid(
        name="trace-workers",
        algorithms=["rooted_sync", "naive_dfs"],
        graphs=[{"family": "complete", "params": {"n": 10}}],
        ks=[6, 10],
    ).with_trace()
    serial = run_sweep(sweep, workers=1)
    parallel = run_sweep(sweep, workers=2)
    assert len(serial) == len(parallel) == 4
    for a, b in zip(serial, parallel):
        assert a.trace is not None
        assert canonical_trace_json(a.trace) == canonical_trace_json(b.trace)


def test_payload_carries_no_wall_clock_data():
    payload = _traced("rooted_sync", SYNC_SPEC).trace
    text = canonical_trace_json(payload)
    for forbidden in ("record_s", "serialize_s", "timings", "wall", "backend"):
        assert forbidden not in text


# --------------------------------------------------------------- replay
@pytest.mark.parametrize(
    "algorithm,spec",
    [
        ("rooted_sync", SYNC_SPEC),
        ("rooted_async", ASYNC_SPEC),
        ("random_walk", ASYNC_SPEC),
        ("rooted_sync", FAULTY_SPEC),
        ("rooted_async", FAULTY_SPEC),
    ],
)
def test_replay_reproduces_final_state(algorithm, spec):
    record = _traced(algorithm, spec)
    assert verify_trace(record.trace) == []
    for segment in record.trace["segments"]:
        replayed = replay_segment(segment)
        assert replayed["positions"] == dict(
            zip(segment["agents"], segment["final"]["positions"])
        )
        assert replayed["settled"] == sorted(segment["final"]["settled"])


def test_replay_move_count_matches_metrics():
    record = _traced("rooted_sync", SYNC_SPEC)
    total = sum(
        replay_segment(segment)["moves"] for segment in record.trace["segments"]
    )
    assert total == record.total_moves


def test_replay_rejects_corrupt_move_source():
    record = _traced("rooted_sync", SYNC_SPEC)
    payload = json.loads(canonical_trace_json(record.trace))
    segment = next(
        s
        for s in payload["segments"]
        if any(e[1] == "move" for e in s["events"])
    )
    move = next(e for e in segment["events"] if e[1] == "move")
    move[3] = move[3] + 999  # src no longer matches the replayed position
    with pytest.raises(TraceError, match="replayed position"):
        replay_segment(segment)


def test_verify_trace_flags_tampered_final_state():
    record = _traced("rooted_sync", SYNC_SPEC)
    payload = json.loads(canonical_trace_json(record.trace))
    segment = payload["segments"][0]
    segment["final"]["positions"][0] += 1
    problems = verify_trace(payload)
    assert problems and "position" in problems[0]


# --------------------------------------------------------------- content
def test_sync_segments_record_rounds_async_record_activations():
    sync = _traced("rooted_sync", SYNC_SPEC).trace
    assert all(s["granularity"] == "rounds" for s in sync["segments"])
    assert all("schedule" not in s for s in sync["segments"])
    async_payload = _traced("rooted_async", ASYNC_SPEC).trace
    for segment in async_payload["segments"]:
        assert segment["granularity"] == "activations"
        assert len(segment["schedule"]) == segment["counters"]["ticks"]


def test_fault_overlay_records_blocks_and_fault_log():
    record = _traced("rooted_sync", FAULTY_SPEC)
    assert record.fault_events and record.fault_events > 0
    segment = record.trace["segments"][0]
    blocks = [e for e in segment["events"] if e[1] == "block"]
    assert len(blocks) + len(
        [e for e in segment["events"] if e[1] == "unblock"]
    ) >= len(segment["faults"]) > 0
    assert record.invariant_violations == sum(
        len(s["violations"]) for s in record.trace["segments"]
    )


def test_probe_counters_follow_kernel_queries():
    from repro.runner.execute import build_engine

    engine = build_engine(SYNC_SPEC.with_trace(), setting="sync")
    kernel = engine._kernel
    assert kernel.trace is not None
    before = dict(kernel.trace.counters)
    assert before["probe_queries"] == 0
    node = next(iter(kernel.positions().values()))
    kernel.settled_agent_at(node)
    kernel.settled_agents_at(node)
    assert kernel.trace.counters["probe_queries"] == 2


def test_trace_stats_and_format_guard():
    payload = _traced("rooted_sync", SYNC_SPEC).trace
    stats = trace_stats(payload)
    assert stats["segments"] == len(payload["segments"])
    assert stats["granularity"] == "rounds"
    assert payload["format"] == TRACE_FORMAT
    with pytest.raises(TraceError):
        trace_stats({"format": "not-a-trace"})


# ----------------------------------------------------------------- store
def test_store_roundtrips_trace_bytes_and_indexes_them(tmp_path):
    record = _traced("rooted_sync", SYNC_SPEC)
    fingerprint = run_fingerprint("rooted_sync", SYNC_SPEC.with_trace())
    with RunStore(str(tmp_path / "runs.sqlite")) as store:
        store.put(fingerprint, record)
        loaded = store.get(fingerprint)
        assert loaded is not None
        assert canonical_trace_json(loaded.trace) == canonical_trace_json(record.trace)
        rows = store.traces()
        assert len(rows) == 1
        assert rows[0]["fingerprint"] == fingerprint
        assert rows[0]["algorithm"] == "rooted_sync"
        assert rows[0]["granularity"] == "rounds"
        assert rows[0]["content_hash"] == trace_digest(record.trace)
        assert rows[0]["bytes"] == len(canonical_trace_json(record.trace).encode())
        assert store.get_trace(fingerprint) == record.trace
        assert store.stats()["traces"] == 1


def test_store_delete_drops_the_trace_index_row(tmp_path):
    record = _traced("rooted_sync", SYNC_SPEC)
    fingerprint = run_fingerprint("rooted_sync", SYNC_SPEC.with_trace())
    with RunStore(str(tmp_path / "runs.sqlite")) as store:
        store.put(fingerprint, record)
        assert store.delete([fingerprint]) == 1
        assert store.traces() == []
        assert store.stats()["traces"] == 0


def test_untraced_records_never_touch_the_trace_index(tmp_path):
    record = run_scenario("rooted_sync", SYNC_SPEC)
    with RunStore(str(tmp_path / "runs.sqlite")) as store:
        store.put(run_fingerprint("rooted_sync", SYNC_SPEC), record)
        assert store.traces() == []
        assert store.stats()["traces"] == 0


# ------------------------------------------------------------------- viz
def test_render_html_inlines_everything():
    from repro.viz import render_html

    record = _traced("rooted_sync", FAULTY_SPEC)
    html = render_html(record.trace, title="faulty line")
    assert "http://" not in html and "https://" not in html
    assert "<script>" in html and "<style>" in html
    assert "faulty line" in html
    with pytest.raises(TraceError):
        render_html({"format": "not-a-trace"})


def test_summarize_renders_counters_and_verdict():
    from repro.viz import summarize

    record = _traced("rooted_async", ASYNC_SPEC)
    text = summarize(record.trace, label="async run")
    assert "async run" in text
    assert "replay ok" in text
    assert "activations=" in text
