"""Tests for the invariant-checking subsystem (:mod:`repro.sim.invariants`)."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent
from repro.agents.memory import FieldKind, MemoryModel
from repro.graph import generators
from repro.runner import ScenarioSpec, run_scenario
from repro.sim.instrumentation import InstrumentationConfig, current, instrument
from repro.sim.invariants import InvariantChecker, InvariantError
from repro.sim.sync_engine import SyncEngine


def make_world(k: int = 3, n: int = 8):
    graph = generators.line(n)
    model = MemoryModel(k=k, max_degree=graph.max_degree)
    agents = {i: Agent(i, 0, model) for i in range(1, k + 1)}
    checker = InvariantChecker()
    checker.attach(graph, agents)
    return graph, agents, checker


def violation_names(checker: InvariantChecker):
    return [v.name for v in checker.violations]


# ----------------------------------------------------------------- detection
def test_duplicate_home_is_flagged():
    _, agents, checker = make_world()
    agents[1].settle(2, None)
    agents[2].settle(2, None)  # same home: dispersion safety broken
    checker.after_tick(1)
    assert "unique_settlement" in violation_names(checker)
    assert checker.violation_count == 1


def test_settled_flag_memory_bit_mismatch_is_flagged():
    _, agents, checker = make_world()
    agents[1].settled = True  # corrupt: attribute flipped without the protocol
    agents[1].home = 3
    checker.after_tick(1)
    assert "settled_consistency" in violation_names(checker)


def test_settled_without_home_is_flagged():
    _, agents, checker = make_world()
    agents[1].settled = True
    agents[1].memory.write("settled", True, FieldKind.FLAG)
    checker.after_tick(1)
    assert "settled_consistency" in violation_names(checker)


def test_sanctioned_unsettle_is_not_a_violation():
    _, agents, checker = make_world()
    agents[1].settle(2, None)
    checker.after_tick(1)
    agents[1].unsettle()
    checker.after_tick(2)
    assert checker.violation_count == 0


def test_unsanctioned_settled_drop_is_flagged():
    _, agents, checker = make_world()
    agents[1].settle(2, None)
    checker.after_tick(1)
    # Corrupt both the attribute and the memory bit (so the consistency check
    # stays quiet) without going through unsettle(): monotonicity must fire.
    agents[1].settled = False
    agents[1].home = None
    agents[1].memory.write("settled", False, FieldKind.FLAG)
    checker.after_tick(2)
    assert violation_names(checker) == ["monotone_settled"]


def test_finalize_flags_settled_agent_away_from_home():
    _, agents, checker = make_world()
    agents[1].settle(2, None)
    agents[1].position = 5  # wandered off after settling
    checker.finalize(99)
    assert "final_dispersion" in violation_names(checker)


def test_port_bijection_checked_after_churn(monkeypatch):
    graph, _, checker = make_world(n=10)
    graph.rewire(add=(0, 5))
    monkeypatch.setattr(
        type(graph), "validate", lambda self: (_ for _ in ()).throw(AssertionError("broken"))
    )
    checker.after_tick(1)
    assert "port_bijection" in violation_names(checker)


def test_strict_mode_raises():
    _, agents, checker = make_world()
    checker.strict = True
    agents[1].settle(2, None)
    agents[2].settle(2, None)
    with pytest.raises(InvariantError, match="unique_settlement"):
        checker.after_tick(1)


def test_check_every_skips_intermediate_ticks():
    _, agents, checker = make_world()
    checker.check_every = 10
    agents[1].settle(2, None)
    agents[2].settle(2, None)
    for t in range(1, 10):
        checker.after_tick(t)
    assert checker.violation_count == 0  # not yet sampled
    checker.after_tick(10)
    assert checker.violation_count == 1


# -------------------------------------------------------------- engine wiring
def test_engine_picks_up_ambient_instrumentation():
    graph = generators.line(6)
    model = MemoryModel(k=2, max_degree=2)
    agents = [Agent(i, 0, model) for i in (1, 2)]
    config = InstrumentationConfig(check_invariants=True)
    with instrument(config):
        engine = SyncEngine(graph, agents)
    assert current() is None  # context restored
    assert engine.invariant_checker is config.checkers[0]
    engine.step({1: 1})
    metrics = engine.finalize_metrics()
    assert metrics.extra["invariant_violations"] == 0.0
    assert metrics.extra["invariant_checks"] > 0


# --------------------------------------------------- paper algorithms: clean
@pytest.mark.parametrize("algorithm", ["rooted_sync", "rooted_async", "general_sync", "general_async"])
def test_paper_algorithms_fault_free_have_zero_violations(algorithm):
    scenario = ScenarioSpec(
        family="erdos_renyi",
        params={"n": 16, "p": 0.28},
        k=10,
        check_invariants=True,
    )
    record = run_scenario(algorithm, scenario)
    assert record.status == "ok" and record.dispersed
    assert record.invariant_violations == 0
    assert record.extra["invariant_checks"] > 0
