"""Tests for the ASYNC activation adversaries, including deterministic
re-binding (engine reuse) and the adaptive policies."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.agents.agent import Agent
from repro.agents.memory import MemoryModel
from repro.graph import generators
from repro.runner import ScenarioSpec, run_scenario
from repro.sim.adversary import (
    AdaptiveCollisionAdversary,
    LazySettlerAdversary,
    RandomAdversary,
    RoundRobinAdversary,
    StarvationAdversary,
)
from repro.sim.async_engine import AsyncEngine


def make_engine(k: int, positions, graph=None):
    graph = graph if graph is not None else generators.line(10)
    model = MemoryModel(k=k, max_degree=graph.max_degree)
    agents = [Agent(i, positions[i - 1], model) for i in range(1, k + 1)]
    return AsyncEngine(graph, agents)


ALL_ADVERSARIES = [
    lambda: RandomAdversary(seed=3),
    lambda: RoundRobinAdversary(),
    lambda: StarvationAdversary(victims="largest", slowdown=3, seed=4),
    lambda: StarvationAdversary(victims=[2, 5], seed=4),
    lambda: AdaptiveCollisionAdversary(seed=5),
    lambda: LazySettlerAdversary(seed=6),
]


# ------------------------------------------------------- re-bind regression
@pytest.mark.parametrize("factory", ALL_ADVERSARIES)
def test_rebinding_resets_state_deterministically(factory):
    """Regression: reusing one adversary across engines must replay the same
    activation sequence -- stale RNG streams / cursors broke determinism."""
    adversary = factory()
    adversary.bind(range(1, 9))
    first = [adversary.next_agent() for _ in range(60)]
    # Simulate reuse on a different engine, then back on the original ids.
    adversary.bind(range(1, 5))
    [adversary.next_agent() for _ in range(17)]
    adversary.bind(range(1, 9))
    second = [adversary.next_agent() for _ in range(60)]
    assert first == second


def test_rebound_adversary_drives_identical_runs():
    """End to end: one adversary object reused across two engines must produce
    the identical execution (the runner's determinism depends on it)."""
    adversary = RandomAdversary(seed=11)
    results = []
    for _ in range(2):
        scenario_graph = generators.erdos_renyi(14, 0.3, seed=2)
        from repro.core.rooted_async import rooted_async_dispersion

        result = rooted_async_dispersion(scenario_graph, 8, adversary=adversary)
        results.append((result.dispersed, result.metrics.epochs, sorted(result.positions.items())))
    assert results[0] == results[1]


# ------------------------------------------------------- adaptive adversaries
def test_adaptive_collision_prefers_crowds():
    # Seven agents piled on node 0, one alone at node 9.
    engine = make_engine(8, [0] * 7 + [9])
    adversary = AdaptiveCollisionAdversary(seed=0, crowd_bias=1.0)
    adversary.bind(sorted(engine.agents))
    adversary.attach(engine)
    picks = Counter(adversary.next_agent() for _ in range(400))
    crowd_picks = sum(picks[a] for a in range(1, 8))
    assert crowd_picks > picks[8]
    assert crowd_picks >= 300  # crowd dominates ...
    assert picks[8] >= 1  # ... but fairness still schedules the loner


def test_lazy_settler_delays_settled_agents():
    engine = make_engine(6, [0, 1, 2, 3, 4, 5])
    for agent_id in (1, 2, 3):
        engine.agents[agent_id].settle(agent_id - 1, None)
    adversary = LazySettlerAdversary(seed=0, laziness=4)
    adversary.bind(sorted(engine.agents))
    adversary.attach(engine)
    picks = Counter(adversary.next_agent() for _ in range(500))
    settled_picks = picks[1] + picks[2] + picks[3]
    unsettled_picks = picks[4] + picks[5] + picks[6]
    assert settled_picks < unsettled_picks / 2
    assert all(picks[a] >= 1 for a in range(1, 7))


@pytest.mark.parametrize("factory", ALL_ADVERSARIES)
def test_bounded_staleness_fairness(factory):
    """Every adversary must activate every agent infinitely often; here: each
    of 6 agents acts at least once in any long-enough window."""
    engine = make_engine(6, [0] * 6)
    adversary = factory()
    adversary.bind(sorted(engine.agents))
    adversary.attach(engine)
    window = Counter(adversary.next_agent() for _ in range(600))
    assert set(window) == set(range(1, 7))


@pytest.mark.parametrize("name", ["adaptive_collision", "lazy_settler"])
@pytest.mark.parametrize("algorithm", ["rooted_async", "general_async"])
def test_paper_async_algorithms_disperse_under_adaptive_adversaries(name, algorithm):
    scenario = ScenarioSpec(
        family="erdos_renyi",
        params={"n": 15, "p": 0.3},
        k=9,
        adversary=name,
        check_invariants=True,
    )
    record = run_scenario(algorithm, scenario)
    assert record.status == "ok" and record.dispersed, record.error
    assert record.invariant_violations == 0
