"""Test package for the dispersion reproduction (makes ``tests.conftest`` importable)."""
