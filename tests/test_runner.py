"""Tests for the experiment-runner subsystem (:mod:`repro.runner`).

Covers the three contracts the runner makes:

* **registry completeness** -- every public dispersion driver in ``core/`` and
  ``baselines/`` is registered, and every registered algorithm actually runs
  on a small graph through its adapter;
* **seed determinism** -- the same sweep spec produces identical records (and
  byte-identical JSON artifacts) regardless of worker count or run order;
* **artifact round-trip** -- records survive JSON serialization and feed
  :mod:`repro.analysis.tables` report tables with the measured values intact.
"""

from __future__ import annotations

import csv
import importlib
import json

import pytest

import repro.baselines
import repro.core
from repro.analysis.tables import comparison_table
from repro.runner import (
    RunRecord,
    ScenarioSpec,
    SweepSpec,
    build_graph,
    build_placements,
    collect_series,
    derive_seed,
    get_algorithm,
    list_algorithms,
    load_json,
    records_to_results,
    report_tables,
    run_scenario,
    run_sweep,
    smoke_sweep,
    write_csv,
    write_json,
)


# ----------------------------------------------------------------- registry
def public_dispersion_functions():
    """``module:function`` of every public dispersion driver in the package."""
    found = set()
    for package in (repro.core, repro.baselines):
        for name in package.__all__:
            if not name.endswith("_dispersion"):
                continue
            func = getattr(package, name)
            found.add(f"{func.__module__}:{func.__name__}")
    return found


def test_registry_covers_every_core_and_baseline_algorithm():
    registered = {spec.entry_point for spec in list_algorithms()}
    missing = public_dispersion_functions() - registered
    assert not missing, f"dispersion drivers not in the runner registry: {missing}"


def test_registry_entry_points_resolve():
    for spec in list_algorithms():
        module_name, _, func_name = spec.entry_point.partition(":")
        func = getattr(importlib.import_module(module_name), func_name)
        assert callable(func), spec.name


@pytest.mark.parametrize("name", [spec.name for spec in list_algorithms()])
def test_every_registered_algorithm_runs_on_a_small_graph(name):
    scenario = ScenarioSpec(family="random_tree", params={"n": 14}, k=7, seed=3)
    record = run_scenario(name, scenario)
    assert record.status == "ok", record.error
    assert record.n == 14 and record.k == 7
    assert record.time_unit == get_algorithm(name).time_unit
    if get_algorithm(name).guaranteed:
        assert record.dispersed
        assert record.time > 0
        assert record.total_moves > 0


def test_general_algorithms_run_from_split_placements():
    scenario = ScenarioSpec(
        family="line", params={"n": 30}, k=16, placement="split", placement_parts=2
    )
    for name in ("general_sync", "general_async"):
        record = run_scenario(name, scenario)
        assert record.status == "ok" and record.dispersed, record.error


def test_rooted_algorithms_report_split_placements_unsupported():
    scenario = ScenarioSpec(
        family="line", params={"n": 30}, k=16, placement="split", placement_parts=2
    )
    record = run_scenario("rooted_sync", scenario)
    assert record.status == "unsupported"
    assert record.dispersed is None


def test_infeasible_k_is_reported_not_raised():
    record = run_scenario("rooted_sync", ScenarioSpec(family="line", params={"n": 4}, k=9))
    assert record.status == "error"
    assert "cannot disperse" in record.error
    # k is filled in even when setup fails, so downstream filters on record.k
    # never trip over None.
    assert record.k == 9


# ----------------------------------------------------------------- scenarios
def test_scenario_spec_round_trips_through_dict():
    spec = ScenarioSpec(
        family="erdos_renyi",
        params={"n": 20, "p": 0.3},
        k=10,
        placement="split",
        placement_parts=3,
        adversary="starvation",
        adversary_params={"slowdown": 3},
        seed=7,
    )
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    assert ScenarioSpec.from_dict(json.loads(spec.key())) == spec


def test_scenario_spec_rejects_unknown_values():
    with pytest.raises(ValueError):
        ScenarioSpec(family="moebius", params={}, k=4)
    with pytest.raises(ValueError):
        ScenarioSpec(family="line", params={"n": 8}, k=4, adversary="psychic")
    with pytest.raises(ValueError):
        ScenarioSpec(family="line", params={"n": 8}, k=4, placement="split")


def test_scenario_spec_is_hashable_for_dedup():
    a = ScenarioSpec(family="line", params={"n": 8}, k=4)
    b = ScenarioSpec(family="line", params={"n": 8}, k=4)
    c = ScenarioSpec(family="line", params={"n": 9}, k=4)
    assert len({a, b, c}) == 2
    assert hash(a) == hash(b)


def test_derived_seeds_are_stable_and_component_independent():
    spec = ScenarioSpec(family="line", params={"n": 8}, k=4)
    assert derive_seed(spec, "graph") == derive_seed(spec, "graph")
    assert derive_seed(spec, "graph") != derive_seed(spec, "adversary")
    assert derive_seed(spec, "graph") != derive_seed(spec.with_seed(1), "graph")


def test_same_spec_builds_identical_graphs():
    spec = ScenarioSpec(
        family="erdos_renyi", params={"n": 24, "p": 0.2}, k=12, port_assignment="random"
    )
    g1, g2 = build_graph(spec), build_graph(spec)
    assert g1.num_edges == g2.num_edges
    for v in range(g1.num_nodes):
        assert g1.neighbors(v) == g2.neighbors(v)
        for p in g1.ports(v):
            assert g1.reverse_port(v, p) == g2.reverse_port(v, p)


def test_split_placements_cover_k_agents_on_distinct_nodes():
    spec = ScenarioSpec(
        family="line", params={"n": 40}, k=21, placement="split", placement_parts=4
    )
    graph = build_graph(spec)
    placements = build_placements(spec, graph)
    assert sum(placements.values()) == 21
    assert len(placements) == 4
    assert all(0 <= node < 40 for node in placements)


# -------------------------------------------------------------- determinism
def small_sweep():
    return SweepSpec(
        name="determinism",
        algorithms=["rooted_sync", "rooted_async", "naive_dfs", "random_walk"],
        scenarios=[
            ScenarioSpec(family="erdos_renyi", params={"n": 18, "p": 0.25}, k=9,
                         port_assignment="random", adversary="random", seed=s)
            for s in (0, 1)
        ],
    )


def test_sweep_metrics_identical_across_runs_and_worker_counts():
    serial = [r.to_dict() for r in run_sweep(small_sweep(), workers=1)]
    again = [r.to_dict() for r in run_sweep(small_sweep(), workers=1)]
    parallel = [r.to_dict() for r in run_sweep(small_sweep(), workers=3)]
    assert serial == again
    assert serial == parallel


def test_sweep_artifacts_are_byte_identical(tmp_path):
    sweep = small_sweep()
    path1 = write_json(run_sweep(sweep, workers=1), str(tmp_path / "a.json"), sweep=sweep)
    path2 = write_json(run_sweep(sweep, workers=2), str(tmp_path / "b.json"), sweep=sweep)
    with open(path1, "rb") as f1, open(path2, "rb") as f2:
        assert f1.read() == f2.read()


def test_sweep_spec_round_trips_through_dict():
    sweep = small_sweep()
    clone = SweepSpec.from_dict(sweep.to_dict())
    assert clone.to_dict() == sweep.to_dict()
    assert clone.jobs() == sweep.jobs()


def test_smoke_sweep_pairs_algorithms_compatibly():
    sweep = smoke_sweep()
    jobs = sweep.jobs()
    assert jobs, "smoke grid must not be empty"
    for algorithm, scenario in jobs:
        assert (
            get_algorithm(algorithm).config == "general"
            or scenario["placement"] == "rooted"
        )


# ------------------------------------------------------------- round-trip
def test_artifact_round_trip_through_tables(tmp_path):
    scenarios = [
        ScenarioSpec(family="complete", params={"n": k}, k=k) for k in (8, 12)
    ]
    sweep = SweepSpec(name="tables", algorithms=["rooted_sync", "naive_dfs"],
                      scenarios=scenarios)
    records = run_sweep(sweep)
    path = write_json(records, str(tmp_path / "tables.json"), sweep=sweep)

    loaded = load_json(path)
    assert [r.to_dict() for r in loaded] == [r.to_dict() for r in records]

    results = records_to_results(loaded, time_field="rounds")
    ours = get_algorithm("rooted_sync").display
    naive = get_algorithm("naive_dfs").display
    assert set(results) == {ours, naive}
    assert set(results[ours]) == {8, 12}

    table = comparison_table("round-trip", results, "rounds")
    rendered = table.render()
    for record in records:
        assert f"{float(record.rounds):.0f}" in rendered

    tables = report_tables(loaded, time_field="rounds")
    assert len(tables) == 1
    assert "complete graphs" in tables[0].title


def test_csv_view_matches_records(tmp_path):
    sweep = SweepSpec(
        name="csv",
        algorithms=["rooted_sync"],
        scenarios=[ScenarioSpec(family="line", params={"n": 12}, k=6)],
    )
    records = run_sweep(sweep)
    path = write_csv(records, str(tmp_path / "view.csv"))
    with open(path, newline="", encoding="utf-8") as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 1
    assert rows[0]["algorithm"] == "rooted_sync"
    assert int(rows[0]["rounds"]) == records[0].rounds
    assert rows[0]["scenario_family"] == "line"


def test_collect_series_shapes_rows_for_benchmarks():
    scenarios = [ScenarioSpec(family="complete", params={"n": k}, k=k) for k in (8, 12)]
    rows = collect_series(["rooted_sync", "naive_dfs"], scenarios, time_field="rounds")
    assert set(rows) == {"rooted_sync", "naive_dfs"}
    assert set(rows["rooted_sync"]) == {8, 12}
    assert all(v > 0 for v in rows["rooted_sync"].values())


def test_collect_series_strict_raises_on_failure():
    bad = [ScenarioSpec(family="line", params={"n": 4}, k=9)]
    with pytest.raises(RuntimeError):
        collect_series(["rooted_sync"], bad)


def test_run_record_round_trip():
    record = run_scenario(
        "rooted_sync", ScenarioSpec(family="line", params={"n": 10}, k=5)
    )
    assert RunRecord.from_dict(json.loads(json.dumps(record.to_dict()))).to_dict() == record.to_dict()


def test_sweep_with_profiles_crosses_every_scenario():
    base = SweepSpec(
        name="profiles",
        algorithms=["rooted_sync", "naive_dfs"],
        scenarios=[
            ScenarioSpec(family="line", params={"n": 10}, k=5),
            ScenarioSpec(family="complete", params={"n": 8}, k=6),
        ],
    )
    crossed = base.with_profiles([{}, {"crash": 0.3}], check_invariants=True)
    assert len(crossed.scenarios) == 4
    assert [s.faults for s in crossed.scenarios] == [{}, {}, {"crash": 0.3}, {"crash": 0.3}]
    assert all(s.check_invariants for s in crossed.scenarios)
    # Profiles share the world: the underlying base scenarios are unchanged.
    assert {s.base_key() for s in crossed.scenarios} == {s.base_key() for s in base.scenarios}


def test_with_profiles_none_preserves_per_scenario_invariant_setting():
    base = SweepSpec(
        name="keep",
        algorithms=["rooted_sync"],
        scenarios=[
            ScenarioSpec(family="line", params={"n": 10}, k=5, check_invariants=True),
            ScenarioSpec(family="line", params={"n": 12}, k=5),
        ],
    )
    crossed = base.with_profiles([{}, {"crash": 0.3}])  # no override
    assert [s.check_invariants for s in crossed.scenarios] == [True, False, True, False]


def test_sweep_filter_algorithms_keeps_order_and_rejects_unknown():
    base = SweepSpec(
        name="filter",
        algorithms=["rooted_sync", "naive_dfs", "general_sync"],
        scenarios=[ScenarioSpec(family="line", params={"n": 10}, k=5)],
    )
    assert base.filter_algorithms(["general_sync", "rooted_sync"]).algorithms == [
        "rooted_sync",
        "general_sync",
    ]
    with pytest.raises(KeyError):
        base.filter_algorithms(["not_registered"])


def test_fault_summary_aggregates_per_profile():
    from repro.runner import fault_summary

    sweep = SweepSpec(
        name="summary",
        algorithms=["rooted_sync"],
        scenarios=[ScenarioSpec(family="line", params={"n": 12}, k=6)],
    ).with_profiles([{}, {"freeze": 0.9, "freeze_duration": 15}], check_invariants=True)
    records = run_sweep(sweep)
    table = fault_summary(records)
    assert table is not None
    rendered = table.render()
    assert "none" in rendered and "freeze:0.9" in rendered
    # The fault-free baseline row appears even when only the faulty profile is
    # instrumented (e.g. `--faults none --faults crash:...` without
    # --check-invariants leaves 'none' records uninstrumented).
    half_instrumented = run_sweep(
        SweepSpec(
            name="half",
            algorithms=["rooted_sync"],
            scenarios=[ScenarioSpec(family="line", params={"n": 12}, k=6)],
        ).with_profiles([{}, {"freeze": 0.9, "freeze_duration": 15}])
    )
    half_table = fault_summary(half_instrumented)
    assert half_table is not None
    assert any(row[1] == "none" for row in half_table.rows)
    # Plain records produce no summary at all.
    plain = run_sweep(
        SweepSpec(
            name="plain",
            algorithms=["rooted_sync"],
            scenarios=[ScenarioSpec(family="line", params={"n": 12}, k=6)],
        )
    )
    assert fault_summary(plain) is None
