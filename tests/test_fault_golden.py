"""Golden-record regression fixture for the fault-semantics v2 change.

``tests/fixtures/fault_sweep_pre_v2.json`` is a checked-in sweep artifact
produced by the *pre-v2* code (SYNC engine filtering moves only, crashed
agents still settling and answering probes).  Re-running the same sweeps
today and diffing against it demonstrates the store-invalidation story of
the ``code_version`` bump end to end:

* ``repro db diff`` flags **exactly** the SYNC algorithms' fault records as
  changed -- no ASYNC record and no fault-free record moved;
* a store populated with the pre-bump records re-executes exactly the SYNC
  jobs on the next sweep (their fingerprints now embed ``code_version="2"``)
  while every ASYNC job is served from cache;
* ``RunStore.gc`` collects exactly the stale SYNC rows.

The fixture's sweeps are rebuilt here (not loaded from the artifact
envelope) so the golden test stays a faithful re-execution recipe.
"""

from __future__ import annotations

import os

from repro.runner import artifacts
from repro.runner.registry import get_algorithm
from repro.runner.scenario import ScenarioSpec
from repro.runner.sweep import SweepSpec, run_sweep
from repro.store.cache import plan_sweep
from repro.store.db import RunStore
from repro.store.diff import diff_paths, load_side
from repro.store.fingerprint import run_fingerprint

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "fault_sweep_pre_v2.json")

#: Every SYNC algorithm in the registry -- the v2 whole-cycle skip changes
#: their fault records, so each must show changed records against the fixture.
SYNC_ALGORITHMS = ("general_sync", "naive_dfs", "random_walk", "rooted_sync", "sudo_disc24")
#: ASYNC algorithms are bumped too (their co-location queries now hide blocked
#: agents), but the ASYNC engine always skipped blocked cycles -- the fixture's
#: profiles demonstrate their record *content* does not move.
ASYNC_ALGORITHMS = ("general_async", "ks_opodis21", "rooted_async")


def golden_sweeps() -> list[SweepSpec]:
    """The two sweeps the fixture artifact was generated from.

    The crash sweep covers every algorithm (ASYNC crash runs abort the same
    way before and after v2, so their records pin the "no ASYNC change"
    half); the freeze sweep is SYNC-only, chosen so that each of the five
    SYNC algorithms has at least one record the v2 semantics change.
    """
    crash = SweepSpec.from_grid(
        name="fault-v2-golden-crash",
        algorithms=sorted(SYNC_ALGORITHMS + ASYNC_ALGORITHMS),
        graphs=[
            {"family": "erdos_renyi", "params": {"n": 16, "p": 0.3}},
            {"family": "ring", "params": {"n": 16}},
        ],
        ks=[8],
        seeds=[0],
    ).with_profiles([{}, {"crash": 0.5, "horizon": 40}], check_invariants=True)
    freeze = SweepSpec.from_grid(
        name="fault-v2-golden-freeze",
        algorithms=list(SYNC_ALGORITHMS),
        graphs=[
            {"family": "line", "params": {"n": 14}},
            {"family": "ring", "params": {"n": 16}},
        ],
        ks=[8],
        seeds=[0],
    ).with_profiles(
        [{"freeze": 0.9, "freeze_duration": 60, "horizon": 40}], check_invariants=True
    )
    return [crash, freeze]


def golden_records():
    records = []
    for sweep in golden_sweeps():
        records.extend(run_sweep(sweep, workers=2))
    return records


def test_db_diff_flags_exactly_the_sync_fault_records(tmp_path):
    live_path = str(tmp_path / "fault_sweep_live.json")
    artifacts.write_json(golden_records(), live_path)

    result = diff_paths(FIXTURE, live_path)
    assert not result.only_old and not result.only_new  # same run identities

    changed_algorithms = {change.algorithm for change in result.changed}
    assert changed_algorithms == set(SYNC_ALGORITHMS)

    # Fault-free records are byte-identical: the v2 engine contract is pure
    # refactor when no injector is active.
    old_side, new_side = load_side(FIXTURE), load_side(live_path)
    for key, old_record in old_side.items():
        scenario = ScenarioSpec.from_dict(old_record.scenario)
        if not scenario.faults:
            assert artifacts.canonical_record_json(old_record) == (
                artifacts.canonical_record_json(new_side[key])
            ), f"fault-free record changed: {key}"
        if old_record.algorithm in ASYNC_ALGORITHMS:
            for field in ("status", "dispersed", "time", "total_moves",
                          "invariant_violations"):
                assert getattr(old_record, field) == getattr(new_side[key], field), (
                    f"ASYNC record moved: {key} {field}"
                )


def test_code_version_bump_invalidates_the_pre_v2_cache(tmp_path):
    """A store of pre-bump records is fully re-executed, and GC collects it.

    Every algorithm that runs on the reworked engines carries the v2 bump (the
    SYNC ones because their whole-cycle skip changes record bytes, the ASYNC
    ones because fault-time probe visibility changed engine-side), so a
    pre-v2 store yields zero cache hits; the diff test above is what proves
    that only the SYNC outputs actually moved.  Per-algorithm granularity of
    the invalidation is covered by ``tests/test_store.py``.
    """
    fixture_records = load_side(FIXTURE).values()
    with RunStore(str(tmp_path / "pre_bump.sqlite")) as store:
        for record in fixture_records:
            scenario = ScenarioSpec.from_dict(record.scenario)
            fingerprint = run_fingerprint(record.algorithm, scenario, code_version="1")
            store.put(fingerprint, record, code_version="1")

        for sweep in golden_sweeps():
            plan = plan_sweep(sweep, store)
            assert plan.hits == 0
            assert len(plan.pending) == len(plan.jobs)

        stats = store.gc()
        assert stats.unregistered == 0
        assert stats.stale_version == len(list(fixture_records))
        assert store.count() == 0

    # Sanity: the bump really is in the registry for every algorithm.
    for name in SYNC_ALGORITHMS + ASYNC_ALGORITHMS:
        assert get_algorithm(name).code_version == "2"
