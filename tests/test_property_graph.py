"""Property-based tests for :mod:`repro.graph` (port bijection, handshake,
CSR-vs-dict accessor agreement) on arbitrary generated graphs.

Uses Hypothesis when installed; otherwise the same properties run over a
seeded random sweep of equal size, so the suite gives identical coverage in
minimal environments (the ``std-random`` fallback the roadmap asks for).
"""

from __future__ import annotations

import random

from repro.graph import generators
from repro.graph.port_graph import PortAssignment, PortLabeledGraph

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

CASES = 40


def arbitrary_cases(**ranges):
    """Drive a test from Hypothesis, or from a seeded sweep without it.

    ``ranges`` maps parameter name to an inclusive ``(low, high)`` int range.
    The decorated function must accept exactly those keyword parameters.
    """

    def decorate(fn):
        if HAVE_HYPOTHESIS:
            strategies = {
                name: st.integers(low, high) for name, (low, high) in ranges.items()
            }
            wrapped = given(**strategies)(fn)
            return settings(
                max_examples=CASES,
                deadline=None,
                suppress_health_check=[HealthCheck.too_slow],
            )(wrapped)

        def sweep():
            rng = random.Random(0xD15BE125E)
            for _ in range(CASES):
                fn(**{name: rng.randint(low, high) for name, (low, high) in ranges.items()})

        sweep.__name__ = fn.__name__
        sweep.__doc__ = fn.__doc__
        return sweep

    return decorate


def random_connected_graph(n: int, extra_percent: int, seed: int, assignment: PortAssignment):
    """Random connected simple graph: a random tree plus extra random edges."""
    rng = random.Random(seed)
    adjacency = [[] for _ in range(n)]
    for v in range(1, n):
        u = rng.randrange(v)
        adjacency[v].append(u)
        adjacency[u].append(v)
    non_edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if v not in adjacency[u]
    ]
    rng.shuffle(non_edges)
    for u, v in non_edges[: len(non_edges) * extra_percent // 100]:
        adjacency[u].append(v)
        adjacency[v].append(u)
    return PortLabeledGraph(adjacency, assignment=assignment, seed=seed)


def assert_port_contract(graph: PortLabeledGraph) -> None:
    """The full port-labeled-graph contract, checked accessor against accessor.

    * ports at every node are exactly ``1..deg`` (bijection),
    * degree handshake: ``sum(deg) == 2m``,
    * the flat CSR arrays agree with the dict-based accessors
      (``neighbor``/``reverse_port``/``move`` vs ``port_to``),
    * reverse ports are mutually consistent across each edge.
    """
    offsets, flat_neighbor, flat_reverse = graph.adjacency_arrays()
    degree_sum = 0
    for v in range(graph.num_nodes):
        deg = graph.degree(v)
        degree_sum += deg
        assert list(graph.ports(v)) == list(range(1, deg + 1))
        neighbors = graph.neighbors(v)
        assert len(set(neighbors)) == deg and v not in neighbors  # simple graph
        assert offsets[v + 1] - offsets[v] == deg
        for port in graph.ports(v):
            u = graph.neighbor(v, port)
            q = graph.reverse_port(v, port)
            i = offsets[v] + port - 1
            assert flat_neighbor[i] == u and flat_reverse[i] == q
            assert graph.move(v, port) == (u, q)
            assert graph.port_to(v, u) == port  # dict accessor agrees with CSR
            assert graph.neighbor(u, q) == v and graph.reverse_port(u, q) == port
    assert degree_sum == 2 * graph.num_edges
    graph.validate()


# ------------------------------------------------------------------ properties
@arbitrary_cases(n=(2, 34), extra_percent=(0, 30), seed=(0, 2**32 - 1))
def test_arbitrary_graphs_satisfy_port_contract(n, extra_percent, seed):
    for assignment in (PortAssignment.ADJACENCY, PortAssignment.RANDOM):
        graph = random_connected_graph(n, extra_percent, seed, assignment)
        assert graph.num_nodes == n
        assert graph.num_edges >= n - 1  # connected
        assert_port_contract(graph)


@arbitrary_cases(choice=(0, 10), size=(2, 24), seed=(0, 2**32 - 1))
def test_generator_zoo_satisfies_port_contract(choice, size, seed):
    """Every generator family yields a graph honoring the port contract."""
    assignment = PortAssignment.RANDOM if seed % 2 else PortAssignment.ADJACENCY
    builders = [
        lambda: generators.line(size, assignment=assignment, seed=seed),
        lambda: generators.ring(size + 2, assignment=assignment, seed=seed),
        lambda: generators.star(size + 1, assignment=assignment, seed=seed),
        lambda: generators.complete(min(size + 1, 12), assignment=assignment, seed=seed),
        lambda: generators.binary_tree(min(size % 5 + 1, 4), assignment=assignment, seed=seed),
        lambda: generators.random_tree(size, seed=seed % 1000, assignment=assignment),
        lambda: generators.caterpillar(max(size // 3, 1), 2, assignment=assignment, seed=seed),
        lambda: generators.broom(max(size // 2, 1), max(size // 2, 1), assignment=assignment, seed=seed),
        lambda: generators.spider(max(size % 5, 1), max(size // 4, 1), assignment=assignment, seed=seed),
        lambda: generators.grid2d(size % 5 + 1, size % 7 + 1, assignment=assignment, seed=seed),
        lambda: generators.erdos_renyi(size, (seed % 35) / 100.0, seed=seed % 1000, assignment=assignment),
    ]
    graph = builders[choice]()
    assert_port_contract(graph)


@arbitrary_cases(n=(3, 24), extra_percent=(0, 40), seed=(0, 2**32 - 1))
def test_contract_survives_random_churn(n, extra_percent, seed):
    """Port bijection and CSR/dict agreement hold after every rewire event."""
    graph = random_connected_graph(n, extra_percent, seed, PortAssignment.RANDOM)
    rng = random.Random(seed ^ 0xC0FFEE)
    for _ in range(6):
        removable = graph.removable_edges()
        missing = graph.missing_edges()
        remove = rng.choice(sorted(removable)) if removable else None
        add = rng.choice(sorted(missing)) if missing else None
        if remove is None and add is None:
            break
        graph.rewire(remove=remove, add=add)
        assert_port_contract(graph)
    assert graph.churn_count > 0 or (not graph.removable_edges() and not graph.missing_edges())


@arbitrary_cases(n=(2, 24), seed=(0, 2**32 - 1))
def test_bfs_distances_match_edge_structure(n, seed):
    """Neighbors are exactly the nodes at distance-delta <= 1 from any source."""
    graph = random_connected_graph(n, 20, seed, PortAssignment.ADJACENCY)
    dist = graph.bfs_distances(0)
    assert dist[0] == 0 and all(d >= 0 for d in dist)  # connected
    for u, v in graph.edges():
        assert abs(dist[u] - dist[v]) <= 1
