"""Scheduler-conformance suite for the pluggable synchrony spectrum.

The kernel refactor makes synchrony a property of the scheduler, not of the
engine.  This suite pins the new scheduler family to the models it claims to
implement:

1. **Lockstep = SYNC.**  :class:`~repro.sim.adversary.LockstepScheduler`
   driving the kernel through :class:`~repro.sim.async_engine.AsyncEngine`
   reproduces the *exact* pre-refactor SYNC traces of the fault-conformance
   suite -- final ``(agent, position, settled)`` states, per-round probe
   answers, and normalized blocked timelines -- for every scripted
   crash/freeze schedule in ``tests/test_fault_conformance.py``.

2. **Bounded delay is a real guarantee.**  A Hypothesis property (std-random
   sweep without Hypothesis) pins
   :class:`~repro.sim.adversary.BoundedDelayScheduler` fairness against a
   sliding-window oracle: every agent is activated within *any* window of
   ``bound`` consecutive ticks, for arbitrary populations, seeds, and delay
   factors -- and the schedule replays identically after ``bind()``.

3. **Semi-sync rounds are well-formed and fair**: subset-per-round structure,
   bounded staleness, deterministic replay, and end-to-end dispersion of the
   ASYNC-capable core algorithms with zero invariant violations.

4. **The runner axis is sound**: world seeds are scheduler-independent,
   SYNC algorithms drop out of non-default scheduler grids, the store
   fingerprint keys the discipline, and ``--scheduler`` round-trips through
   the CLI.
"""

from __future__ import annotations

import random

import pytest

from repro.runner import ScenarioSpec, run_scenario
from repro.runner.registry import core_algorithm_names, get_algorithm
from repro.runner.scenario import build_scheduler, derive_seed
from repro.runner.sweep import SweepSpec, run_sweep, smoke_sweep
from repro.sim.adversary import (
    Adversary,
    BoundedDelayScheduler,
    LockstepScheduler,
    RoundRobinAdversary,
    Scheduler,
    SemiSyncScheduler,
)
from repro.store.fingerprint import run_fingerprint

from tests.test_fault_conformance import (
    K,
    SCHEDULES,
    run_async_walk,
    run_sync_walk,
)

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

CASES = 50


def arbitrary_cases(**ranges):
    """Drive a test from Hypothesis, or from a seeded sweep without it."""

    def decorate(fn):
        if HAVE_HYPOTHESIS:
            strategies = {
                name: st.integers(low, high) for name, (low, high) in ranges.items()
            }
            wrapped = given(**strategies)(fn)
            return settings(
                max_examples=CASES,
                deadline=None,
                suppress_health_check=[HealthCheck.too_slow],
            )(wrapped)

        def sweep():
            rng = random.Random(0x5CEDD1E)
            for _ in range(CASES):
                fn(**{name: rng.randint(low, high) for name, (low, high) in ranges.items()})

        sweep.__name__ = fn.__name__
        sweep.__doc__ = fn.__doc__
        return sweep

    return decorate


# ---------------------------------------------------------------------------
# 1. LockstepScheduler reproduces the pre-refactor SYNC traces.


@pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: repr(s))
def test_lockstep_scheduler_reproduces_sync_traces(schedule):
    """The fault-conformance walk under ``LockstepScheduler`` equals SYNC.

    ``run_sync_walk`` is the exact scripted workload the pre-refactor SYNC
    engine was pinned with; the async twin re-run under ``LockstepScheduler``
    (id-order lockstep rounds) must agree on final states, every per-round
    probe snapshot, and the normalized fault-blocked timeline -- proving the
    kernel + lockstep scheduling *is* the SYNC model.
    """
    sync_engine, sync_injector, sync_probes = run_sync_walk(schedule)
    async_engine, async_injector, async_probes = run_async_walk(
        schedule, adversary=LockstepScheduler()
    )

    sync_state = sorted(
        (a.agent_id, a.position, a.settled) for a in sync_engine.agents.values()
    )
    async_state = sorted(
        (a.agent_id, a.position, a.settled) for a in async_engine.agents.values()
    )
    assert sync_state == async_state
    assert sync_probes == async_probes
    sync_observations = set(sync_injector.blocked_observations)
    async_observations = {
        (agent_id, tick // K) for agent_id, tick in async_injector.blocked_observations
    }
    assert sync_observations == async_observations
    assert sync_injector.counts["blocked"] == async_injector.counts["blocked"]


def test_lockstep_is_a_scheduler_and_an_adversary():
    """The family is one contract: historical and new names interoperate."""
    assert Scheduler is Adversary
    scheduler = LockstepScheduler()
    assert isinstance(scheduler, Adversary)
    assert isinstance(scheduler, RoundRobinAdversary)
    scheduler.bind([3, 1, 2])
    assert [scheduler.next_agent() for _ in range(6)] == [3, 1, 2, 3, 1, 2]


# ---------------------------------------------------------------------------
# 2. BoundedDelayScheduler fairness: the sliding-window property.


def sliding_window_gaps(trace, agent_ids):
    """Max activation gap per agent, counting the virtual start at tick 0.

    ``gap <= bound`` for every agent is equivalent to "every window of
    ``bound`` consecutive ticks contains every agent" on the emitted prefix.
    """
    last = {agent_id: 0 for agent_id in agent_ids}
    gaps = {agent_id: 0 for agent_id in agent_ids}
    for tick, agent_id in enumerate(trace, start=1):
        gaps[agent_id] = max(gaps[agent_id], tick - last[agent_id])
        last[agent_id] = tick
    horizon = len(trace)
    for agent_id in agent_ids:
        gaps[agent_id] = max(gaps[agent_id], horizon - last[agent_id])
    return gaps


@arbitrary_cases(n=(1, 40), delay_factor=(1, 5), seed=(0, 10_000))
def test_bounded_delay_scheduler_sliding_window_fairness(n, delay_factor, seed):
    """Every agent acts within any ``bound``-tick window, for any seed.

    The oracle tracks, per agent, the largest gap between consecutive
    activations (including the run's start and end boundaries); the scheduler's
    deadline construction promises ``gap <= bound = delay_factor * n``.
    """
    agent_ids = list(range(1, n + 1))
    scheduler = BoundedDelayScheduler(seed=seed, delay_factor=delay_factor)
    scheduler.bind(agent_ids)
    assert scheduler.bound == delay_factor * n
    horizon = 4 * scheduler.bound + 7  # several windows, deliberately unaligned
    trace = [scheduler.next_agent() for _ in range(horizon)]
    gaps = sliding_window_gaps(trace, agent_ids)
    worst = max(gaps.values())
    assert worst <= scheduler.bound, (
        f"agent starved: max gap {worst} > bound {scheduler.bound}"
    )

    # Deterministic replay: re-binding resets the stream exactly.
    scheduler.bind(agent_ids)
    assert [scheduler.next_agent() for _ in range(horizon)] == trace


def test_bounded_delay_scheduler_validates_delay_factor():
    with pytest.raises(ValueError):
        BoundedDelayScheduler(delay_factor=0)


# ---------------------------------------------------------------------------
# 3. SemiSyncScheduler: round structure, fairness, determinism, end-to-end.


def semi_sync_rounds(scheduler, num_rounds):
    """Consume whole rounds off the scheduler's queue (one draw per round).

    ``next_agent`` draws a fresh round exactly when its queue is empty, so a
    round is the first pop plus everything left in the queue afterwards.
    """
    rounds = []
    for _ in range(num_rounds):
        current = [scheduler.next_agent()]
        while scheduler._round_queue:
            current.append(scheduler.next_agent())
        rounds.append(current)
    return rounds


@arbitrary_cases(n=(1, 24), seed=(0, 10_000), max_stale=(1, 6))
def test_semi_sync_rounds_are_subsets_with_bounded_staleness(n, seed, max_stale):
    """Each round is a duplicate-free id-ordered subset; nobody is left out of
    more than ``max_stale`` consecutive rounds."""
    agent_ids = list(range(1, n + 1))
    scheduler = SemiSyncScheduler(seed=seed, p=0.4, max_stale=max_stale)
    scheduler.bind(agent_ids)
    rounds = semi_sync_rounds(scheduler, 12 * (max_stale + 1))
    stale = {agent_id: 0 for agent_id in agent_ids}
    for subset in rounds:
        assert subset, "a semi-sync round must activate at least one agent"
        assert len(set(subset)) == len(subset)
        assert subset == sorted(subset)
        assert set(subset) <= set(agent_ids)
        for agent_id in agent_ids:
            if agent_id in set(subset):
                stale[agent_id] = 0
            else:
                stale[agent_id] += 1
                assert stale[agent_id] <= max_stale, (
                    f"agent {agent_id} skipped {stale[agent_id]} rounds "
                    f"(max_stale={max_stale})"
                )


def test_semi_sync_replays_deterministically_after_bind():
    scheduler = SemiSyncScheduler(seed=7, p=0.3)
    scheduler.bind([1, 2, 3, 4, 5])
    trace = [scheduler.next_agent() for _ in range(40)]
    scheduler.bind([1, 2, 3, 4, 5])
    assert [scheduler.next_agent() for _ in range(40)] == trace


def test_semi_sync_parameter_validation():
    with pytest.raises(ValueError):
        SemiSyncScheduler(p=0.0)
    with pytest.raises(ValueError):
        SemiSyncScheduler(p=1.5)
    with pytest.raises(ValueError):
        SemiSyncScheduler(max_stale=0)


@pytest.mark.parametrize("scheduler_name,params", [
    ("lockstep", {}),
    ("semi-sync", {}),
    ("semi-sync", {"p": 0.25}),
    ("bounded-delay", {}),
    ("bounded-delay", {"delay_factor": 3}),
])
def test_async_capable_core_algorithms_disperse_under_every_scheduler(
    scheduler_name, params
):
    """The acceptance sweep in miniature: every ASYNC-capable core algorithm
    reaches valid dispersion with zero invariant violations under every new
    synchrony discipline."""
    async_core = [
        name for name in core_algorithm_names()
        if get_algorithm(name).setting == "async"
    ]
    assert async_core  # the paper has ASYNC algorithms; guard the guard
    scenario = ScenarioSpec(
        family="erdos_renyi",
        params={"n": 18, "p": 0.25},
        k=10,
        scheduler=scheduler_name,
        scheduler_params=params,
        check_invariants=True,
    )
    for name in async_core:
        record = run_scenario(name, scenario)
        assert record.status == "ok", (name, record.error)
        assert record.dispersed
        assert not record.invariant_violations


# ---------------------------------------------------------------------------
# 4. Runner threading: seeds, grids, fingerprints.


def test_scheduler_axis_preserves_the_world():
    """Same graph/adversary/algorithm seeds and same base key across the axis."""
    classic = ScenarioSpec(family="ring", params={"n": 16}, k=8)
    spectrum = [
        classic.with_scheduler("lockstep"),
        classic.with_scheduler("semi-sync", {"p": 0.5}),
        classic.with_scheduler("bounded-delay", {"delay_factor": 2}),
    ]
    for spec in spectrum:
        assert spec.base_key() == classic.base_key()
        for component in ("graph", "adversary", "algorithm"):
            assert derive_seed(spec, component) == derive_seed(classic, component)
        assert spec.key() != classic.key()
        assert spec.digest() != classic.digest()

    # The classic spec serializes without the axis (byte-stable artifacts) and
    # the default is not spellable with parameters attached.
    assert "scheduler" not in classic.to_dict()
    assert spectrum[1].to_dict()["scheduler"] == "semi-sync"
    with pytest.raises(ValueError):
        ScenarioSpec(family="ring", params={"n": 16}, k=8, scheduler_params={"p": 0.5})
    with pytest.raises(ValueError):
        ScenarioSpec(family="ring", params={"n": 16}, k=8, scheduler="fsync")


def test_scheduler_round_trips_and_keys_the_fingerprint():
    spec = ScenarioSpec(
        family="ring", params={"n": 16}, k=8,
        scheduler="bounded-delay", scheduler_params={"delay_factor": 2},
    )
    clone = ScenarioSpec.from_dict(spec.to_dict())
    assert clone == spec
    classic = ScenarioSpec(family="ring", params={"n": 16}, k=8)
    prints = {
        run_fingerprint("rooted_async", s)
        for s in (
            classic,
            classic.with_scheduler("lockstep"),
            classic.with_scheduler("semi-sync"),
            classic.with_scheduler("semi-sync", {"p": 0.25}),
            spec,
        )
    }
    assert len(prints) == 5  # every discipline/parameterization keys the cache


def test_build_scheduler_dispatch():
    classic = ScenarioSpec(family="ring", params={"n": 16}, k=8, adversary="random")
    spec_types = [
        (classic, "RandomAdversary"),
        (classic.with_scheduler("lockstep"), "LockstepScheduler"),
        (classic.with_scheduler("semi-sync"), "SemiSyncScheduler"),
        (classic.with_scheduler("bounded-delay"), "BoundedDelayScheduler"),
    ]
    for spec, expected in spec_types:
        assert type(build_scheduler(spec)).__name__ == expected


def test_sync_algorithms_drop_out_of_non_default_scheduler_grids():
    sweep = smoke_sweep().with_scheduler("semi-sync")
    algorithms_in_grid = {algorithm for algorithm, _scenario in sweep.jobs()}
    assert algorithms_in_grid == {
        name for name in sweep.algorithms if get_algorithm(name).setting == "async"
    }
    # ... while run_scenario reports an explicit unsupported pairing.
    record = run_scenario(
        "rooted_sync",
        ScenarioSpec(family="line", params={"n": 12}, k=6, scheduler="semi-sync"),
    )
    assert record.status == "unsupported"
    assert "SYNC algorithm" in record.error


def test_scheduler_sweep_runs_to_valid_dispersion():
    """A miniature `repro sweep --scheduler bounded-delay:2`: deterministic,
    dispersed, invariant-clean records for every ASYNC-capable algorithm."""
    sweep = SweepSpec.from_grid(
        name="sched-mini",
        algorithms=["general_async", "ks_opodis21", "rooted_async"],
        graphs=[{"family": "erdos_renyi", "params": {"n": 16, "p": 0.3}}],
        ks=[8],
        seeds=[0],
    ).with_scheduler("bounded-delay", {"delay_factor": 2}).with_invariants(True)
    records = run_sweep(sweep)
    assert len(records) == 3
    for record in records:
        assert record.status == "ok" and record.dispersed
        assert not record.invariant_violations
        assert record.scenario["scheduler"] == "bounded-delay"
    rerun = run_sweep(sweep, workers=2)
    assert [r.to_dict() for r in rerun] == [r.to_dict() for r in records]
