"""Differential sync-vs-async fault-conformance suite (fault-semantics v2).

Both engines consume the same :class:`~repro.sim.faults.AgentFaultView`
contract, so under *identical* crash/freeze schedules their observable fault
behavior must agree.  Three layers pin that down:

1. **Engine-level scripted differential** -- one deterministic walk-and-settle
   workload driven through :class:`SyncEngine` rounds and through
   :class:`AsyncEngine` programs under the round-robin adversary.  With
   schedules scaled between time units (1 SYNC round == ``k`` round-robin
   activations), the final ``(agent, position, settled)`` states, the per-round
   probe answers, and the normalized ``(agent, tick)`` fault-blocked
   observation sets must be *equal*.

2. **Algorithm-level differential for every core algorithm** -- the
   rooted and general sync/async driver pairs, run under the same explicit
   schedule via the instrumentation context, must agree on the set of
   fault-blocked agents, never settle a blocked agent, and settle the same
   node sets.

3. **Regression tests for the pre-v2 SYNC gap** (ROADMAP item, found in PR 3
   review): a crashed agent sitting on an unsettled node must neither settle
   nor answer a probe.  The ASYNC engine always guaranteed this by skipping
   the blocked activation; the SYNC engine only filtered moves until v2, so
   the SYNC halves of these tests fail on the pre-v2 engine.
"""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent
from repro.agents.memory import MemoryModel
from repro.core.general_async import GeneralAsyncDispersion
from repro.core.general_sync import GeneralSyncDispersion
from repro.core.rooted_async import RootedAsyncDispersion
from repro.core.rooted_sync import RootedSyncDispersion
from repro.graph import generators
from repro.runner.execute import build_engine
from repro.sim.adversary import RoundRobinAdversary
from repro.sim.async_engine import Move, Stay
from repro.sim.faults import FaultSchedule
from repro.sim.instrumentation import InstrumentationConfig, instrument


def make_agents(k: int, start: int = 0, max_degree: int = 4):
    model = MemoryModel(k=k, max_degree=max_degree)
    return [Agent(i, start, model) for i in range(1, k + 1)]


def right_ports(graph, steps: int):
    """Ports walking ``0 -> 1 -> ... -> steps`` along a line graph."""
    ports = []
    node = 0
    for _ in range(steps):
        port = next(p for p in graph.ports(node) if graph.neighbor(node, p) == node + 1)
        ports.append(port)
        node += 1
    return ports


# --------------------------------------------------------------------------
# 1. Engine-level scripted differential.
#
# Workload: k agents start on node 0 of a line; agent i walks right to node
# i-1 and settles there in a dedicated CCM cycle.  The SYNC driver performs
# each agent's cycle only when the engine's fault-filtered co-location query
# offers the agent (the v2 gate); the ASYNC version expresses the same cycles
# as agent programs, which the engine itself skips while blocked.

#: Explicit schedules in ROUND units; the async twin scales every time by k.
SCHEDULES = [
    {"crash_at": {2: 0}, "freeze_windows": {}},
    {"crash_at": {}, "freeze_windows": {3: (1, 4)}},
    {"crash_at": {5: 3}, "freeze_windows": {1: (0, 2), 4: (2, 6)}},
    {"crash_at": {1: 0, 6: 2}, "freeze_windows": {2: (0, 8)}},
    {"crash_at": {}, "freeze_windows": {6: (0, 3), 5: (3, 6)}},
]

N, K, ROUNDS = 10, 6, 18


def _scaled(schedule, k):
    return {
        "crash_at": {a: t * k for a, t in schedule["crash_at"].items()},
        "freeze_windows": {
            a: (s * k, e * k) for a, (s, e) in schedule["freeze_windows"].items()
        },
    }


def _probe_snapshot(engine, n):
    """Who answers a settle-probe at each node right now (None = nobody)."""
    snapshot = []
    for node in range(n):
        settler = engine.settled_agent_at(node)
        snapshot.append(settler.agent_id if settler is not None else None)
    return tuple(snapshot)


def run_sync_walk(schedule):
    graph = generators.line(N)
    agents = make_agents(K, max_degree=graph.max_degree)
    engine = build_engine(
        graph=graph,
        agents=agents,
        fault_schedule=FaultSchedule(**schedule),
        record_fault_observations=True,
    )
    injector = engine.fault_injector
    probe_log = []
    for _round in range(ROUNDS):
        probe_log.append(_probe_snapshot(engine, N))
        moves = {}
        for agent in agents:
            if agent.settled:
                continue
            # The engine's Communicate query is the cycle gate: an agent it
            # hides executes nothing this round.
            if agent not in engine.agents_at(agent.position):
                continue
            target = agent.agent_id - 1
            if agent.position == target:
                agent.settle(target, None)
            else:
                port = right_ports(graph, agent.position + 1)[agent.position]
                moves[agent.agent_id] = port
        engine.step(moves)
    return engine, injector, probe_log


def run_async_walk(schedule, adversary=None):
    """The async twin of :func:`run_sync_walk`.

    ``adversary`` must emit one id-order pass per logical round (the default
    round-robin does; ``LockstepScheduler`` -- behaviorally identical by
    design -- reuses this harness in ``tests/test_scheduler_conformance.py``).
    """
    graph = generators.line(N)
    agents = make_agents(K, max_degree=graph.max_degree)
    if adversary is None:
        adversary = RoundRobinAdversary()
    engine = build_engine(
        setting="async",
        graph=graph,
        agents=agents,
        adversary=adversary,
        fault_schedule=FaultSchedule(**_scaled(schedule, K)),
        record_fault_observations=True,
    )
    injector = engine.fault_injector

    def walk_and_settle(agent):
        for port in right_ports(graph, agent.agent_id - 1):
            yield Move(port)
        agent.settle(agent.agent_id - 1, None)  # the final CCM cycle settles

    for agent in agents:
        engine.assign(agent.agent_id, walk_and_settle(agent))
    probe_log = []
    for _round in range(ROUNDS):
        probe_log.append(_probe_snapshot(engine, N))
        for _slot in range(K):
            engine._activate(adversary.next_agent())
    return engine, injector, probe_log


@pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: repr(s))
def test_engines_agree_on_blocked_timeline_states_and_probes(schedule):
    sync_engine, sync_injector, sync_probes = run_sync_walk(schedule)
    async_engine, async_injector, async_probes = run_async_walk(schedule)

    sync_state = sorted(
        (a.agent_id, a.position, a.settled) for a in sync_engine.agents.values()
    )
    async_state = sorted(
        (a.agent_id, a.position, a.settled) for a in async_engine.agents.values()
    )
    assert sync_state == async_state

    # The probe answer at every node, every logical round, matches exactly.
    assert sync_probes == async_probes

    # The fault-blocked (agent, tick) observation sets agree once the async
    # activation clock is normalized to rounds (k activations per pass).
    sync_observations = set(sync_injector.blocked_observations)
    async_observations = {
        (agent_id, tick // K) for agent_id, tick in async_injector.blocked_observations
    }
    assert sync_observations == async_observations
    # ... and each engine suppressed the same number of whole cycles.
    assert sync_injector.counts["blocked"] == async_injector.counts["blocked"]

    # Blocked agents never settled, and never sit anywhere but where the
    # schedule caught them.
    for agent_id in schedule["crash_at"]:
        assert not sync_engine.agents[agent_id].settled
        assert not async_engine.agents[agent_id].settled


# --------------------------------------------------------------------------
# 2. Algorithm-level differential: every core algorithm.


def _run_instrumented(make_driver, schedule):
    config = InstrumentationConfig(
        fault_schedule=schedule, record_fault_observations=True
    )
    with instrument(config):
        driver = make_driver()
        try:
            result = driver.run()
            status = "ok" if result.dispersed else "undispersed"
        except RuntimeError:
            status = "error"
    settled_nodes = sorted(a.home for a in driver.agents.values() if a.settled)
    settled_ids = {a.agent_id for a in driver.agents.values() if a.settled}
    return driver, config, status, settled_nodes, settled_ids


@pytest.mark.parametrize("family", ["line", "ring"])
def test_rooted_pair_agrees_under_thawing_freeze(family):
    """rooted_sync vs rooted_async under the same early freeze of agent 2.

    The frozen agent misses the group's departure, thaws, and is picked up
    again; both engines must finish dispersed with the same settled node set,
    the same fault-blocked agent set, and the same normalized blocked
    timeline.
    """
    k = 8
    build = getattr(generators, family)
    sync_schedule = FaultSchedule(freeze_windows={2: (0, 4)})
    async_schedule = FaultSchedule(freeze_windows={2: (0, 4 * k)})

    _, sync_config, sync_status, sync_nodes, sync_ids = _run_instrumented(
        lambda: RootedSyncDispersion(build(12), k), sync_schedule
    )
    _, async_config, async_status, async_nodes, async_ids = _run_instrumented(
        lambda: RootedAsyncDispersion(build(12), k, adversary=RoundRobinAdversary()),
        async_schedule,
    )
    assert sync_status == async_status == "ok"
    assert sync_nodes == async_nodes
    assert sync_ids == async_ids
    assert sync_config.blocked_agents() == async_config.blocked_agents() == {2}
    sync_observed = set(sync_config.blocked_observations())
    async_observed = {
        (agent_id, tick // k) for agent_id, tick in async_config.blocked_observations()
    }
    assert sync_observed == async_observed == {(2, 0), (2, 1), (2, 2), (2, 3)}


def test_general_pair_agrees_on_crashed_straggler():
    """general_sync vs general_async with a lone crashed agent on its start node.

    This is the exact latent-bug scenario from the ROADMAP: pre-v2 the SYNC
    driver settled the crashed agent in place (which then answered probes as a
    settled node); v2 makes both engines agree that it can do neither.  Both
    runs end aborted (the crashed agent can never be placed), with the same
    healthy-agent settlement and the same blocked set.
    """
    placements = {0: 8, 11: 1}  # ids 1..8 root at node 0; id 9 alone at node 11

    sync_driver, sync_config, sync_status, sync_nodes, _ = _run_instrumented(
        lambda: GeneralSyncDispersion(generators.line(12), placements),
        FaultSchedule(crash_at={9: 0}),
    )
    async_driver, async_config, async_status, async_nodes, _ = _run_instrumented(
        lambda: GeneralAsyncDispersion(
            generators.line(12), placements, adversary=RoundRobinAdversary()
        ),
        FaultSchedule(crash_at={9: 0}),
    )
    assert sync_status == async_status == "error"  # faulty run reported as data
    assert sync_nodes == async_nodes  # healthy agents settled identically
    assert not sync_driver.agents[9].settled
    assert not async_driver.agents[9].settled
    assert sync_config.blocked_agents() == async_config.blocked_agents() == {9}
    # Both engines observed the crash from the very first logical round (the
    # async clock counts activations: 9 agents per round-robin pass).
    assert min(t for _a, t in sync_config.blocked_observations()) == 0
    assert min(t // 9 for _a, t in async_config.blocked_observations()) == 0
    # Node 11 never reports a settler to either engine's probe query.
    sync_engine = sync_driver.engine
    async_engine = async_driver.engine
    assert sync_engine.settled_agent_at(11) is None
    assert async_engine.settled_agent_at(11) is None


@pytest.mark.parametrize("window", [(0, 1), (0, 2), (1, 2), (0, 5), (3, 9)])
def test_general_pair_scatter_survives_freeze_thaw_stragglers(window):
    """A scatter walker frozen mid-walk must not be driven through another
    node's ports once it thaws (it becomes the head of a later walk).

    Regression for the v2 review: the first cut applied the head's path to
    every mobile agent, so a thawed straggler standing elsewhere raised
    ``ValueError: node X has no port P`` (sync) or walked off-path and burned
    to the activation cap (async).  Both engines must instead finish, and
    agree on the outcome.
    """
    start, end = window
    config_sync = InstrumentationConfig(
        fault_schedule=FaultSchedule(freeze_windows={2: (start, end)})
    )
    with instrument(config_sync):
        sync_result = GeneralSyncDispersion(generators.line(6), {0: 4}).run()
    config_async = InstrumentationConfig(
        fault_schedule=FaultSchedule(freeze_windows={2: (start * 4, end * 4)})
    )
    with instrument(config_async):
        async_result = GeneralAsyncDispersion(
            generators.line(6), {0: 4}, adversary=RoundRobinAdversary()
        ).run()
    assert sync_result.dispersed and async_result.dispersed
    assert sorted(sync_result.positions.values()) == sorted(
        async_result.positions.values()
    )


@pytest.mark.parametrize("window", [(0, 1), (1, 2)])
def test_general_pair_scatter_survives_freeze_during_the_walk_itself(window):
    """A walker frozen for a single round *inside* a multi-step scatter walk
    must drop out of the pack, not replay the rest of the path from its stale
    node (the v2 review's second scatter repro: pre-fix this raised
    ``ValueError: node 0 has no port 2`` on SYNC while ASYNC deferred the
    frozen Move and finished).  Both engines finish and agree."""
    start, end = window  # the first scatter walk is the 2-step path 0->1->2
    placements = {0: 4, 1: 1}
    config_sync = InstrumentationConfig(
        fault_schedule=FaultSchedule(freeze_windows={3: (start, end)})
    )
    with instrument(config_sync):
        sync_result = GeneralSyncDispersion(generators.line(7), placements).run()
    config_async = InstrumentationConfig(
        fault_schedule=FaultSchedule(freeze_windows={3: (start * 5, end * 5)})
    )
    with instrument(config_async):
        async_result = GeneralAsyncDispersion(
            generators.line(7), placements, adversary=RoundRobinAdversary()
        ).run()
    assert sync_result.dispersed and async_result.dispersed
    assert sorted(sync_result.positions.values()) == sorted(
        async_result.positions.values()
    )


def test_silent_schedule_reproduces_fault_free_metamorphic_relation():
    """A schedule that never fires must leave both engines on the fault-free
    trajectory: the injector plumbing alone may not perturb either engine."""
    k = 8
    silent_sync = FaultSchedule(crash_at={3: 10_000})
    silent_async = FaultSchedule(crash_at={3: 10_000_000})

    _, sync_config, sync_status, sync_nodes, _ = _run_instrumented(
        lambda: RootedSyncDispersion(generators.line(12), k), silent_sync
    )
    _, async_config, async_status, async_nodes, _ = _run_instrumented(
        lambda: RootedAsyncDispersion(
            generators.line(12), k, adversary=RoundRobinAdversary()
        ),
        silent_async,
    )
    assert sync_status == async_status == "ok"
    assert sync_nodes == async_nodes == list(range(8))
    assert sync_config.blocked_agents() == async_config.blocked_agents() == set()
    assert sync_config.fault_events() == async_config.fault_events() == 0


# --------------------------------------------------------------------------
# 3. Regression: the pre-v2 SYNC gap (crashed agent settling / answering).


def test_sync_crashed_agent_neither_settles_nor_answers_probe():
    """A crashed agent on an unsettled node is invisible to the settle and
    probe paths of the SYNC engine.  Pre-v2 the SYNC engine only filtered
    moves, so this test fails there; its ASYNC twin below always passed."""
    graph = generators.line(6)
    agents = make_agents(3, start=3, max_degree=graph.max_degree)
    engine = build_engine(
        graph=graph, agents=agents, fault_schedule=FaultSchedule(crash_at={2: 0})
    )

    # Agent 2 sits, unsettled, on node 3.  The Communicate query must not
    # offer it -- so no driver can choose it as a settlement candidate.
    assert [a.agent_id for a in engine.agents_at(3)] == [1, 3]
    assert engine.fault_view(2).blocked_for_cycle
    assert not engine.fault_view(2).answers_probes
    assert engine.fault_view(1).healthy

    # Its body is still physically present (crash-stop leaves it on the node).
    assert engine.positions()[2] == 3 and engine.occupied(3)

    # Settle agent 1 at node 3, then crash-freeze dynamics around probing:
    # agent 2 must never be the probe answer, settled agent 1 is.
    agents[0].settle(3, None)
    assert engine.settled_agent_at(3) is agents[0]
    engine.step({})
    assert [a.agent_id for a in engine.agents_at(3)] == [1, 3]
    assert engine.settled_agent_at(3) is agents[0]
    assert not agents[1].settled


def test_sync_frozen_settler_stops_answering_probes_until_thaw():
    graph = generators.line(6)
    agents = make_agents(1, start=2, max_degree=graph.max_degree)
    engine = build_engine(
        graph=graph, agents=agents, fault_schedule=FaultSchedule(freeze_windows={1: (2, 5)})
    )
    injector = engine.fault_injector
    agents[0].settle(2, None)

    answered = []
    for _round in range(7):
        answered.append(engine.settled_agent_at(2) is not None)
        engine.step({})
    # Rounds 0-1: answers; rounds 2-4: frozen (mute); rounds 5-6: thawed.
    assert answered == [True, True, False, False, False, True, True]
    assert injector.counts["blocked"] == 3


def test_async_crashed_agent_neither_settles_nor_answers_probe():
    """The ASYNC twin of the regression: the engine skips the blocked cycle,
    so the settle program never executes (this always held)."""
    graph = generators.line(6)
    agents = make_agents(3, start=3, max_degree=graph.max_degree)
    adversary = RoundRobinAdversary()
    engine = build_engine(
        setting="async",
        graph=graph,
        agents=agents,
        adversary=adversary,
        fault_schedule=FaultSchedule(crash_at={2: 0}),
    )
    injector = engine.fault_injector

    def settle_self(agent):
        agent.settle(agent.position, None)
        yield Stay()

    # Agent 2's program would settle it on its first activation -- which the
    # engine never grants.
    engine.assign(2, settle_self(agents[1]))
    for _ in range(9):
        engine._activate(adversary.next_agent())
    assert not agents[1].settled
    assert engine.settled_agent_at(3) is None
    assert [a.agent_id for a in engine.agents_at(3)] == [1, 3]
    assert injector.counts["blocked"] == 3  # one skipped cycle per pass
