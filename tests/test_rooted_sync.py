"""End-to-end tests for the rooted SYNC algorithm (Theorem 6.1).

Each run uses strict mode, so every probe classification is verified against
ground truth: any failure of the oscillation-cover guarantee (Lemma 4) turns
into a test failure here rather than a silent mis-dispersion.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rooted_sync import RootedSyncDispersion, rooted_sync_dispersion, SMALL_K_THRESHOLD
from repro.graph import generators
from repro.graph.properties import is_valid_tree_rooted_at
from tests.conftest import assert_valid_result, topology_zoo


# A generous linear-constant bound used to catch accidental super-linear blowups;
# the scaling benchmarks measure the actual constant.
ROUNDS_PER_K = 120


@pytest.mark.parametrize("name,factory,k", topology_zoo())
def test_disperses_on_zoo(name, factory, k):
    graph = factory()
    driver = RootedSyncDispersion(graph, k)
    result = driver.run()
    assert_valid_result(graph, result, driver.agents.values())
    assert result.metrics.rounds <= ROUNDS_PER_K * k + 400


@pytest.mark.parametrize("name,factory,k", topology_zoo())
def test_builds_a_valid_dfs_tree(name, factory, k):
    graph = factory()
    driver = RootedSyncDispersion(graph, k)
    result = driver.run()
    if k < SMALL_K_THRESHOLD:
        pytest.skip("fallback path does not expose the paper's tree")
    members = [v for v in graph.nodes() if result.dfs_parent[v] is not None or v == 0]
    assert len(members) == k
    parent = [result.dfs_parent[v] for v in graph.nodes()]
    assert is_valid_tree_rooted_at(parent, 0, members)


def test_k_one_trivial():
    g = generators.line(5)
    result = rooted_sync_dispersion(g, 1)
    assert result.dispersed
    assert result.metrics.rounds == 0 or result.metrics.rounds <= 2


@pytest.mark.parametrize("k", [2, 3, 4, 5, 6])
def test_small_k_fallback(k):
    g = generators.random_tree(12, seed=k)
    result = rooted_sync_dispersion(g, k)
    assert result.dispersed
    assert "fallback" in result.algorithm


def test_k_smaller_than_n():
    g = generators.erdos_renyi(60, 0.1, seed=2)
    result = rooted_sync_dispersion(g, 25)
    assert result.dispersed
    assert len(set(result.positions.values())) == 25


def test_k_equals_n_line_lower_bound_instance():
    g = generators.line(40)
    result = rooted_sync_dispersion(g, 40)
    assert result.dispersed
    # All 40 nodes occupied.
    assert sorted(result.positions.values()) == list(range(40))


def test_start_node_other_than_zero():
    g = generators.random_tree(25, seed=9)
    result = rooted_sync_dispersion(g, 20, start_node=12)
    assert result.dispersed


def test_rejects_k_larger_than_n():
    with pytest.raises(ValueError):
        rooted_sync_dispersion(generators.line(5), 6)


def test_rejects_nonpositive_k():
    with pytest.raises(ValueError):
        rooted_sync_dispersion(generators.line(5), 0)


def test_deterministic_given_same_inputs():
    g = generators.erdos_renyi(30, 0.15, seed=7)
    r1 = rooted_sync_dispersion(g, 30)
    r2 = rooted_sync_dispersion(generators.erdos_renyi(30, 0.15, seed=7), 30)
    assert r1.positions == r2.positions
    assert r1.metrics.rounds == r2.metrics.rounds


def test_wait_rounds_paper_value_works_on_zoo_sample():
    for name, factory, k in topology_zoo()[:6]:
        graph = factory()
        result = rooted_sync_dispersion(graph, k, wait_rounds=6)
        assert result.dispersed, name


def test_seeker_count_matches_paper():
    g = generators.random_tree(30, seed=4)
    result = RootedSyncDispersion(g, 30).run()
    assert result.notes["seekers"] == math.ceil(30 / 3)


def test_lemma7_empty_fraction_during_dfs():
    """At most ⌊2k/3⌋ agents settle during the DFS phase (Lemma 7)."""
    g = generators.random_tree(45, seed=6)
    driver = RootedSyncDispersion(g, 45)
    result = driver.run()
    settled_during_dfs = result.metrics.extra.get("settled_during_dfs", 0) + 1  # + root
    assert settled_during_dfs <= math.floor(2 * 45 / 3) + 1
    assert result.metrics.extra.get("settled_during_retraversal", 0) >= math.ceil(45 / 3) - 1
    # The seeker pool was never consumed to settle during the DFS.
    assert result.metrics.extra.get("seeker_settled_during_dfs", 0) == 0


def test_probe_calls_linear_in_k():
    """Sync_Probe is invoked at most ~2(k-1) times (one per forward/backtrack)."""
    g = generators.erdos_renyi(40, 0.2, seed=3)
    driver = RootedSyncDispersion(g, 40)
    result = driver.run()
    calls = result.metrics.extra["sync_probe_calls"]
    assert calls <= 2 * 40
    # O(1) iterations per call (Lemma 4): with ⌈k/3⌉ seekers, at most 3-4.
    assert result.metrics.extra["sync_probe_iterations"] <= 4 * calls


def test_forward_moves_exactly_k_minus_one():
    g = generators.random_tree(36, seed=8)
    driver = RootedSyncDispersion(g, 36)
    result = driver.run()
    assert result.metrics.extra["forward_moves"] == 35
    assert result.metrics.extra["backtrack_moves"] <= 35


def test_memory_independent_of_degree_growth():
    """Peak bits stay O(log(k+Δ)) even when Δ = k - 1 (star)."""
    small = RootedSyncDispersion(generators.star(16), 16)
    small.run()
    big = RootedSyncDispersion(generators.star(64), 64)
    big.run()
    unit_small = max(a.memory.peak_in_log_units() for a in small.agents.values())
    unit_big = max(a.memory.peak_in_log_units() for a in big.agents.values())
    # The normalized ratio must not grow with k (allow small slack for rounding).
    assert unit_big <= unit_small * 1.8 + 8


def test_rounds_scale_linearly_on_lines():
    times = {}
    for k in (16, 32, 64):
        result = rooted_sync_dispersion(generators.line(k), k)
        assert result.dispersed
        times[k] = result.metrics.rounds
    assert times[64] / times[16] < 6.5  # linear growth would give ~4


@settings(max_examples=12, deadline=None)
@given(
    st.integers(min_value=SMALL_K_THRESHOLD, max_value=42),
    st.integers(min_value=0, max_value=10_000),
)
def test_property_random_trees_disperse(k, seed):
    graph = generators.random_tree(k, seed=seed)
    driver = RootedSyncDispersion(graph, k)
    result = driver.run()
    assert result.dispersed
    positions = sorted(result.positions.values())
    assert positions == list(range(k))


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=SMALL_K_THRESHOLD, max_value=36),
    st.floats(min_value=0.05, max_value=0.5),
    st.integers(min_value=0, max_value=5_000),
)
def test_property_random_graphs_disperse(k, p, seed):
    n = k + (seed % 7)
    graph = generators.erdos_renyi(n, p, seed=seed)
    driver = RootedSyncDispersion(graph, k, start_node=seed % n)
    result = driver.run()
    assert result.dispersed
    assert len(set(result.positions.values())) == k
