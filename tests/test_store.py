"""Tests for the persistent experiment store (``repro.store``).

The store's contract has three legs:

1. **Soundness** -- a record served from the store is byte-identical to the
   record a cold execution would produce (fingerprints cover everything that
   determines the bytes, nothing else).
2. **Incrementality** -- warm sweeps execute zero jobs, partially warm sweeps
   execute exactly the missing ones, and bumping one algorithm's code-version
   tag invalidates exactly that algorithm's cached records.
3. **Queryability** -- SQL-side filters return deterministic record lists that
   round-trip through the existing artifact formats, and diffs catch metric
   changes between snapshots.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.runner import artifacts as artifacts_mod
from repro.runner import registry
from repro.runner.execute import RunRecord
from repro.runner.scenario import ScenarioSpec
from repro.runner.sweep import SweepSpec, run_sweep
from repro.store import (
    RunStore,
    StoreError,
    diff_paths,
    diff_records,
    execute_plan,
    load_side,
    plan_sweep,
    run_fingerprint,
)


def small_sweep(name: str = "store-grid") -> SweepSpec:
    return SweepSpec.from_grid(
        name=name,
        algorithms=["rooted_sync", "naive_dfs"],
        graphs=[{"family": "complete", "params": {"n": 10}}],
        ks=[6, 10],
    )


@pytest.fixture
def store(tmp_path):
    with RunStore(str(tmp_path / "runs.sqlite")) as s:
        yield s


SPEC = ScenarioSpec(family="complete", params={"n": 10}, k=6)


# ------------------------------------------------------------- fingerprints
def test_fingerprint_is_deterministic():
    assert run_fingerprint("rooted_sync", SPEC) == run_fingerprint("rooted_sync", SPEC)


@pytest.mark.parametrize("variant", [
    ScenarioSpec(family="complete", params={"n": 10}, k=7),
    ScenarioSpec(family="complete", params={"n": 10}, k=6, seed=1),
    ScenarioSpec(family="complete", params={"n": 10}, k=6, faults={"crash": 0.1}),
    ScenarioSpec(family="complete", params={"n": 10}, k=6, check_invariants=True),
    ScenarioSpec(family="ring", params={"n": 10}, k=6),
])
def test_fingerprint_covers_every_run_determining_field(variant):
    assert run_fingerprint("rooted_sync", variant) != run_fingerprint("rooted_sync", SPEC)


def test_fingerprint_distinguishes_algorithm_and_code_version():
    base = run_fingerprint("rooted_sync", SPEC)
    assert run_fingerprint("naive_dfs", SPEC) != base
    assert run_fingerprint("rooted_sync", SPEC, code_version="v-next") != base


# ------------------------------------------------------------ put/get/query
def test_put_get_round_trips_record_exactly(store):
    record = run_sweep(small_sweep())[0]
    fingerprint = run_fingerprint(record.algorithm, ScenarioSpec.from_dict(record.scenario))
    store.put(fingerprint, record)
    loaded = store.get(fingerprint)
    assert loaded.to_dict() == record.to_dict()
    assert store.get("0" * 64) is None
    assert store.count() == 1


def test_query_filters_and_deterministic_order(store):
    sweep = small_sweep()
    records = run_sweep(sweep, store=store)
    assert store.count() == len(records) == 4

    only_sync = store.query(algorithms=["rooted_sync"])
    assert {r.algorithm for r in only_sync} == {"rooted_sync"}
    assert len(only_sync) == 2

    k6 = store.query(k=6)
    assert all(r.scenario["k"] == 6 for r in k6) and len(k6) == 2

    assert store.query(faults={}) and not store.query(faults={"crash": 0.5})
    assert store.query(status="ok") == store.query()
    assert [r.to_dict() for r in store.query()] == [r.to_dict() for r in store.query()]


def test_fault_profiles_are_distinct_store_entries(store):
    sweep = SweepSpec(
        name="faulty", algorithms=["rooted_sync"],
        scenarios=[ScenarioSpec(family="line", params={"n": 10}, k=6)],
    ).with_profiles([{}, {"freeze": 0.8, "freeze_duration": 20}], check_invariants=True)
    records = run_sweep(sweep, store=store)
    assert len(records) == 2 and store.count() == 2
    fault_free = store.query(faults={})
    assert len(fault_free) == 1
    assert fault_free[0].invariant_violations == 0


# ------------------------------------------------------- cache-aware sweeps
def test_warm_sweep_executes_zero_jobs_and_matches_cold_bytes(store, tmp_path):
    sweep = small_sweep()
    cold = run_sweep(sweep, store=store)
    plan = plan_sweep(sweep, store)
    assert plan.hits == plan.total and plan.pending == []
    warm = execute_plan(plan, store=store)
    cold_path = artifacts_mod.write_json(cold, str(tmp_path / "cold.json"), sweep=sweep)
    warm_path = artifacts_mod.write_json(warm, str(tmp_path / "warm.json"), sweep=sweep)
    with open(cold_path, "rb") as a, open(warm_path, "rb") as b:
        assert a.read() == b.read()


def test_interrupted_sweep_resumes_only_missing_records(store):
    sweep = small_sweep()
    # Simulate an interrupt: only the first scenario's records were committed.
    partial = SweepSpec(
        name=sweep.name, algorithms=sweep.algorithms, scenarios=sweep.scenarios[:1]
    )
    run_sweep(partial, store=store)
    plan = plan_sweep(sweep, store)
    assert plan.hits == 2 and len(plan.pending) == 2
    resumed = execute_plan(plan, store=store)
    pure_cold = run_sweep(sweep)
    assert [r.to_dict() for r in resumed] == [r.to_dict() for r in pure_cold]
    assert plan_sweep(sweep, store).hits == plan.total


def test_parallel_and_serial_cached_sweeps_agree(store):
    sweep = small_sweep()
    run_sweep(SweepSpec(
        name=sweep.name, algorithms=["rooted_sync"], scenarios=sweep.scenarios,
    ), store=store)  # half-warm store
    parallel = run_sweep(sweep, workers=3, store=store)
    serial = run_sweep(sweep, workers=1)
    assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]


def test_progress_sees_every_record_with_cached_flags(store):
    sweep = small_sweep()
    run_sweep(sweep, store=store)
    seen = []
    execute_plan(
        plan_sweep(sweep, store), store=store,
        progress=lambda done, total, record, cached: seen.append((done, total, cached)),
    )
    assert seen == [(i + 1, 4, True) for i in range(4)]


# ------------------------------------------------- code-version invalidation
def test_version_bump_invalidates_exactly_that_algorithm(store, monkeypatch):
    sweep = small_sweep()
    run_sweep(sweep, store=store)
    spec = registry.get_algorithm("rooted_sync")
    monkeypatch.setitem(
        registry._REGISTRY, "rooted_sync", dataclasses.replace(spec, code_version="v-next")
    )
    plan = plan_sweep(sweep, store)
    stale = [plan.jobs[i][0] for i in plan.pending]
    assert stale == ["rooted_sync", "rooted_sync"]
    assert plan.hits == 2  # naive_dfs untouched


def test_gc_drops_stale_versions_only(store, monkeypatch):
    run_sweep(small_sweep(), store=store)
    spec = registry.get_algorithm("rooted_sync")
    monkeypatch.setitem(
        registry._REGISTRY, "rooted_sync", dataclasses.replace(spec, code_version="v-next")
    )
    preview = store.gc(dry_run=True)
    assert preview.stale_version == 2 and store.count() == 4  # dry run deletes nothing
    stats = store.gc()
    assert stats.stale_version == 2 and stats.unregistered == 0
    assert store.count() == 2
    assert {r.algorithm for r in store.all_records()} == {"naive_dfs"}


# ------------------------------------------------------------------- import
def test_import_legacy_artifact_makes_sweep_fully_cached(store, tmp_path):
    sweep = small_sweep()
    records = run_sweep(sweep)
    path = artifacts_mod.write_json(records, str(tmp_path / "legacy.json"), sweep=sweep)
    added, skipped = store.import_records(artifacts_mod.load_json(path))
    assert (added, skipped) == (4, 0)
    assert store.import_records(artifacts_mod.load_json(path)) == (0, 4)
    assert plan_sweep(sweep, store).hits == 4


# --------------------------------------------------------------------- diff
def test_diff_clean_between_store_and_artifact(store, tmp_path):
    sweep = small_sweep()
    records = run_sweep(sweep, store=store)
    path = artifacts_mod.write_json(records, str(tmp_path / "snap.json"), sweep=sweep)
    result = diff_paths(path, store.path)
    assert result.is_clean and result.common == 4
    assert not result.only_old and not result.only_new


def test_diff_reports_metric_changes_and_membership(store, tmp_path):
    sweep = small_sweep()
    records = run_sweep(sweep, store=store)
    old = load_side(store.path)
    # Tamper: regress one record's time and drop another run entirely.
    tampered = {k: v for k, v in old.items()}
    key = sorted(tampered)[0]
    worse = RunRecord.from_dict({**tampered[key].to_dict(), "time": 10_000})
    tampered[key] = worse
    removed = sorted(tampered)[-1]
    del tampered[removed]
    result = diff_records(old, tampered)
    assert not result.is_clean
    assert [c.field for c in result.changed] == ["time"]
    assert result.changed[0].new == 10_000
    assert result.only_old == [removed] and not result.only_new
    assert result.common == len(records) - 1


def test_load_side_rejects_conflicting_duplicates(tmp_path):
    records = run_sweep(small_sweep())
    twisted = RunRecord.from_dict({**records[0].to_dict(), "time": 1})
    path = artifacts_mod.write_json(list(records) + [twisted], str(tmp_path / "dup.json"))
    with pytest.raises(StoreError, match="conflicting duplicate"):
        load_side(str(path))


# -------------------------------------------------------------- concurrency
def test_store_runs_in_wal_mode_with_busy_timeout(store):
    mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
    assert mode == "wal"
    timeout = store._conn.execute("PRAGMA busy_timeout").fetchone()[0]
    assert timeout >= 1000


def test_two_concurrent_writers_interleave_without_locking_errors(tmp_path):
    """WAL + busy_timeout: two open connections writing turn-by-turn (the
    fuzz campaign and a sweep sharing one store) must both succeed."""
    path = str(tmp_path / "shared.sqlite")
    records = run_sweep(small_sweep())
    fingerprints = [
        run_fingerprint(r.algorithm, ScenarioSpec.from_dict(r.scenario)) for r in records
    ]
    with RunStore(path) as writer_a, RunStore(path, create=False) as writer_b:
        for i, (fingerprint, record) in enumerate(zip(fingerprints, records)):
            writer = writer_a if i % 2 == 0 else writer_b
            writer.put(fingerprint, record)
        assert writer_a.count() == writer_b.count() == len(records)
        for fingerprint, record in zip(fingerprints, records):
            assert writer_a.get(fingerprint).to_dict() == record.to_dict()


def test_has_and_missing_partition_fingerprints(store):
    records = run_sweep(small_sweep(), store=store)
    known = run_fingerprint(
        records[0].algorithm, ScenarioSpec.from_dict(records[0].scenario)
    )
    unknown = "f" * 64
    assert store.has(known) and not store.has(unknown)
    assert store.missing([known, unknown, known]) == [unknown]
    assert store.missing([]) == []


# ------------------------------------------------------------------- errors
def test_opening_a_foreign_file_raises_store_error(tmp_path):
    path = tmp_path / "not-a-store.sqlite"
    path.write_text("definitely not sqlite")
    with pytest.raises(StoreError, match="not an experiment store"):
        RunStore(str(path))


def test_opening_missing_store_without_create_raises(tmp_path):
    with pytest.raises(StoreError, match="does not exist"):
        RunStore(str(tmp_path / "absent.sqlite"), create=False)


# -------------------------------------------- fault-profile canonicalization
def test_equivalent_fault_profiles_share_fingerprints_and_keys():
    minimal = ScenarioSpec(family="line", params={"n": 10}, k=6, faults={"crash": 0.1})
    spelled = ScenarioSpec(
        family="line", params={"n": 10}, k=6, faults={"crash": 0.1, "horizon": 240}
    )
    as_int = ScenarioSpec(family="line", params={"n": 10}, k=6, faults={"crash": 1})
    as_float = ScenarioSpec(family="line", params={"n": 10}, k=6, faults={"crash": 1.0})
    assert minimal.key() == spelled.key()
    assert run_fingerprint("rooted_sync", minimal) == run_fingerprint("rooted_sync", spelled)
    assert as_int.key() == as_float.key()
    assert as_int.faults == {"crash": 1.0}


def test_query_by_profile_matches_spelled_out_defaults(store):
    sweep = SweepSpec(
        name="canon", algorithms=["rooted_sync"],
        scenarios=[ScenarioSpec(
            family="line", params={"n": 10}, k=6,
            faults={"crash": 0.1, "horizon": 240},  # 240 is the default
        )],
    )
    run_sweep(sweep, store=store)
    assert len(store.query(faults={"crash": 0.1})) == 1


def test_query_with_explicit_empty_algorithm_list_matches_nothing(store):
    run_sweep(small_sweep(), store=store)
    assert store.query(algorithms=[]) == []
    assert len(store.query(algorithms=None)) == 4
