"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations


import pytest

from repro.graph import generators
from repro.analysis.verification import verify_dispersion, check_memory_bound


def topology_zoo():
    """(name, graph-factory, k) triples covering the families in DESIGN.md."""
    return [
        ("line", lambda: generators.line(24), 24),
        ("ring", lambda: generators.ring(20), 20),
        ("star", lambda: generators.star(22), 22),
        ("binary_tree", lambda: generators.binary_tree(4), 31),
        ("random_tree", lambda: generators.random_tree(30, seed=5), 30),
        ("caterpillar", lambda: generators.caterpillar(6, 3), 24),
        ("broom", lambda: generators.broom(8, 12), 20),
        ("spider", lambda: generators.spider(4, 5), 21),
        ("grid", lambda: generators.grid2d(5, 5), 25),
        ("hypercube", lambda: generators.hypercube(5), 32),
        ("erdos_renyi", lambda: generators.erdos_renyi(36, 0.14, seed=3), 36),
        ("complete", lambda: generators.complete(14), 14),
        ("lollipop", lambda: generators.lollipop(8, 10), 18),
        ("partial_k", lambda: generators.erdos_renyi(40, 0.12, seed=11), 25),
    ]


def assert_valid_result(graph, result, agents=None, memory_constant: float = 40.0):
    """Common success criteria: valid dispersion + memory within a constant·log."""
    assert result.dispersed, f"{result.algorithm} did not disperse"
    positions = list(result.positions.values())
    assert len(positions) == len(set(positions)), "two agents share a node"
    for node in positions:
        assert 0 <= node < graph.num_nodes
    if agents is not None:
        verify_dispersion(graph, list(agents))
        msg = check_memory_bound(
            list(agents), k=len(list(agents)), max_degree=graph.max_degree, constant=memory_constant
        )
        assert msg is None, msg


@pytest.fixture(scope="session")
def small_line():
    return generators.line(12)


@pytest.fixture(scope="session")
def small_tree():
    return generators.random_tree(20, seed=1)
