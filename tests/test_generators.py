"""Tests for the topology zoo."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graph import generators
from repro.graph.properties import profile


class TestBasicFamilies:
    def test_line(self):
        g = generators.line(10)
        assert g.num_nodes == 10 and g.num_edges == 9
        assert g.max_degree == 2
        assert g.diameter() == 9

    def test_line_single_node(self):
        assert generators.line(1).num_nodes == 1

    def test_ring(self):
        g = generators.ring(12)
        assert g.num_nodes == 12 and g.num_edges == 12
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            generators.ring(2)

    def test_star(self):
        g = generators.star(15)
        assert g.degree(0) == 14
        assert all(g.degree(v) == 1 for v in range(1, 15))

    def test_complete(self):
        g = generators.complete(8)
        assert g.num_edges == 28
        assert g.max_degree == 7

    def test_binary_tree(self):
        g = generators.binary_tree(3)
        assert g.num_nodes == 15
        assert g.is_tree()
        assert g.max_degree == 3

    def test_random_tree_is_tree(self):
        for seed in range(5):
            g = generators.random_tree(25, seed=seed)
            assert g.is_tree()

    def test_caterpillar(self):
        g = generators.caterpillar(5, 3)
        assert g.num_nodes == 5 + 15
        assert g.is_tree()

    def test_broom(self):
        g = generators.broom(6, 10)
        assert g.num_nodes == 16
        assert g.is_tree()
        assert g.degree(5) == 11  # hub: 1 path edge + 10 bristles

    def test_spider(self):
        g = generators.spider(4, 3)
        assert g.num_nodes == 13
        assert g.degree(0) == 4
        assert g.is_tree()

    def test_grid(self):
        g = generators.grid2d(4, 5)
        assert g.num_nodes == 20
        assert g.num_edges == 4 * 4 + 3 * 5
        assert g.max_degree == 4

    def test_hypercube(self):
        g = generators.hypercube(4)
        assert g.num_nodes == 16
        assert all(g.degree(v) == 4 for v in g.nodes())
        assert g.diameter() == 4

    def test_erdos_renyi_connected(self):
        for seed in range(4):
            g = generators.erdos_renyi(40, 0.05, seed=seed)
            assert g.num_nodes == 40
            assert max(g.bfs_distances(0)) >= 0  # connectivity enforced at build

    def test_erdos_renyi_invalid_p(self):
        with pytest.raises(ValueError):
            generators.erdos_renyi(10, 1.5)

    def test_random_regular(self):
        g = generators.random_regular(20, 4, seed=1)
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_random_regular_parity_check(self):
        with pytest.raises(ValueError):
            generators.random_regular(9, 3)

    def test_barbell(self):
        g = generators.barbell(5, 3)
        assert g.num_nodes == 13
        assert g.max_degree == 5

    def test_lollipop(self):
        g = generators.lollipop(6, 4)
        assert g.num_nodes == 10
        assert g.num_edges == 15 + 4

    def test_from_networkx(self):
        nxg = nx.petersen_graph()
        g = generators.from_networkx(nxg)
        assert g.num_nodes == 10
        assert g.num_edges == 15
        assert all(g.degree(v) == 3 for v in g.nodes())

    def test_from_networkx_rejects_disconnected(self):
        nxg = nx.Graph()
        nxg.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            generators.from_networkx(nxg)

    def test_from_edges_dedup(self):
        g = generators.from_edges(3, [(0, 1), (1, 0), (1, 2)])
        assert g.num_edges == 2


class TestProfiles:
    def test_profile_line(self):
        p = profile(generators.line(9))
        assert p.num_nodes == 9
        assert p.diameter == 8
        assert p.max_degree == 2
        assert "n=9" in p.describe()

    def test_profile_without_diameter(self):
        p = profile(generators.complete(12), with_diameter=False)
        assert p.diameter == -1
        assert p.mean_degree == pytest.approx(11.0)
