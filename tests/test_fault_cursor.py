"""Property tests for the event-cursor fault scheduler (fault-semantics v2).

The v2 :class:`~repro.sim.faults.FaultInjector` compiles its crash/freeze
schedule into sorted event cursors so ``begin_tick`` is O(1) amortized.  These
properties pin the rewrite to the brute-force per-tick rescan semantics of the
v1 injector (:class:`tests.fault_reference.RescanFaultInjector`): for random
fault specs, seeds, and horizons -- including tick sequences with gaps, as the
engines produce when queried out of lockstep -- the cursor-based injector must
yield the identical blocked/unblocked timeline, announcement counts, and event
stream.

Uses Hypothesis when installed; otherwise the same properties run over a
seeded random sweep of equal size (the ``std-random`` fallback used across
this suite).
"""

from __future__ import annotations

import random

from repro.sim.faults import AgentFaultView, FaultInjector, FaultSpec

from tests.fault_reference import RescanFaultInjector

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

CASES = 60


def arbitrary_cases(**ranges):
    """Drive a test from Hypothesis, or from a seeded sweep without it."""

    def decorate(fn):
        if HAVE_HYPOTHESIS:
            strategies = {
                name: st.integers(low, high) for name, (low, high) in ranges.items()
            }
            wrapped = given(**strategies)(fn)
            return settings(
                max_examples=CASES,
                deadline=None,
                suppress_health_check=[HealthCheck.too_slow],
            )(wrapped)

        def sweep():
            rng = random.Random(0xFA17C0DE)
            for _ in range(CASES):
                fn(**{name: rng.randint(low, high) for name, (low, high) in ranges.items()})

        sweep.__name__ = fn.__name__
        sweep.__doc__ = fn.__doc__
        return sweep

    return decorate


def _make_pair(seed: int, agents: int, crash_pct: int, freeze_pct: int,
               duration: int, horizon: int):
    """A cursor injector and its rescan oracle over one random schedule."""
    spec = FaultSpec(
        crash=crash_pct / 100.0,
        freeze=freeze_pct / 100.0,
        freeze_duration=duration,
        horizon=horizon,
    )
    agent_ids = list(range(1, agents + 1))
    injector = FaultInjector(spec, agent_ids, seed=seed)
    reference = RescanFaultInjector(injector.crash_at, injector.freeze_window)
    return injector, reference, agent_ids


def _tick_sequence(seed: int, horizon: int):
    """A monotone tick sequence with random gaps past the fault horizon."""
    rng = random.Random(seed ^ 0x5E)
    ticks = []
    t = 0
    limit = 2 * horizon + 20
    while t < limit:
        ticks.append(t)
        t += rng.choice((1, 1, 1, 2, 3, 7))
    return ticks


@arbitrary_cases(seed=(0, 10_000), agents=(1, 24), crash_pct=(0, 100),
                 freeze_pct=(0, 100), duration=(1, 60), horizon=(1, 120))
def test_cursor_blocked_timeline_matches_rescan_reference(
    seed, agents, crash_pct, freeze_pct, duration, horizon
):
    injector, reference, agent_ids = _make_pair(
        seed, agents, crash_pct, freeze_pct, duration, horizon
    )
    for t in _tick_sequence(seed, horizon):
        injector.begin_tick(t, None)
        reference.begin_tick(t)
        assert injector.blocked_cycle_agents(t) == reference.blocked_at(t)
        for agent_id in agent_ids:
            expected = reference.is_blocked(agent_id, t)
            assert injector.is_blocked(agent_id, t) == expected
            view = injector.view(agent_id, t)
            assert view == AgentFaultView(
                agent_id=agent_id,
                blocked_for_cycle=expected,
                blocked_for_move=expected,
                answers_probes=not expected,
            )
    assert injector.counts["crash"] == reference.counts["crash"]
    assert injector.counts["freeze"] == reference.counts["freeze"]
    observed = {(e.time, e.kind, _agent_of(e.detail)) for e in injector.events}
    assert observed == set(reference.events)


def _agent_of(detail: str) -> int:
    # "agent N crash-stops" / "agent N frozen until t=E"
    return int(detail.split()[1])


@arbitrary_cases(seed=(0, 10_000), agents=(1, 16), crash_pct=(0, 100),
                 freeze_pct=(0, 100), duration=(1, 40), horizon=(1, 80))
def test_explicit_schedule_replays_the_seeded_schedule(
    seed, agents, crash_pct, freeze_pct, duration, horizon
):
    """``from_schedule`` over a drawn schedule is indistinguishable from it."""
    injector, _reference, agent_ids = _make_pair(
        seed, agents, crash_pct, freeze_pct, duration, horizon
    )
    replay = FaultInjector.from_schedule(
        agent_ids, crash_at=injector.crash_at, freeze_windows=injector.freeze_window
    )
    for t in range(2 * horizon + 5):
        injector.begin_tick(t, None)
        replay.begin_tick(t, None)
        assert injector.blocked_cycle_agents(t) == replay.blocked_cycle_agents(t)
    assert injector.counts["crash"] == replay.counts["crash"]
    assert injector.counts["freeze"] == replay.counts["freeze"]


def test_blocked_observations_are_recorded_only_when_enabled():
    injector = FaultInjector.from_schedule([1, 2], crash_at={1: 0})
    injector.record_blocked(1, 0)
    assert injector.counts["blocked"] == 1 and injector.blocked_observations == []
    injector.record_observations = True
    injector.record_blocked(1, 1)
    injector.record_blocked(1, 3)
    assert injector.blocked_observations == [(1, 1), (1, 3)]
    assert injector.counts["blocked"] == 3


def test_blocked_cycle_agents_rejects_past_time_queries():
    import pytest

    injector = FaultInjector.from_schedule([1], crash_at={1: 50})
    injector.begin_tick(100, None)
    with pytest.raises(ValueError, match="past-time"):
        injector.blocked_cycle_agents(5)
    # The pure point query stays valid for any time.
    assert not injector.is_blocked(1, 5)
    assert injector.is_blocked(1, 99)


def test_from_schedule_rejects_malformed_entries():
    import pytest

    with pytest.raises(ValueError, match="unknown agent"):
        FaultInjector.from_schedule([1, 2], crash_at={3: 0})
    with pytest.raises(ValueError, match="unknown agent"):
        FaultInjector.from_schedule([1, 2], freeze_windows={9: (0, 5)})
    with pytest.raises(ValueError, match=">= 0"):
        FaultInjector.from_schedule([1], crash_at={1: -2})
    with pytest.raises(ValueError, match="start < end"):
        FaultInjector.from_schedule([1], freeze_windows={1: (5, 5)})
