"""Golden-record proof that the kernel refactor is byte-neutral.

``tests/fixtures/kernel_refactor_pre.json`` is a checked-in sweep artifact
produced by the *pre-kernel* code: separate ``SyncEngine``/``AsyncEngine``
implementations, each with its own occupancy table, move accounting, fault
wiring, and observation queries.  Re-running the same sweeps on the unified
:class:`~repro.sim.kernel.ExecutionKernel` facades and diffing against the
fixture proves the refactor changed **nothing observable**:

* ``repro db diff`` reports zero metric changes across every common run --
  no ``code_version`` bump was needed, so every cached store record stays
  valid;
* stronger than the diff's metric fields, every record's canonical JSON is
  byte-identical to the fixture's.

The fixture's sweeps are rebuilt here (not loaded from the artifact
envelope) so the golden test stays a faithful re-execution recipe.  The grid
deliberately crosses both engines, every registered algorithm, every ASYNC
adversary policy, rooted and split placements, and fault-free / crash /
freeze profiles under invariant checking -- the surfaces the kernel now owns.
"""

from __future__ import annotations

import os

from repro.runner import artifacts
from repro.runner.registry import algorithm_names, code_versions
from repro.runner.sweep import SweepSpec, run_sweep
from repro.store.diff import diff_paths, load_side

FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "kernel_refactor_pre.json"
)

#: ASYNC algorithms exercised under every adversary policy (the policies are
#: exactly the pre-kernel ``ADVERSARIES`` tuple minus round_robin, which the
#: profile grid already uses as the scenario default).
_ASYNC_ALGORITHMS = ("general_async", "ks_opodis21", "rooted_async")
_ADVERSARIES = ("random", "starvation", "adaptive_collision", "lazy_settler")


def golden_sweeps() -> list[SweepSpec]:
    """The sweeps the fixture artifact was generated from (pre-kernel code)."""
    profiles = SweepSpec.from_grid(
        name="kernel-golden-profiles",
        algorithms=algorithm_names(),
        graphs=[
            {"family": "erdos_renyi", "params": {"n": 16, "p": 0.3}},
            {"family": "line", "params": {"n": 14}},
        ],
        ks=[8],
        seeds=[0],
    ).with_profiles(
        [
            {},
            {"crash": 0.4, "horizon": 40},
            {"freeze": 0.8, "freeze_duration": 50, "horizon": 40},
        ],
        check_invariants=True,
    )
    adversaries = [
        SweepSpec.from_grid(
            name=f"kernel-golden-{adversary}",
            algorithms=list(_ASYNC_ALGORITHMS),
            graphs=[
                {"family": "ring", "params": {"n": 16}},
                {"family": "erdos_renyi", "params": {"n": 18, "p": 0.25}},
            ],
            ks=[8, 10],
            seeds=[0],
            adversary=adversary,
        )
        for adversary in _ADVERSARIES
    ]
    split = SweepSpec.from_grid(
        name="kernel-golden-split",
        algorithms=["general_async", "general_sync"],
        graphs=[{"family": "line", "params": {"n": 24}}],
        ks=[12],
        seeds=[0],
        placement="split",
        placement_parts=2,
    )
    return [profiles, *adversaries, split]


def golden_records():
    records = []
    for sweep in golden_sweeps():
        records.extend(run_sweep(sweep, workers=2))
    return records


def test_kernel_facades_reproduce_pre_refactor_records_byte_for_byte(tmp_path):
    live_path = str(tmp_path / "kernel_refactor_live.json")
    artifacts.write_json(golden_records(), live_path)

    result = diff_paths(FIXTURE, live_path)
    assert not result.only_old and not result.only_new  # same run identities
    assert result.is_clean, [change.render() for change in result.changed]
    assert result.common > 0

    # Byte-level identity, stronger than the diff's metric fields: the kernel
    # may not move a single counter, extra, or serialized scenario field.
    old_side, new_side = load_side(FIXTURE), load_side(live_path)
    for key, old_record in old_side.items():
        assert artifacts.canonical_record_json(old_record) == (
            artifacts.canonical_record_json(new_side[key])
        ), f"record changed across the kernel refactor: {key}"


def test_no_code_version_bump_was_needed():
    """The kernel refactor keeps every algorithm on its pre-refactor tag.

    Byte-identical records (proved above) mean cached store fingerprints stay
    sound, so bumping any ``code_version`` would only throw away valid cache
    entries.  Pin the tags so a future behavioural change has to touch this
    test and justify itself.
    """
    assert code_versions() == {name: "2" for name in algorithm_names()}
