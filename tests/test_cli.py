"""Tests for the ``python -m repro`` / ``repro`` command line."""

from __future__ import annotations

import json

import pytest

from repro.runner.cli import build_parser, main


def test_help_exits_zero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["--help"])
    assert excinfo.value.code == 0
    assert "sweep" in capsys.readouterr().out


def test_run_prints_summary(capsys):
    code = main([
        "run", "--algorithm", "rooted_sync", "--family", "line",
        "--param", "n=12", "--k", "6",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "dispersed=True" in out and "rounds" in out


def test_run_json_output_is_a_full_record(capsys):
    code = main([
        "run", "--algorithm", "naive_dfs", "--family", "complete",
        "--param", "n=8", "--k", "8", "--json",
    ])
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert record["status"] == "ok"
    assert record["scenario"]["family"] == "complete"
    assert record["rounds"] > 0


def test_run_reports_failure_via_exit_code(capsys):
    code = main([
        "run", "--algorithm", "rooted_sync", "--family", "line",
        "--param", "n=4", "--k", "9",
    ])
    assert code == 1
    assert "cannot disperse" in capsys.readouterr().out


def test_sweep_spec_file_to_artifact_to_report(tmp_path, capsys):
    spec = {
        "name": "cli-grid",
        "algorithms": ["rooted_sync", "naive_dfs"],
        "graphs": [{"family": "complete", "params": {"n": 10}}],
        "ks": [6, 10],
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    out_path = tmp_path / "grid.json"
    csv_path = tmp_path / "grid.csv"

    code = main([
        "sweep", "--spec", str(spec_path), "--out", str(out_path),
        "--csv", str(csv_path), "--quiet",
    ])
    assert code == 0
    assert out_path.exists() and csv_path.exists()
    payload = json.loads(out_path.read_text())
    assert payload["format"] == "repro-sweep-v1"
    assert len(payload["records"]) == 4

    code = main(["report", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "complete graphs" in out
    assert "claimed bound" in out


def test_sweep_exit_code_flags_errors(tmp_path, capsys):
    spec = {
        "name": "cli-bad",
        "algorithms": ["rooted_sync"],
        "graphs": [{"family": "line", "params": {"n": 4}}],
        "ks": [9],  # infeasible: k > n
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    code = main(["sweep", "--spec", str(spec_path), "--out", str(tmp_path / "bad.json"), "--quiet"])
    assert code == 1
    assert "FAILED" in capsys.readouterr().err


def test_list_names_every_algorithm(capsys):
    from repro.runner import algorithm_names

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in algorithm_names():
        assert name in out
