"""Tests for the ``python -m repro`` / ``repro`` command line."""

from __future__ import annotations

import json

import pytest

from repro.runner.cli import build_parser, main


def test_help_exits_zero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["--help"])
    assert excinfo.value.code == 0
    assert "sweep" in capsys.readouterr().out


def test_run_prints_summary(capsys):
    code = main([
        "run", "--algorithm", "rooted_sync", "--family", "line",
        "--param", "n=12", "--k", "6",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "dispersed=True" in out and "rounds" in out


def test_run_json_output_is_a_full_record(capsys):
    code = main([
        "run", "--algorithm", "naive_dfs", "--family", "complete",
        "--param", "n=8", "--k", "8", "--json",
    ])
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert record["status"] == "ok"
    assert record["scenario"]["family"] == "complete"
    assert record["rounds"] > 0


def test_run_scheduler_axis_round_trips(capsys):
    code = main([
        "run", "--algorithm", "rooted_async", "--family", "ring",
        "--param", "n=12", "--k", "6", "--scheduler", "semi-sync:0.5", "--json",
    ])
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert record["status"] == "ok" and record["dispersed"]
    assert record["scenario"]["scheduler"] == "semi-sync"
    assert record["scenario"]["scheduler_params"] == {"p": 0.5}


def test_run_sync_algorithm_under_scheduler_is_unsupported(capsys):
    code = main([
        "run", "--algorithm", "rooted_sync", "--family", "line",
        "--param", "n=12", "--k", "6", "--scheduler", "lockstep",
    ])
    assert code == 1
    assert "SYNC algorithm" in capsys.readouterr().out


@pytest.mark.parametrize("text", [
    "fsync",
    "bounded-delay:x",
    "bounded-delay:0",
    "semi-sync:lots",
    "semi-sync:2.0",
    "semi-sync:0",
    "lockstep:1",
])
def test_malformed_scheduler_exits_two_with_clear_message(text, capsys):
    code = main([
        "run", "--algorithm", "rooted_async", "--family", "ring",
        "--param", "n=12", "--k", "6", "--scheduler", text,
    ])
    assert code == 2
    assert "scheduler" in capsys.readouterr().err


def test_sweep_scheduler_restricts_grid_to_async_capable(tmp_path, capsys):
    out = tmp_path / "sched.json"
    code = main([
        "sweep", "--smoke", "--scheduler", "bounded-delay:2",
        "--check-invariants", "--out", str(out), "--quiet",
    ])
    assert code == 0
    payload = json.loads(out.read_text())
    records = payload["records"]
    assert records, "scheduler sweep produced no records"
    for record in records:
        assert record["scenario"]["scheduler"] == "bounded-delay"
        assert record["scenario"]["scheduler_params"] == {"delay_factor": 2}
        assert record["status"] == "ok"
        assert record["dispersed"] is True
        assert not record["invariant_violations"]
    assert {r["algorithm"] for r in records} == {
        "general_async", "ks_opodis21", "rooted_async",
    }


def test_run_reports_failure_via_exit_code(capsys):
    code = main([
        "run", "--algorithm", "rooted_sync", "--family", "line",
        "--param", "n=4", "--k", "9",
    ])
    assert code == 1
    assert "cannot disperse" in capsys.readouterr().out


def test_sweep_spec_file_to_artifact_to_report(tmp_path, capsys):
    spec = {
        "name": "cli-grid",
        "algorithms": ["rooted_sync", "naive_dfs"],
        "graphs": [{"family": "complete", "params": {"n": 10}}],
        "ks": [6, 10],
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    out_path = tmp_path / "grid.json"
    csv_path = tmp_path / "grid.csv"

    code = main([
        "sweep", "--spec", str(spec_path), "--out", str(out_path),
        "--csv", str(csv_path), "--quiet",
    ])
    assert code == 0
    assert out_path.exists() and csv_path.exists()
    payload = json.loads(out_path.read_text())
    assert payload["format"] == "repro-sweep-v1"
    assert len(payload["records"]) == 4

    code = main(["report", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "complete graphs" in out
    assert "claimed bound" in out


def test_sweep_exit_code_flags_errors(tmp_path, capsys):
    spec = {
        "name": "cli-bad",
        "algorithms": ["rooted_sync"],
        "graphs": [{"family": "line", "params": {"n": 4}}],
        "ks": [9],  # infeasible: k > n
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    code = main(["sweep", "--spec", str(spec_path), "--out", str(tmp_path / "bad.json"), "--quiet"])
    assert code == 1
    assert "FAILED" in capsys.readouterr().err


def test_list_names_every_algorithm(capsys):
    from repro.runner import algorithm_names

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in algorithm_names():
        assert name in out


# ------------------------------------------------------------- error paths
def test_unknown_algorithm_exits_nonzero_with_message(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "--algorithm", "does_not_exist", "--family", "line",
              "--param", "n=8", "--k", "4"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_unknown_graph_family_exits_nonzero_with_message(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "--algorithm", "rooted_sync", "--family", "klein_bottle",
              "--param", "n=8", "--k", "4"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_unknown_adversary_exits_nonzero_with_message(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "--algorithm", "rooted_async", "--family", "line",
              "--param", "n=8", "--k", "4", "--adversary", "byzantine"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


@pytest.mark.parametrize("spec", ["crash", "crash:2.0", "bogus:0.1", "freeze:0.1:0"])
def test_malformed_faults_spec_exits_two_with_clear_message(spec, capsys):
    code = main(["run", "--algorithm", "rooted_sync", "--family", "line",
                 "--param", "n=8", "--k", "4", "--faults", spec])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "fault" in err


def test_malformed_sweep_faults_exits_two(tmp_path, capsys):
    code = main(["sweep", "--smoke", "--faults", "crash:nope",
                 "--out", str(tmp_path / "x.json"), "--quiet"])
    assert code == 2
    assert "not a number" in capsys.readouterr().err


def test_empty_sweep_grid_exits_two_with_clear_message(tmp_path, capsys):
    spec = {"name": "empty", "algorithms": ["rooted_sync"], "scenarios": []}
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    code = main(["sweep", "--spec", str(spec_path), "--out", str(tmp_path / "x.json"), "--quiet"])
    assert code == 2
    assert "empty" in capsys.readouterr().err


def test_algorithm_filter_to_empty_grid_exits_two(tmp_path, capsys):
    spec = {
        "name": "mini",
        "algorithms": ["rooted_sync"],
        "graphs": [{"family": "line", "params": {"n": 8}}],
        "ks": [4],
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    code = main(["sweep", "--spec", str(spec_path), "--algorithms", "general_sync",
                 "--out", str(tmp_path / "x.json"), "--quiet"])
    assert code == 2
    assert "empty" in capsys.readouterr().err


def test_unknown_algorithm_filter_exits_two(tmp_path, capsys):
    code = main(["sweep", "--smoke", "--algorithms", "not_an_algorithm",
                 "--out", str(tmp_path / "x.json"), "--quiet"])
    assert code == 2
    assert "unknown algorithm" in capsys.readouterr().err


def test_unreadable_spec_file_exits_two(tmp_path, capsys):
    missing = tmp_path / "missing.json"
    code = main(["sweep", "--spec", str(missing), "--out", str(tmp_path / "x.json"), "--quiet"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


# ------------------------------------------------------ fault/invariant flags
def test_run_with_invariants_reports_zero_violations(capsys):
    code = main(["run", "--algorithm", "rooted_sync", "--family", "line",
                 "--param", "n=12", "--k", "6", "--check-invariants"])
    assert code == 0
    assert "invariant_violations=0" in capsys.readouterr().out


def test_run_json_record_carries_fault_fields(capsys):
    code = main(["run", "--algorithm", "naive_dfs", "--family", "complete",
                 "--param", "n=8", "--k", "6", "--faults", "freeze:0.9:5",
                 "--check-invariants", "--json"])
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert record["fault_events"] is not None
    assert record["invariant_violations"] == 0
    assert record["scenario"]["faults"] == {"freeze": 0.9, "freeze_duration": 5}


def test_sweep_crosses_grid_with_fault_profiles(tmp_path, capsys):
    spec = {
        "name": "fault-grid",
        "algorithms": ["rooted_sync", "naive_dfs"],
        "graphs": [{"family": "line", "params": {"n": 10}}],
        "ks": [6],
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    out_path = tmp_path / "faults.json"
    csv_path = tmp_path / "faults.csv"
    code = main(["sweep", "--spec", str(spec_path), "--faults", "none",
                 "--faults", "freeze:0.8:20", "--check-invariants",
                 "--out", str(out_path), "--csv", str(csv_path), "--quiet"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fault & invariant summary" in out
    payload = json.loads(out_path.read_text())
    assert len(payload["records"]) == 4  # 2 algorithms x 1 scenario x 2 profiles
    profiles = {json.dumps(r["scenario"]["faults"], sort_keys=True) for r in payload["records"]}
    assert len(profiles) == 2
    assert all(r["invariant_violations"] == 0 for r in payload["records"])
    header = csv_path.read_text().splitlines()[0]
    assert "fault_events" in header and "invariant_violations" in header


# ------------------------------------------------------- experiment store CLI
def _store_spec(tmp_path):
    spec = {
        "name": "cli-store",
        "algorithms": ["rooted_sync", "naive_dfs"],
        "graphs": [{"family": "complete", "params": {"n": 10}}],
        "ks": [6, 10],
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    return str(spec_path)


def test_sweep_store_second_run_is_fully_cached_and_byte_identical(tmp_path, capsys):
    spec_path = _store_spec(tmp_path)
    store = str(tmp_path / "runs.sqlite")
    cold, warm = str(tmp_path / "cold.json"), str(tmp_path / "warm.json")

    assert main(["sweep", "--spec", spec_path, "--store", store,
                 "--out", cold, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "0/4 cache hit(s), executing 4 job(s)" in out
    assert "cache: 0 hit(s), 4 executed" in out

    assert main(["sweep", "--spec", spec_path, "--store", store, "--resume",
                 "--out", warm, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "4/4 cache hit(s), executing 0 job(s)" in out
    assert "all 4 records served from cache (0 jobs executed)" in out
    with open(cold, "rb") as a, open(warm, "rb") as b:
        assert a.read() == b.read()


def test_sweep_resume_without_store_exits_two(tmp_path, capsys):
    code = main(["sweep", "--smoke", "--resume",
                 "--out", str(tmp_path / "x.json"), "--quiet"])
    assert code == 2
    assert "--resume needs --store" in capsys.readouterr().err


def test_sweep_progress_line_lands_on_stderr(tmp_path, capsys):
    spec_path = _store_spec(tmp_path)
    code = main(["sweep", "--spec", spec_path, "--progress", "--quiet",
                 "--out", str(tmp_path / "x.json")])
    assert code == 0
    err = capsys.readouterr().err
    assert "[4/4] hits=0 faults=0 viol=0 eta=" in err


def test_db_query_artifact_feeds_report(tmp_path, capsys):
    spec_path = _store_spec(tmp_path)
    store = str(tmp_path / "runs.sqlite")
    assert main(["sweep", "--spec", spec_path, "--store", store,
                 "--out", str(tmp_path / "a.json"), "--quiet"]) == 0
    query_out = str(tmp_path / "query.json")
    assert main(["db", "query", store, "--algorithm", "rooted_sync",
                 "--out", query_out, "--csv", str(tmp_path / "query.csv")]) == 0
    payload = json.loads((tmp_path / "query.json").read_text())
    assert payload["format"] == "repro-sweep-v1"
    assert len(payload["records"]) == 2
    assert all(r["algorithm"] == "rooted_sync" for r in payload["records"])
    capsys.readouterr()
    assert main(["report", query_out]) == 0
    assert "complete graphs" in capsys.readouterr().out


def test_db_query_without_out_prints_summary(tmp_path, capsys):
    spec_path = _store_spec(tmp_path)
    store = str(tmp_path / "runs.sqlite")
    assert main(["sweep", "--spec", spec_path, "--store", store,
                 "--out", str(tmp_path / "a.json"), "--quiet"]) == 0
    capsys.readouterr()
    assert main(["db", "query", store, "--k", "6"]) == 0
    out = capsys.readouterr().out
    assert "2 record(s) match" in out and "k=6" in out


def test_db_diff_detects_changes_and_sets_exit_code(tmp_path, capsys):
    spec_path = _store_spec(tmp_path)
    store = str(tmp_path / "runs.sqlite")
    artifact = str(tmp_path / "a.json")
    assert main(["sweep", "--spec", spec_path, "--store", store,
                 "--out", artifact, "--quiet"]) == 0
    capsys.readouterr()

    assert main(["db", "diff", artifact, store]) == 0
    assert "no metric changes" in capsys.readouterr().out

    payload = json.loads((tmp_path / "a.json").read_text())
    payload["records"][0]["time"] = 99999
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(payload))
    assert main(["db", "diff", store, str(tampered)]) == 1
    out = capsys.readouterr().out
    assert "time:" in out and "-> 99999" in out and "1 metric change(s)" in out


def test_db_import_then_sweep_is_fully_cached(tmp_path, capsys):
    spec_path = _store_spec(tmp_path)
    artifact = str(tmp_path / "legacy.json")
    assert main(["sweep", "--spec", spec_path, "--out", artifact, "--quiet"]) == 0
    store = str(tmp_path / "runs.sqlite")
    capsys.readouterr()
    assert main(["db", "import", store, artifact]) == 0
    assert "imported 4 record(s), skipped 0" in capsys.readouterr().out
    assert main(["sweep", "--spec", spec_path, "--store", store,
                 "--out", str(tmp_path / "warm.json"), "--quiet"]) == 0
    assert "0 jobs executed" in capsys.readouterr().out


def test_db_stats_and_gc_on_fresh_store(tmp_path, capsys):
    spec_path = _store_spec(tmp_path)
    store = str(tmp_path / "runs.sqlite")
    assert main(["sweep", "--spec", spec_path, "--store", store,
                 "--out", str(tmp_path / "a.json"), "--quiet"]) == 0
    capsys.readouterr()
    assert main(["db", "stats", store]) == 0
    out = capsys.readouterr().out
    assert "4 record(s)" in out and "rooted_sync" in out and "collectable by gc: 0" in out
    assert main(["db", "gc", store]) == 0
    assert "removed 0 record(s)" in capsys.readouterr().out


def test_db_query_on_missing_store_exits_two(tmp_path, capsys):
    code = main(["db", "query", str(tmp_path / "absent.sqlite")])
    assert code == 2
    assert "does not exist" in capsys.readouterr().err


def test_db_diff_on_truncated_artifact_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": "repro-sweep-v1", "records": [{"alg')
    code = main(["db", "diff", str(bad), str(bad)])
    assert code == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_check_invariants_alone_keeps_spec_file_fault_profiles(tmp_path, capsys):
    spec = {
        "name": "keep-faults",
        "algorithms": ["rooted_sync"],
        "scenarios": [{
            "family": "line", "params": {"n": 10}, "k": 6,
            "faults": {"freeze": 0.8, "freeze_duration": 20},
        }],
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    out_path = tmp_path / "out.json"
    code = main(["sweep", "--spec", str(spec_path), "--check-invariants",
                 "--out", str(out_path), "--quiet"])
    assert code == 0
    record = json.loads(out_path.read_text())["records"][0]
    assert record["scenario"]["faults"] == {"freeze": 0.8, "freeze_duration": 20}
    assert record["scenario"]["check_invariants"] is True
    assert record["invariant_violations"] == 0


def test_empty_algorithm_filter_value_exits_two(tmp_path, capsys):
    code = main(["sweep", "--smoke", "--algorithms", " , ",
                 "--out", str(tmp_path / "x.json"), "--quiet"])
    assert code == 2
    assert "no algorithm names" in capsys.readouterr().err


# ------------------------------------------------------------ backend axis


def test_run_backend_vectorized_tags_the_record(capsys):
    pytest.importorskip("numpy")
    code = main([
        "run", "--algorithm", "rooted_sync", "--family", "line",
        "--param", "n=12", "--k", "6", "--backend", "vectorized", "--json",
    ])
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert record["status"] == "ok" and record["dispersed"]
    assert record["scenario"]["backend"] == "vectorized"


def test_run_default_backend_stays_untagged(capsys):
    code = main([
        "run", "--algorithm", "rooted_sync", "--family", "line",
        "--param", "n=12", "--k", "6", "--json",
    ])
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert "backend" not in record["scenario"]


def test_run_rejects_unknown_backend(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([
            "run", "--algorithm", "rooted_sync", "--family", "line",
            "--param", "n=12", "--k", "6", "--backend", "gpu",
        ])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_sweep_backend_tags_every_record(tmp_path, capsys):
    pytest.importorskip("numpy")
    out = tmp_path / "vec.json"
    code = main(["sweep", "--smoke", "--backend", "vectorized",
                 "--out", str(out), "--quiet"])
    assert code == 0
    records = json.loads(out.read_text())["records"]
    assert records
    for record in records:
        assert record["scenario"]["backend"] == "vectorized"


def test_list_shows_backend_availability(capsys):
    code = main(["list"])
    assert code == 0
    out = capsys.readouterr().out
    assert "backend reference" in out
    assert "[default]" in out
    assert "backend vectorized" in out


def test_bench_writes_report_and_guards_itself(tmp_path, capsys, monkeypatch):
    from repro.runner import bench as bench_mod

    # schema/exit-code test, not a measurement: shrink the worlds and budgets
    monkeypatch.setattr(bench_mod, "QUICK_BUDGET_S", 0.02)
    monkeypatch.setattr(bench_mod, "QUICK_NODES", 36)
    out = tmp_path / "BENCH_kernel.json"
    code = main([
        "bench", "--quick", "--backend", "reference",
        "--workload", "random_walk", "--out", str(out),
    ])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "kernel bench [quick]" in stdout
    assert f"wrote bench report to {out}" in stdout
    payload = json.loads(out.read_text())
    assert payload["format"] == "repro-bench-v1"
    assert list(payload["tiers"]) == ["quick"]
    # a fresh run gated against its own report always passes
    code = main([
        "bench", "--quick", "--backend", "reference",
        "--workload", "random_walk", "--out", str(tmp_path / "again.json"),
        "--check", str(out), "--tolerance", "0.9",
    ])
    assert code == 0
    assert "bench-guard: speedups within" in capsys.readouterr().out


def test_bench_check_flags_an_impossible_baseline(tmp_path, capsys, monkeypatch):
    pytest.importorskip("numpy")
    from repro.runner import bench as bench_mod

    monkeypatch.setattr(bench_mod, "QUICK_BUDGET_S", 0.02)
    monkeypatch.setattr(bench_mod, "QUICK_NODES", 36)
    baseline = {
        "format": "repro-bench-v1", "quick": True, "seed": 0,
        "tiers": {"quick": {
            "nodes": 36, "agents": 36, "results": [],
            "speedups": {"random_walk": {"vectorized": 1e9}},
        }},
    }
    base_path = tmp_path / "impossible.json"
    base_path.write_text(json.dumps(baseline))
    code = main([
        "bench", "--quick", "--workload", "random_walk",
        "--backend", "reference", "--backend", "vectorized",
        "--out", str(tmp_path / "fresh.json"), "--check", str(base_path),
    ])
    assert code == 1
    assert "BENCH REGRESSION" in capsys.readouterr().err


def test_list_shows_trace_capabilities(capsys):
    from repro.runner.registry import list_algorithms

    code = main(["list"])
    assert code == 0
    out = capsys.readouterr().out
    for spec in list_algorithms():
        assert f"trace {spec.name}" in out
        line = next(l for l in out.splitlines() if l.startswith(f"trace {spec.name}"))
        if spec.setting == "sync":
            assert "round-granularity" in line
        else:
            assert "activation-granularity" in line


def test_run_trace_out_writes_versioned_payload(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    code = main([
        "run", "--algorithm", "rooted_sync", "--family", "line",
        "--param", "n=12", "--k", "6", "--trace-out", str(trace_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "trace:" in out and "[rounds]" in out
    payload = json.loads(trace_path.read_text())
    assert payload["format"] == "repro-trace-v1"
    assert payload["algorithm"] == "rooted_sync"
    assert payload["segments"]


def test_run_trace_json_stdout_stays_parseable(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    code = main([
        "run", "--algorithm", "rooted_async", "--family", "ring",
        "--param", "n=10", "--k", "5", "--json", "--trace-out", str(trace_path),
    ])
    assert code == 0
    record = json.loads(capsys.readouterr().out)  # wrote-notice went to stderr
    assert record["trace"]["format"] == "repro-trace-v1"
    assert record["trace"]["segments"][0]["granularity"] == "activations"


def test_trace_summary_reports_replay_ok(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert main([
        "run", "--algorithm", "rooted_sync", "--family", "complete",
        "--param", "n=8", "--k", "8", "--trace-out", str(trace_path),
    ]) == 0
    capsys.readouterr()
    assert main(["trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "replay ok" in out
    assert "MISMATCH" not in out


def test_trace_html_is_self_contained(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert main([
        "run", "--algorithm", "rooted_sync", "--family", "line",
        "--param", "n=12", "--k", "6", "--faults", "freeze:0.3:20",
        "--trace-out", str(trace_path),
    ]) == 0
    html_path = tmp_path / "replay.html"
    assert main(["trace", str(trace_path), "--html", str(html_path)]) == 0
    html = html_path.read_text()
    assert "http://" not in html and "https://" not in html
    assert "<script>" in html and "<style>" in html
    assert "repro-trace-v1" in html


def test_sweep_trace_artifact_selection_and_store_roundtrip(tmp_path, capsys):
    spec_path = _store_spec(tmp_path)
    store = str(tmp_path / "runs.sqlite")
    out = tmp_path / "traced.json"
    assert main(["sweep", "--spec", spec_path, "--trace", "--store", store,
                 "--out", str(out), "--quiet"]) == 0
    capsys.readouterr()

    # ambiguous input lists the candidates instead of guessing
    assert main(["trace", str(out)]) == 2
    err = capsys.readouterr().err
    assert "4 traces" in err and "--index" in err

    assert main(["trace", str(out), "--algorithm", "naive_dfs", "--index", "0"]) == 0
    assert "naive_dfs" in capsys.readouterr().out

    # the store indexes every trace and serves them back by fingerprint
    assert main(["db", "traces", store]) == 0
    out_text = capsys.readouterr().out
    assert "4 trace(s) indexed" in out_text
    fingerprint = out_text.split()[0]
    assert main(["trace", store, "--fingerprint", fingerprint, "--summary"]) == 0
    assert "replay ok" in capsys.readouterr().out

    assert main(["db", "stats", store]) == 0
    assert "traces indexed: 4" in capsys.readouterr().out


def test_sweep_progress_line_counts_faults(tmp_path, capsys):
    spec = {
        "name": "cli-faulty",
        "algorithms": ["rooted_sync"],
        "graphs": [{"family": "complete", "params": {"n": 10}}],
        "ks": [8],
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    code = main(["sweep", "--spec", str(spec_path), "--progress", "--quiet",
                 "--faults", "freeze:0.5:10", "--check-invariants",
                 "--out", str(tmp_path / "x.json")])
    assert code == 0
    err = capsys.readouterr().err
    assert "faults=" in err and "viol=" in err


def test_sweep_progress_cached_rerun_reports_zero_eta_and_same_counters(tmp_path, capsys):
    spec = {
        "name": "cli-warm-progress",
        "algorithms": ["rooted_sync"],
        "graphs": [{"family": "complete", "params": {"n": 10}}],
        "ks": [6, 8],
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    store = str(tmp_path / "runs.sqlite")
    argv = ["sweep", "--spec", str(spec_path), "--store", store, "--progress",
            "--quiet", "--faults", "churn:0.5", "--check-invariants",
            "--out", str(tmp_path / "x.json")]

    assert main(argv) == 0
    cold_lines = [l for l in capsys.readouterr().err.splitlines() if l.startswith("[")]
    assert cold_lines and cold_lines[-1].startswith("[2/2] hits=0 ")

    assert main(argv + ["--resume"]) == 0
    warm_lines = [l for l in capsys.readouterr().err.splitlines() if l.startswith("[")]
    # Every record is a hit, the ETA is 0.0s from the first line on (not "?"),
    # and the fault/violation totals match the cold run (cached findings count).
    assert len(warm_lines) == 2
    for i, line in enumerate(warm_lines):
        assert line.startswith(f"[{i + 1}/2] hits={i + 1} ")
        assert line.endswith("eta=0.0s")
    cold_counters = cold_lines[-1].split("] ")[1].rsplit(" eta=", 1)[0]
    warm_counters = warm_lines[-1].split("] ")[1].rsplit(" eta=", 1)[0]
    assert cold_counters.replace("hits=0", "") == warm_counters.replace("hits=2", "")


# --------------------------------------------------------------------- fuzz
def test_fuzz_campaign_cli_second_pass_executes_zero_jobs(tmp_path, capsys):
    store = str(tmp_path / "fuzz.sqlite")
    argv = ["fuzz", "--trials", "4", "--seed", "21", "--store", store,
            "--no-differential", "--no-explore"]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "fuzz seed=21: 4 trial(s)" in cold and "no failures found" in cold
    assert "0 executed" not in cold

    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "0 executed" in warm and "no failures found" in warm


def test_fuzz_planted_bug_cli_reports_falsified_and_writes_fixture(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    assert main(["fuzz", "--trials", "40", "--seed", "7", "--plant-bug",
                 "--store", str(tmp_path / "fuzz.sqlite"),
                 "--corpus", str(corpus),
                 "--no-differential", "--no-explore"]) == 1
    out = capsys.readouterr().out
    assert "FALSIFIED" in out and "minimized:" in out and "fixture:" in out
    assert list(corpus.glob("invariant-*.json"))


def test_fuzz_replay_cli_passes_good_fixture_and_fails_tampered_one(tmp_path, capsys):
    from repro.fuzz import fixture_entry, write_fixture
    from repro.runner.scenario import ScenarioSpec

    corpus = str(tmp_path / "corpus")
    spec = ScenarioSpec(
        family="line", params={"n": 2}, k=2,
        faults={"churn": 1.0, "horizon": 8}, check_invariants=True,
    )
    entry = fixture_entry("rooted_sync", spec, "churn_skip")
    path = write_fixture(corpus, entry)
    assert main(["fuzz", "--replay", corpus]) == 0
    out = capsys.readouterr().out
    assert f"{path}: ok" in out and "replayed 1 fixture(s), 0 failing" in out

    entry["expected_record"]["time"] = 424242
    write_fixture(corpus, entry)
    assert main(["fuzz", "--replay", corpus]) == 1
    out = capsys.readouterr().out
    assert "record bytes diverged" in out and "1 failing" in out


def test_fuzz_replay_cli_on_empty_corpus_is_a_clean_no_op(tmp_path, capsys):
    assert main(["fuzz", "--replay", str(tmp_path / "nothing")]) == 0
    assert "no fuzz fixtures" in capsys.readouterr().out


def test_fuzz_rejects_unknown_algorithm_filter(capsys):
    assert main(["fuzz", "--trials", "1", "--algorithms", "nope"]) == 2
    assert "nope" in capsys.readouterr().err
