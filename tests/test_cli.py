"""Tests for the ``python -m repro`` / ``repro`` command line."""

from __future__ import annotations

import json

import pytest

from repro.runner.cli import build_parser, main


def test_help_exits_zero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["--help"])
    assert excinfo.value.code == 0
    assert "sweep" in capsys.readouterr().out


def test_run_prints_summary(capsys):
    code = main([
        "run", "--algorithm", "rooted_sync", "--family", "line",
        "--param", "n=12", "--k", "6",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "dispersed=True" in out and "rounds" in out


def test_run_json_output_is_a_full_record(capsys):
    code = main([
        "run", "--algorithm", "naive_dfs", "--family", "complete",
        "--param", "n=8", "--k", "8", "--json",
    ])
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert record["status"] == "ok"
    assert record["scenario"]["family"] == "complete"
    assert record["rounds"] > 0


def test_run_reports_failure_via_exit_code(capsys):
    code = main([
        "run", "--algorithm", "rooted_sync", "--family", "line",
        "--param", "n=4", "--k", "9",
    ])
    assert code == 1
    assert "cannot disperse" in capsys.readouterr().out


def test_sweep_spec_file_to_artifact_to_report(tmp_path, capsys):
    spec = {
        "name": "cli-grid",
        "algorithms": ["rooted_sync", "naive_dfs"],
        "graphs": [{"family": "complete", "params": {"n": 10}}],
        "ks": [6, 10],
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    out_path = tmp_path / "grid.json"
    csv_path = tmp_path / "grid.csv"

    code = main([
        "sweep", "--spec", str(spec_path), "--out", str(out_path),
        "--csv", str(csv_path), "--quiet",
    ])
    assert code == 0
    assert out_path.exists() and csv_path.exists()
    payload = json.loads(out_path.read_text())
    assert payload["format"] == "repro-sweep-v1"
    assert len(payload["records"]) == 4

    code = main(["report", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "complete graphs" in out
    assert "claimed bound" in out


def test_sweep_exit_code_flags_errors(tmp_path, capsys):
    spec = {
        "name": "cli-bad",
        "algorithms": ["rooted_sync"],
        "graphs": [{"family": "line", "params": {"n": 4}}],
        "ks": [9],  # infeasible: k > n
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    code = main(["sweep", "--spec", str(spec_path), "--out", str(tmp_path / "bad.json"), "--quiet"])
    assert code == 1
    assert "FAILED" in capsys.readouterr().err


def test_list_names_every_algorithm(capsys):
    from repro.runner import algorithm_names

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in algorithm_names():
        assert name in out


# ------------------------------------------------------------- error paths
def test_unknown_algorithm_exits_nonzero_with_message(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "--algorithm", "does_not_exist", "--family", "line",
              "--param", "n=8", "--k", "4"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_unknown_graph_family_exits_nonzero_with_message(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "--algorithm", "rooted_sync", "--family", "klein_bottle",
              "--param", "n=8", "--k", "4"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_unknown_adversary_exits_nonzero_with_message(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "--algorithm", "rooted_async", "--family", "line",
              "--param", "n=8", "--k", "4", "--adversary", "byzantine"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


@pytest.mark.parametrize("spec", ["crash", "crash:2.0", "bogus:0.1", "freeze:0.1:0"])
def test_malformed_faults_spec_exits_two_with_clear_message(spec, capsys):
    code = main(["run", "--algorithm", "rooted_sync", "--family", "line",
                 "--param", "n=8", "--k", "4", "--faults", spec])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "fault" in err


def test_malformed_sweep_faults_exits_two(tmp_path, capsys):
    code = main(["sweep", "--smoke", "--faults", "crash:nope",
                 "--out", str(tmp_path / "x.json"), "--quiet"])
    assert code == 2
    assert "not a number" in capsys.readouterr().err


def test_empty_sweep_grid_exits_two_with_clear_message(tmp_path, capsys):
    spec = {"name": "empty", "algorithms": ["rooted_sync"], "scenarios": []}
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    code = main(["sweep", "--spec", str(spec_path), "--out", str(tmp_path / "x.json"), "--quiet"])
    assert code == 2
    assert "empty" in capsys.readouterr().err


def test_algorithm_filter_to_empty_grid_exits_two(tmp_path, capsys):
    spec = {
        "name": "mini",
        "algorithms": ["rooted_sync"],
        "graphs": [{"family": "line", "params": {"n": 8}}],
        "ks": [4],
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    code = main(["sweep", "--spec", str(spec_path), "--algorithms", "general_sync",
                 "--out", str(tmp_path / "x.json"), "--quiet"])
    assert code == 2
    assert "empty" in capsys.readouterr().err


def test_unknown_algorithm_filter_exits_two(tmp_path, capsys):
    code = main(["sweep", "--smoke", "--algorithms", "not_an_algorithm",
                 "--out", str(tmp_path / "x.json"), "--quiet"])
    assert code == 2
    assert "unknown algorithm" in capsys.readouterr().err


def test_unreadable_spec_file_exits_two(tmp_path, capsys):
    missing = tmp_path / "missing.json"
    code = main(["sweep", "--spec", str(missing), "--out", str(tmp_path / "x.json"), "--quiet"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


# ------------------------------------------------------ fault/invariant flags
def test_run_with_invariants_reports_zero_violations(capsys):
    code = main(["run", "--algorithm", "rooted_sync", "--family", "line",
                 "--param", "n=12", "--k", "6", "--check-invariants"])
    assert code == 0
    assert "invariant_violations=0" in capsys.readouterr().out


def test_run_json_record_carries_fault_fields(capsys):
    code = main(["run", "--algorithm", "naive_dfs", "--family", "complete",
                 "--param", "n=8", "--k", "6", "--faults", "freeze:0.9:5",
                 "--check-invariants", "--json"])
    assert code == 0
    record = json.loads(capsys.readouterr().out)
    assert record["fault_events"] is not None
    assert record["invariant_violations"] == 0
    assert record["scenario"]["faults"] == {"freeze": 0.9, "freeze_duration": 5}


def test_sweep_crosses_grid_with_fault_profiles(tmp_path, capsys):
    spec = {
        "name": "fault-grid",
        "algorithms": ["rooted_sync", "naive_dfs"],
        "graphs": [{"family": "line", "params": {"n": 10}}],
        "ks": [6],
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))
    out_path = tmp_path / "faults.json"
    csv_path = tmp_path / "faults.csv"
    code = main(["sweep", "--spec", str(spec_path), "--faults", "none",
                 "--faults", "freeze:0.8:20", "--check-invariants",
                 "--out", str(out_path), "--csv", str(csv_path), "--quiet"])
    assert code == 0
    out = capsys.readouterr().out
    assert "fault & invariant summary" in out
    payload = json.loads(out_path.read_text())
    assert len(payload["records"]) == 4  # 2 algorithms x 1 scenario x 2 profiles
    profiles = {json.dumps(r["scenario"]["faults"], sort_keys=True) for r in payload["records"]}
    assert len(profiles) == 2
    assert all(r["invariant_violations"] == 0 for r in payload["records"])
    header = csv_path.read_text().splitlines()[0]
    assert "fault_events" in header and "invariant_violations" in header
