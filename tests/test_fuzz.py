"""Tests for the falsification subsystem (``repro.fuzz``).

Four contracts:

1. **Sampler determinism and validity** -- trial ``i`` of campaign seed ``s``
   is one fixed, *runnable* scenario: same draw on every call, never an
   unsupported (algorithm, placement, scheduler) pairing, never a world the
   graph builder rejects.
2. **Oracles mirror the sweep policy** -- fault-free crashes and invariant
   violations are bugs; under injected faults, settlement-safety violations
   are findings-as-data while structural invariants stay inexcusable.
3. **Shrinker** -- deterministic greedy 1-minimal reduction: a planted
   synthetic bug funnels to the same minimal spec from different failing
   starting points, twice over (byte-determinism of the minimal spec).
4. **Campaign dedup** -- a repeated ``repro fuzz --store`` pass executes zero
   jobs; the planted-bug campaign finds, shrinks, and reports byte-identically
   on a second run.
"""

from __future__ import annotations

import pytest

from repro.fuzz import (
    CampaignConfig,
    ScriptedScheduler,
    check_record,
    explore_interleavings,
    run_campaign,
    sample_trial,
    shrink,
)
from repro.fuzz.campaign import planted_bug_oracle
from repro.fuzz.oracles import engine_differential
from repro.fuzz.shrink import candidates
from repro.runner.execute import run_scenario
from repro.runner.registry import get_algorithm
from repro.runner.scenario import ScenarioSpec, build_graph, build_placements
from repro.sim.faults import FaultSpec


# ---------------------------------------------------------------- sampler
def test_sampler_is_deterministic():
    first = sample_trial(42, 7)
    second = sample_trial(42, 7)
    assert first.algorithm == second.algorithm
    assert first.spec.key() == second.spec.key()


def test_sampler_distinguishes_trials_and_seeds():
    keys = {sample_trial(5, i).spec.key() for i in range(10)}
    assert len(keys) == 10, "distinct trials should draw distinct scenarios"
    assert sample_trial(5, 0).spec.key() != sample_trial(6, 0).spec.key()


@pytest.mark.parametrize("index", range(20))
def test_sampled_trials_are_runnable(index):
    """No unsupported pairings, no unbuildable worlds: fuzz budget is for bugs."""
    trial = sample_trial(1234, index)
    spec = get_algorithm(trial.algorithm)
    graph = build_graph(trial.spec)  # must not raise
    placements = build_placements(trial.spec, graph)
    assert trial.spec.k <= graph.num_nodes
    assert spec.config == "general" or len(placements) == 1
    assert spec.supports_scheduler(trial.spec.scheduler)
    assert trial.spec.check_invariants, "fuzz trials always run checked"


def test_sampler_respects_algorithm_family_and_agent_caps():
    trial = sample_trial(
        9, 3, algorithms=["rooted_sync"], families=["line"], max_nodes=6, max_agents=3
    )
    assert trial.algorithm == "rooted_sync"
    assert trial.spec.family == "line"
    assert build_graph(trial.spec).num_nodes <= 6  # exact for size-parameterized families
    assert trial.spec.k <= 3


def test_sampler_rejects_unknown_algorithm():
    with pytest.raises(KeyError):
        sample_trial(0, 0, algorithms=["nope"])


# ---------------------------------------------------------------- oracles
CLEAN = ScenarioSpec(family="line", params={"n": 6}, k=4, check_invariants=True)


def test_clean_record_passes():
    verdict = check_record(run_scenario("rooted_sync", CLEAN))
    assert verdict.ok and verdict.kind == "ok"


def test_unsupported_record_is_a_skip():
    split = ScenarioSpec(
        family="line", params={"n": 8}, k=4, placement="split", placement_parts=2
    )
    verdict = check_record(run_scenario("rooted_sync", split))
    assert verdict.ok and verdict.is_skip


def test_fault_free_error_fails():
    record = run_scenario("rooted_sync", CLEAN)
    record.status = "error"
    record.error = "boom"
    verdict = check_record(record)
    assert not verdict.ok and verdict.kind == "error"


def test_fault_free_non_dispersal_fails_guaranteed_algorithms():
    record = run_scenario("rooted_sync", CLEAN)
    record.dispersed = False
    verdict = check_record(record)
    assert not verdict.ok and verdict.kind == "not_dispersed"


def test_faulty_error_and_non_dispersal_are_data():
    faulty = CLEAN.with_faults({"crash": 1.0})
    record = run_scenario("rooted_sync", faulty)
    record.status = "error"
    record.error = "gave up"
    record.dispersed = False
    record.invariant_violations = 0
    assert check_record(record).ok


def test_faulty_settlement_violations_are_data():
    """The fuzzer's own first finding, kept as the policy's living example:
    churn rewires a helper-settler's path home in sudo_disc24's doubling
    probe, stranding it -- a fault-sensitivity finding, not a code bug."""
    spec = ScenarioSpec(
        family="caterpillar",
        params={"legs_per_node": 2, "spine": 4},
        k=6,
        port_assignment="random",
        faults={"churn": 0.1},
        check_invariants=True,
    )
    record = run_scenario("sudo_disc24", spec)
    assert record.invariant_violations, "scenario should exhibit the stranded settler"
    assert check_record(record).ok


def test_fault_free_invariant_violations_fail():
    record = run_scenario("rooted_sync", CLEAN)
    record.invariant_violations = 2
    verdict = check_record(record)
    assert not verdict.ok and verdict.kind == "invariant"


def test_engine_differential_agrees_on_clean_pair():
    spec = ScenarioSpec(family="ring", params={"n": 8}, k=5, adversary="round_robin")
    verdict = engine_differential("rooted_sync", spec)
    assert verdict.ok and not verdict.is_skip


def test_engine_differential_skips_out_of_scope():
    spec = ScenarioSpec(family="ring", params={"n": 8}, k=5, adversary="random")
    assert engine_differential("rooted_sync", spec).is_skip
    assert engine_differential("random_walk", CLEAN).is_skip


# ---------------------------------------------------------------- shrinker
def _planted_predicate(spec: ScenarioSpec) -> bool:
    """The synthetic bug of the shrinker tests: churn + n>=4 + k>=3 'fails'."""
    faults = FaultSpec.from_dict(spec.faults)
    try:
        n = build_graph(spec).num_nodes
    except ValueError:
        return False
    return faults.churn > 0 and n >= 4 and spec.k >= 3


#: The planted bug's 1-minimal form under the shrinker's rewrite system.
PLANTED_MINIMAL = ScenarioSpec(
    family="line",
    params={"n": 4},
    k=3,
    faults={"churn": 1.0},
    check_invariants=True,
)

PLANTED_STARTS = [
    ScenarioSpec(
        family="grid2d", params={"rows": 3, "cols": 4}, k=7,
        port_assignment="random", adversary="starvation", seed=99,
        faults={"churn": 0.3, "crash": 0.1, "horizon": 40},
        check_invariants=True,
    ),
    ScenarioSpec(
        family="erdos_renyi", params={"n": 10, "p": 0.4}, k=5,
        placement="split", placement_parts=2, seed=7,
        scheduler="bounded-delay", scheduler_params={"delay_factor": 3},
        faults={"churn": 0.05, "freeze": 1.0, "freeze_duration": 3},
        check_invariants=True,
    ),
    ScenarioSpec(
        family="complete", params={"n": 9}, k=8, port_assignment="async_safe",
        seed=123456, faults={"churn": 1.0, "horizon": 8},
        check_invariants=True,
    ),
]


@pytest.mark.parametrize("start", PLANTED_STARTS, ids=lambda s: s.family)
def test_shrinker_reaches_the_same_minimal_spec_from_any_start(start):
    assert _planted_predicate(start), "starting point must exhibit the planted bug"
    result = shrink(start, _planted_predicate)
    assert not result.exhausted
    assert result.spec.key() == PLANTED_MINIMAL.key()
    assert build_graph(result.spec).num_nodes <= 6, "minimal spec fits the tiny tier"


def test_shrinker_is_deterministic():
    first = shrink(PLANTED_STARTS[0], _planted_predicate)
    second = shrink(PLANTED_STARTS[0], _planted_predicate)
    assert first.spec.key() == second.spec.key()
    assert (first.steps, first.evaluations) == (second.steps, second.evaluations)


def test_shrunk_result_is_one_minimal():
    result = shrink(PLANTED_STARTS[1], _planted_predicate)
    for neighbour in candidates(result.spec):
        assert not _planted_predicate(neighbour), (
            f"not 1-minimal: {neighbour.key()} still fails"
        )


def test_shrinker_budget_bounds_evaluations():
    result = shrink(PLANTED_STARTS[0], _planted_predicate, budget=3)
    assert result.exhausted
    assert result.evaluations <= 3


def test_shrinker_treats_predicate_crash_as_not_failing():
    def fragile(spec: ScenarioSpec) -> bool:
        if spec.k < PLANTED_STARTS[0].k:
            raise RuntimeError("different crash")
        return _planted_predicate(spec)

    result = shrink(PLANTED_STARTS[0], fragile)
    assert result.spec.k == PLANTED_STARTS[0].k


# ---------------------------------------------------------------- explorer
def test_scripted_scheduler_plays_prefix_then_round_robin():
    scheduler = ScriptedScheduler([2, 2, 0])
    scheduler.bind([10, 20, 30])
    assert [scheduler.next_agent() for _ in range(6)] == [30, 30, 10, 10, 20, 30]


def test_explorer_enumerates_all_interleavings_on_tiny_instances():
    spec = ScenarioSpec(family="line", params={"n": 4}, k=3, check_invariants=True)
    report = explore_interleavings("rooted_async", spec, depth=3, budget=64)
    assert report is not None
    assert report.exhaustive and report.schedules == 3**3
    assert report.ok, f"findings: {report.findings[:2]}"


def test_explorer_skips_out_of_scope_instances():
    sync = ScenarioSpec(family="line", params={"n": 4}, k=3)
    assert explore_interleavings("rooted_sync", sync) is None
    big = ScenarioSpec(family="line", params={"n": 20}, k=10)
    assert explore_interleavings("rooted_async", big) is None
    faulty = ScenarioSpec(family="line", params={"n": 4}, k=3, faults={"crash": 1.0})
    assert explore_interleavings("rooted_async", faulty) is None


# ---------------------------------------------------------------- campaign
def test_campaign_second_pass_executes_zero_jobs(tmp_path):
    config = CampaignConfig(
        trials=6,
        seed=21,
        store_path=str(tmp_path / "fuzz.sqlite"),
        differential=False,
        explore=False,
    )
    cold = run_campaign(config)
    warm = run_campaign(config)
    assert cold.trials == warm.trials == 6
    assert cold.executed > 0
    assert warm.executed == 0, "repeat campaign must be fully cache-served"
    assert warm.cache_hits == cold.executed + cold.cache_hits


def test_planted_bug_campaign_finds_shrinks_and_repeats_byte_identically(tmp_path):
    config = CampaignConfig(
        trials=40,
        seed=7,
        store_path=str(tmp_path / "fuzz.sqlite"),
        corpus_dir=str(tmp_path / "corpus"),
        differential=False,
        explore=False,
        planted_bug=True,
    )
    first = run_campaign(config)
    assert first.findings, "the planted bug must be found"
    minimal_keys = {
        f.minimized.key() for f in first.findings if f.minimized is not None
    }
    assert PLANTED_MINIMAL.key() in minimal_keys, (
        "at least one finding must shrink to the known 1-minimal spec"
    )
    second = run_campaign(config)
    assert [f.to_dict() for f in first.findings] == [
        f.to_dict() for f in second.findings
    ], "campaigns are byte-deterministic"
    assert second.executed == 0, "second planted-bug pass must be fully cached"
    fixture_paths = {f.fixture_path for f in first.findings}
    assert all(path is not None for path in fixture_paths)


def test_planted_oracle_passes_real_clean_records_through():
    record = run_scenario("rooted_sync", CLEAN)
    assert planted_bug_oracle(record).ok
    churny = run_scenario(
        "rooted_sync",
        ScenarioSpec(
            family="line", params={"n": 6}, k=4,
            faults={"churn": 1.0}, check_invariants=True,
        ),
    )
    verdict = planted_bug_oracle(churny)
    assert not verdict.ok and "planted" in verdict.detail
