"""Brute-force reference implementation of the fault injector's timeline.

``RescanFaultInjector`` reproduces the *v1* ``FaultInjector.begin_tick``
semantics exactly as shipped before the event-cursor rewrite: every tick it
rescans every crash and freeze entry to announce due events, and the blocked
set is recomputed from scratch per query.  It is deliberately O(agents) per
tick -- the property suite uses it as the oracle the cursor-based injector
must match observation-for-observation, and the benchmark uses it as the
baseline the cursors must beat on long-horizon ASYNC tick counts.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Tuple


class RescanFaultInjector:
    """Per-tick rescan oracle over an explicit crash/freeze schedule."""

    def __init__(
        self,
        crash_at: Mapping[int, int],
        freeze_window: Mapping[int, Tuple[int, int]],
    ) -> None:
        self.crash_at: Dict[int, int] = dict(crash_at)
        self.freeze_window: Dict[int, Tuple[int, int]] = dict(freeze_window)
        self._crash_announced: set[int] = set()
        self._freeze_announced: set[int] = set()
        self.counts: Dict[str, int] = {"crash": 0, "freeze": 0}
        self.events: List[Tuple[int, str, int]] = []  # (tick, kind, agent_id)

    def begin_tick(self, time: int) -> None:
        """The v1 announcement loop: full rescan of both schedule dicts."""
        for agent_id, when in self.crash_at.items():
            if when <= time and agent_id not in self._crash_announced:
                self._crash_announced.add(agent_id)
                self.counts["crash"] += 1
                self.events.append((time, "crash", agent_id))
        for agent_id, (start, _end) in self.freeze_window.items():
            if start <= time and agent_id not in self._freeze_announced:
                self._freeze_announced.add(agent_id)
                self.counts["freeze"] += 1
                self.events.append((time, "freeze", agent_id))

    def is_blocked(self, agent_id: int, time: int) -> bool:
        when = self.crash_at.get(agent_id)
        if when is not None and when <= time:
            return True
        window = self.freeze_window.get(agent_id)
        if window is not None and window[0] <= time < window[1]:
            return True
        return False

    def blocked_at(self, time: int) -> FrozenSet[int]:
        """Recompute the blocked set from scratch (the O(agents) scan)."""
        blocked = {a for a, when in self.crash_at.items() if when <= time}
        blocked.update(
            a
            for a, (start, end) in self.freeze_window.items()
            if start <= time < end
        )
        return frozenset(blocked)
