"""Tests for the per-node navigation ledger and its memory charging."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent
from repro.agents.memory import MemoryModel
from repro.core.navigation import NavLedger


def make_agent(aid=1):
    return Agent(aid, 0, MemoryModel(k=16, max_degree=8))


class TestNavLedger:
    def test_create_and_get(self):
        ledger = NavLedger()
        owner = make_agent()
        rec = ledger.create(3, owner, parent_port=2, occupied=True)
        assert ledger.has(3)
        assert ledger.get(3) is rec
        assert ledger.owner(3) is owner
        assert rec.parent_port == 2

    def test_duplicate_create_rejected(self):
        ledger = NavLedger()
        owner = make_agent()
        ledger.create(0, owner)
        with pytest.raises(ValueError):
            ledger.create(0, owner)

    def test_charge_appears_in_owner_memory(self):
        ledger = NavLedger()
        owner = make_agent()
        before = owner.memory.current_bits
        ledger.create(1, owner, parent_port=4, occupied=True, forward_count=2)
        assert owner.memory.current_bits > before

    def test_update_unknown_field_rejected(self):
        ledger = NavLedger()
        owner = make_agent()
        ledger.create(1, owner)
        with pytest.raises(AttributeError):
            ledger.update(1, bogus=1)

    def test_child_group_chunk_limit(self):
        ledger = NavLedger()
        owner = make_agent()
        ledger.create(1, owner)
        for port in (1, 2, 3):
            ledger.append_child_port(1, port)
        with pytest.raises(ValueError):
            ledger.append_child_port(1, 4)

    def test_sibling_group_chunk_limit(self):
        ledger = NavLedger()
        owner = make_agent()
        ledger.create(1, owner)
        ledger.append_sibling_port(1, 5)
        ledger.append_sibling_port(1, 6)
        with pytest.raises(ValueError):
            ledger.append_sibling_port(1, 7)

    def test_transfer_moves_charge(self):
        ledger = NavLedger()
        old, new = make_agent(1), make_agent(2)
        base_old = old.memory.current_bits
        base_new = new.memory.current_bits
        ledger.create(2, old, parent_port=1, occupied=True)
        charged = old.memory.current_bits - base_old
        assert charged > 0
        ledger.transfer(2, new)
        assert old.memory.current_bits == base_old
        assert new.memory.current_bits == base_new + charged
        assert ledger.owner(2) is new

    def test_owner_with_constant_records_stays_logarithmic(self):
        """An agent owning O(1) records uses O(log(k+Δ)) bits (Lemma 9 regime)."""
        model = MemoryModel(k=4096, max_degree=2048)
        owner = Agent(1, 0, model)
        ledger = NavLedger()
        for node in range(4):  # own node + 3 covered nodes, the worst case
            ledger.create(
                node,
                owner,
                parent_port=7,
                occupied=(node == 0),
                forward_count=3,
                child_group=[1, 2, 3],
                next_anchor=4,
                sibling_group=[5, 6],
            )
        assert owner.memory.peak_in_log_units() < 60
