"""Tests for the fault-model subsystem (:mod:`repro.sim.faults`)."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent
from repro.agents.memory import MemoryModel
from repro.graph import generators
from repro.runner import ScenarioSpec, derive_seed, run_scenario
from repro.runner.scenario import derive_fault_seed
from repro.sim.async_engine import AsyncEngine, Move
from repro.sim.adversary import RoundRobinAdversary
from repro.sim.faults import FaultInjector, FaultSpec, parse_faults
from repro.sim.sync_engine import SyncEngine


def make_agents(k: int, start: int = 0, max_degree: int = 4):
    model = MemoryModel(k=k, max_degree=max_degree)
    return [Agent(i, start, model) for i in range(1, k + 1)]


# ------------------------------------------------------------------ FaultSpec
def test_fault_spec_string_round_trip():
    spec = FaultSpec.from_string("crash:0.1,freeze:0.25:60,churn:0.02,horizon:300")
    assert spec.crash == 0.1
    assert spec.freeze == 0.25 and spec.freeze_duration == 60
    assert spec.churn == 0.02 and spec.horizon == 300
    assert FaultSpec.from_dict(spec.to_dict()) == spec


def test_fault_spec_none_is_inactive():
    for text in ("", "none", "off"):
        spec = FaultSpec.from_string(text)
        assert not spec.is_active
        assert spec.to_dict() == {}
    assert parse_faults("none") == {}


@pytest.mark.parametrize(
    "text",
    [
        "crash",            # missing value
        "crash:abc",        # not a number
        "crash:1.5",        # out of range
        "freeze:0.2:0",     # non-positive duration
        "bogus:1",          # unknown fault kind
        "churn:0.1:9",      # too many fields
        "horizon:-5",       # negative horizon
    ],
)
def test_fault_spec_rejects_malformed_strings(text):
    with pytest.raises(ValueError):
        FaultSpec.from_string(text)


def test_fault_spec_rejects_unknown_dict_keys():
    with pytest.raises(ValueError, match="unknown fault fields"):
        FaultSpec.from_dict({"crsh": 0.1})


@pytest.mark.parametrize(
    "text",
    [
        "crash:0.1,crash:0.9",          # same clause twice: last-wins is a trap
        "freeze:0.2:40,freeze:0.2:40",  # even an identical repeat is a typo
        "horizon:8,churn:0.1,horizon:9",
    ],
)
def test_fault_spec_rejects_duplicate_clauses(text):
    with pytest.raises(ValueError, match="duplicate fault clause"):
        FaultSpec.from_string(text)


def test_boundary_probabilities_round_trip_exactly():
    """p=0 and p=1 are exact floats: parse -> dict -> parse must be identity."""
    spec = FaultSpec.from_string("crash:0,freeze:1,churn:1.0")
    assert spec.crash == 0.0 and spec.freeze == 1.0 and spec.churn == 1.0
    assert not spec.to_dict().get("crash")  # 0.0 is the default: omitted
    assert spec.to_dict() == {"freeze": 1.0, "churn": 1.0}
    assert FaultSpec.from_dict(spec.to_dict()) == spec
    assert parse_faults("churn:1") == {"churn": 1.0}
    assert parse_faults("crash:0") == {}  # exactly the fault-free profile
    assert not FaultSpec.from_string("crash:0,churn:0").is_active


# --------------------------------------------------------------- FaultInjector
def test_injector_schedule_is_deterministic():
    spec = FaultSpec(crash=0.5, freeze=0.5, churn=0.05, horizon=100)
    a = FaultInjector(spec, [1, 2, 3, 4, 5], seed=42)
    b = FaultInjector(spec, [5, 4, 3, 2, 1], seed=42)  # order must not matter
    assert a.crash_at == b.crash_at
    assert a.freeze_window == b.freeze_window
    assert a.churn_times == b.churn_times
    c = FaultInjector(spec, [1, 2, 3, 4, 5], seed=43)
    assert (a.crash_at, a.freeze_window) != (c.crash_at, c.freeze_window)


def test_crashed_agent_never_moves_in_sync_engine():
    graph = generators.line(6)
    agents = make_agents(2)
    injector = FaultInjector(FaultSpec(crash=1.0, horizon=1), [1, 2], seed=0)
    engine = SyncEngine(graph, agents, fault_injector=injector)
    for _ in range(4):
        engine.step({1: 1, 2: 1})
    assert engine.positions() == {1: 0, 2: 0}
    assert injector.counts["blocked"] == 8
    assert injector.counts["crash"] == 2
    extras = engine.finalize_metrics().extra
    assert extras["fault_events"] == 2.0
    assert extras["fault_blocked"] == 8.0


def test_frozen_agent_resumes_after_window():
    graph = generators.line(8)
    agents = make_agents(1)
    injector = FaultInjector(FaultSpec(freeze=1.0, freeze_duration=3, horizon=1), [1], seed=0)
    engine = SyncEngine(graph, agents, fault_injector=injector)
    assert injector.freeze_window[1] == (0, 3)
    for _ in range(3):  # rounds 0..2 fall inside the window
        engine.step({1: 1})
    assert engine.positions()[1] == 0
    engine.step({1: 1})  # round 3: thawed
    assert engine.positions()[1] == 1
    assert injector.counts["blocked"] == 3


def test_crashed_agent_stalls_epochs_in_async_engine():
    graph = generators.line(6)
    agents = make_agents(3)
    injector = FaultInjector(FaultSpec(crash=1.0, horizon=1), [1, 2, 3], seed=7)
    adversary = RoundRobinAdversary()
    engine = AsyncEngine(graph, agents, adversary=adversary, fault_injector=injector)
    engine.assign(1, iter([Move(1), Move(1)]))
    for _ in range(9):  # three full round-robin passes
        engine._activate(adversary.next_agent())
    # Nobody completes a cycle, so no epoch ever closes and nobody moves.
    assert engine.metrics.epochs == 0
    assert engine.positions() == {1: 0, 2: 0, 3: 0}
    assert injector.counts["blocked"] == 9


def test_churn_event_rewires_but_preserves_contract():
    graph = generators.ring(10)
    injector = FaultInjector(FaultSpec(churn=1.0, horizon=5), [1], seed=3)
    assert injector.churn_times == [0, 1, 2, 3, 4]

    class World:
        pass

    world = World()
    world.graph = graph
    injector.begin_tick(2, world)  # applies the events due at t <= 2
    assert graph.churn_count == 3
    assert injector.counts["churn"] == 3
    graph.validate()
    assert graph.num_nodes == 10


def test_churn_skip_recorded_on_degenerate_world():
    """K2 offers no legal rewiring (its one edge is a bridge, no edge is
    missing): the scheduled event must be recorded as a skip, not dropped,
    so the fault-event count stays a function of the schedule alone."""
    graph = generators.line(2)
    injector = FaultInjector(FaultSpec(churn=1.0, horizon=3), [1], seed=0)
    assert injector.churn_times == [0, 1, 2]

    class World:
        pass

    world = World()
    world.graph = graph
    injector.begin_tick(2, world)
    assert injector.counts["churn"] == 0
    assert injector.counts["churn_skipped"] == 3
    assert [e.kind for e in injector.events] == ["churn_skipped"] * 3
    assert injector.total_events == 3
    extras = injector.metrics_extra()
    assert extras["fault_events"] == 3.0
    assert extras["fault_churn"] == 0.0
    assert extras["fault_churn_skipped"] == 3.0
    assert graph.churn_count == 0
    graph.validate()


def test_churn_skip_metric_absent_when_no_skip_happened():
    # Byte-stability of existing artifacts: the extra key only appears when a
    # skip actually occurred.
    injector = FaultInjector(FaultSpec(churn=1.0, horizon=2), [1], seed=3)

    class World:
        pass

    world = World()
    world.graph = generators.ring(10)
    injector.begin_tick(1, world)
    assert injector.counts["churn"] == 2
    assert "fault_churn_skipped" not in injector.metrics_extra()


def test_run_scenario_counts_skipped_churn_as_fault_events():
    """End to end: churn on K2 used to vanish from the record entirely."""
    spec = ScenarioSpec(
        family="line",
        params={"n": 2},
        k=2,
        faults={"churn": 1.0, "horizon": 8},
        check_invariants=True,
    )
    record = run_scenario("rooted_sync", spec)
    assert record.status == "ok"
    assert record.fault_events is not None and record.fault_events > 0


# ----------------------------------------------------------- runner threading
def test_fault_profile_does_not_change_world_seeds():
    plain = ScenarioSpec(family="erdos_renyi", params={"n": 16, "p": 0.3}, k=8)
    faulty = plain.with_faults({"crash": 0.5})
    for component in ("graph", "adversary", "algorithm"):
        assert derive_seed(plain, component) == derive_seed(faulty, component)
    # ... while distinct profiles get distinct fault schedules.
    assert derive_fault_seed(faulty) != derive_fault_seed(plain.with_faults({"crash": 0.4}))


def test_run_scenario_reports_fault_counts_and_same_world():
    plain = ScenarioSpec(family="erdos_renyi", params={"n": 14, "p": 0.3}, k=8)
    faulty = plain.with_faults({"freeze": 0.9, "freeze_duration": 10})
    r_plain = run_scenario("rooted_sync", plain)
    r_faulty = run_scenario("rooted_sync", faulty)
    assert r_plain.fault_events is None  # uninstrumented record stays unchanged
    assert r_faulty.fault_events is not None and r_faulty.fault_events > 0
    # Identical world: same graph size under both profiles.
    assert (r_plain.n, r_plain.m) == (r_faulty.n, r_faulty.m)


def test_scenario_spec_round_trips_faults():
    spec = ScenarioSpec(
        family="line",
        params={"n": 8},
        k=4,
        faults={"crash": 0.2, "horizon": 100},
        check_invariants=True,
    )
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec and again.faults == {"crash": 0.2, "horizon": 100}
    with pytest.raises(ValueError):
        ScenarioSpec(family="line", params={"n": 8}, k=4, faults={"nope": 1})
