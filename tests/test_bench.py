"""Unit tests for ``repro bench`` machinery (:mod:`repro.runner.bench`).

Real measurements (the 20x acceptance lock) live in
``benchmarks/test_backend_throughput.py``; here the budgets are shrunk to
milliseconds so the report schema, the tier structure, the render, and the
bench-guard gate logic are pinned without burning wall-clock.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.runner import bench
from repro.sim.backends import backend_available


@pytest.fixture(autouse=True)
def tiny_budgets(monkeypatch):
    """Millisecond budgets and toy worlds: schema tests, not measurements."""
    monkeypatch.setattr(bench, "FULL_BUDGET_S", 0.02)
    monkeypatch.setattr(bench, "QUICK_BUDGET_S", 0.02)
    monkeypatch.setattr(bench, "FULL_NODES", 64)
    monkeypatch.setattr(bench, "QUICK_NODES", 36)


def test_bench_scenario_builds_a_near_square_grid():
    spec = bench.bench_scenario(100, 50)
    assert spec.family == "grid2d"
    rows, cols = spec.params["rows"], spec.params["cols"]
    assert rows * cols >= 100
    assert abs(rows - cols) <= 1
    assert spec.k == 50


def test_quick_payload_has_only_the_quick_tier():
    payload = bench.run_bench(["reference"], quick=True)
    assert payload["format"] == bench.BENCH_FORMAT
    assert payload["quick"] is True
    assert list(payload["tiers"]) == ["quick"]
    tier = payload["tiers"]["quick"]
    assert {r["workload"] for r in tier["results"]} == set(bench.WORKLOADS)
    for entry in tier["results"]:
        assert entry["backend"] == "reference"
        assert entry["steps"] >= 0 and entry["steps_per_second"] >= 0


def test_default_payload_carries_both_tiers_for_the_guard():
    payload = bench.run_bench(["reference"])
    assert payload["quick"] is False
    assert sorted(payload["tiers"]) == ["full", "quick"]
    assert payload["tiers"]["full"]["nodes"] >= payload["tiers"]["quick"]["nodes"]


def test_unknown_workload_is_rejected():
    with pytest.raises(ValueError, match="unknown workload"):
        bench.run_bench(["reference"], workloads=["warp"], quick=True)


def test_scale_tiers_replace_quick_and_ride_along_otherwise():
    only_scale = bench.run_bench(["reference"], quick=True, scale=[30, 48])
    assert sorted(only_scale["tiers"]) == ["scale-30", "scale-48"]
    assert only_scale["tiers"]["scale-48"]["nodes"] >= 48
    with_scale = bench.run_bench(["reference"], scale=[30])
    assert sorted(with_scale["tiers"]) == ["full", "quick", "scale-30"]
    with pytest.raises(ValueError, match="not both"):
        bench.run_bench(["reference"], nodes=64, scale=[30])


def test_short_horizon_marks_reference_rows_at_large_sizes(monkeypatch):
    """Above the cutoff, reference legs run unwarmed one-round chunks and say
    so in the row; non-reference legs keep the amortizing ladder."""
    below = bench.run_bench(["reference"], workloads=["random_walk"], quick=True)
    (quick_row,) = below["tiers"]["quick"]["results"]
    assert "short_horizon" not in quick_row  # default cutoff is far above 36
    monkeypatch.setattr(bench, "SHORT_HORIZON_NODES", 32)
    payload = bench.run_bench(
        ["reference"], workloads=["random_walk"], quick=True, scale=[36]
    )
    (row,) = payload["tiers"]["scale-36"]["results"]
    assert row["short_horizon"] is True
    assert row["rounds"] <= bench.SHORT_HORIZON_CALLS  # chunk=1, capped calls


def test_scatter_and_probe_workloads_measure_real_steps():
    payload = bench.run_bench(
        ["reference"], workloads=["scatter", "probe"], quick=True
    )
    rows = {r["workload"]: r for r in payload["tiers"]["quick"]["results"]}
    # scatter: every round moves the whole population one hop
    assert rows["scatter"]["steps"] == rows["scatter"]["rounds"] * 36
    assert rows["scatter"]["rounds"] > 0
    # probe: query sweeps advance no rounds; steps count answered queries
    assert rows["probe"]["rounds"] == 0
    assert rows["probe"]["steps"] > 0 and rows["probe"]["steps"] % 36 == 0


@pytest.mark.skipif(not backend_available("vectorized"), reason="numpy not installed")
def test_speedups_are_ratios_over_the_reference_leg():
    payload = bench.run_bench(["reference", "vectorized"], quick=True)
    tier = payload["tiers"]["quick"]
    rates = {
        (r["workload"], r["backend"]): r["steps_per_second"]
        for r in tier["results"]
    }
    for workload in bench.WORKLOADS:
        ratio = tier["speedups"][workload]["vectorized"]
        expect = rates[(workload, "vectorized")] / rates[(workload, "reference")]
        assert ratio == pytest.approx(expect, rel=1e-3)
        assert "reference" not in tier["speedups"][workload]


def test_render_shows_every_tier_block():
    payload = bench.run_bench(["reference"])
    text = bench.render(payload)
    assert "kernel bench [full]" in text
    assert "kernel bench [quick]" in text
    assert "random_walk" in text and "dispersion" in text


def test_write_and_load_report_round_trip(tmp_path):
    payload = bench.run_bench(["reference"], quick=True)
    path = bench.write_report(payload, str(tmp_path / "BENCH_kernel.json"))
    assert bench.load_report(path) == payload
    # canonical bytes: stable key order, trailing newline
    text = (tmp_path / "BENCH_kernel.json").read_text()
    assert text.endswith("\n")
    assert text == json.dumps(payload, sort_keys=True, indent=2) + "\n"


def test_load_report_rejects_foreign_json(tmp_path):
    path = tmp_path / "foreign.json"
    path.write_text('{"format": "something-else"}')
    with pytest.raises(ValueError, match="not a repro-bench-v1"):
        bench.load_report(str(path))


# ----------------------------------------------------------------- bench-guard


def fake_payload(quick_ratio: float, tiers=("full", "quick")) -> dict:
    tier = {
        "nodes": 36,
        "agents": 36,
        "results": [],
        "speedups": {"random_walk": {"vectorized": quick_ratio}},
    }
    return {
        "format": bench.BENCH_FORMAT,
        "quick": False,
        "seed": 0,
        "tiers": {name: copy.deepcopy(tier) for name in tiers},
    }


def write_baseline(tmp_path, payload):
    return bench.write_report(payload, str(tmp_path / "baseline.json"))


def test_check_passes_when_ratios_hold(tmp_path):
    baseline = write_baseline(tmp_path, fake_payload(40.0))
    assert bench.check_report(fake_payload(40.0), baseline) == []
    # faster than baseline never fails
    assert bench.check_report(fake_payload(400.0), baseline) == []
    # within the band
    assert bench.check_report(fake_payload(31.0), baseline, tolerance=0.25) == []


def test_check_flags_a_regression_below_the_band(tmp_path):
    baseline = write_baseline(tmp_path, fake_payload(40.0))
    problems = bench.check_report(fake_payload(29.0), baseline, tolerance=0.25)
    assert len(problems) == 2  # both tiers regressed
    assert "fell below 30.00x" in problems[0]


def test_check_compares_only_common_tiers(tmp_path):
    """A --quick fresh report gates against the baseline's quick tier only."""
    baseline = write_baseline(tmp_path, fake_payload(40.0))
    fresh = fake_payload(29.0, tiers=("quick",))
    problems = bench.check_report(fresh, baseline, tolerance=0.25)
    assert len(problems) == 1
    assert problems[0].startswith("[quick]")
    # and a healthy quick tier passes even though no full tier is present
    assert bench.check_report(fake_payload(40.0, tiers=("quick",)), baseline) == []


def test_check_flags_missing_pairs_and_disjoint_tiers(tmp_path):
    baseline = write_baseline(tmp_path, fake_payload(40.0))
    empty = fake_payload(40.0)
    for tier in empty["tiers"].values():
        tier["speedups"] = {}
    assert any(
        "no fresh measurement" in p for p in bench.check_report(empty, baseline)
    )
    disjoint = fake_payload(40.0, tiers=())
    assert any(
        "no common tier" in p for p in bench.check_report(disjoint, baseline)
    )


def test_check_validates_tolerance(tmp_path):
    baseline = write_baseline(tmp_path, fake_payload(40.0))
    with pytest.raises(ValueError, match="tolerance"):
        bench.check_report(fake_payload(40.0), baseline, tolerance=1.5)
