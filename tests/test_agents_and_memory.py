"""Tests for the agent model and the memory-bit accounting."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.agents.agent import Agent, AgentRole
from repro.agents.memory import AgentMemory, FieldKind, MemoryModel


class TestMemoryModel:
    def test_bit_costs_scale_with_parameters(self):
        small = MemoryModel(k=8, max_degree=4)
        large = MemoryModel(k=1024, max_degree=512)
        assert small.bits(FieldKind.ID) < large.bits(FieldKind.ID)
        assert small.bits(FieldKind.PORT) < large.bits(FieldKind.PORT)
        assert small.bits(FieldKind.FLAG) == large.bits(FieldKind.FLAG) == 1

    def test_id_bits_logarithmic(self):
        model = MemoryModel(k=1000, max_degree=10)
        assert model.bits(FieldKind.ID) == math.ceil(math.log2(1001))

    def test_port_bits_cover_bot(self):
        model = MemoryModel(k=10, max_degree=7)
        assert model.bits(FieldKind.PORT) == math.ceil(math.log2(9))

    def test_log_unit(self):
        model = MemoryModel(k=16, max_degree=16)
        assert model.log_k_plus_delta_bits() == pytest.approx(5.0)

    def test_max_id_override(self):
        model = MemoryModel(k=10, max_degree=4, max_id=1000)
        assert model.bits(FieldKind.ID) >= 10


class TestAgentMemory:
    def make(self):
        return AgentMemory(MemoryModel(k=32, max_degree=8))

    def test_write_read_roundtrip(self):
        mem = self.make()
        mem.write("parent", 3, FieldKind.PORT)
        assert mem.read("parent") == 3
        assert "parent" in mem

    def test_undeclared_write_rejected(self):
        mem = self.make()
        with pytest.raises(KeyError):
            mem.write("mystery", 1)

    def test_redeclare_different_kind_rejected(self):
        mem = self.make()
        mem.declare("x", FieldKind.PORT)
        with pytest.raises(ValueError):
            mem.declare("x", FieldKind.ID)

    def test_clear_releases_bits(self):
        mem = self.make()
        mem.write("cnt", 5, FieldKind.COUNTER_K)
        used = mem.current_bits
        mem.clear("cnt")
        assert mem.current_bits == used - mem.model.bits(FieldKind.COUNTER_K)

    def test_peak_is_monotone(self):
        mem = self.make()
        mem.write("a", 1, FieldKind.PORT)
        mem.write("b", 2, FieldKind.PORT)
        peak = mem.peak_bits
        mem.clear("a")
        mem.clear("b")
        assert mem.peak_bits == peak
        assert mem.current_bits == 0

    def test_rewrite_does_not_double_charge(self):
        mem = self.make()
        mem.write("a", 1, FieldKind.PORT)
        before = mem.current_bits
        mem.write("a", 2)
        assert mem.current_bits == before

    def test_peak_in_log_units(self):
        mem = self.make()
        mem.write("id", 7, FieldKind.ID)
        assert mem.peak_in_log_units() > 0

    def test_snapshot(self):
        mem = self.make()
        mem.write("a", 1, FieldKind.PORT)
        snap = mem.snapshot()
        assert snap == {"a": 1}

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(list(FieldKind)), st.integers(1, 100)), max_size=20))
    def test_property_current_bits_never_negative(self, ops):
        mem = AgentMemory(MemoryModel(k=64, max_degree=16))
        for i, (kind, value) in enumerate(ops):
            name = f"f{i % 5}"
            try:
                mem.write(name, value, kind)
            except ValueError:
                continue  # re-declared with a different kind
            assert mem.current_bits >= 0
            assert mem.peak_bits >= mem.current_bits


class TestAgent:
    def test_initial_state_charges_id(self):
        agent = Agent(5, 0, MemoryModel(k=8, max_degree=3))
        assert agent.memory.current_bits >= agent.memory.model.bits(FieldKind.ID)
        assert agent.pin is None
        assert agent.role is AgentRole.EXPLORER

    def test_invalid_id_rejected(self):
        with pytest.raises(ValueError):
            Agent(0, 0, MemoryModel(k=4, max_degree=2))

    def test_arrive_updates_pin(self):
        agent = Agent(1, 0, MemoryModel(k=4, max_degree=4))
        agent.arrive(3, incoming_port=2)
        assert agent.position == 3
        assert agent.pin == 2

    def test_settle_and_unsettle(self):
        agent = Agent(2, 1, MemoryModel(k=4, max_degree=4))
        agent.settle(1, parent_port=3, treelabel=2)
        assert agent.settled and agent.home == 1
        assert agent.parent_port == 3
        assert agent.treelabel == 2
        agent.unsettle()
        assert not agent.settled and agent.home is None
        assert agent.parent_port is None

    def test_settle_root_has_no_parent(self):
        agent = Agent(3, 0, MemoryModel(k=4, max_degree=4))
        agent.settle(0, None)
        assert agent.parent_port is None
