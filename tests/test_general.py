"""Tests for general (multi-root) initial configurations and the KS subsumption rule."""

from __future__ import annotations

import pytest

from repro.core.general_async import general_async_dispersion
from repro.core.general_sync import GeneralSyncDispersion, general_sync_dispersion
from repro.core.subsumption import (
    TreeInfo,
    collapse_cost,
    decide_subsumption,
    total_subsumption_cost,
)
from repro.graph import generators
from repro.sim.adversary import RandomAdversary, RoundRobinAdversary
from tests.conftest import assert_valid_result


SYNC_WORKLOADS = [
    ("line-two-ends", lambda: generators.line(50), {0: 20, 49: 20}),
    ("tree-three-roots", lambda: generators.random_tree(60, seed=3), {0: 18, 30: 12, 45: 10}),
    ("er-mixed-sizes", lambda: generators.erdos_renyi(70, 0.08, seed=5), {0: 25, 35: 14, 60: 3}),
    ("grid-four-corners", lambda: generators.grid2d(7, 7), {0: 10, 6: 10, 42: 10, 48: 10}),
    ("star-hub-and-leaf", lambda: generators.star(40), {0: 20, 5: 10}),
    ("ring-opposite", lambda: generators.ring(36), {0: 14, 18: 14}),
    ("tiny-groups-only", lambda: generators.random_tree(30, seed=8), {0: 3, 10: 2, 20: 4}),
    ("adjacent-roots", lambda: generators.line(40), {10: 15, 11: 15}),
]


@pytest.mark.parametrize("name,factory,placements", SYNC_WORKLOADS)
def test_general_sync_disperses(name, factory, placements):
    graph = factory()
    driver = GeneralSyncDispersion(graph, placements)
    result = driver.run()
    assert_valid_result(graph, result, driver.agents.values())


def test_general_sync_rounds_linear_in_k_on_lines():
    times = {}
    for k in (20, 40):
        graph = generators.line(k + 4)
        result = general_sync_dispersion(graph, {0: k // 2, k + 3: k // 2})
        assert result.dispersed
        times[k] = result.metrics.rounds
    assert times[40] / times[20] < 4.0


def test_general_sync_single_root_equivalent_to_rooted():
    graph = generators.random_tree(30, seed=2)
    result = general_sync_dispersion(graph, {0: 30})
    assert result.dispersed
    assert sorted(result.positions.values()) == list(range(30))


def test_general_sync_rejects_overfull():
    with pytest.raises(ValueError):
        general_sync_dispersion(generators.line(10), {0: 6, 9: 5})


def test_general_sync_rejects_bad_node():
    with pytest.raises(ValueError):
        general_sync_dispersion(generators.line(10), {42: 3})


def test_general_sync_crowded_graph_uses_scatter_when_blocked():
    """k = n with many roots: some group will be fenced in and must scatter."""
    graph = generators.grid2d(6, 6)
    placements = {0: 9, 5: 9, 30: 9, 35: 9}
    driver = GeneralSyncDispersion(graph, placements)
    result = driver.run()
    assert result.dispersed
    assert sorted(result.positions.values()) == list(range(36))


ASYNC_WORKLOADS = [
    ("line-two-ends", lambda: generators.line(36), {0: 14, 35: 14}),
    ("tree-two-roots", lambda: generators.random_tree(40, seed=4), {0: 14, 20: 10}),
    ("er-three-roots", lambda: generators.erdos_renyi(50, 0.1, seed=6), {0: 12, 25: 10, 40: 8}),
    ("tiny-groups", lambda: generators.ring(20), {0: 3, 10: 4}),
]


@pytest.mark.parametrize("name,factory,placements", ASYNC_WORKLOADS)
def test_general_async_disperses(name, factory, placements):
    graph = factory()
    result = general_async_dispersion(graph, placements, adversary=RoundRobinAdversary())
    assert result.dispersed
    positions = list(result.positions.values())
    assert len(positions) == len(set(positions))


def test_general_async_random_adversary():
    graph = generators.erdos_renyi(40, 0.12, seed=7)
    result = general_async_dispersion(graph, {0: 12, 20: 12}, adversary=RandomAdversary(2))
    assert result.dispersed


def test_general_async_single_root():
    graph = generators.random_tree(24, seed=9)
    result = general_async_dispersion(graph, {0: 24})
    assert result.dispersed


# ----------------------------------------------------------- subsumption rule
class TestSubsumptionRule:
    def test_initiator_wins_when_strictly_larger(self):
        a, b = TreeInfo(1, 0, settled_count=10), TreeInfo(2, 5, settled_count=4)
        outcome = decide_subsumption(a, b)
        assert outcome.winner == 1 and outcome.loser == 2
        assert outcome.collapse_walk_cost == collapse_cost(4)

    def test_met_tree_wins_ties(self):
        a, b = TreeInfo(1, 0, settled_count=4), TreeInfo(2, 5, settled_count=4)
        outcome = decide_subsumption(a, b)
        assert outcome.winner == 2 and outcome.loser == 1

    def test_met_tree_wins_when_larger(self):
        a, b = TreeInfo(1, 0, settled_count=2), TreeInfo(2, 5, settled_count=9)
        outcome = decide_subsumption(a, b)
        assert outcome.winner == 2
        assert outcome.collapse_walk_cost == collapse_cost(2)

    def test_collapse_cost_formula(self):
        assert collapse_cost(7) == 28

    def test_total_cost_linear_when_sizes_disjoint(self):
        """Footnote 6: the sum of collapse costs over disjoint trees is O(k)."""
        sizes = [1, 2, 5, 10, 20]
        assert total_subsumption_cost(sizes) == 4 * sum(sizes)
