"""Round-trip and validation tests for the artifact layer.

Covers the two artifact formats end to end: JSON artifacts must round-trip
``RunRecord`` lists *exactly* (including the fault/invariant fields and the
empty sweep), CSV views must carry every record and scenario field in
parseable form, and ``load_json`` must reject foreign or truncated files with
a clear :class:`ArtifactError` rather than a raw ``KeyError``.
"""

from __future__ import annotations

import csv
import json

import pytest

from repro.runner.artifacts import (
    ArtifactError,
    canonical_record_json,
    load_json,
    load_payload,
    write_csv,
    write_json,
)
from repro.runner.execute import RunRecord
from repro.runner.scenario import ScenarioSpec
from repro.runner.sweep import SweepSpec, run_sweep


def faulty_sweep() -> SweepSpec:
    return SweepSpec(
        name="roundtrip",
        algorithms=["rooted_sync", "naive_dfs"],
        scenarios=[ScenarioSpec(family="line", params={"n": 10}, k=6)],
    ).with_profiles([{}, {"freeze": 0.8, "freeze_duration": 20}], check_invariants=True)


@pytest.fixture(scope="module")
def records():
    return run_sweep(faulty_sweep())


# ---------------------------------------------------------------- JSON round trip
def test_json_round_trip_preserves_every_field(tmp_path, records):
    path = write_json(records, str(tmp_path / "a.json"), sweep=faulty_sweep())
    loaded = load_json(path)
    assert [r.to_dict() for r in loaded] == [r.to_dict() for r in records]
    # The instrumented fields specifically survive (not all None).
    assert any(r.fault_events is not None for r in loaded)
    assert all(r.invariant_violations == 0 for r in loaded)


def test_json_round_trip_is_byte_stable(tmp_path, records):
    path1 = write_json(records, str(tmp_path / "a.json"))
    path2 = write_json(load_json(path1), str(tmp_path / "b.json"))
    with open(path1, "rb") as a, open(path2, "rb") as b:
        assert a.read() == b.read()


def test_empty_sweep_round_trips(tmp_path):
    path = write_json([], str(tmp_path / "empty.json"))
    assert load_json(path) == []
    payload = load_payload(path)
    assert payload["records"] == [] and payload["sweep"] is None


def test_canonical_record_json_is_loadable_and_stable(records):
    for record in records:
        text = canonical_record_json(record)
        assert RunRecord.from_dict(json.loads(text)).to_dict() == record.to_dict()
        assert canonical_record_json(record) == text


# ----------------------------------------------------------------- CSV round trip
def test_csv_carries_every_record_and_scenario_field(tmp_path, records):
    path = write_csv(records, str(tmp_path / "a.csv"))
    with open(path, newline="", encoding="utf-8") as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == len(records)
    def as_int(cell: str):
        return None if cell == "" else int(cell)

    for row, record in zip(rows, records):
        assert row["algorithm"] == record.algorithm
        assert as_int(row["time"]) == record.time
        assert as_int(row["total_moves"]) == record.total_moves
        assert row["dispersed"] == ("" if record.dispersed is None else str(record.dispersed))
        assert as_int(row["fault_events"]) == record.fault_events
        assert as_int(row["invariant_violations"]) == record.invariant_violations
        # Dict-valued scenario fields are embedded as canonical JSON.
        assert json.loads(row["scenario_faults"]) == record.scenario["faults"]
        assert json.loads(row["scenario_params"]) == record.scenario["params"]
        assert int(row["scenario_k"]) == record.scenario["k"]


def test_empty_sweep_csv_is_header_only(tmp_path):
    path = write_csv([], str(tmp_path / "empty.csv"))
    with open(path, newline="", encoding="utf-8") as fh:
        rows = list(csv.reader(fh))
    assert len(rows) == 1
    assert "algorithm" in rows[0] and "scenario_faults" in rows[0]


# --------------------------------------------------------------- load validation
def test_load_json_rejects_truncated_file(tmp_path, records):
    path = write_json(records, str(tmp_path / "a.json"))
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    truncated = tmp_path / "cut.json"
    truncated.write_text(text[: len(text) // 2])
    with pytest.raises(ArtifactError, match="not valid JSON"):
        load_json(str(truncated))


@pytest.mark.parametrize("payload, message", [
    ("[1, 2, 3]", "not an object"),
    ('{"something": "else"}', "not a repro sweep artifact"),
    ('{"format": "repro-sweep-v999", "records": []}', "not a repro sweep artifact"),
    ('{"format": "repro-sweep-v1"}', "missing or not a list"),
    ('{"format": "repro-sweep-v1", "records": [42]}', "not an object"),
    ('{"format": "repro-sweep-v1", "records": [{"status": "ok"}]}', "missing required"),
    (
        '{"format": "repro-sweep-v1", "records": '
        '[{"algorithm": "x", "scenario": {}, "bogus_field": 1}]}',
        "unknown record fields",
    ),
])
def test_load_json_rejects_foreign_payloads_with_clear_errors(tmp_path, payload, message):
    path = tmp_path / "foreign.json"
    path.write_text(payload)
    with pytest.raises(ArtifactError, match=message):
        load_json(str(path))


def test_artifact_error_is_a_value_error():
    assert issubclass(ArtifactError, ValueError)
