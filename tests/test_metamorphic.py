"""Cross-engine metamorphic tests.

The SYNC and ASYNC variants of each paper algorithm share the same DFS
skeleton: both advance the head through the smallest port leading to a fully
unsettled neighbor.  Under the :class:`~repro.sim.adversary.RoundRobinAdversary`
(the "most synchronous" fair schedule) the ASYNC execution must therefore
settle *exactly the same set of nodes* as its SYNC counterpart on the same
seeded scenario -- a strong oracle-free relation: neither engine is trusted,
they must simply agree.  Divergence would reveal a scheduling-dependent bug in
either engine or in the probe primitives.
"""

from __future__ import annotations

import pytest

from repro.runner import ScenarioSpec, build_graph, build_placements, get_algorithm
from repro.runner.scenario import build_adversary, derive_seed


def settled_set(algorithm: str, scenario: ScenarioSpec):
    spec = get_algorithm(algorithm)
    graph = build_graph(scenario)
    placements = build_placements(scenario, graph)
    adversary = build_adversary(scenario) if spec.setting == "async" else None
    result = spec.run(
        graph, placements, adversary=adversary, seed=derive_seed(scenario, "algorithm")
    )
    assert result.dispersed, f"{algorithm} failed to disperse on {scenario.label()}"
    return sorted(result.positions.values())


ROOTED_SCENARIOS = [
    ScenarioSpec(family="line", params={"n": 20}, k=12, adversary="round_robin"),
    ScenarioSpec(family="ring", params={"n": 16}, k=10, adversary="round_robin"),
    ScenarioSpec(family="random_tree", params={"n": 24}, k=14, adversary="round_robin", seed=3),
    ScenarioSpec(family="erdos_renyi", params={"n": 20, "p": 0.22}, k=12,
                 adversary="round_robin", seed=5),
    ScenarioSpec(family="complete", params={"n": 12}, k=12, adversary="round_robin"),
    ScenarioSpec(family="grid2d", params={"rows": 4, "cols": 5}, k=11, adversary="round_robin"),
]

GENERAL_SCENARIOS = [
    ScenarioSpec(family="line", params={"n": 22}, k=12, placement="split",
                 placement_parts=2, adversary="round_robin"),
    ScenarioSpec(family="erdos_renyi", params={"n": 20, "p": 0.25}, k=12, placement="split",
                 placement_parts=3, adversary="round_robin", seed=7),
    ScenarioSpec(family="random_tree", params={"n": 26}, k=15, placement="split",
                 placement_parts=2, adversary="round_robin", seed=2),
]


@pytest.mark.parametrize("scenario", ROOTED_SCENARIOS, ids=lambda s: s.label())
def test_rooted_sync_async_settle_identical_sets(scenario):
    assert settled_set("rooted_sync", scenario) == settled_set("rooted_async", scenario)


@pytest.mark.parametrize("scenario", GENERAL_SCENARIOS, ids=lambda s: s.label())
def test_general_sync_async_settle_identical_sets(scenario):
    assert settled_set("general_sync", scenario) == settled_set("general_async", scenario)


@pytest.mark.parametrize("scenario", ROOTED_SCENARIOS[:3], ids=lambda s: s.label())
def test_metamorphic_relation_is_seed_stable(scenario):
    """The shared settled set is itself deterministic run to run."""
    first = settled_set("rooted_async", scenario)
    second = settled_set("rooted_async", scenario)
    assert first == second
