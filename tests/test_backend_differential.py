"""Differential reference-vs-vectorized suite: records must be byte-identical.

The backend axis buys wall-clock speed, never different science: for *any*
(algorithm, scenario) pair, running the scenario on the vectorized backend
must produce the exact canonical record bytes of the reference run -- same
metrics, same fault events, same invariant verdicts, same error text -- apart
from the scenario's own ``backend`` tag (the one field that names the axis).
That invariant is what lets ``--backend vectorized`` flow through sweeps,
artifacts, and the experiment store without bumping any ``code_version``.

Random scenarios are crossed with graph families, placements, synchrony
schedulers, and crash/freeze/churn fault profiles, over every registered
algorithm.  Uses Hypothesis when installed; otherwise the same properties run
over a seeded random sweep of equal size (the ``std-random`` fallback used
across this suite).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.runner.execute import RunRecord, run_scenario
from repro.runner.registry import algorithm_names
from repro.runner.scenario import ScenarioSpec
from repro.sim.backends import backend_available

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.skipif(
    not backend_available("vectorized"), reason="numpy not installed"
)

CASES = 10


def arbitrary_cases(**ranges):
    """Drive a test from Hypothesis, or from a seeded sweep without it."""

    def decorate(fn):
        if HAVE_HYPOTHESIS:
            strategies = {
                name: st.integers(low, high) for name, (low, high) in ranges.items()
            }
            wrapped = given(**strategies)(fn)
            return settings(
                max_examples=CASES,
                deadline=None,
                suppress_health_check=[HealthCheck.too_slow],
            )(wrapped)

        def sweep():
            rng = random.Random(0xBACE2D)
            for _ in range(CASES):
                fn(**{name: rng.randint(low, high) for name, (low, high) in ranges.items()})

        sweep.__name__ = fn.__name__
        sweep.__doc__ = fn.__doc__
        return sweep

    return decorate


# ------------------------------------------------------------ scenario sampling

FAMILIES = (
    ("line", lambda rng: {"n": rng.randint(8, 16)}),
    ("ring", lambda rng: {"n": rng.randint(8, 16)}),
    ("complete", lambda rng: {"n": rng.randint(6, 10)}),
    ("erdos_renyi", lambda rng: {"n": rng.randint(10, 16), "p": 0.3}),
    ("random_tree", lambda rng: {"n": rng.randint(8, 16)}),
    ("grid2d", lambda rng: {"rows": rng.randint(3, 4), "cols": rng.randint(3, 4)}),
)

SCHEDULER_CHOICES = ("async", "lockstep", "semi-sync", "bounded-delay")

#: Fault profiles spanning every injector mechanism (crash-stop, freeze-thaw,
#: edge churn -- churn exercises the vectorized backend's CSR refresh on the
#: live engine path), plus the fault-free profile.
FAULT_PROFILES = (
    {},
    {"crash": 0.25, "horizon": 6},
    {"freeze": 0.4, "freeze_duration": 4, "horizon": 8},
    {"churn": 0.15, "horizon": 6},
    {"crash": 0.15, "freeze": 0.25, "freeze_duration": 3, "churn": 0.1, "horizon": 8},
)


def random_spec(rng: random.Random) -> ScenarioSpec:
    family, draw_params = FAMILIES[rng.randrange(len(FAMILIES))]
    params = draw_params(rng)
    n = params["n"] if "n" in params else params["rows"] * params["cols"]
    split = rng.random() < 0.4
    return ScenarioSpec(
        family=family,
        params=params,
        k=rng.randint(2, min(n, 10)),
        placement="split" if split else "rooted",
        placement_parts=2 if split else 1,
        scheduler=SCHEDULER_CHOICES[rng.randrange(len(SCHEDULER_CHOICES))],
        seed=rng.randint(0, 10**6),
        faults=FAULT_PROFILES[rng.randrange(len(FAULT_PROFILES))],
        check_invariants=rng.random() < 0.5,
    )


def canonical_modulo_backend(record: RunRecord) -> str:
    """The record's canonical JSON with the scenario's backend tag removed --
    the only byte a backend switch is allowed to change."""
    data = record.to_dict()
    data["scenario"].pop("backend", None)
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def assert_backend_invariant(algorithm: str, spec: ScenarioSpec) -> RunRecord:
    reference = run_scenario(algorithm, spec)
    vectorized = run_scenario(algorithm, spec.with_backend("vectorized"))
    assert canonical_modulo_backend(reference) == canonical_modulo_backend(
        vectorized
    ), f"{algorithm} diverged on {spec.label()}"
    # ... and the tag itself is the one expected difference.
    assert "backend" not in reference.to_dict()["scenario"]
    assert vectorized.to_dict()["scenario"]["backend"] == "vectorized"
    return reference


# ------------------------------------------------------------------- properties


@arbitrary_cases(seed=(0, 1_000_000))
def test_random_scenarios_are_backend_invariant_for_every_algorithm(seed):
    """The headline property: all registered algorithms, random worlds."""
    spec = random_spec(random.Random(seed))
    for algorithm in algorithm_names():
        assert_backend_invariant(algorithm, spec)


@arbitrary_cases(seed=(0, 1_000_000), profile=(1, len(FAULT_PROFILES) - 1))
def test_faulty_scenarios_report_identical_fault_data(seed, profile):
    """Crash/freeze/churn instrumentation (events, violations, error text)
    lands identically in both backends' records."""
    rng = random.Random(seed)
    spec = random_spec(rng).with_faults(
        FAULT_PROFILES[profile], check_invariants=True
    )
    algorithms = algorithm_names()
    record = assert_backend_invariant(
        algorithms[rng.randrange(len(algorithms))], spec
    )
    # Unsupported pairings (rooted-only algorithm on a split placement, SYNC
    # algorithm under a restricted scheduler) return before instrumentation.
    if record.status != "unsupported":
        assert record.fault_events is not None
        assert record.invariant_violations is not None


# ------------------------------------------------------------ fixed regressions


@pytest.mark.parametrize("algorithm", algorithm_names())
def test_fixed_grid_world_is_backend_invariant(algorithm):
    """A deterministic anchor per algorithm (fails loudly, no shrinking)."""
    spec = ScenarioSpec(
        family="grid2d", params={"rows": 4, "cols": 4}, k=8, seed=42
    )
    assert_backend_invariant(algorithm, spec)


@pytest.mark.parametrize("scheduler", ["lockstep", "semi-sync", "bounded-delay"])
def test_synchrony_spectrum_is_backend_invariant(scheduler):
    """Scheduler seed streams must not be perturbed by the backend choice."""
    spec = ScenarioSpec(
        family="ring", params={"n": 12}, k=6, seed=3, scheduler=scheduler
    )
    for algorithm in ("rooted_async", "general_async", "ks_opodis21"):
        assert_backend_invariant(algorithm, spec)


#: The drivers whose DFS/probe phases now ride the backend's batched
#: driver-phase primitives (run_probe_round, run_scatter, the settled-query
#: trio).  They get a deterministic scheduler x fault matrix on top of the
#: random sweep above: these are exactly the code paths where the vectorized
#: backend must detect faults/churn and fall back (or mask array-side) without
#: perturbing a single record byte.
BATCHED_DRIVERS = ("rooted_sync", "general_sync", "rooted_async", "general_async")

DRIVER_FAULT_PROFILES = (
    {"crash": 0.2, "horizon": 8},
    {"freeze": 0.35, "freeze_duration": 4, "horizon": 10},
    {"churn": 0.25, "horizon": 10},
)


@pytest.mark.parametrize("algorithm", BATCHED_DRIVERS)
def test_batched_driver_fault_matrix_is_backend_invariant(algorithm):
    """Every newly batched driver, across the synchrony spectrum and every
    fault mechanism, produces byte-identical records modulo the backend tag."""
    is_async = algorithm.endswith("_async")
    is_general = algorithm.startswith("general")
    schedulers = SCHEDULER_CHOICES if is_async else ("async",)
    for scheduler in schedulers:
        for offset, faults in enumerate(DRIVER_FAULT_PROFILES):
            spec = ScenarioSpec(
                family="erdos_renyi",
                params={"n": 12, "p": 0.35},
                k=6,
                placement="split" if is_general else "rooted",
                placement_parts=2 if is_general else 1,
                scheduler=scheduler,
                seed=100 + offset,
                faults=faults,
                check_invariants=True,
            )
            record = assert_backend_invariant(algorithm, spec)
            assert record.status != "unsupported"


def test_churn_heavy_run_is_backend_invariant():
    """Edge churn rebuilds the port tables mid-run; the vectorized CSR views
    must track every rewiring exactly (ports shift down, new top ports)."""
    spec = ScenarioSpec(
        family="erdos_renyi",
        params={"n": 14, "p": 0.35},
        k=7,
        seed=11,
        faults={"churn": 0.5, "horizon": 20},
        check_invariants=True,
    )
    for algorithm in ("rooted_sync", "rooted_async", "random_walk"):
        assert_backend_invariant(algorithm, spec)
