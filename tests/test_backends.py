"""Backend-axis unit tests: registry, construction API, and exact parity.

The vectorized backend's correctness contract is *observable equivalence* on
the per-operation tier: every mutation, query answer, metrics counter, and
error message must match the reference backend exactly (the differential
suite in ``test_backend_differential.py`` extends this to whole algorithm
records).  These tests pin the contract at the unit level -- lockstep rounds,
error paths, churned port tables, and the batch-walk sync-back -- plus the
registry/spec/factory plumbing the axis travels through.
"""

from __future__ import annotations

import random

import pytest

from repro.agents.agent import Agent
from repro.agents.memory import MemoryModel
from repro.graph import generators
from repro.runner.execute import build_engine
from repro.runner.scenario import ScenarioSpec
from repro.runner.sweep import SweepSpec
from repro.sim.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    BackendUnavailableError,
    KernelBackend,
    ReferenceBackend,
    VectorizedBackend,
    available_backends,
    backend_available,
    get_backend,
    require_backend,
    resolve_backend,
)
from repro.sim.faults import FaultSchedule
from repro.sim.sync_engine import SyncEngine
from repro.store.fingerprint import fingerprint_material, run_fingerprint

needs_vectorized = pytest.mark.skipif(
    not backend_available("vectorized"), reason="numpy not installed"
)


def make_world(n: int = 18, k: int = 10, seed: int = 7, start: int = 0):
    graph = generators.erdos_renyi(n, 0.3, seed=seed)
    model = MemoryModel(k=k, max_degree=graph.max_degree)
    agents = [Agent(i, start, model) for i in range(1, k + 1)]
    return graph, agents


def snapshot(engine):
    """Every observable the per-operation tier promises to keep identical."""
    n = engine.graph.num_nodes
    return {
        "positions": engine.kernel.positions(),
        "occupancy": [set(s) for s in engine.kernel.occupancy],
        "counts": list(engine.kernel.backend.occupancy_counts()),
        "occupied": [engine.kernel.occupied(v) for v in range(n)],
        "present": [engine.kernel.backend.present_ids(v) for v in range(n)],
        "total_moves": engine.metrics.total_moves,
        "moves_per_agent": dict(engine.kernel.moves_per_agent),
        "agent_state": sorted(
            (a.agent_id, a.position, a.settled, a.home)
            for a in engine.agents.values()
        ),
    }


# --------------------------------------------------------------------- registry


def test_registry_names_and_default():
    assert DEFAULT_BACKEND == "reference"
    assert set(BACKEND_NAMES) == {"reference", "vectorized"}
    assert backend_available("reference")
    assert "reference" in available_backends()
    assert not backend_available("no-such-backend")


def test_get_and_require_reject_unknown_names():
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("no-such-backend")
    with pytest.raises(ValueError, match="unknown backend"):
        require_backend("no-such-backend")


def test_resolve_backend_coerces_none_name_and_instance():
    default = resolve_backend(None)
    assert isinstance(default, ReferenceBackend)
    named = resolve_backend("reference")
    assert isinstance(named, ReferenceBackend)
    assert named is not default  # fresh instance per engine
    instance = ReferenceBackend()
    assert resolve_backend(instance) is instance


def test_vectorized_unavailable_without_numpy(monkeypatch):
    """Without numpy the backend reports unavailable and fails with guidance."""
    import repro.sim.backends.vectorized as vec

    monkeypatch.setattr(vec, "np", None)
    assert not backend_available("vectorized")
    assert available_backends() == ["reference"]
    with pytest.raises(BackendUnavailableError, match="fast"):
        VectorizedBackend()
    with pytest.raises(BackendUnavailableError):
        require_backend("vectorized")
    # ... while the reference path is untouched.
    graph, agents = make_world(n=6, k=2)
    engine = SyncEngine(graph, agents)
    engine.step({})
    assert engine.metrics.rounds == 1


def test_engine_rejects_unknown_backend_name():
    graph, agents = make_world(n=6, k=2)
    with pytest.raises(ValueError, match="unknown backend"):
        SyncEngine(graph, agents, backend="no-such-backend")


# ----------------------------------------------------------------- exact parity


@needs_vectorized
def test_lockstep_parity_on_random_graph():
    """Identical seeded move batches leave both backends byte-equal."""
    engines = []
    for backend in ("reference", "vectorized"):
        graph, agents = make_world()
        engines.append(SyncEngine(graph, agents, backend=backend))
    ref, vec = engines
    assert isinstance(ref.kernel.backend, ReferenceBackend)
    assert isinstance(vec.kernel.backend, VectorizedBackend)
    rng = random.Random(0xD15)
    for round_no in range(40):
        moves = {}
        for agent in ref.agents.values():
            if rng.random() < 0.7:
                moves[agent.agent_id] = rng.randint(
                    1, ref.graph.degree(agent.position)
                )
        if round_no == 25:  # settle someone mid-run: settled bodies still move? no
            aid = min(a for a, m in moves.items()) if moves else 1
            moves.pop(aid, None)
            ref.agents[aid].settle(ref.agents[aid].position, None)
            vec.agents[aid].settle(vec.agents[aid].position, None)
        ref.step(dict(moves))
        vec.step(dict(moves))
        assert snapshot(ref) == snapshot(vec)


@needs_vectorized
def test_apply_move_parity_and_port_memory():
    """The ASYNC single-move primitive updates arrays and Agent alike."""
    for backend in ("reference", "vectorized"):
        graph, agents = make_world(n=10, k=3)
        engine = SyncEngine(graph, agents, backend=backend)
        agent = agents[0]
        engine.kernel.apply_move(agent, 1)
        expected, arrival = graph.move(0, 1)
        assert agent.position == expected
        assert agent.pin == arrival
        assert engine.kernel.positions()[agent.agent_id] == expected
        assert agent.agent_id in engine.kernel.occupancy[expected]
        assert engine.metrics.total_moves == 1


@needs_vectorized
def test_apply_batch_error_message_parity():
    """Both backends report the first offending move with the graph's words."""
    messages = []
    for backend in ("reference", "vectorized"):
        graph, agents = make_world(n=10, k=4)
        engine = SyncEngine(graph, agents, backend=backend)
        before = snapshot(engine)
        deg = graph.degree(0)
        with pytest.raises(ValueError) as err:
            engine.kernel.apply_batch({1: 1, 2: deg + 3, 3: deg + 9})
        messages.append(str(err.value))
        assert f"has no port {deg + 3}" in messages[-1]
        # the offender is reported before anything mutates
        assert snapshot(engine) == before
    assert messages[0] == messages[1]


@needs_vectorized
def test_vectorized_occupancy_is_the_engines_live_alias():
    """Adversaries hold ``engine._occupancy``; it must stay the live object."""
    graph, agents = make_world(n=8, k=4)
    engine = SyncEngine(graph, agents, backend="vectorized")
    held = engine._occupancy
    assert held is engine.kernel.occupancy
    engine.step({1: 1})
    assert held is engine.kernel.occupancy
    assert 1 in held[graph.neighbor(0, 1)]


@needs_vectorized
def test_parity_survives_edge_churn():
    """``rewire`` rebuilds the CSR tables; the vectorized views must follow."""
    engines = []
    for backend in ("reference", "vectorized"):
        graph, agents = make_world(n=12, k=6, seed=3)
        engines.append(SyncEngine(graph, agents, backend=backend))
    ref, vec = engines
    rng = random.Random(99)
    for _ in range(6):
        # identical structural churn on both worlds
        removable = ref.graph.removable_edges()
        missing = ref.graph.missing_edges()
        remove = removable[rng.randrange(len(removable))] if removable else None
        add = missing[rng.randrange(len(missing))] if missing else None
        churned = ref.graph.churn_count
        for eng in (ref, vec):
            eng.graph.rewire(remove=remove, add=add)
            assert eng.graph.churn_count == churned + 1
        moves = {
            a.agent_id: rng.randint(1, ref.graph.degree(a.position))
            for a in ref.agents.values()
        }
        ref.step(dict(moves))
        vec.step(dict(moves))
        assert snapshot(ref) == snapshot(vec)


@needs_vectorized
def test_batch_walk_sync_back_restores_full_consistency():
    """After ``run_walk`` the Agent objects, occupancy, and metrics agree with
    the arrays -- and further per-op stepping behaves as if the rounds had been
    stepped one by one."""
    graph, agents = make_world(n=16, k=8, seed=5)
    engine = SyncEngine(graph, agents, backend="vectorized")
    backend = engine.kernel.backend
    steps = backend.run_walk(30, seed=11)
    assert steps == 30 * 8  # nobody settled: every agent walks every round
    assert engine.metrics.rounds == 30
    assert engine.metrics.total_moves == steps
    snap = snapshot(engine)
    assert sum(snap["counts"]) == 8
    for agent in agents:
        assert agent.agent_id in engine.kernel.occupancy[agent.position]
        assert snap["positions"][agent.agent_id] == agent.position
    assert sum(snap["moves_per_agent"].values()) == steps
    # the per-op tier continues seamlessly from the synced state
    engine.step({1: 1})
    assert engine.agents[1].position == graph.neighbor(snap["positions"][1], 1)


@needs_vectorized
@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_batch_walk_settle_disperses_and_stops_early(backend):
    graph, agents = make_world(n=16, k=8, seed=5)
    engine = SyncEngine(graph, agents, backend=backend)
    engine.kernel.backend.run_walk(10_000, seed=1, settle=True)
    assert all(a.settled for a in agents)
    homes = sorted(a.home for a in agents)
    assert len(set(homes)) == len(agents)  # distinct nodes: dispersed
    assert engine.metrics.rounds < 10_000  # early exit on full settlement
    for agent in agents:
        assert agent.position == agent.home


@needs_vectorized
def test_batch_walk_respects_crash_and_freeze_masks():
    """Blocked agents neither walk nor settle inside the batch tier."""
    for backend in ("reference", "vectorized"):
        graph, agents = make_world(n=16, k=6, seed=2)
        engine = build_engine(
            graph=graph,
            agents=agents,
            fault_schedule=FaultSchedule(crash_at={3: 0}, freeze_windows={5: (0, 4)}),
            backend=backend,
        )
        engine.kernel.backend.run_walk(4, seed=9, settle=True)
        assert engine.agents[3].position == 0  # crashed on the start node
        assert not engine.agents[3].settled
        assert engine.agents[5].position == 0  # still frozen through round 3
        assert not engine.agents[5].settled
        assert engine.kernel.moves_per_agent.get(3, 0) == 0
        assert engine.kernel.moves_per_agent.get(5, 0) == 0
        # after the thaw, agent 5 walks again
        engine.kernel.backend.run_walk(3, seed=10)
        assert engine.kernel.moves_per_agent.get(5, 0) > 0
        assert engine.kernel.moves_per_agent.get(3, 0) == 0


# ------------------------------------------------------- driver-phase primitives
#
# The DFS/probe driver phases ride four batched primitives (settled-presence
# queries, run_probe_round, run_scatter via SyncEngine.step_path, run_phase
# via idle_rounds).  Unlike run_walk these are *deterministic* -- they inherit
# the per-operation tier's exact-parity contract, pinned here per primitive:
# masks, mid-phase faults, churn mid-round, and error ordering.


def lockstep_engines(n=18, k=10, seed=7, start=0, **kwargs):
    engines = []
    for backend in ("reference", "vectorized"):
        graph, agents = make_world(n=n, k=k, seed=seed, start=start)
        engines.append(SyncEngine(graph, agents, backend=backend, **kwargs))
    return engines


def probe_answers(engine, exclude_ids=(None,)):
    """Every settled-query primitive's answer over the whole node set."""
    kernel = engine.kernel
    nodes = list(range(engine.graph.num_nodes))
    home = [kernel.home_settler_at(v) for v in nodes]
    return {
        "present": {
            exclude: [kernel.settled_present(v, exclude) for v in nodes]
            for exclude in exclude_ids
        },
        "home": [(a.agent_id if a is not None else None) for a in home],
        "has_home": {
            exclude: [kernel.has_home_settler(v, exclude) for v in nodes]
            for exclude in exclude_ids
        },
        "round": kernel.run_probe_round(nodes, [0] * len(nodes)),
    }


@needs_vectorized
def test_settled_queries_track_settle_unsettle_resettle_and_moving_settlers():
    """The vectorized settled index must answer exactly like the reference
    scans through arbitrary settle / re-settle / unsettle / move interleavings
    -- including settled bodies that keep moving (the oscillators)."""
    ref, vec = lockstep_engines()
    rng = random.Random(0x5E77)
    for _ in range(80):
        op = rng.random()
        aid = rng.randint(1, 10)
        ra, va = ref.agents[aid], vec.agents[aid]
        if op < 0.3:
            for a in (ra, va):
                a.settle(a.position, None)  # re-settle moves the index entry
        elif op < 0.45 and ra.settled:
            for a in (ra, va):
                a.unsettle()
        else:
            moves = {aid: rng.randint(1, ref.graph.degree(ra.position))}
            ref.step(dict(moves))  # settled agents move too: oscillation
            vec.step(dict(moves))
        excludes = (None, aid, rng.randint(1, 10))
        assert probe_answers(ref, excludes) == probe_answers(vec, excludes)
        assert snapshot(ref) == snapshot(vec)


@needs_vectorized
def test_run_probe_round_parity_with_mixed_excludes():
    ref, vec = lockstep_engines(n=14, k=8, seed=4)
    rng = random.Random(21)
    for eng in (ref, vec):
        for aid in (1, 3, 5, 8):
            eng.agents[aid].settle(eng.agents[aid].position, None)
    nodes, excludes = [], []
    for _ in range(50):
        nodes.append(rng.randrange(14))
        excludes.append(rng.randint(0, 9))  # 0 and 9 match no agent
    answers = ref.kernel.run_probe_round(nodes, excludes)
    assert answers == vec.kernel.run_probe_round(nodes, excludes)
    assert any(answers) and not all(answers)  # the case mix is real


@needs_vectorized
def test_run_probe_round_accepts_prebuilt_arrays():
    """The bench feeds the vectorized leg int64 arrays; answers must match the
    list form on both backends (the generic body zips, arrays zip fine)."""
    np = pytest.importorskip("numpy")
    ref, vec = lockstep_engines(n=12, k=6, seed=9)
    for eng in (ref, vec):
        for aid in (2, 4):
            eng.agents[aid].settle(eng.agents[aid].position, None)
    nodes = list(range(12))
    excludes = [0] * 12
    expected = ref.kernel.run_probe_round(nodes, excludes)
    assert vec.kernel.run_probe_round(nodes, excludes) == expected
    assert (
        vec.kernel.run_probe_round(
            np.asarray(nodes, dtype=np.int64), np.asarray(excludes, dtype=np.int64)
        )
        == expected
    )
    assert (
        ref.kernel.run_probe_round(
            np.asarray(nodes, dtype=np.int64), np.asarray(excludes, dtype=np.int64)
        )
        == expected
    )


@needs_vectorized
def test_settled_queries_fall_back_to_fault_filtered_scans_under_faults():
    """With an injector present the queries must stay Communicate queries:
    crashed/frozen settlers are invisible, exactly as the reference scans see
    it (the vectorized index is *not* fault-filtered, so it must defer)."""
    engines = []
    for backend in ("reference", "vectorized"):
        graph, agents = make_world(n=14, k=6, seed=13)
        engines.append(
            build_engine(
                graph=graph,
                agents=agents,
                fault_schedule=FaultSchedule(
                    crash_at={2: 1}, freeze_windows={4: (1, 4)}
                ),
                backend=backend,
            )
        )
    ref, vec = engines
    for eng in (ref, vec):
        for aid in (2, 4, 6):
            eng.agents[aid].settle(eng.agents[aid].position, None)
        eng.step({})  # tick past t=0 so the crash and freeze are live
        eng.step({})
    excludes = (None, 2, 4)
    assert probe_answers(ref, excludes) == probe_answers(vec, excludes)
    # the crashed settler's node really answers "nobody settled here"
    crashed_home = ref.agents[2].home
    alone = all(
        a.agent_id == 2 or a.position != crashed_home for a in ref.agents.values()
    )
    if alone:
        assert not ref.kernel.settled_present(crashed_home)


@needs_vectorized
def test_step_path_parity_and_duplicate_walker_collapse():
    """run_scatter: same end node, same records, and duplicate walker ids
    count once (the reference moves-dict collapses them by construction)."""
    ref, vec = lockstep_engines(n=16, k=5, seed=6)
    rng = random.Random(0xAB)
    node, ports = 0, []
    for _ in range(12):
        port = rng.randint(1, ref.graph.degree(node))
        ports.append(port)
        node = ref.graph.neighbor(node, port)
    walker_ids = [1, 2, 3, 2, 1]  # duplicates must not double-move anyone
    ends = []
    for eng in (ref, vec):
        ends.append(eng.step_path(list(walker_ids), 0, list(ports), counter="scatter_moves"))
    assert ends[0] == ends[1] == node
    assert snapshot(ref) == snapshot(vec)
    assert ref.metrics.rounds == vec.metrics.rounds == 12
    assert ref.metrics.extra["scatter_moves"] == vec.metrics.extra["scatter_moves"]
    assert ref.metrics.total_moves == 12 * 3  # three distinct walkers


@needs_vectorized
def test_step_path_error_parity_for_both_invalid_port_orderings():
    """An invalid port raises with the graph's exact words in both backends,
    with identical partial state -- both when walkers are moving (batch-plan
    error, before the round counts) and when none are (neighbor lookup error,
    after the round counts)."""
    for walkers_at_start in (True, False):
        outcomes = []
        for backend in ("reference", "vectorized"):
            graph, agents = make_world(n=12, k=4, seed=8, start=0)
            engine = SyncEngine(graph, agents, backend=backend)
            start = 0 if walkers_at_start else graph.neighbor(0, 1)
            # walk down port 1, then ask for a port the next node cannot have
            bad = graph.max_degree + 7
            with pytest.raises(ValueError) as err:
                engine.step_path([1, 2], start, [1, bad], counter="scatter_moves")
            outcomes.append(
                (
                    str(err.value),
                    engine.metrics.rounds,
                    engine.metrics.extra.get("scatter_moves", 0.0),
                    snapshot(engine),
                )
            )
        assert outcomes[0] == outcomes[1]
        assert f"has no port {graph.max_degree + 7}" in outcomes[0][0]


@needs_vectorized
def test_step_path_freeze_mask_leaves_frozen_walkers_behind():
    """A walker frozen mid-phase misses those hops in both backends (the
    vectorized fault mask must equal the reference's per-round filtering)."""
    engines = []
    for backend in ("reference", "vectorized"):
        graph, agents = make_world(n=16, k=5, seed=10, start=0)
        engines.append(
            build_engine(
                graph=graph,
                agents=agents,
                fault_schedule=FaultSchedule(
                    crash_at={3: 2}, freeze_windows={2: (1, 3)}
                ),
                backend=backend,
            )
        )
    ref, vec = engines
    node, ports = 0, []
    rng = random.Random(3)
    for _ in range(6):
        port = rng.randint(1, ref.graph.degree(node))
        ports.append(port)
        node = ref.graph.neighbor(node, port)
    ends = [eng.step_path([1, 2, 3, 4, 5], 0, list(ports)) for eng in (ref, vec)]
    assert ends[0] == ends[1] == node
    assert snapshot(ref) == snapshot(vec)
    assert ref.fault_injector.counts == vec.fault_injector.counts
    # the frozen and crashed walkers really missed hops; a healthy one didn't
    moved = ref.kernel.moves_per_agent
    assert moved[1] == len(ports)
    assert moved.get(2, 0) < len(ports)
    assert moved.get(3, 0) < len(ports)
    assert ref.agents[1].position == node


@needs_vectorized
def test_step_path_parity_under_churn_mid_phase():
    """Edge churn rewires the graph *between hops*; both backends must route
    the remaining hops through the same post-churn port tables."""
    spec = ScenarioSpec(
        family="erdos_renyi",
        params={"n": 14, "p": 0.35},
        k=5,
        seed=17,
        faults={"churn": 0.7, "horizon": 10},
    )
    engines = [build_engine(spec, backend=b) for b in ("reference", "vectorized")]
    ref, vec = engines
    churn_before = ref.graph.churn_count
    outcomes = []
    for eng in engines:
        # port 1 always exists (churn preserves connectivity, so degree >= 1):
        # the path stays valid however the graph is rewired under it.
        try:
            outcomes.append(("ok", eng.step_path([1, 2, 3], 0, [1] * 8)))
        except ValueError as err:  # pragma: no cover - depends on churn draw
            outcomes.append(("error", str(err)))
    assert outcomes[0] == outcomes[1]
    assert snapshot(ref) == snapshot(vec)
    assert ref.graph.churn_count == vec.graph.churn_count > churn_before
    assert ref.fault_injector.counts == vec.fault_injector.counts


@needs_vectorized
def test_idle_rounds_parity_and_max_rounds_error():
    """run_phase: the O(1) vectorized path must leave the same counters and
    raise the same non-termination error at the same parked round count."""
    outcomes = []
    for backend in ("reference", "vectorized"):
        graph, agents = make_world(n=10, k=3, seed=2)
        engine = SyncEngine(graph, agents, backend=backend, max_rounds=10)
        engine.idle_rounds(7)
        assert engine.metrics.rounds == 7
        engine.idle_rounds(0)  # no-op, no rounds consumed
        assert engine.metrics.rounds == 7
        with pytest.raises(RuntimeError) as err:
            engine.idle_rounds(10)
        outcomes.append((str(err.value), engine.metrics.rounds))
    assert outcomes[0] == outcomes[1]
    assert "exceeded max_rounds=10" in outcomes[0][0]


@needs_vectorized
def test_idle_rounds_parity_with_injector_ticks_the_fault_clock():
    """With faults present idle rounds must tick the injector (freeze windows
    expire during waits); the vectorized backend defers to the generic loop."""
    engines = []
    for backend in ("reference", "vectorized"):
        graph, agents = make_world(n=10, k=4, seed=5)
        engines.append(
            build_engine(
                graph=graph,
                agents=agents,
                fault_schedule=FaultSchedule(freeze_windows={1: (0, 3)}),
                backend=backend,
            )
        )
    ref, vec = engines
    for eng in (ref, vec):
        eng.idle_rounds(5)
    assert ref.metrics.rounds == vec.metrics.rounds == 5
    assert ref.fault_injector.counts == vec.fault_injector.counts
    assert not ref.kernel.fault_view(1).blocked_for_cycle  # the freeze expired


# ------------------------------------------------------------------ build_engine


def test_build_engine_requires_world_or_scenario():
    with pytest.raises(ValueError, match="scenario or explicit graph"):
        build_engine()


def test_build_engine_scenario_mode_wires_spec_pieces():
    spec = ScenarioSpec(
        family="line",
        params={"n": 8},
        k=4,
        seed=0,
        faults={"crash": 0.5, "horizon": 4},
        check_invariants=True,
    )
    engine = build_engine(spec)
    assert engine.graph.num_nodes == 8
    assert sorted(engine.agents) == [1, 2, 3, 4]
    assert engine.fault_injector is not None
    assert engine.kernel.invariant_checker is not None
    assert engine.kernel.backend.name == DEFAULT_BACKEND


def test_build_engine_scenario_mode_async_uses_spec_scheduler():
    spec = ScenarioSpec(
        family="ring", params={"n": 8}, k=4, seed=0, scheduler="lockstep"
    )
    engine = build_engine(spec, setting="async")
    assert type(engine).__name__ == "AsyncEngine"
    assert engine.adversary is not None


@needs_vectorized
def test_build_engine_scenario_backend_flows_from_spec():
    spec = ScenarioSpec(family="line", params={"n": 8}, k=4, seed=0).with_backend(
        "vectorized"
    )
    engine = build_engine(spec)
    assert isinstance(engine.kernel.backend, VectorizedBackend)
    # explicit override beats the spec
    engine = build_engine(spec, backend="reference")
    assert isinstance(engine.kernel.backend, ReferenceBackend)


def test_build_engine_explicit_mode_pins_schedule_and_observations():
    graph, agents = make_world(n=8, k=3)
    engine = build_engine(
        graph=graph,
        agents=agents,
        fault_schedule=FaultSchedule(crash_at={2: 1}),
        record_fault_observations=True,
    )
    assert engine.fault_injector is not None
    assert engine.fault_injector.record_observations
    engine.step({})
    engine.step({})
    assert engine.fault_injector.counts["blocked"] >= 1


# ------------------------------------------------- spec serialization & caching


def test_spec_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown backend"):
        ScenarioSpec(family="line", params={"n": 8}, k=4, seed=0, backend="bogus")


def test_default_backend_keeps_spec_bytes_and_fingerprints():
    """The reference default must serialize, label, and fingerprint exactly as
    specs did before the backend axis existed."""
    spec = ScenarioSpec(family="line", params={"n": 8}, k=4, seed=0)
    assert "backend" not in spec.to_dict()
    assert "backend" not in spec.base_dict()
    assert "backend" not in fingerprint_material("rooted_sync", spec)
    assert "backend" not in spec.label()
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


@needs_vectorized
def test_non_default_backend_serializes_and_keys_its_own_cache():
    spec = ScenarioSpec(family="line", params={"n": 8}, k=4, seed=0)
    fast = spec.with_backend("vectorized")
    assert fast.to_dict()["backend"] == "vectorized"
    assert ScenarioSpec.from_dict(fast.to_dict()) == fast
    assert fast.label().endswith("/backend=vectorized")
    # distinct fingerprints (distinct record bytes: the scenario tag differs) ...
    assert run_fingerprint("rooted_sync", fast) != run_fingerprint("rooted_sync", spec)
    # ... but identical derived seeds: the world itself is backend-independent.
    assert fast.base_dict() == spec.base_dict()


def test_sweep_with_backend_maps_every_scenario():
    sweep = SweepSpec.from_grid(
        name="b",
        algorithms=["random_walk"],
        graphs=[{"family": "line", "params": {"n": 8}}],
        ks=[4],
    )
    fast = sweep.with_backend("vectorized")
    assert all(s.backend == "vectorized" for s in fast.scenarios)
    assert all(s.backend == DEFAULT_BACKEND for s in sweep.scenarios)
    assert [s.with_backend(DEFAULT_BACKEND) for s in fast.scenarios] == list(
        sweep.scenarios
    )


def test_backend_is_a_kernel_backend_subclass_contract():
    """Every registered backend satisfies the abstract protocol."""
    for name in BACKEND_NAMES:
        if not backend_available(name):
            continue
        backend = get_backend(name)
        assert isinstance(backend, KernelBackend)
        assert backend.name == name
        assert backend.kernel is None  # unbound until an engine adopts it
