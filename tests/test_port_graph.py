"""Unit and property tests for the anonymous port-labeled graph substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import generators
from repro.graph.port_graph import PortAssignment, PortLabeledGraph


# --------------------------------------------------------------------- basics
class TestConstruction:
    def test_single_node(self):
        g = PortLabeledGraph([[]])
        assert g.num_nodes == 1
        assert g.num_edges == 0
        assert g.max_degree == 0

    def test_simple_triangle(self):
        g = PortLabeledGraph([[1, 2], [0, 2], [0, 1]])
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.max_degree == 2
        assert g.degree(0) == 2

    def test_ports_are_one_based(self):
        g = PortLabeledGraph([[1], [0]])
        assert g.neighbor(0, 1) == 1
        with pytest.raises(ValueError):
            g.neighbor(0, 0)
        with pytest.raises(ValueError):
            g.neighbor(0, 2)

    def test_reverse_port_round_trip(self):
        g = generators.grid2d(3, 4)
        for v in g.nodes():
            for p in g.ports(v):
                u = g.neighbor(v, p)
                q = g.reverse_port(v, p)
                assert g.neighbor(u, q) == v
                assert g.reverse_port(u, q) == p

    def test_port_to_inverse_of_neighbor(self):
        g = generators.random_tree(15, seed=3)
        for v in g.nodes():
            for p in g.ports(v):
                u = g.neighbor(v, p)
                assert g.port_to(v, u) == p

    def test_port_to_non_neighbor_raises(self):
        g = generators.line(4)
        with pytest.raises(ValueError):
            g.port_to(0, 3)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self loop"):
            PortLabeledGraph([[0, 1], [0]])

    def test_parallel_edge_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            PortLabeledGraph([[1, 1], [0, 0]])

    def test_asymmetric_edge_rejected(self):
        with pytest.raises(ValueError, match="not symmetric"):
            PortLabeledGraph([[1], []])

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="connected"):
            PortLabeledGraph([[1], [0], [3], [2]])

    def test_out_of_range_neighbor_rejected(self):
        with pytest.raises(ValueError):
            PortLabeledGraph([[5], [0]])

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            PortLabeledGraph([])

    def test_neighbors_in_port_order(self):
        g = PortLabeledGraph([[2, 1], [0], [0]])
        assert g.neighbors(0) == [2, 1]
        assert g.neighbor(0, 1) == 2
        assert g.neighbor(0, 2) == 1

    def test_edges_iteration(self):
        g = generators.ring(5)
        edges = set(g.edges())
        assert len(edges) == 5
        assert all(u < v for u, v in edges)


class TestAssignments:
    def test_random_assignment_is_permutation(self):
        g = generators.star(20, assignment=PortAssignment.RANDOM, seed=7)
        g.validate()
        hub_neighbors = sorted(g.neighbors(0))
        assert hub_neighbors == list(range(1, 20))

    def test_random_assignment_seeded_reproducible(self):
        g1 = generators.erdos_renyi(20, 0.3, seed=2, assignment=PortAssignment.RANDOM)
        g2 = generators.erdos_renyi(20, 0.3, seed=2, assignment=PortAssignment.RANDOM)
        for v in g1.nodes():
            assert g1.neighbors(v) == g2.neighbors(v)

    def test_async_safe_constraint_holds(self):
        g = generators.erdos_renyi(30, 0.25, seed=4, assignment=PortAssignment.ASYNC_SAFE)
        g.validate()
        for v in g.nodes():
            for p in g.ports(v):
                u = g.neighbor(v, p)
                q = g.reverse_port(v, p)
                if p <= 2 and q <= 2:
                    # One endpoint must fall under the degree exception.
                    assert (p == 1 and g.degree(v) == 1) or (p == 2 and g.degree(v) == 2) or (
                        q == 1 and g.degree(u) == 1
                    ) or (q == 2 and g.degree(u) == 2)

    def test_async_safe_on_line_uses_exceptions(self):
        # Degree-1 and degree-2 nodes fall under the paper's explicit exceptions.
        g = generators.line(6, assignment=PortAssignment.ASYNC_SAFE, seed=0)
        g.validate()


class TestAnalysisHelpers:
    def test_bfs_distances_line(self):
        g = generators.line(6)
        assert g.bfs_distances(0) == [0, 1, 2, 3, 4, 5]

    def test_diameter(self):
        assert generators.line(7).diameter() == 6
        assert generators.ring(8).diameter() == 4
        assert generators.star(9).diameter() == 2
        assert generators.complete(5).diameter() == 1

    def test_is_tree(self):
        assert generators.random_tree(17, seed=0).is_tree()
        assert not generators.ring(5).is_tree()

    def test_validate_passes_on_zoo(self):
        for gen in (generators.line(9), generators.grid2d(3, 3), generators.hypercube(3)):
            gen.validate()


# --------------------------------------------------------------------- rewire
class TestRewire:
    """The incremental ``rewire`` (patching only renumbered rows) must be
    indistinguishable from the full-rebuild path it replaced --
    ``_rewire_via_rebuild`` stays in the class as the oracle."""

    def test_remove_nonexistent_edge_message(self):
        g = generators.ring(5)
        with pytest.raises(ValueError, match="cannot remove nonexistent edge"):
            g.rewire(remove=(0, 2))

    def test_add_existing_edge_message(self):
        g = generators.ring(5)
        with pytest.raises(ValueError, match="cannot add existing edge"):
            g.rewire(add=(0, 1))

    def test_add_invalid_edge_message(self):
        g = generators.ring(5)
        with pytest.raises(ValueError, match="cannot add invalid edge"):
            g.rewire(add=(2, 2))
        with pytest.raises(ValueError, match="cannot add invalid edge"):
            g.rewire(add=(0, 9))

    def test_bridge_removal_without_replacement_disconnects(self):
        g = generators.line(4)
        with pytest.raises(ValueError, match="would disconnect the graph"):
            g.rewire(remove=(1, 2))

    def test_bridge_removal_with_cut_crossing_add_succeeds(self):
        g = generators.line(4)
        g.rewire(remove=(1, 2), add=(0, 3))
        g.validate()
        assert g.num_edges == 3
        assert 3 in g.neighbors(0)

    def test_readding_the_removed_pair_is_legal(self):
        g = generators.ring(6)
        before = sorted(g.neighbors(0))
        g.rewire(remove=(0, 1), add=(0, 1))
        g.validate()
        assert sorted(g.neighbors(0)) == before
        assert g.churn_count == 1

    def test_failed_rewire_leaves_the_graph_untouched(self):
        g = generators.grid2d(3, 3)
        before = [g.neighbors(v) for v in g.nodes()]
        with pytest.raises(ValueError):
            g.rewire(remove=(0, 8))
        assert [g.neighbors(v) for v in g.nodes()] == before
        assert g.churn_count == 0


def _rewire_observable(g):
    """Everything a rewire may change, in port order."""
    return {
        "neighbors": [g.neighbors(v) for v in g.nodes()],
        "reverse": [[g.reverse_port(v, p) for p in g.ports(v)] for v in g.nodes()],
        "degrees": [g.degree(v) for v in g.nodes()],
        "edges": g.num_edges,
        "churn": g.churn_count,
    }


def _try_rewire(method, remove, add):
    try:
        method(remove=remove, add=add)
        return ("ok", None)
    except ValueError as err:
        return ("ValueError", str(err))


# ----------------------------------------------------------------- properties
@st.composite
def random_connected_graph(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    extra = draw(st.integers(min_value=0, max_value=3 * n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    import random

    rng = random.Random(seed)
    edges = {(rng.randrange(i), i) for i in range(1, n)}
    for _ in range(extra):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return generators.from_edges(n, sorted(edges))


@settings(max_examples=60, deadline=None)
@given(random_connected_graph())
def test_property_reverse_ports_consistent(graph):
    graph.validate()
    for v in graph.nodes():
        assert sorted(graph.neighbors(v)) == sorted(
            graph.neighbor(v, p) for p in graph.ports(v)
        )


@settings(max_examples=40, deadline=None)
@given(random_connected_graph())
def test_property_handshake_lemma(graph):
    assert sum(graph.degree(v) for v in graph.nodes()) == 2 * graph.num_edges


@settings(max_examples=30, deadline=None)
@given(random_connected_graph(), st.integers(min_value=0, max_value=10_000))
def test_property_random_assignment_preserves_structure(graph, seed):
    adjacency = [graph.neighbors(v) for v in graph.nodes()]
    shuffled = PortLabeledGraph(adjacency, assignment=PortAssignment.RANDOM, seed=seed)
    shuffled.validate()
    assert shuffled.num_edges == graph.num_edges
    for v in graph.nodes():
        assert sorted(shuffled.neighbors(v)) == sorted(graph.neighbors(v))


@settings(max_examples=30, deadline=None)
@given(random_connected_graph(), st.integers(min_value=0, max_value=10_000))
def test_property_incremental_rewire_matches_rebuild_oracle(graph, seed):
    """Random churn sequences (legal rewirings, re-adds, bridge removals,
    invalid drawings) give byte-identical port tables *and* identical error
    text on the incremental path and the rebuild oracle."""
    import random

    rng = random.Random(seed)
    adjacency = [graph.neighbors(v) for v in graph.nodes()]
    fast = PortLabeledGraph([list(row) for row in adjacency])
    slow = PortLabeledGraph([list(row) for row in adjacency])
    for _ in range(8):
        removable = fast.removable_edges()
        missing = fast.missing_edges()
        edges = list(fast.edges())
        remove = add = None
        choice = rng.random()
        if choice < 0.3 and removable:
            remove = removable[rng.randrange(len(removable))]
            if rng.random() < 0.3:
                add = remove  # re-adding the removed pair is legal
            elif missing and rng.random() < 0.8:
                add = missing[rng.randrange(len(missing))]
        elif choice < 0.5 and missing:
            add = missing[rng.randrange(len(missing))]
        elif choice < 0.7:
            if rng.random() < 0.5:  # likely-nonexistent removal
                remove = (rng.randrange(fast.num_nodes), rng.randrange(fast.num_nodes))
            else:  # already-present addition
                add = edges[rng.randrange(len(edges))]
        else:  # arbitrary removal: bridges must fail identically
            remove = edges[rng.randrange(len(edges))]
            if missing and rng.random() < 0.5:
                add = missing[rng.randrange(len(missing))]
        assert _try_rewire(fast.rewire, remove, add) == _try_rewire(
            slow._rewire_via_rebuild, remove, add
        ), f"diverged on -{remove} +{add}"
        assert _rewire_observable(fast) == _rewire_observable(slow)
    fast.validate()
