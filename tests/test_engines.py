"""Tests for the synchronous round engine and the asynchronous CCM scheduler."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent
from repro.agents.memory import MemoryModel
from repro.graph import generators
from repro.sim.adversary import RandomAdversary, RoundRobinAdversary, StarvationAdversary
from repro.sim.async_engine import AsyncEngine, Move, Stay, WaitUntil
from repro.sim.sync_engine import SyncEngine


def make_agents(n, node=0, k=None, delta=4):
    model = MemoryModel(k=k or n, max_degree=delta)
    return {i: Agent(i, node, model) for i in range(1, n + 1)}


class TestSyncEngine:
    def test_round_counts_steps(self):
        g = generators.line(5)
        agents = make_agents(2)
        eng = SyncEngine(g, agents.values())
        eng.step({1: 1})
        eng.step({})
        assert eng.round == 2
        assert eng.metrics.total_moves == 1

    def test_parallel_moves_are_simultaneous(self):
        g = generators.line(3)  # 0-1-2
        agents = make_agents(2, node=1)
        eng = SyncEngine(g, agents.values())
        # Both leave node 1 in the same round through different ports.
        ports = {1: g.port_to(1, 0), 2: g.port_to(1, 2)}
        eng.step(ports)
        assert agents[1].position == 0
        assert agents[2].position == 2
        assert agents[1].pin == g.port_to(0, 1)

    def test_swap_in_same_round_allowed(self):
        # SYNC agents never observe each other on edges; a swap is legal.
        g = generators.line(2)
        agents = make_agents(2)
        agents[2].arrive(1, 1)
        eng = SyncEngine(g, agents.values())
        eng.step({1: 1, 2: 1})
        assert agents[1].position == 1 and agents[2].position == 0

    def test_agents_at_and_settled_query(self):
        g = generators.line(4)
        agents = make_agents(3)
        eng = SyncEngine(g, agents.values())
        assert [a.agent_id for a in eng.agents_at(0)] == [1, 2, 3]
        agents[2].settle(0, None)
        assert eng.settled_agent_at(0).agent_id == 2
        assert eng.settled_agent_at(1) is None

    def test_invalid_port_raises(self):
        g = generators.line(3)
        agents = make_agents(1)
        eng = SyncEngine(g, agents.values())
        with pytest.raises(ValueError):
            eng.step({1: 5})

    def test_max_rounds_guard(self):
        g = generators.line(3)
        agents = make_agents(1)
        eng = SyncEngine(g, agents.values(), max_rounds=3)
        for _ in range(3):
            eng.step({})
        with pytest.raises(RuntimeError):
            eng.step({})

    def test_duplicate_agent_id_rejected(self):
        g = generators.line(3)
        model = MemoryModel(k=2, max_degree=2)
        with pytest.raises(ValueError):
            SyncEngine(g, [Agent(1, 0, model), Agent(1, 1, model)])

    def test_metrics_memory_fold(self):
        g = generators.line(3)
        agents = make_agents(2)
        eng = SyncEngine(g, agents.values())
        metrics = eng.finalize_metrics()
        assert metrics.peak_memory_bits > 0


class TestAsyncEngine:
    def test_round_robin_epoch_is_one_pass(self):
        g = generators.line(4)
        agents = make_agents(3)
        eng = AsyncEngine(g, agents.values(), adversary=RoundRobinAdversary())
        seen = {"count": 0}

        def prog():
            seen["count"] += 1
            yield Stay()

        eng.assign(1, prog())
        eng.run_until(lambda: seen["count"] >= 1)
        # One pass over 3 agents completes at most one epoch (plus the partial).
        assert eng.metrics.epochs <= 2

    def test_move_action_moves_one_edge(self):
        g = generators.line(4)  # at node 1 port 1 leads back to 0, port 2 leads to 2
        agents = make_agents(1)
        eng = AsyncEngine(g, agents.values(), adversary=RoundRobinAdversary(), max_activations=100)
        eng.assign(1, iter([Move(1), Move(2)]))
        eng.run_until(lambda: agents[1].position == 2)
        assert agents[1].position == 2
        assert eng.metrics.total_moves == 2

    def test_wait_until_blocks_until_predicate(self):
        g = generators.line(4)
        agents = make_agents(2)
        eng = AsyncEngine(g, agents.values(), adversary=RoundRobinAdversary())
        flag = {"go": False}

        def waiter():
            yield WaitUntil(lambda: flag["go"])
            yield Move(1)

        def setter():
            yield Stay()
            yield Stay()
            flag["go"] = True
            yield Stay()

        eng.assign(1, waiter())
        eng.assign(2, setter())
        eng.run_until(lambda: agents[1].position == 1)
        assert agents[1].position == 1

    def test_epoch_counting_matches_definition(self):
        g = generators.line(3)
        agents = make_agents(2)
        eng = AsyncEngine(g, agents.values(), adversary=RoundRobinAdversary())
        # 6 activations of 2 agents in round-robin = 3 full epochs.
        steps = {"n": 0}

        def prog():
            while True:
                steps["n"] += 1
                yield Stay()

        eng.assign(1, prog())
        eng.run_until(lambda: steps["n"] >= 3)
        assert eng.metrics.epochs >= 2

    def test_cancel_clears_program(self):
        g = generators.line(4)
        agents = make_agents(1)
        eng = AsyncEngine(g, agents.values(), adversary=RoundRobinAdversary())
        eng.assign(1, iter([Move(1), Move(1)]))
        eng.cancel(1)
        assert eng.is_idle(1)

    def test_max_activations_guard(self):
        g = generators.line(3)
        agents = make_agents(1)
        eng = AsyncEngine(g, agents.values(), max_activations=5)
        with pytest.raises(RuntimeError):
            eng.run_until(lambda: False)

    def test_run_until_honors_check_every(self):
        """The predicate is evaluated once per ``check_every`` activations.

        Regression for the pre-kernel engine, which accepted the parameter
        and silently ignored it (checking after every single activation).
        """
        g = generators.line(4)
        agents = make_agents(3)
        eng = AsyncEngine(g, agents.values(), adversary=RoundRobinAdversary())
        checks = {"n": 0}

        def predicate():
            checks["n"] += 1
            return eng.metrics.activations >= 12

        eng.run_until(predicate, check_every=6)
        # One leading check + one after each 6-activation burst: 1 + 2.
        assert checks["n"] == 3
        assert eng.metrics.activations == 12
        with pytest.raises(ValueError):
            eng.run_until(lambda: True, check_every=0)

    def test_run_until_check_every_may_overshoot_but_not_miss(self):
        g = generators.line(4)
        agents = make_agents(3)
        eng = AsyncEngine(g, agents.values(), adversary=RoundRobinAdversary())
        eng.run_until(lambda: eng.metrics.activations >= 1, check_every=5)
        # The burst completes before the next check: 5 activations, not 1.
        assert eng.metrics.activations == 5


class TestKernelFacadeParity:
    """Both engines expose the kernel's full observation surface identically."""

    def test_sync_engine_grew_settled_agents_at(self):
        g = generators.line(5)
        agents = make_agents(3, node=2)
        eng = SyncEngine(g, agents.values())
        assert eng.settled_agents_at(2) == []
        agents[1].settle(2, None)
        agents[3].settle(2, None)
        assert {a.agent_id for a in eng.settled_agents_at(2)} == {1, 3}

    def test_async_engine_grew_occupied(self):
        g = generators.line(5)
        agents = make_agents(2, node=3)
        eng = AsyncEngine(g, agents.values(), adversary=RoundRobinAdversary())
        assert eng.occupied(3) and not eng.occupied(0)

    def test_facades_share_one_kernel_state(self):
        """Facade attributes are views of the kernel's single world state."""
        g = generators.line(5)
        agents = make_agents(2)
        eng = SyncEngine(g, agents.values())
        assert eng.metrics is eng.kernel.metrics
        assert eng.agents is eng.kernel.agents
        assert eng._occupancy is eng.kernel.occupancy
        eng.step({1: 1})
        assert eng.kernel.moves_per_agent == {1: 1}
        assert eng.kernel.now() == 1  # the SYNC fault clock is the round count

    def test_observation_surface_matches_across_engines(self):
        surface = (
            "agents_at",
            "occupied",
            "settled_agent_at",
            "settled_agents_at",
            "fault_view",
            "positions",
            "finalize_metrics",
        )
        for name in surface:
            assert callable(getattr(SyncEngine, name))
            assert callable(getattr(AsyncEngine, name))


class TestAdversaries:
    def test_random_adversary_reproducible(self):
        a1, a2 = RandomAdversary(3), RandomAdversary(3)
        a1.bind([1, 2, 3])
        a2.bind([1, 2, 3])
        assert [a1.next_agent() for _ in range(20)] == [a2.next_agent() for _ in range(20)]

    def test_round_robin_cycles(self):
        adv = RoundRobinAdversary()
        adv.bind([5, 6, 7])
        assert [adv.next_agent() for _ in range(6)] == [5, 6, 7, 5, 6, 7]

    def test_starvation_victims_rare(self):
        adv = StarvationAdversary("largest", num_victims=1, slowdown=4, seed=0)
        adv.bind(list(range(1, 11)))
        picks = [adv.next_agent() for _ in range(400)]
        assert picks.count(10) < 40
        assert picks.count(10) >= 1

    def test_starvation_explicit_victims(self):
        adv = StarvationAdversary([2], slowdown=3, seed=1)
        adv.bind([1, 2, 3])
        picks = [adv.next_agent() for _ in range(100)]
        assert 2 in picks
        assert picks.count(2) < picks.count(1)

    def test_starvation_bad_spec(self):
        with pytest.raises(ValueError):
            StarvationAdversary("weird").bind([1, 2])

    def test_starvation_bad_slowdown(self):
        with pytest.raises(ValueError):
            StarvationAdversary(slowdown=0)
