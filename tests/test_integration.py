"""Cross-algorithm integration tests: all algorithms on the same workloads.

These check the *relationships* the paper's Table 1 asserts, at test-sized
instances: everyone disperses, everyone respects the memory regime, and the
algorithms' time metrics sit in the expected order on the workloads where the
asymptotic separation already shows at small scale.
"""

from __future__ import annotations


import pytest

from repro.baselines.ks_opodis21 import ks_async_dispersion
from repro.baselines.naive_dfs import naive_sync_dispersion
from repro.baselines.sudo_disc24 import sudo_sync_dispersion
from repro.core.general_sync import general_sync_dispersion
from repro.core.rooted_async import rooted_async_dispersion
from repro.core.rooted_sync import rooted_sync_dispersion
from repro.graph import generators
from repro.sim.adversary import RoundRobinAdversary


SYNC_ALGORITHMS = [
    ("RootedSyncDisp", rooted_sync_dispersion),
    ("SudoStyle", sudo_sync_dispersion),
    ("NaiveSeqProbe", naive_sync_dispersion),
]


@pytest.mark.parametrize(
    "factory,k",
    [
        (lambda: generators.erdos_renyi(40, 0.15, seed=1), 40),
        (lambda: generators.random_tree(36, seed=2), 36),
        (lambda: generators.grid2d(6, 6), 36),
    ],
)
def test_all_sync_algorithms_agree_on_success(factory, k):
    for name, algo in SYNC_ALGORITHMS:
        graph = factory()
        result = algo(graph, k)
        assert result.dispersed, name
        assert len(set(result.positions.values())) == k
        assert result.metrics.peak_memory_log_units < 40, name


def test_full_occupancy_when_k_equals_n():
    graph = generators.random_tree(32, seed=5)
    for name, algo in SYNC_ALGORITHMS:
        result = algo(generators.random_tree(32, seed=5), 32)
        assert sorted(result.positions.values()) == list(range(32)), name


def test_ours_beats_edge_bound_baseline_on_dense_graphs():
    """Table 1 separation that is visible at small scale: O(k)·const vs O(m).

    On a complete-ish graph with k = n, the sequential-probe DFS pays ~2 rounds
    per edge (Θ(k²)) while our algorithm stays linear in k.
    """
    k = 48
    ours = rooted_sync_dispersion(generators.complete(k), k)
    naive = naive_sync_dispersion(generators.complete(k), k)
    assert ours.dispersed and naive.dispersed
    assert naive.metrics.rounds > ours.metrics.rounds


def test_async_ours_vs_ks_on_dense_graph():
    """ASYNC Table-1 separation: O(k log k) vs O(min{m, kΔ}) = Θ(k²) on K_k.

    The crossover sits around k ≈ 24–32 on complete graphs (measured in
    EXPERIMENTS.md); k = 32 is safely past it.
    """
    k = 32
    ours = rooted_async_dispersion(
        generators.complete(k), k, adversary=RoundRobinAdversary()
    )
    ks = ks_async_dispersion(generators.complete(k), k, adversary=RoundRobinAdversary())
    assert ours.dispersed and ks.dispersed
    assert ks.metrics.epochs > ours.metrics.epochs * 1.1


def test_sync_time_ratio_flat_for_ours_growing_for_naive():
    """rounds/k stays ~flat for ours while rounds/m stays ~flat for the naive DFS."""
    ratios_ours, ratios_naive = [], []
    for k in (16, 32, 64):
        graph = generators.complete(k)
        ours = rooted_sync_dispersion(graph, k)
        naive = naive_sync_dispersion(generators.complete(k), k)
        ratios_ours.append(ours.metrics.rounds / k)
        ratios_naive.append(naive.metrics.rounds / k)
    assert ratios_ours[-1] / ratios_ours[0] < 2.0        # ours: linear in k
    assert ratios_naive[-1] / ratios_naive[0] > 2.0      # naive: super-linear in k


def test_general_matches_rooted_when_single_root():
    graph = generators.random_tree(30, seed=7)
    rooted = rooted_sync_dispersion(generators.random_tree(30, seed=7), 30)
    general = general_sync_dispersion(graph, {0: 30})
    assert rooted.dispersed and general.dispersed
    assert sorted(rooted.positions.values()) == sorted(general.positions.values())


def test_results_expose_consistent_metadata():
    graph = generators.random_tree(20, seed=3)
    result = rooted_sync_dispersion(graph, 20)
    assert result.algorithm == "RootedSyncDisp"
    assert result.notes["k"] == 20
    assert result.time == result.metrics.rounds
    assert "dispersed=True" in result.summary()
