"""Tests for Algorithm 1 (Empty_Node_Selection) and the oscillation machinery.

These correspond to Lemmas 1–3 and Figures 1–4 of the paper.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.empty_nodes import keeps_settler_at_position, select_empty_nodes
from repro.core.oscillation import CoveredNode, Oscillator, build_trip, max_trip_length
from repro.graph import generators


def line_tree(k):
    """Path 0-1-...-(k-1) rooted at 0 as a children mapping."""
    children = {i: [i + 1] for i in range(k - 1)}
    children[k - 1] = []
    return children


def star_tree(k, root_is_center=True):
    if root_is_center:
        children = {0: list(range(1, k))}
        children.update({i: [] for i in range(1, k)})
        return children, 0
    # Root at a leaf: leaf -> center -> other leaves.
    children = {1: list(range(2, k)), 0: [1]}
    children.update({i: [] for i in range(2, k)})
    return children, 0


def random_tree_children(k, seed):
    rng = random.Random(seed)
    children = {0: []}
    for v in range(1, k):
        parent = rng.randrange(v)
        children.setdefault(parent, []).append(v)
        children.setdefault(v, [])
    return children


class TestKeepRule:
    def test_positions(self):
        kept = [x for x in range(1, 15) if keeps_settler_at_position(x)]
        assert kept == [1, 4, 7, 10, 13]


class TestSelection:
    def test_line_rooted_at_end(self):
        for k in range(3, 30):
            sel = select_empty_nodes(line_tree(k), 0)
            assert sel.size == k
            assert sel.lemma1_holds()
            # Even depths occupied, odd empty.
            assert all(sel.depth[v] % 2 == 0 for v in sel.occupied)

    def test_star_rooted_at_center(self):
        sel = select_empty_nodes(star_tree(16, True)[0], 0)
        assert sel.lemma1_holds()
        # Case B: children 4, 7, 10, 13 get settlers.
        assert len(sel.occupied) == 1 + 4

    def test_star_rooted_at_leaf(self):
        children, root = star_tree(16, False)
        sel = select_empty_nodes(children, root)
        assert sel.lemma1_holds()
        # Case A keeps one leaf per group of three.
        leaf_settlers = [v for v in sel.occupied if v >= 2]
        assert len(leaf_settlers) == math.ceil(14 / 3)

    def test_binary_tree(self):
        g = generators.binary_tree(4)
        children = {v: [] for v in g.nodes()}
        for v in g.nodes():
            for u in g.neighbors(v):
                if u > v:
                    children[v].append(u)
        sel = select_empty_nodes(children, 0)
        assert sel.lemma1_holds()
        assert len(sel.occupied) <= math.floor(2 * g.num_nodes / 3)

    def test_cover_capacity_bounds(self):
        for seed in range(20):
            children = random_tree_children(40, seed)
            sel = select_empty_nodes(children, 0)
            for coverer, covered in sel.cover_sets.items():
                assert coverer in sel.occupied
                assert len(covered) <= 3
                # Sibling covers are bounded by 2.
                parent = {c: p for p, cs in children.items() for c in cs}
                sibling_covered = [c for c in covered if parent.get(c) == parent.get(coverer)]
                assert len(sibling_covered) <= 2

    def test_every_empty_node_is_covered(self):
        for seed in range(20):
            children = random_tree_children(35, seed)
            sel = select_empty_nodes(children, 0)
            assert set(sel.cover) == sel.empty

    def test_cover_is_local(self):
        for seed in range(10):
            children = random_tree_children(30, seed)
            sel = select_empty_nodes(children, 0)
            parent = {c: p for p, cs in children.items() for c in cs}
            parent[0] = None
            assert sel.coverage_is_local(parent)

    def test_duplicate_node_rejected(self):
        with pytest.raises(ValueError):
            select_empty_nodes({0: [1, 2], 1: [2], 2: []}, 0)

    def test_unreachable_node_rejected(self):
        with pytest.raises(ValueError):
            select_empty_nodes({0: [], 5: []}, 0)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=3, max_value=120), st.integers(min_value=0, max_value=10_000))
    def test_property_lemma1(self, k, seed):
        """Lemma 1: at least ⌈k/3⌉ nodes of any k-node tree are left empty."""
        sel = select_empty_nodes(random_tree_children(k, seed), 0)
        assert len(sel.empty) >= math.ceil(k / 3)
        assert len(sel.occupied) + len(sel.empty) == k

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=3, max_value=100), st.integers(min_value=0, max_value=10_000))
    def test_property_trip_length_lemma2(self, k, seed):
        """Lemma 2: every cover group induces an oscillation trip of ≤ 6 rounds."""
        children = random_tree_children(k, seed)
        sel = select_empty_nodes(children, 0)
        parent = {c: p for p, cs in children.items() for c in cs}
        for coverer, covered in sel.cover_sets.items():
            entries = []
            for node in covered:
                if parent.get(node) == coverer:
                    entries.append(CoveredNode(node, (1,)))
                else:
                    entries.append(CoveredNode(node, (1, 2)))
            assert max_trip_length(entries) <= 6


class TestTripConstruction:
    def test_child_trip_lengths(self):
        assert max_trip_length([CoveredNode(1, (1,))]) == 2
        assert max_trip_length([CoveredNode(i, (i,)) for i in range(1, 4)]) == 6

    def test_sibling_trip_lengths(self):
        assert max_trip_length([CoveredNode(5, (1, 2))]) == 4
        assert max_trip_length([CoveredNode(5, (1, 2)), CoveredNode(6, (1, 3))]) == 6

    def test_empty_cover_no_trip(self):
        assert build_trip([]) == []


class TestOscillatorRuntime:
    def make_engine(self):
        from repro.agents.agent import Agent
        from repro.agents.memory import MemoryModel
        from repro.sim.sync_engine import SyncEngine

        g = generators.star(6)  # hub 0 with leaves 1..5
        model = MemoryModel(k=4, max_degree=5)
        settler = Agent(1, 0, model)
        settler.settle(0, None)
        other = Agent(2, 3, model)
        other.settle(3, None)
        eng = SyncEngine(g, [settler, other])
        return g, eng, settler, other

    def run_rounds(self, eng, osc, rounds):
        visited = []
        for _ in range(rounds):
            port = osc.plan_step()
            eng.step({osc.agent.agent_id: port} if port else {})
            visited.append(osc.agent.position)
            here = osc.agent.position
            osc.after_step(
                any(
                    a.settled and a.home == here and a.agent_id != osc.agent.agent_id
                    for a in eng.agents_at(here)
                )
            )
        return visited

    def test_oscillator_visits_all_covered_nodes_every_trip(self):
        g, eng, settler, _ = self.make_engine()
        osc = Oscillator(settler, 0, g)
        osc.add_cover(1, (g.port_to(0, 1),))
        osc.add_cover(2, (g.port_to(0, 2),))
        visited = self.run_rounds(eng, osc, 12)
        assert visited.count(1) >= 2
        assert visited.count(2) >= 2
        assert osc.agent.position in (0, 1, 2)

    def test_oscillator_idle_without_cover(self):
        g, eng, settler, _ = self.make_engine()
        osc = Oscillator(settler, 0, g)
        assert osc.plan_step() is None
        assert not osc.is_active

    def test_oscillator_drops_cover_when_node_settled(self):
        g, eng, settler, other = self.make_engine()
        osc = Oscillator(settler, 0, g)
        osc.add_cover(3, (g.port_to(0, 3),))  # node 3 already hosts a settler
        self.run_rounds(eng, osc, 6)
        assert not any(c.node == 3 for c in osc.covered)
        # With nothing left to cover it parks at home.
        self.run_rounds(eng, osc, 4)
        assert osc.agent.position == 0
        assert not osc.is_active

    def test_oscillator_stop(self):
        g, eng, settler, _ = self.make_engine()
        osc = Oscillator(settler, 0, g)
        osc.add_cover(1, (g.port_to(0, 1),))
        osc.stop()
        assert osc.plan_step() is None
