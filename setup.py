"""Packaging for the dispersion reproduction (src layout).

All metadata lives here and the repo deliberately has **no**
``pyproject.toml``: its mere presence switches pip onto the PEP 517/660
build path, which requires network-installed build deps and the ``wheel``
package, breaking ``pip install -e .`` (and ``python setup.py develop``-style
fallbacks) on offline environments.  Ruff configuration lives in
``ruff.toml`` for the same reason -- do not move either into a pyproject.
"""

from setuptools import find_packages, setup

setup(
    name="repro-dispersion",
    version="1.0.0",
    description=(
        "Reproduction of 'Dispersion is (Almost) Optimal under (A)synchrony' "
        "(SPAA'25): algorithms, simulators, baselines, and an experiment runner"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[
        "networkx",
    ],
    extras_require={
        # numpy powers the vectorized kernel backend and the scaling fits;
        # everything else (reference backend, all algorithms, the CLI) runs
        # on the stdlib.  `repro bench`/`--backend vectorized` report a clear
        # error pointing here when numpy is absent.
        "fast": [
            "numpy",
        ],
        "dev": [
            "numpy",
            "pytest",
            "pytest-benchmark",
            "hypothesis",
            "ruff",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.runner.cli:main",
        ],
    },
)
