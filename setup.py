"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works on environments whose setuptools/pip cannot do
PEP 660 editable installs offline (no ``wheel`` package available).
"""

from setuptools import setup

setup()
