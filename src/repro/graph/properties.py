"""Structural graph properties used by the analysis layer.

These helpers are *simulator-side*: they inspect the whole graph at once, which
agents in the model cannot do.  They are used to characterize workloads (the
``m``, ``Δ``, ``D`` parameters that appear in the bounds of Table 1) and to
verify structural invariants in tests -- never inside the algorithms themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.graph.port_graph import PortLabeledGraph

__all__ = [
    "GraphProfile",
    "profile",
    "eccentricity",
    "tree_depths",
    "tree_children",
    "is_valid_tree_rooted_at",
]


@dataclass(frozen=True)
class GraphProfile:
    """The workload parameters that appear in the paper's bounds."""

    num_nodes: int
    num_edges: int
    max_degree: int
    min_degree: int
    mean_degree: float
    diameter: int

    def describe(self) -> str:
        """One-line human-readable summary (used by the benchmark reports)."""
        return (
            f"n={self.num_nodes} m={self.num_edges} Δ={self.max_degree} "
            f"δ_min={self.min_degree} mean_deg={self.mean_degree:.2f} D={self.diameter}"
        )


def profile(graph: PortLabeledGraph, with_diameter: bool = True) -> GraphProfile:
    """Compute the :class:`GraphProfile` of ``graph``.

    ``with_diameter=False`` skips the O(n·m) diameter computation for large
    benchmark graphs where only degree statistics are needed.
    """
    degrees = [graph.degree(v) for v in graph.nodes()]
    diameter = graph.diameter() if with_diameter else -1
    return GraphProfile(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_degree=max(degrees),
        min_degree=min(degrees),
        mean_degree=sum(degrees) / len(degrees),
        diameter=diameter,
    )


def eccentricity(graph: PortLabeledGraph, v: int) -> int:
    """Eccentricity of node ``v`` (max hop distance to any node)."""
    return max(graph.bfs_distances(v))


def tree_depths(parent: Sequence[Optional[int]], root: int) -> List[int]:
    """Depths of every node of a tree given a parent array (root depth 0).

    ``parent[v]`` is the parent node of ``v`` (``None`` for the root and for
    nodes not in the tree, which receive depth ``-1``).
    """
    n = len(parent)
    depth = [-1] * n
    depth[root] = 0
    # Children adjacency for a single BFS pass.
    children: Dict[int, List[int]] = {}
    for v, p in enumerate(parent):
        if p is not None:
            children.setdefault(p, []).append(v)
    queue = [root]
    head = 0
    while head < len(queue):
        v = queue[head]
        head += 1
        for c in children.get(v, []):
            depth[c] = depth[v] + 1
            queue.append(c)
    return depth


def tree_children(parent: Sequence[Optional[int]], root: int) -> Dict[int, List[int]]:
    """Children lists of a tree given as a parent array."""
    children: Dict[int, List[int]] = {root: []}
    for v, p in enumerate(parent):
        if p is not None:
            children.setdefault(p, []).append(v)
            children.setdefault(v, [])
    return children


def is_valid_tree_rooted_at(
    parent: Sequence[Optional[int]], root: int, members: Sequence[int]
) -> bool:
    """Check that ``members`` form a tree rooted at ``root`` under ``parent``.

    Used by tests to validate DFS trees produced by the algorithms: every member
    except the root has a parent that is also a member, there are no cycles, and
    every member reaches the root by following parents.
    """
    member_set = set(members)
    if root not in member_set:
        return False
    for v in members:
        if v == root:
            if parent[v] is not None:
                return False
            continue
        seen = set()
        cur: Optional[int] = v
        while cur is not None and cur != root:
            if cur in seen or cur not in member_set:
                return False
            seen.add(cur)
            cur = parent[cur]
        if cur != root:
            return False
    return True
