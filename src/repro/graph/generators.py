"""Topology zoo used by tests, examples and benchmarks.

Every generator returns a :class:`~repro.graph.port_graph.PortLabeledGraph`.
The families are chosen to stress the quantities that appear in the paper's
bounds:

* **line / ring** -- the ``Ω(k)`` lower-bound instances (Section 1),
* **star / complete / broom** -- maximum-degree stress for the probing
  primitives (``Δ = Θ(k)``),
* **trees (binary, random, caterpillar)** -- the empty-node selection and
  oscillation machinery of Section 5 operates on DFS *trees*,
* **grid / hypercube / random regular / Erdős–Rényi** -- "arbitrary graph"
  workloads for the end-to-end Table-1 comparisons,
* **barbell / lollipop** -- graphs where ``m = Θ(n²)`` while ``k`` may be small,
  separating ``O(min{m, kΔ})`` baselines from the ``O(k)`` / ``O(k log k)``
  algorithms.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.graph.port_graph import PortAssignment, PortLabeledGraph

__all__ = [
    "line",
    "ring",
    "star",
    "complete",
    "binary_tree",
    "random_tree",
    "caterpillar",
    "broom",
    "spider",
    "grid2d",
    "hypercube",
    "erdos_renyi",
    "random_regular",
    "barbell",
    "lollipop",
    "from_networkx",
    "from_edges",
]


def _build(adjacency: Sequence[Sequence[int]], assignment: PortAssignment, seed: int | None) -> PortLabeledGraph:
    return PortLabeledGraph(adjacency, assignment=assignment, seed=seed)


def from_edges(
    n: int,
    edges: Sequence[tuple[int, int]],
    assignment: PortAssignment = PortAssignment.ADJACENCY,
    seed: int | None = None,
) -> PortLabeledGraph:
    """Build a graph from an explicit edge list on nodes ``0..n-1``."""
    adjacency: List[List[int]] = [[] for _ in range(n)]
    seen = set()
    for u, v in edges:
        if u == v:
            raise ValueError(f"self loop {u}")
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        adjacency[u].append(v)
        adjacency[v].append(u)
    return _build(adjacency, assignment, seed)


def line(n: int, assignment: PortAssignment = PortAssignment.ADJACENCY, seed: int | None = None) -> PortLabeledGraph:
    """Path graph on ``n`` nodes -- the canonical ``Ω(k)`` dispersion instance."""
    if n < 1:
        raise ValueError("n must be >= 1")
    edges = [(i, i + 1) for i in range(n - 1)]
    return from_edges(n, edges, assignment, seed)


def ring(n: int, assignment: PortAssignment = PortAssignment.ADJACENCY, seed: int | None = None) -> PortLabeledGraph:
    """Cycle graph on ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError("ring needs n >= 3")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return from_edges(n, edges, assignment, seed)


def star(n: int, assignment: PortAssignment = PortAssignment.ADJACENCY, seed: int | None = None) -> PortLabeledGraph:
    """Star with hub 0 and ``n - 1`` leaves: ``Δ = n - 1``."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    edges = [(0, i) for i in range(1, n)]
    return from_edges(n, edges, assignment, seed)


def complete(n: int, assignment: PortAssignment = PortAssignment.ADJACENCY, seed: int | None = None) -> PortLabeledGraph:
    """Complete graph ``K_n``: ``m = Θ(n²)``, ``Δ = n - 1``."""
    if n < 2:
        raise ValueError("complete needs n >= 2")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return from_edges(n, edges, assignment, seed)


def binary_tree(depth: int, assignment: PortAssignment = PortAssignment.ADJACENCY, seed: int | None = None) -> PortLabeledGraph:
    """Complete binary tree of the given depth (root at node 0)."""
    if depth < 0:
        raise ValueError("depth must be >= 0")
    n = 2 ** (depth + 1) - 1
    edges = []
    for i in range(n):
        for child in (2 * i + 1, 2 * i + 2):
            if child < n:
                edges.append((i, child))
    return from_edges(n, edges, assignment, seed)


def random_tree(n: int, seed: int = 0, assignment: PortAssignment = PortAssignment.ADJACENCY) -> PortLabeledGraph:
    """Uniform-ish random tree built by random attachment (seeded)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = random.Random(seed)
    edges = [(i, rng.randrange(i)) for i in range(1, n)]
    return from_edges(n, edges, assignment, seed)


def caterpillar(spine: int, legs_per_node: int, assignment: PortAssignment = PortAssignment.ADJACENCY, seed: int | None = None) -> PortLabeledGraph:
    """Caterpillar tree: a spine path with ``legs_per_node`` leaves per spine node.

    Exercises the "branching node at odd/even depth" cases of Algorithm 1.
    """
    if spine < 1 or legs_per_node < 0:
        raise ValueError("spine >= 1 and legs_per_node >= 0 required")
    edges = [(i, i + 1) for i in range(spine - 1)]
    next_node = spine
    for i in range(spine):
        for _ in range(legs_per_node):
            edges.append((i, next_node))
            next_node += 1
    return from_edges(next_node, edges, assignment, seed)


def broom(handle: int, bristles: int, assignment: PortAssignment = PortAssignment.ADJACENCY, seed: int | None = None) -> PortLabeledGraph:
    """A path of length ``handle`` ending in a star with ``bristles`` leaves.

    Combines the line lower bound with a high-degree node at the far end.
    """
    if handle < 1 or bristles < 1:
        raise ValueError("handle >= 1 and bristles >= 1 required")
    edges = [(i, i + 1) for i in range(handle - 1)]
    hub = handle - 1
    next_node = handle
    for _ in range(bristles):
        edges.append((hub, next_node))
        next_node += 1
    return from_edges(next_node, edges, assignment, seed)


def spider(legs: int, leg_length: int, assignment: PortAssignment = PortAssignment.ADJACENCY, seed: int | None = None) -> PortLabeledGraph:
    """A spider: ``legs`` paths of ``leg_length`` nodes joined at a hub (node 0)."""
    if legs < 1 or leg_length < 1:
        raise ValueError("legs >= 1 and leg_length >= 1 required")
    edges = []
    next_node = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            edges.append((prev, next_node))
            prev = next_node
            next_node += 1
    return from_edges(next_node, edges, assignment, seed)


def grid2d(rows: int, cols: int, assignment: PortAssignment = PortAssignment.ADJACENCY, seed: int | None = None) -> PortLabeledGraph:
    """2-D grid graph ``rows x cols``."""
    if rows < 1 or cols < 1:
        raise ValueError("rows, cols >= 1 required")

    def nid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((nid(r, c), nid(r, c + 1)))
            if r + 1 < rows:
                edges.append((nid(r, c), nid(r + 1, c)))
    return from_edges(rows * cols, edges, assignment, seed)


def hypercube(dim: int, assignment: PortAssignment = PortAssignment.ADJACENCY, seed: int | None = None) -> PortLabeledGraph:
    """Hypercube on ``2**dim`` nodes."""
    if dim < 1:
        raise ValueError("dim >= 1 required")
    n = 1 << dim
    edges = []
    for v in range(n):
        for b in range(dim):
            u = v ^ (1 << b)
            if v < u:
                edges.append((v, u))
    return from_edges(n, edges, assignment, seed)


def erdos_renyi(
    n: int,
    p: float,
    seed: int = 0,
    assignment: PortAssignment = PortAssignment.ADJACENCY,
) -> PortLabeledGraph:
    """Connected Erdős–Rényi ``G(n, p)`` (a spanning tree is added if needed)."""
    if n < 1:
        raise ValueError("n >= 1 required")
    if not (0.0 <= p <= 1.0):
        raise ValueError("p must be in [0, 1]")
    rng = random.Random(seed)
    edges = set()
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                edges.add((i, j))
    # Guarantee connectivity by threading a random spanning tree through the
    # nodes (standard trick; keeps the degree distribution close to G(n, p)).
    order = list(range(n))
    rng.shuffle(order)
    for a, b in zip(order, order[1:]):
        edges.add((min(a, b), max(a, b)))
    return from_edges(n, sorted(edges), assignment, seed)


def random_regular(n: int, d: int, seed: int = 0, assignment: PortAssignment = PortAssignment.ADJACENCY) -> PortLabeledGraph:
    """Random ``d``-regular graph via networkx (connected; retries seeds)."""
    import networkx as nx

    if n * d % 2 != 0:
        raise ValueError("n*d must be even for a d-regular graph")
    for attempt in range(50):
        g = nx.random_regular_graph(d, n, seed=seed + attempt)
        if nx.is_connected(g):
            return from_networkx(g, assignment=assignment, seed=seed)
    raise RuntimeError("could not generate a connected random regular graph")


def barbell(clique: int, path: int, assignment: PortAssignment = PortAssignment.ADJACENCY, seed: int | None = None) -> PortLabeledGraph:
    """Two cliques of size ``clique`` joined by a path of ``path`` nodes."""
    if clique < 2:
        raise ValueError("clique >= 2 required")
    edges = []
    # Left clique: 0..clique-1, right clique: clique+path..2*clique+path-1.
    for i in range(clique):
        for j in range(i + 1, clique):
            edges.append((i, j))
    offset = clique + path
    for i in range(clique):
        for j in range(i + 1, clique):
            edges.append((offset + i, offset + j))
    # Path between node clique-1 and node offset.
    prev = clique - 1
    for t in range(path):
        edges.append((prev, clique + t))
        prev = clique + t
    edges.append((prev, offset))
    return from_edges(2 * clique + path, edges, assignment, seed)


def lollipop(clique: int, path: int, assignment: PortAssignment = PortAssignment.ADJACENCY, seed: int | None = None) -> PortLabeledGraph:
    """A clique of size ``clique`` with a path of ``path`` nodes attached."""
    if clique < 2 or path < 0:
        raise ValueError("clique >= 2 and path >= 0 required")
    edges = []
    for i in range(clique):
        for j in range(i + 1, clique):
            edges.append((i, j))
    prev = clique - 1
    for t in range(path):
        edges.append((prev, clique + t))
        prev = clique + t
    return from_edges(clique + path, edges, assignment, seed)


def from_networkx(g, assignment: PortAssignment = PortAssignment.ADJACENCY, seed: int | None = None) -> PortLabeledGraph:
    """Convert a networkx graph (nodes relabeled to ``0..n-1`` in sorted order)."""
    import networkx as nx

    if g.is_directed():
        raise ValueError("expected an undirected graph")
    if not nx.is_connected(g):
        raise ValueError("expected a connected graph")
    nodes = sorted(g.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    adjacency: List[List[int]] = [[] for _ in nodes]
    for v in nodes:
        adjacency[index[v]] = [index[u] for u in sorted(g.neighbors(v), key=lambda x: index[x])]
    return PortLabeledGraph(adjacency, assignment=assignment, seed=seed)
