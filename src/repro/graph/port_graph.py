"""The anonymous, port-labeled graph substrate (paper Section 2, "Graph").

A :class:`PortLabeledGraph` is a simple, undirected, connected graph
``G = (V, E)`` in which

* nodes are anonymous -- agents may not read node identifiers (internally we use
  integers ``0..n-1`` purely as simulator bookkeeping),
* every node ``v`` labels its incident edges with distinct *port numbers*
  ``1, 2, ..., deg(v)``; the two endpoints of an edge label it independently, so
  ``p_v(u) != p_u(v)`` in general,
* nodes are memoryless: they cannot store information between rounds.

Agents therefore navigate exclusively by ports: "leave the current node through
port ``i``" and, on arrival, learn the incoming port (the paper's ``a.pin``).

The class is deliberately immutable from the *algorithms'* point of view:
agents cannot stash state on the graph, which enforces the memoryless-node
model.  The one sanctioned mutation path is :meth:`PortLabeledGraph.rewire`,
used exclusively by the simulator's fault layer (:mod:`repro.sim.faults`) to
model adversarial edge churn.
"""

from __future__ import annotations

import enum
import random
from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["PortAssignment", "PortLabeledGraph"]


class PortAssignment(enum.Enum):
    """Policy used to assign port numbers at each node.

    Port numbers are adversarial in the model (the algorithm must work for every
    labeling), so exposing multiple policies lets tests and benchmarks exercise
    labelings other than the "natural" adjacency order.

    * ``ADJACENCY`` -- ports follow the order neighbors appear in the input
      adjacency structure (deterministic).
    * ``RANDOM`` -- ports are a uniformly random permutation per node (seeded).
    * ``ASYNC_SAFE`` -- the constraint of paper Section 8.2: for any edge
      ``(u, v)`` the two port labels cannot both lie in ``{1, 2}`` unless a
      degree exception applies (port 1 allowed when it is the node's only port;
      port 2 allowed when the node has exactly two ports).  Used by the ASYNC
      general-configuration algorithm.
    """

    ADJACENCY = "adjacency"
    RANDOM = "random"
    ASYNC_SAFE = "async_safe"


def _both_low(pu: int, pv: int, deg_u: int, deg_v: int) -> bool:
    """Return True if the pair of port labels violates the Section 8.2 rule."""

    def low_ok(port: int, deg: int) -> bool:
        if port == 1 and deg == 1:
            return True
        if port == 2 and deg == 2:
            return True
        return False

    if pu <= 2 and pv <= 2:
        # Permitted only if at least one endpoint falls under an exception.
        return not (low_ok(pu, deg_u) or low_ok(pv, deg_v))
    return False


class PortLabeledGraph:
    """A simple, undirected, connected, anonymous, port-labeled graph.

    Parameters
    ----------
    adjacency:
        ``adjacency[v]`` is the ordered sequence of neighbors of node ``v``
        (nodes are ``0..n-1``).  The graph must be simple (no self loops, no
        parallel edges), undirected (``u in adjacency[v]`` iff
        ``v in adjacency[u]``) and connected.
    assignment:
        Port assignment policy, see :class:`PortAssignment`.
    seed:
        Seed for the ``RANDOM`` / ``ASYNC_SAFE`` policies.

    Notes
    -----
    Ports are 1-based, matching the paper.  ``neighbor(v, i)`` implements the
    paper's ``N(v, i)`` and ``reverse_port(v, i)`` gives the port assigned to the
    same edge at the other endpoint (what an agent observes as its incoming port
    ``pin`` after crossing the edge).
    """

    __slots__ = (
        "_n",
        "_m",
        "_offsets",
        "_flat_neighbor",
        "_flat_reverse",
        "_neighbor_to_port",
        "_degrees",
        "_churn_count",
    )

    def __init__(
        self,
        adjacency: Sequence[Sequence[int]],
        assignment: PortAssignment = PortAssignment.ADJACENCY,
        seed: int | None = None,
    ) -> None:
        n = len(adjacency)
        if n == 0:
            raise ValueError("graph must have at least one node")
        self._n = n
        self._validate_simple_undirected(adjacency)

        if assignment is PortAssignment.ASYNC_SAFE:
            # The §8.2 constraint is not always reachable by a single greedy
            # repair pass (and is not satisfiable at all for some topologies,
            # e.g. K4); retry the randomized repair from a few different
            # starting permutations before giving up.
            order = None
            base = 0 if seed is None else seed
            for attempt in range(8):
                candidate = self._port_orders(adjacency, assignment, base + 1_000_003 * attempt)
                if self._async_safe_ok(candidate):
                    order = candidate
                    break
            if order is None:
                order = candidate  # let _enforce_async_safe report the offending edge
        else:
            order = self._port_orders(adjacency, assignment, seed)

        self._churn_count = 0
        self._install_orders(order)
        self._validate_connected()
        if assignment is PortAssignment.ASYNC_SAFE:
            self._enforce_async_safe()

    def _install_orders(self, order: Sequence[Sequence[int]]) -> None:
        """(Re)build every internal structure from per-node neighbor orders.

        Flat CSR-style arrays: ports at node v occupy the contiguous slots
        ``_offsets[v] .. _offsets[v+1]-1``, so the hot accessors (`neighbor`,
        `reverse_port`, `move`) are a single indexed load instead of a nested
        list/dict lookup per simulation step.
          ``_flat_neighbor[_offsets[v] + p - 1] = u``      (the paper's N(v, p))
          ``_flat_reverse[_offsets[v] + p - 1]  = p_u(v)``
        """
        n = self._n
        self._neighbor_to_port: List[Dict[int, int]] = [
            {u: p + 1 for p, u in enumerate(order[v])} for v in range(n)
        ]
        self._degrees = [len(order[v]) for v in range(n)]
        self._m = sum(self._degrees) // 2
        offsets = array("l", [0] * (n + 1))
        for v in range(n):
            offsets[v + 1] = offsets[v] + self._degrees[v]
        self._offsets = offsets
        self._flat_neighbor = array("l", (u for v in range(n) for u in order[v]))
        self._flat_reverse = array(
            "l", (self._neighbor_to_port[u][v] for v in range(n) for u in order[v])
        )

    # ------------------------------------------------------------------ build
    @staticmethod
    def _validate_simple_undirected(adjacency: Sequence[Sequence[int]]) -> None:
        n = len(adjacency)
        for v, nbrs in enumerate(adjacency):
            seen = set()
            for u in nbrs:
                if not (0 <= u < n):
                    raise ValueError(f"node {v} lists out-of-range neighbor {u}")
                if u == v:
                    raise ValueError(f"self loop at node {v}")
                if u in seen:
                    raise ValueError(f"parallel edge {v}-{u}")
                seen.add(u)
        for v, nbrs in enumerate(adjacency):
            for u in nbrs:
                if v not in adjacency[u]:
                    raise ValueError(f"edge {v}-{u} is not symmetric")

    @staticmethod
    def _port_orders(
        adjacency: Sequence[Sequence[int]],
        assignment: PortAssignment,
        seed: int | None,
    ) -> List[List[int]]:
        if assignment is PortAssignment.ADJACENCY:
            return [list(nbrs) for nbrs in adjacency]
        rng = random.Random(seed)
        orders = []
        for nbrs in adjacency:
            order = list(nbrs)
            rng.shuffle(order)
            orders.append(order)
        if assignment is PortAssignment.ASYNC_SAFE:
            orders = PortLabeledGraph._repair_async_safe(orders, rng)
        return orders

    @staticmethod
    def _repair_async_safe(orders: List[List[int]], rng: random.Random) -> List[List[int]]:
        """Greedily permute ports so no edge has both labels in {1, 2}.

        The constraint of Section 8.2 is satisfiable for every simple graph with
        maximum degree >= 3 by a simple local repair: whenever an edge (u, v) has
        both labels low, swap one endpoint's low port with one of its high ports
        that is not itself constrained.  Degree-1 and degree-2 nodes fall under
        the paper's explicit exceptions and never need repair.
        """
        n = len(orders)
        neighbor_to_port = [
            {u: p + 1 for p, u in enumerate(orders[v])} for v in range(n)
        ]

        def violates(v: int, u: int) -> bool:
            return _both_low(
                neighbor_to_port[v][u],
                neighbor_to_port[u][v],
                len(orders[v]),
                len(orders[u]),
            )

        changed = True
        rounds = 0
        while changed and rounds < 10 * n + 100:
            changed = False
            rounds += 1
            for v in range(n):
                deg = len(orders[v])
                if deg <= 1:
                    continue  # single port 1 is always permitted
                for u in list(orders[v]):
                    if not violates(v, u):
                        continue
                    # Find a swap target: another neighbor w of v such that
                    # moving u off its low port removes the violation without
                    # creating a new one for (v, w).  High ports are preferred
                    # (they can never violate); degree-2 nodes can only swap
                    # their two low ports, which works because port 2 at a
                    # degree-2 node falls under the paper's exception.
                    pu = neighbor_to_port[v][u]
                    candidates = sorted(
                        (w for w in orders[v] if w != u),
                        key=lambda w: -neighbor_to_port[v][w],
                    )
                    rng.shuffle(candidates[3:])
                    for w in candidates:
                        pw = neighbor_to_port[v][w]
                        # Swapping would put w on port pu.  Accept only if that
                        # does not create a violation for (v, w) ...
                        if _both_low(pu, neighbor_to_port[w][v], deg, len(orders[w])):
                            continue
                        # ... and u's new port pw does not itself violate.
                        if _both_low(pw, neighbor_to_port[u][v], deg, len(orders[u])):
                            continue
                        # Perform swap of ports pu <-> pw at node v.
                        orders[v][pu - 1], orders[v][pw - 1] = orders[v][pw - 1], orders[v][pu - 1]
                        neighbor_to_port[v][u], neighbor_to_port[v][w] = pw, pu
                        changed = True
                        break
        return orders

    @staticmethod
    def _async_safe_ok(orders: List[List[int]]) -> bool:
        """Check the §8.2 constraint on a candidate port assignment."""
        neighbor_to_port = [
            {u: p + 1 for p, u in enumerate(order)} for order in orders
        ]
        for v, order in enumerate(orders):
            for u in order:
                if _both_low(
                    neighbor_to_port[v][u],
                    neighbor_to_port[u][v],
                    len(orders[v]),
                    len(orders[u]),
                ):
                    return False
        return True

    def _enforce_async_safe(self) -> None:
        for v in range(self._n):
            for p in range(1, self.degree(v) + 1):
                u = self.neighbor(v, p)
                q = self.reverse_port(v, p)
                if _both_low(p, q, self.degree(v), self.degree(u)):
                    raise ValueError(
                        "ASYNC_SAFE port assignment could not be satisfied for "
                        f"edge {v}-{u} (ports {p}, {q}); the topology may be too "
                        "constrained (e.g. many degree-3 nodes in a dense core)."
                    )

    def _validate_connected(self) -> None:
        seen = [False] * self._n
        stack = [0]
        seen[0] = True
        count = 0
        while stack:
            v = stack.pop()
            count += 1
            for u in self._flat_neighbor[self._offsets[v] : self._offsets[v + 1]]:
                if not seen[u]:
                    seen[u] = True
                    stack.append(u)
        if count != self._n:
            raise ValueError("graph must be connected")

    # ------------------------------------------------------------ navigation
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return self._m

    def degree(self, v: int) -> int:
        """Degree ``delta_v`` of node ``v``."""
        return self._degrees[v]

    @property
    def max_degree(self) -> int:
        """Maximum degree ``Delta`` of the graph."""
        return max(self._degrees)

    def neighbor(self, v: int, port: int) -> int:
        """The paper's ``N(v, port)``: node reached by leaving ``v`` via ``port``."""
        if not (1 <= port <= self._degrees[v]):
            raise ValueError(f"node {v} has no port {port} (degree {self._degrees[v]})")
        return self._flat_neighbor[self._offsets[v] + port - 1]

    def reverse_port(self, v: int, port: int) -> int:
        """Port of the same edge at the other endpoint, ``p_u(v)``.

        This is what an agent leaving ``v`` via ``port`` observes as its incoming
        port (``pin``) on arrival.
        """
        if not (1 <= port <= self._degrees[v]):
            raise ValueError(f"node {v} has no port {port} (degree {self._degrees[v]})")
        return self._flat_reverse[self._offsets[v] + port - 1]

    def move(self, v: int, port: int) -> Tuple[int, int]:
        """``(N(v, port), p_u(v))`` with a single bounds check.

        The engines' hot path: one edge crossing needs both the destination and
        the incoming port, so fetching them together halves the per-move
        accessor overhead.
        """
        if not (1 <= port <= self._degrees[v]):
            raise ValueError(f"node {v} has no port {port} (degree {self._degrees[v]})")
        i = self._offsets[v] + port - 1
        return self._flat_neighbor[i], self._flat_reverse[i]

    def adjacency_arrays(self) -> Tuple[Sequence[int], Sequence[int], Sequence[int]]:
        """The flat ``(offsets, neighbors, reverse_ports)`` arrays.

        ``neighbors[offsets[v] + p - 1]`` is ``N(v, p)`` and
        ``reverse_ports[offsets[v] + p - 1]`` is ``p_u(v)``.  Exposed for bulk
        consumers (sweep executors, vectorized analysis); callers must treat
        the arrays as read-only.
        """
        return self._offsets, self._flat_neighbor, self._flat_reverse

    def port_to(self, v: int, u: int) -> int:
        """Port of ``v`` leading to neighbor ``u`` (simulator-side helper)."""
        try:
            return self._neighbor_to_port[v][u]
        except KeyError:
            raise ValueError(f"{u} is not a neighbor of {v}") from None

    def neighbors(self, v: int) -> List[int]:
        """Neighbors of ``v`` in port order (port 1 first)."""
        return self._flat_neighbor[self._offsets[v] : self._offsets[v + 1]].tolist()

    def ports(self, v: int) -> range:
        """Iterable of valid ports at ``v``: ``1..deg(v)``."""
        return range(1, self._degrees[v] + 1)

    def nodes(self) -> range:
        """All node indices (simulator bookkeeping only)."""
        return range(self._n)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` with ``u < v``."""
        for v in range(self._n):
            for u in self._flat_neighbor[self._offsets[v] : self._offsets[v + 1]]:
                if v < u:
                    yield (v, u)

    # ------------------------------------------------------ dynamic topology
    @property
    def churn_count(self) -> int:
        """Number of :meth:`rewire` events applied so far (0 for static runs).

        The invariant checker watches this counter to know when to re-verify
        the port bijection; algorithms must never read it (nodes are
        memoryless and agents cannot observe topology changes directly).
        """
        return self._churn_count

    def removable_edges(self) -> List[Tuple[int, int]]:
        """Edges ``(u, v)`` with ``u < v`` whose removal keeps the graph connected.

        Exactly the non-bridge edges (found with one Tarjan low-link pass, so
        O(n + m)); the fault injector draws churn removals from this list.
        """
        disc = [-1] * self._n
        low = [0] * self._n
        bridges = set()
        # Iterative Tarjan bridge finding over the CSR arrays.
        timer = 0
        for root in range(self._n):
            if disc[root] >= 0:
                continue
            stack: List[Tuple[int, int, int]] = [(root, -1, 0)]  # node, parent, next-port-index
            while stack:
                v, parent, i = stack.pop()
                if i == 0:
                    disc[v] = low[v] = timer
                    timer += 1
                begin, end = self._offsets[v], self._offsets[v + 1]
                advanced = False
                while begin + i < end:
                    u = self._flat_neighbor[begin + i]
                    i += 1
                    if disc[u] < 0:
                        stack.append((v, parent, i))
                        stack.append((u, v, 0))
                        advanced = True
                        break
                    if u != parent:
                        low[v] = min(low[v], disc[u])
                if not advanced:
                    if parent >= 0:
                        low[parent] = min(low[parent], low[v])
                        if low[v] > disc[parent]:
                            bridges.add((min(parent, v), max(parent, v)))
        return [edge for edge in self.edges() if edge not in bridges]

    def missing_edges(self) -> List[Tuple[int, int]]:
        """Non-adjacent node pairs ``(u, v)`` with ``u < v`` (churn insertions).

        O(n²); intended for the fault layer on test-scale graphs only.
        """
        out = []
        for v in range(self._n):
            nbrs = self._neighbor_to_port[v]
            for u in range(v + 1, self._n):
                if u not in nbrs:
                    out.append((v, u))
        return out

    def rewire(
        self,
        remove: Optional[Tuple[int, int]] = None,
        add: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Apply one churn event in place: drop ``remove``, insert ``add``.

        This is the *simulator's* fault layer mutating the world -- the one
        sanctioned exception to the graph's immutability (agents still cannot
        stash state on nodes).  Removing an edge shifts the higher ports at
        each endpoint down by one (ports stay ``1..deg``); an added edge takes
        the new highest port at both endpoints.  The rewired graph must remain
        simple and connected or ``ValueError`` is raised and nothing changes.
        ``ASYNC_SAFE`` assignments are *not* re-repaired: churn is adversarial,
        so a rewiring may legally break the Section 8.2 constraint.

        The update is incremental: only the rows of the (at most four) endpoint
        nodes are renumbered and the flat arrays are re-assembled from slices
        of the old ones, so a churn event costs O(n) C-speed copying instead of
        the full O(n + m) Python rebuild of :meth:`_install_orders` (kept as
        :meth:`_rewire_via_rebuild`, the differential oracle).  The old array
        objects are left intact -- consumers holding zero-copy views (the
        vectorized backend) keep valid buffers until they observe
        :attr:`churn_count` and re-view.
        """
        if remove is None and add is None:
            return
        n = self._n
        n2p = self._neighbor_to_port
        if remove is not None:
            u, v = remove
            if not (0 <= u < n and 0 <= v < n) or v not in n2p[u]:
                raise ValueError(f"cannot remove nonexistent edge {remove}")
        if add is not None:
            a, b = add
            # Re-adding the edge being removed this same event is legal (it
            # only renumbers its ports); any other existing edge is rejected.
            readded = remove is not None and {a, b} == {remove[0], remove[1]}
            if not (0 <= a < n and 0 <= b < n) or a == b:
                raise ValueError(f"cannot add invalid edge {add}")
            if not readded and b in n2p[a]:
                raise ValueError(f"cannot add existing edge {add}")
        if remove is not None and not self._connected_after(remove, add):
            raise ValueError(f"rewire -{remove} +{add} would disconnect the graph")

        # New neighbor rows for the affected endpoints only.  Removal shifts
        # the higher ports down; an added edge takes the new highest port.
        affected: Dict[int, List[int]] = {}

        def row(x: int) -> List[int]:
            if x not in affected:
                affected[x] = self.neighbors(x)
            return affected[x]

        if remove is not None:
            u, v = remove
            row(u).remove(v)
            row(v).remove(u)
        if add is not None:
            a, b = add
            row(a).append(b)
            row(b).append(a)
        new_maps = {
            x: {y: p + 1 for p, y in enumerate(nbrs)} for x, nbrs in affected.items()
        }

        def port_at(y: int, x: int) -> int:
            m = new_maps.get(y)
            return m[x] if m is not None else n2p[y][x]

        # Re-assemble the flat arrays: untouched spans are copied wholesale,
        # affected rows are spliced in renumbered.
        old_off = self._offsets
        old_nbr = self._flat_neighbor
        old_rev = self._flat_reverse
        marks = sorted(affected)
        new_nbr = array("l")
        new_rev = array("l")
        prev = 0
        for x in marks:
            start = old_off[x]
            new_nbr += old_nbr[prev:start]
            new_rev += old_rev[prev:start]
            nbrs = affected[x]
            new_nbr += array("l", nbrs)
            new_rev += array("l", [port_at(y, x) for y in nbrs])
            prev = old_off[x + 1]
        new_nbr += old_nbr[prev:]
        new_rev += old_rev[prev:]

        # Offsets shift only between the first and last affected node (and past
        # the last one when the edge count changes).
        new_off = array("l", old_off)
        delta = 0
        prev_mark = 0
        for x in marks:
            if delta:
                for i in range(prev_mark + 1, x + 1):
                    new_off[i] += delta
            delta += len(affected[x]) - self._degrees[x]
            prev_mark = x
        if delta:
            for i in range(prev_mark + 1, n + 1):
                new_off[i] += delta

        # An unaffected neighbor w of an affected node x stores p_x(w) in its
        # reverse row; patch the entries where that port was renumbered.
        for x in marks:
            old_map = n2p[x]
            for w, p_new in new_maps[x].items():
                if w in affected or old_map[w] == p_new:
                    continue
                new_rev[new_off[w] + n2p[w][x] - 1] = p_new

        for x, nbrs in affected.items():
            self._degrees[x] = len(nbrs)
            n2p[x] = new_maps[x]
        self._m += (0 if add is None else 1) - (0 if remove is None else 1)
        self._offsets = new_off
        self._flat_neighbor = new_nbr
        self._flat_reverse = new_rev
        self._churn_count += 1

    def _connected_after(
        self, remove: Tuple[int, int], add: Optional[Tuple[int, int]]
    ) -> bool:
        """Connectivity of the rewired graph, checked *before* mutating.

        Removing one edge from a connected graph leaves at most two
        components, so a BFS from one endpoint that avoids the removed edge
        either reaches the other endpoint early (still connected) or halts
        with exactly one side of the cut -- in which case the insertion
        reconnects iff it crosses that cut.
        """
        u, v = remove
        seen = bytearray(self._n)
        seen[u] = 1
        queue = [u]
        head = 0
        offsets = self._offsets
        flat = self._flat_neighbor
        while head < len(queue):
            x = queue[head]
            head += 1
            for y in flat[offsets[x] : offsets[x + 1]]:
                if x == u and y == v:
                    continue  # the edge being removed
                if y == v:
                    return True
                if not seen[y]:
                    seen[y] = 1
                    queue.append(y)
        if add is None:
            return False
        a, b = add
        return seen[a] != seen[b]

    def _rewire_via_rebuild(
        self,
        remove: Optional[Tuple[int, int]] = None,
        add: Optional[Tuple[int, int]] = None,
    ) -> None:
        """The pre-incremental :meth:`rewire`: full structure rebuild.

        Kept as the differential oracle for the incremental path (tests
        compare complete internal state after random churn sequences) and as
        the baseline leg of the churn micro-benchmark in
        ``benchmarks/test_backend_throughput.py``.
        """
        if remove is None and add is None:
            return
        orders = [self.neighbors(v) for v in range(self._n)]
        if remove is not None:
            u, v = remove
            if not (0 <= u < self._n and 0 <= v < self._n) or v not in orders[u]:
                raise ValueError(f"cannot remove nonexistent edge {remove}")
            orders[u].remove(v)
            orders[v].remove(u)
        if add is not None:
            a, b = add
            if not (0 <= a < self._n and 0 <= b < self._n) or a == b:
                raise ValueError(f"cannot add invalid edge {add}")
            if b in orders[a]:
                raise ValueError(f"cannot add existing edge {add}")
            orders[a].append(b)
            orders[b].append(a)
        if not self._orders_connected(orders):
            raise ValueError(f"rewire -{remove} +{add} would disconnect the graph")
        self._install_orders(orders)
        self._churn_count += 1

    @staticmethod
    def _orders_connected(orders: Sequence[Sequence[int]]) -> bool:
        n = len(orders)
        seen = [False] * n
        seen[0] = True
        stack = [0]
        count = 0
        while stack:
            v = stack.pop()
            count += 1
            for u in orders[v]:
                if not seen[u]:
                    seen[u] = True
                    stack.append(u)
        return count == n

    # ------------------------------------------------------------- analysis
    def bfs_distances(self, source: int) -> List[int]:
        """Hop distances from ``source`` (used by analysis, not by agents)."""
        dist = [-1] * self._n
        dist[source] = 0
        queue = [source]
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            for u in self._flat_neighbor[self._offsets[v] : self._offsets[v + 1]]:
                if dist[u] < 0:
                    dist[u] = dist[v] + 1
                    queue.append(u)
        return dist

    def diameter(self) -> int:
        """Exact diameter (O(n·m); intended for analysis on test-sized graphs)."""
        best = 0
        for v in range(self._n):
            best = max(best, max(self.bfs_distances(v)))
        return best

    def is_tree(self) -> bool:
        """True when the graph is a tree (connected with n-1 edges)."""
        return self._m == self._n - 1

    def to_networkx(self):  # pragma: no cover - thin convenience wrapper
        """Export to a :class:`networkx.Graph` (analysis/visualization only)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PortLabeledGraph(n={self._n}, m={self._m}, "
            f"max_degree={self.max_degree})"
        )

    def validate(self) -> None:
        """Re-check structural invariants (used by property-based tests)."""
        for v in range(self._n):
            deg = self._degrees[v]
            if sorted(self._neighbor_to_port[v].values()) != list(range(1, deg + 1)):
                raise AssertionError(f"ports at node {v} are not 1..{deg}")
            for p in range(1, deg + 1):
                u = self.neighbor(v, p)
                q = self.reverse_port(v, p)
                if self.neighbor(u, q) != v:
                    raise AssertionError(
                        f"reverse port mismatch on edge {v}-{u}: {p}/{q}"
                    )
