"""Anonymous port-labeled graph substrate.

The dispersion algorithms of the paper run on *anonymous* graphs: nodes carry no
identifiers the agents may use, but the edges incident to each node ``v`` are
locally labeled with distinct *port numbers* ``1..deg(v)``.  The two endpoints of
an edge label it independently.  This package provides that substrate:

* :class:`~repro.graph.port_graph.PortLabeledGraph` -- the immutable graph object
  agents walk on, exposing only port-level navigation,
* :mod:`repro.graph.generators` -- a topology zoo used throughout tests,
  examples, and benchmarks,
* :mod:`repro.graph.properties` -- structural helpers (degree statistics,
  diameter, tree utilities) used by the analysis layer.
"""

from repro.graph.port_graph import PortLabeledGraph, PortAssignment
from repro.graph import generators
from repro.graph import properties

__all__ = [
    "PortLabeledGraph",
    "PortAssignment",
    "generators",
    "properties",
]
