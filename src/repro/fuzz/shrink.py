"""Delta-debugging shrinker over :class:`~repro.runner.scenario.ScenarioSpec`.

A spec is a pure value, so shrinking is just a search over rewrites: given a
failing ``(algorithm, spec)`` and a predicate that re-checks the failure, the
shrinker greedily applies the first size-reducing or canonicalizing rewrite
that still fails, and repeats until no single rewrite does -- the classical
1-minimal fixpoint of delta debugging (ddmin's subset phase specialised to a
structured value instead of a flat list).

Determinism is load-bearing: the rewrite order is fixed, the first failing
candidate always wins, and the predicate itself must be deterministic (every
run in this repo is).  Three different failing specs of the same underlying
bug therefore funnel to the *same* minimal spec whenever the rewrites can
reach it, which is what makes minimized repro fixtures stable artifacts.

Every rewrite either strictly shrinks a well-founded size measure (nodes,
agents, fault clauses, horizons) or moves a field to its canonical value
(family ``line``, seed 0, round-robin, adjacency ports...) -- canonical moves
are idempotent, so the loop terminates; a ``budget`` on predicate evaluations
bounds the worst case anyway.  Specs already evaluated are memoized by digest
(and, through the campaign's store-backed predicate, across whole campaigns).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional

from repro.runner.scenario import ScenarioSpec, build_graph

__all__ = ["ShrinkResult", "shrink", "candidates"]


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink run."""

    spec: ScenarioSpec
    steps: int  # accepted rewrites (original -> minimal path length)
    evaluations: int  # predicate calls spent
    exhausted: bool  # True when the budget ran out before the fixpoint


def _num_nodes(spec: ScenarioSpec) -> Optional[int]:
    try:
        return build_graph(spec).num_nodes
    except ValueError:
        return None


def _shrunk_ints(value: int, floor: int) -> List[int]:
    """Candidate reductions for an integer: jump to the floor, halve, decrement."""
    out = []
    for candidate in (floor, value // 2, value - 1):
        if floor <= candidate < value and candidate not in out:
            out.append(candidate)
    return out


def candidates(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Single-rewrite neighbours of ``spec``, most aggressive first.

    Invalid rewrites (a spec the runner would reject) are the *caller's*
    problem by construction: every candidate yielded here already passed
    ``ScenarioSpec`` validation, and node-count-dependent rewrites consult the
    realized graph.  Ordering is fixed -- it is part of the determinism
    contract.
    """

    def attempt(**changes) -> Optional[ScenarioSpec]:
        try:
            return replace(spec, **changes)
        except ValueError:
            return None

    out: List[Optional[ScenarioSpec]] = []

    # 1. Collapse the graph family to a line of the same size: the canonical
    #    smallest-structure family (and the one whose n-rewrites below bite).
    if spec.family != "line":
        n = _num_nodes(spec)
        if n is not None:
            out.append(attempt(family="line", params={"n": n}))

    # 2. Fewer nodes (families with an explicit n; k caps the floor).
    n_param = spec.params.get("n")
    if isinstance(n_param, int):
        for smaller in _shrunk_ints(n_param, max(1, spec.k)):
            out.append(attempt(params={**spec.params, "n": smaller}))

    # 3. Fewer agents.
    for smaller in _shrunk_ints(spec.k, 2 if spec.placement == "split" else 1):
        out.append(attempt(k=smaller))

    # 4. Collapse the placement axis.
    if spec.placement == "split":
        out.append(attempt(placement="rooted", placement_parts=1))
        for smaller in _shrunk_ints(spec.placement_parts, 2):
            out.append(attempt(placement_parts=smaller))
    if spec.start_node != 0:
        out.append(attempt(start_node=0))

    # 5. Canonical port labels and schedule.
    if spec.port_assignment != "adjacency":
        out.append(attempt(port_assignment="adjacency"))
    if spec.scheduler != "async":
        out.append(attempt(scheduler="async", scheduler_params={}))
        delay = spec.scheduler_params.get("delay_factor")
        if isinstance(delay, int):  # smaller scheduler window, same discipline
            for smaller in _shrunk_ints(delay, 1):
                out.append(
                    attempt(scheduler_params={**spec.scheduler_params, "delay_factor": smaller})
                )
    if spec.adversary != "round_robin":
        out.append(attempt(adversary="round_robin", adversary_params={}))

    # 6. Truncate the fault schedule: drop whole clauses, then make the
    #    surviving probabilities deterministic (p=1.0) and the windows tiny.
    faults: Dict = dict(spec.faults)
    for key in ("crash", "freeze", "churn", "freeze_duration", "horizon"):
        if key in faults:
            out.append(attempt(faults={k: v for k, v in faults.items() if k != key}))
    for key in ("crash", "freeze", "churn"):
        prob = faults.get(key)
        if prob is not None and prob != 1.0:
            out.append(attempt(faults={**faults, key: 1.0}))
    for key, floor in (("horizon", 1), ("freeze_duration", 1)):
        value = faults.get(key)
        if isinstance(value, int):
            for smaller in _shrunk_ints(value, floor):
                out.append(attempt(faults={**faults, key: smaller}))

    # 7. Canonical seed, no trace, reference backend.
    if spec.seed != 0:
        out.append(attempt(seed=0))
    if spec.trace:
        out.append(attempt(trace=False))
    if spec.backend != "reference":
        out.append(attempt(backend="reference"))

    for candidate in out:
        if candidate is not None and candidate.key() != spec.key():
            yield candidate


def shrink(
    spec: ScenarioSpec,
    is_failing: Callable[[ScenarioSpec], bool],
    *,
    budget: int = 400,
) -> ShrinkResult:
    """Greedy 1-minimal shrink of a failing spec.

    ``is_failing`` must return True for ``spec`` itself (the caller observed
    the failure; the shrinker never re-checks the starting point) and must be
    deterministic.  Exceptions from the predicate count as "does not fail"
    (a rewrite that breaks the run differently is not the same bug).
    """
    current = spec
    steps = 0
    evaluations = 0
    seen = {current.digest()}
    exhausted = False
    progress = True
    while progress:
        progress = False
        for candidate in candidates(current):
            digest = candidate.digest()
            if digest in seen:
                continue
            seen.add(digest)
            if evaluations >= budget:
                exhausted = True
                break
            evaluations += 1
            try:
                failing = bool(is_failing(candidate))
            except Exception:  # noqa: BLE001 - different crash != same bug
                failing = False
            if failing:
                current = candidate
                steps += 1
                progress = True
                break
        if exhausted:
            break
    return ShrinkResult(spec=current, steps=steps, evaluations=evaluations, exhausted=exhausted)
