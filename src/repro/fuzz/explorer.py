"""Bounded exhaustive exploration of scheduler interleavings (tiny instances).

Random fuzzing samples the schedule space; for *tiny* worlds we can do better
and enumerate it.  A :class:`ScriptedScheduler` plays a fixed prefix of
activation choices -- choice ``c`` at step ``t`` activates the ``c``-th of the
``k`` bound agents -- and then falls back to round-robin so every run
terminates.  Enumerating all ``k^L`` prefixes of length ``L`` is a bounded
model check of the schedule space: every distinct early interleaving the
adversary could force, each run checked by the full continuous
:class:`~repro.sim.invariants.InvariantChecker` plus the dispersal oracle.

This is the strongest correctness tier the harness has (the "Model Checking
Paxos in Spin" tradition): within the bound, absence of findings is a proof
over *all* schedules, not a statistical statement.  The bound keeps it cheap:
instances are capped at 6 nodes / 4 agents and the prefix budget truncates
enumeration deterministically (lexicographic order, so a truncated sweep
always covers the same prefix set).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.fuzz.oracles import Verdict
from repro.runner.registry import get_algorithm
from repro.runner.scenario import ScenarioSpec, build_graph, build_placements, derive_seed
from repro.sim.adversary import Scheduler
from repro.sim.instrumentation import InstrumentationConfig, instrument

__all__ = ["ScriptedScheduler", "ExplorationReport", "explore_interleavings"]

#: Instance-size ceiling for exhaustive exploration (beyond it, sample).
MAX_NODES = 6
MAX_AGENTS = 4


class ScriptedScheduler(Scheduler):
    """Plays a fixed prefix of activation choices, then round-robin.

    Each script entry picks an index into the bound agent-id list (modulo its
    length, so scripts survive rebinding); once the script is exhausted the
    scheduler cycles fairly, which keeps every scripted run terminating --
    the script controls the *interesting* early interleaving only.
    """

    def __init__(self, script: Sequence[int]) -> None:
        self.script = tuple(int(c) for c in script)
        self._agent_ids: Tuple[int, ...] = ()
        self._step = 0
        self._rr = 0

    def bind(self, agent_ids: Sequence[int]) -> None:
        self._agent_ids = tuple(agent_ids)
        self._step = 0
        self._rr = 0

    def next_agent(self) -> int:
        if not self._agent_ids:
            raise RuntimeError("scheduler not bound")
        if self._step < len(self.script):
            choice = self.script[self._step] % len(self._agent_ids)
            self._step += 1
            return self._agent_ids[choice]
        agent = self._agent_ids[self._rr % len(self._agent_ids)]
        self._rr += 1
        return agent


@dataclass(frozen=True)
class ExplorationReport:
    """Outcome of one bounded interleaving sweep."""

    algorithm: str
    spec: ScenarioSpec
    depth: int
    schedules: int  # interleavings actually run
    exhaustive: bool  # True when every k^depth prefix fit in the budget
    findings: List[Tuple[Tuple[int, ...], Verdict]]

    @property
    def ok(self) -> bool:
        return not self.findings


def _run_scripted(
    algorithm: str, spec: ScenarioSpec, script: Sequence[int]
) -> Verdict:
    """One invariant-checked run under a scripted schedule."""
    alg = get_algorithm(algorithm)
    checked = replace(spec, check_invariants=True)
    graph = build_graph(checked)
    placements = build_placements(checked, graph)
    config = InstrumentationConfig(check_invariants=True)
    try:
        with instrument(config):
            result = alg.run(
                graph,
                placements,
                adversary=ScriptedScheduler(script),
                seed=derive_seed(checked, "algorithm"),
            )
    except Exception as exc:  # noqa: BLE001 - a crash under a legal schedule is the finding
        return Verdict(ok=False, kind="error", detail=f"{type(exc).__name__}: {exc}")
    violations = config.violation_count()
    if violations:
        return Verdict(ok=False, kind="invariant", detail=f"{violations} violation(s)")
    if alg.guaranteed and not result.dispersed:
        return Verdict(ok=False, kind="not_dispersed", detail="did not disperse")
    return Verdict(ok=True)


def explore_interleavings(
    algorithm: str,
    spec: ScenarioSpec,
    *,
    depth: int = 5,
    budget: int = 512,
) -> Optional[ExplorationReport]:
    """Enumerate scheduler interleavings for a tiny ASYNC scenario.

    Returns ``None`` when the scenario is out of scope: SYNC algorithms have
    no schedule choice, faulty profiles make the script race the fault clock
    (the random tier covers those), and larger instances blow the bound.
    """
    alg = get_algorithm(algorithm)
    if alg.setting != "async":
        return None
    if dict(spec.faults):
        return None
    try:
        graph = build_graph(spec)
        placements = build_placements(spec, graph)
    except ValueError:
        return None
    if graph.num_nodes > MAX_NODES or spec.k > MAX_AGENTS:
        return None
    if not (len(placements) == 1 or alg.config == "general"):
        return None
    total = spec.k**depth
    findings: List[Tuple[Tuple[int, ...], Verdict]] = []
    schedules = 0
    for script in itertools.product(range(spec.k), repeat=depth):
        if schedules >= budget:
            break
        schedules += 1
        verdict = _run_scripted(algorithm, spec, script)
        if not verdict.ok:
            findings.append((script, verdict))
    return ExplorationReport(
        algorithm=algorithm,
        spec=spec,
        depth=depth,
        schedules=schedules,
        exhaustive=schedules == total,
        findings=findings,
    )
