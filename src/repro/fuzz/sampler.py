"""Deterministic scenario sampling over the full experiment axis product.

Each trial draws one ``(algorithm, ScenarioSpec)`` pair from a
:class:`random.Random` seeded by ``(campaign seed, trial index)``, so a
campaign is a pure function of its seed: trial 17 of seed 42 is the same
scenario on every machine, every run, forever.  That is what lets the store
deduplicate repeat campaigns (same seed -> same fingerprints -> all cache
hits) and lets a failure report be replayed from two integers.

The sampler only emits *runnable* pairs: placements respect ``k <= n``,
``split`` placements go to general-config algorithms only, and non-``async``
schedulers go to ASYNC-capable algorithms only -- "unsupported" records are a
waste of fuzz budget, not a finding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runner.registry import algorithm_names, get_algorithm
from repro.runner.scenario import ADVERSARIES, ScenarioSpec, build_graph

__all__ = ["Trial", "sample_trial", "sample_params"]

#: Bump when the sampling distribution changes shape: mixed into the per-trial
#: seed so "trial 17 of campaign 42" never silently means a different scenario
#: across versions of this module.
SAMPLER_VERSION = 1

#: Port-assignment policies worth fuzzing (all of them).
_PORT_ASSIGNMENTS = ("adjacency", "random", "async_safe")

#: Fault probabilities the sampler draws from; 1.0 included deliberately --
#: boundary probabilities are where parsers and schedulers break first.
_FAULT_PROBS = (0.05, 0.1, 0.3, 1.0)


def _clamp_n(rng: random.Random, max_nodes: int, low: int = 2) -> int:
    return rng.randint(low, max(low, max_nodes))


def sample_params(
    rng: random.Random, family: str, max_nodes: int
) -> Dict[str, int | float]:
    """Generator keyword arguments for ``family`` with ~``<= max_nodes`` nodes."""
    samplers: Dict[str, Callable[[], Dict[str, int | float]]] = {
        "line": lambda: {"n": _clamp_n(rng, max_nodes, low=1)},
        "ring": lambda: {"n": _clamp_n(rng, max_nodes, low=3)},
        "star": lambda: {"n": _clamp_n(rng, max_nodes)},
        "complete": lambda: {"n": _clamp_n(rng, max_nodes)},
        "binary_tree": lambda: {"depth": rng.randint(1, 3)},
        "random_tree": lambda: {"n": _clamp_n(rng, max_nodes)},
        "caterpillar": lambda: {
            "spine": rng.randint(2, max(2, max_nodes // 3)),
            "legs_per_node": rng.randint(1, 2),
        },
        "broom": lambda: {
            "handle": rng.randint(1, max(1, max_nodes // 2)),
            "bristles": rng.randint(1, max(1, max_nodes // 2)),
        },
        "spider": lambda: {
            "legs": rng.randint(1, 4),
            "leg_length": rng.randint(1, max(1, max_nodes // 4)),
        },
        "grid2d": lambda: {
            "rows": rng.randint(1, max(1, max_nodes // 3)),
            "cols": rng.randint(1, 4),
        },
        "hypercube": lambda: {"dim": rng.randint(1, 4)},
        "erdos_renyi": lambda: {
            "n": _clamp_n(rng, max_nodes),
            "p": rng.choice((0.2, 0.4, 0.7)),
        },
        "random_regular": lambda: {
            # n*d must be even; n even makes every d legal.
            "n": 2 * rng.randint(2, max(2, max_nodes // 2)),
            "d": rng.choice((2, 3)),
        },
        "barbell": lambda: {
            "clique": rng.randint(2, 4),
            "path": rng.randint(0, max(1, max_nodes // 3)),
        },
        "lollipop": lambda: {
            "clique": rng.randint(2, 4),
            "path": rng.randint(0, max(1, max_nodes // 3)),
        },
    }
    return samplers[family]()


def _sample_faults(rng: random.Random) -> Dict[str, int | float]:
    """A fault profile; roughly half the trials stay fault-free."""
    if rng.random() < 0.5:
        return {}
    profile: Dict[str, int | float] = {}
    for kind in ("crash", "freeze", "churn"):
        if rng.random() < 0.4:
            profile[kind] = rng.choice(_FAULT_PROBS)
    if not profile:
        profile[rng.choice(("crash", "freeze", "churn"))] = rng.choice(_FAULT_PROBS)
    if rng.random() < 0.4:
        profile["horizon"] = rng.choice((8, 40, 240))
    if "freeze" in profile and rng.random() < 0.5:
        profile["freeze_duration"] = rng.choice((3, 40))
    return profile


def _sample_scheduler(
    rng: random.Random, setting: str
) -> Tuple[str, Dict[str, int | float]]:
    if setting != "async" or rng.random() < 0.5:
        return "async", {}
    scheduler = rng.choice(("lockstep", "semi-sync", "bounded-delay"))
    if scheduler == "semi-sync":
        return scheduler, {"p": rng.choice((0.25, 0.5, 0.75))}
    if scheduler == "bounded-delay":
        return scheduler, {"delay_factor": rng.randint(2, 4)}
    return scheduler, {}


@dataclass(frozen=True)
class Trial:
    """One sampled fuzz trial: which algorithm runs which scenario."""

    index: int
    algorithm: str
    spec: ScenarioSpec


def sample_trial(
    campaign_seed: int,
    index: int,
    *,
    algorithms: Optional[Sequence[str]] = None,
    families: Optional[Sequence[str]] = None,
    max_nodes: int = 12,
    max_agents: int = 8,
) -> Trial:
    """Draw trial ``index`` of campaign ``campaign_seed`` (pure, replayable).

    The draw loops until the sampled axes are mutually consistent (e.g. a
    rooted-only algorithm never gets a split placement); the loop is bounded
    and deterministic because it consumes one fixed rng stream.
    """
    # String seeds hash through sha512, deterministically across processes
    # and Python versions (unlike tuple seeds, which Random rejects).
    rng = random.Random(f"repro-fuzz/{SAMPLER_VERSION}/{campaign_seed}/{index}")
    names = list(algorithms) if algorithms else algorithm_names()
    for name in names:
        get_algorithm(name)  # raise early on unknown names
    for _ in range(64):
        algorithm = rng.choice(names)
        spec = get_algorithm(algorithm)
        family = rng.choice(list(families) if families else _FAMILIES)
        params = sample_params(rng, family, max_nodes)
        scheduler, scheduler_params = _sample_scheduler(rng, spec.setting)
        adversary = rng.choice(ADVERSARIES) if spec.setting == "async" else "round_robin"
        placement = "split" if spec.config == "general" and rng.random() < 0.5 else "rooted"
        candidate = ScenarioSpec(
            family=family,
            params=params,
            k=1,  # placeholder until the realized node count is known
            port_assignment=rng.choice(_PORT_ASSIGNMENTS),
            placement=placement,
            placement_parts=rng.randint(2, 4) if placement == "split" else 1,
            adversary=adversary,
            scheduler=scheduler,
            scheduler_params=scheduler_params,
            seed=rng.randrange(2**32),
            faults=_sample_faults(rng),
            check_invariants=True,
        )
        try:
            n = build_graph(replace(candidate, port_assignment="adjacency")).num_nodes
        except ValueError:
            continue  # inconsistent params for this family; redraw
        k = rng.randint(1, min(max_agents, n))
        if placement == "split" and k < 2:
            continue
        final = replace(candidate, k=k)
        try:
            # Validate the *final* spec: the graph seed derives from the full
            # base key (k included), and e.g. async_safe port assignment is
            # satisfiable or not per seed -- a placeholder-k build proves
            # nothing about the trial actually emitted.
            build_graph(final)
        except ValueError:
            continue
        return Trial(index=index, algorithm=algorithm, spec=final)
    raise RuntimeError(
        f"sampler failed to draw a consistent trial (seed={campaign_seed}, index={index})"
    )


# Keep the family order frozen: rng.choice indexes into it, so reordering
# would silently reshuffle every (seed, index) -> scenario mapping.
_FAMILIES: List[str] = [
    "line",
    "ring",
    "star",
    "complete",
    "binary_tree",
    "random_tree",
    "caterpillar",
    "broom",
    "spider",
    "grid2d",
    "hypercube",
    "erdos_renyi",
    "random_regular",
    "barbell",
    "lollipop",
]
