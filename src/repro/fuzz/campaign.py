"""The ``repro fuzz`` loop: sample -> check -> (shrink -> fixture) -> report.

One campaign is a pure function of ``(seed, trials, config)``: trials come
from the deterministic sampler, every execution is byte-deterministic, and the
shrinker is greedy-first-accept, so two runs of the same campaign produce the
same findings, the same minimal specs, and the same fixture bytes.  Pointing
the campaign at a :class:`~repro.store.RunStore` makes repetition *free* as
well as safe: each (algorithm, scenario) executes at most once per store
lifetime -- repeat draws, overlapping shards, and shrink-step re-evaluations
all dedupe through the run fingerprint.

The ``planted_bug`` mode swaps the record oracle for a deliberately broken
predicate (:func:`planted_bug_oracle`).  It exists to prove the *loop* works:
CI runs a seeded campaign against it and asserts the failure is found, shrunk
to the known 1-minimal spec, and reported byte-identically on a second run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.fuzz import corpus as corpus_mod
from repro.fuzz.explorer import explore_interleavings
from repro.fuzz.oracles import (
    Verdict,
    backend_differential,
    check_record,
    differential_pair,
    engine_differential,
)
from repro.fuzz.sampler import Trial, sample_trial
from repro.fuzz.shrink import ShrinkResult, shrink
from repro.runner.execute import RunRecord, run_scenario
from repro.runner.scenario import ScenarioSpec
from repro.sim.backends import backend_available
from repro.sim.faults import FaultSpec
from repro.store import RunStore, run_fingerprint

__all__ = [
    "CampaignConfig",
    "FuzzFinding",
    "FuzzReport",
    "planted_bug_oracle",
    "run_campaign",
]


def planted_bug_oracle(record: RunRecord) -> Verdict:
    """A deliberately broken record oracle (the falsification self-test).

    Pretends that any churn-faulted run with ``n >= 4`` and ``k >= 3`` violates
    an invariant.  The bug is synthetic but the pipeline around it is not:
    finding it exercises the sampler, the store dedup, the shrinker, and the
    report exactly as a real invariant violation would, and its 1-minimal spec
    is known in closed form (a 4-node line, 3 agents, ``churn: 1.0``), which
    is what CI pins.
    """
    real = check_record(record)
    if not real.ok or real.is_skip:
        return real
    faults = FaultSpec.from_dict(record.scenario.get("faults", {}))
    n = record.n if record.n is not None else 0
    if faults.churn > 0 and n >= 4 and record.k is not None and record.k >= 3:
        return Verdict(ok=False, kind="invariant", detail="planted: churn oracle tripped")
    return real


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one fuzz campaign (all deterministic given the seed)."""

    trials: int = 100
    seed: int = 0
    store_path: Optional[str] = None
    corpus_dir: Optional[str] = None
    algorithms: Optional[List[str]] = None
    max_nodes: int = 12
    max_agents: int = 8
    shrink: bool = True
    shrink_budget: int = 400
    differential: bool = True
    explore: bool = True
    explore_depth: int = 4
    explore_budget: int = 128
    planted_bug: bool = False


@dataclass
class FuzzFinding:
    """One falsified trial, before and after shrinking."""

    trial: int
    algorithm: str
    spec: ScenarioSpec
    verdict: Verdict
    minimized: Optional[ScenarioSpec] = None
    shrink_steps: int = 0
    shrink_evaluations: int = 0
    fixture_path: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "trial": self.trial,
            "algorithm": self.algorithm,
            "kind": self.verdict.kind,
            "detail": self.verdict.detail,
            "scenario": self.spec.to_dict(),
        }
        if self.minimized is not None:
            data["minimized"] = self.minimized.to_dict()
            data["shrink"] = {
                "steps": self.shrink_steps,
                "evaluations": self.shrink_evaluations,
            }
        if self.fixture_path:
            data["fixture"] = self.fixture_path
        return data


@dataclass
class FuzzReport:
    """What a campaign did: volume, dedup, and findings."""

    trials: int = 0
    executed: int = 0
    cache_hits: int = 0
    skipped: int = 0
    differentials: int = 0
    explored_schedules: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def _run_cached(
    algorithm: str,
    spec: ScenarioSpec,
    store: Optional[RunStore],
    report: FuzzReport,
) -> RunRecord:
    """Execute through the store: a fingerprint already present never re-runs."""
    if store is None:
        report.executed += 1
        return run_scenario(algorithm, spec)
    fingerprint = run_fingerprint(algorithm, spec)
    cached = store.get(fingerprint)
    if cached is not None:
        report.cache_hits += 1
        return cached
    report.executed += 1
    record = run_scenario(algorithm, spec)
    store.put(fingerprint, record)
    return record


def _reproduces(
    algorithm: str,
    kind: str,
    oracle: Callable[[RunRecord], Verdict],
    store: Optional[RunStore],
    report: FuzzReport,
) -> Callable[[ScenarioSpec], bool]:
    """The shrinker's predicate: does the *same kind* of failure still occur?"""

    def predicate(spec: ScenarioSpec) -> bool:
        if kind == "engine_divergence":
            return not engine_differential(algorithm, spec).ok
        if kind == "backend_divergence":
            return not backend_differential(algorithm, spec).ok
        verdict = oracle(_run_cached(algorithm, spec, store, report))
        return (not verdict.ok) and verdict.kind == kind
    return predicate


def _handle_finding(
    finding: FuzzFinding,
    oracle: Callable[[RunRecord], Verdict],
    config: CampaignConfig,
    store: Optional[RunStore],
    report: FuzzReport,
) -> None:
    """Shrink a finding to 1-minimal and persist it as a corpus fixture."""
    if config.shrink:
        result: ShrinkResult = shrink(
            finding.spec,
            _reproduces(finding.algorithm, finding.verdict.kind, oracle, store, report),
            budget=config.shrink_budget,
        )
        finding.minimized = result.spec
        finding.shrink_steps = result.steps
        finding.shrink_evaluations = result.evaluations
    if config.corpus_dir:
        minimal = finding.minimized if finding.minimized is not None else finding.spec
        entry = corpus_mod.fixture_entry(
            finding.algorithm,
            minimal,
            finding.verdict.kind,
            notes=finding.verdict.detail,
            found={"campaign_seed": config.seed, "trial": finding.trial},
            shrink={
                "steps": finding.shrink_steps,
                "evaluations": finding.shrink_evaluations,
            },
        )
        finding.fixture_path = corpus_mod.write_fixture(config.corpus_dir, entry)
    report.findings.append(finding)


def run_campaign(
    config: CampaignConfig,
    *,
    progress: Optional[Callable[[int, int, str], None]] = None,
) -> FuzzReport:
    """Run one falsification campaign (see module docstring)."""
    report = FuzzReport()
    oracle = planted_bug_oracle if config.planted_bug else check_record
    diff_backend = config.differential and backend_available("vectorized")
    store = RunStore(config.store_path) if config.store_path else None
    try:
        for index in range(config.trials):
            trial: Trial = sample_trial(
                config.seed,
                index,
                algorithms=config.algorithms,
                max_nodes=config.max_nodes,
                max_agents=config.max_agents,
            )
            report.trials += 1
            record = _run_cached(trial.algorithm, trial.spec, store, report)
            verdict = oracle(record)
            if verdict.is_skip:
                report.skipped += 1
            if progress is not None:
                progress(index, config.trials, verdict.kind)
            if not verdict.ok:
                _handle_finding(
                    FuzzFinding(trial.index, trial.algorithm, trial.spec, verdict),
                    oracle,
                    config,
                    store,
                    report,
                )
                continue
            # Differential tier: only meaningful on clean, supported runs.
            if verdict.is_skip or not config.differential:
                continue
            if diff_backend and record.status == "ok":
                vec = _run_cached(
                    trial.algorithm, trial.spec.with_backend("vectorized"), store, report
                )
                diff = backend_differential(
                    trial.algorithm, trial.spec, reference_record=record, vectorized_record=vec
                )
                report.differentials += 1
                if not diff.ok:
                    _handle_finding(
                        FuzzFinding(trial.index, trial.algorithm, trial.spec, diff),
                        oracle,
                        config,
                        store,
                        report,
                    )
                    continue
            if differential_pair(trial.algorithm, trial.spec) is not None:
                diff = engine_differential(trial.algorithm, trial.spec)
                report.differentials += 1
                if not diff.is_skip and not diff.ok:
                    _handle_finding(
                        FuzzFinding(trial.index, trial.algorithm, trial.spec, diff),
                        oracle,
                        config,
                        store,
                        report,
                    )
                    continue
            # Exhaustive tier: tiny fault-free ASYNC instances get their full
            # schedule prefix space enumerated instead of one sampled order.
            if config.explore:
                exploration = explore_interleavings(
                    trial.algorithm,
                    trial.spec,
                    depth=config.explore_depth,
                    budget=config.explore_budget,
                )
                if exploration is not None:
                    report.explored_schedules += exploration.schedules
                    if not exploration.ok:
                        script, bad = exploration.findings[0]
                        found = Verdict(
                            ok=False,
                            kind=bad.kind,
                            detail=f"schedule prefix {list(script)}: {bad.detail}",
                        )
                        _handle_finding(
                            FuzzFinding(trial.index, trial.algorithm, trial.spec, found),
                            oracle,
                            config,
                            store,
                            report,
                        )
    finally:
        if store is not None:
            store.close()
    return report
