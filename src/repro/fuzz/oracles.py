"""What counts as a bug: record-level, backend-differential, and engine-differential oracles.

Three independent notions of "wrong", strongest first:

* :func:`check_record` -- the per-run oracle.  Invariant violations on
  fault-free runs are always bugs, as are crashes and guaranteed algorithms
  not dispersing.  Under *injected* faults the oracle mirrors the sweep
  policy: crashes, non-dispersal, and the settlement-safety violations the
  fault model legitimately causes (a blocked settler answers no probes; churn
  rewires a helper-settler's path home) are findings-as-data -- but the
  structural invariants (port bijection, monotone settled count, settled
  consistency) must hold under every profile, full stop.
* :func:`backend_differential` -- byte-compares the reference and vectorized
  kernels on one scenario.  The two records must be identical except for the
  scenario's ``backend`` tag; any other byte is a kernel bug in one of them.
* :func:`engine_differential` -- the metamorphic sync-vs-async relation: under
  the round-robin schedule the ASYNC variant of each paper algorithm must
  settle exactly the nodes its SYNC twin settles.  Oracle-free: neither engine
  is trusted, they must merely agree.

Each oracle returns a :class:`Verdict`; ``kind`` names the failure class and
doubles as the shrinker's reproduction predicate (a shrink candidate counts as
"still failing" only when the *same kind* of failure reproduces).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.runner.execute import RunRecord, run_scenario
from repro.runner.registry import get_algorithm
from repro.runner.scenario import (
    ScenarioSpec,
    build_graph,
    build_instrumentation,
    build_placements,
    build_scheduler,
    derive_seed,
)
from repro.sim.backends import backend_available
from repro.sim.faults import FaultSpec
from repro.sim.instrumentation import instrument

__all__ = [
    "Verdict",
    "check_record",
    "backend_differential",
    "engine_differential",
    "differential_pair",
    "settled_set",
]

#: SYNC <-> ASYNC metamorphic pairs (each paper algorithm and its twin).
ENGINE_PAIRS: Dict[str, str] = {
    "rooted_sync": "rooted_async",
    "rooted_async": "rooted_sync",
    "general_sync": "general_async",
    "general_async": "general_sync",
}


@dataclass(frozen=True)
class Verdict:
    """One oracle's judgement of one run (or run pair)."""

    ok: bool
    #: "ok" | "skip" | "error" | "invariant" | "not_dispersed"
    #: | "backend_divergence" | "engine_divergence"
    kind: str = "ok"
    detail: str = ""

    @property
    def is_skip(self) -> bool:
        return self.ok and self.kind == "skip"


def _faults_active(scenario: Dict[str, Any]) -> bool:
    return FaultSpec.from_dict(scenario.get("faults", {})).is_active


#: Invariants no fault profile can excuse: faults block agents and rewire
#: edges, but they never sanction a settled agent teleporting, the settled
#: count shrinking, or the port maps losing bijectivity.
STRUCTURAL_INVARIANTS = frozenset(
    {"settled_consistency", "monotone_settled", "port_bijection"}
)


def _inexcusable_violations(record: RunRecord) -> List[str]:
    """Violation descriptions a fault profile cannot explain away.

    Settlement safety (``unique_settlement``, ``final_dispersion``) *can*
    legitimately break under faults: a blocked settler answers no probes (the
    crash-stop convention), so an arriving agent settles on its node; and
    churn rewires edges under algorithms that conscript settlers as helpers
    (``sudo_disc24``'s doubling probe), stranding them off their home on the
    walk back.  The sweep policy counts those as findings-as-data, and so does
    this oracle.  The structural invariants have no such story: nothing a
    fault may do unsettles an agent, desyncs its persisted settled bit, or
    breaks the port bijection -- those are bugs under every profile.

    The record only carries a violation *count*, so classification re-runs
    the scenario with a live checker; runs are deterministic, so the replay
    exhibits exactly the recorded violations.
    """
    spec = ScenarioSpec.from_dict(record.scenario)
    config = build_instrumentation(spec)
    alg = get_algorithm(record.algorithm)
    graph = build_graph(spec)
    placements = build_placements(spec, graph)
    adversary = build_scheduler(spec) if alg.setting == "async" else None
    try:
        with instrument(config):
            alg.run(graph, placements, adversary=adversary, seed=derive_seed(spec, "algorithm"))
    except Exception:  # noqa: BLE001 - the record already captured the crash
        pass
    return [
        f"[t={violation.time}] {violation.name}: {violation.detail}"
        for checker in config.checkers
        for violation in checker.violations
        if violation.name in STRUCTURAL_INVARIANTS
    ]


def check_record(record: RunRecord) -> Verdict:
    """The per-run oracle (see module docstring for the failure policy)."""
    if record.status == "unsupported":
        return Verdict(ok=True, kind="skip", detail=record.error or "unsupported")
    if record.invariant_violations:
        if not _faults_active(record.scenario):
            return Verdict(
                ok=False,
                kind="invariant",
                detail=f"{record.invariant_violations} invariant violation(s)",
            )
        inexcusable = _inexcusable_violations(record)
        if inexcusable:
            return Verdict(
                ok=False,
                kind="invariant",
                detail="; ".join(inexcusable[:3]),
            )
        return Verdict(ok=True)  # settlement safety broken by modeled faults: data
    if _faults_active(record.scenario):
        return Verdict(ok=True)  # crashes/non-dispersal under faults are data
    if record.status == "error":
        return Verdict(ok=False, kind="error", detail=record.error or "crashed")
    spec = get_algorithm(record.algorithm)
    if spec.guaranteed and record.dispersed is False:
        return Verdict(
            ok=False,
            kind="not_dispersed",
            detail=f"{record.algorithm} guarantees dispersion but did not disperse",
        )
    return Verdict(ok=True)


def _record_key_without_backend(record: RunRecord) -> str:
    """Canonical record JSON with the scenario's backend tag erased.

    The backend is the only byte allowed to differ between the two runs of the
    differential: it names *how* the record was computed, not what.
    """
    data = record.to_dict()
    data["scenario"] = dict(data["scenario"])
    data["scenario"].pop("backend", None)
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def backend_differential(
    algorithm: str,
    spec: ScenarioSpec,
    reference_record: Optional[RunRecord] = None,
    vectorized_record: Optional[RunRecord] = None,
) -> Verdict:
    """Reference vs vectorized kernel on one scenario; byte-equal or bug.

    Callers that already hold one side's record (e.g. the campaign, which
    store-caches both) pass it in to avoid re-execution.
    """
    if not backend_available("vectorized"):
        return Verdict(ok=True, kind="skip", detail="vectorized backend unavailable")
    if reference_record is None:
        reference_record = run_scenario(algorithm, spec.with_backend("reference"))
    if vectorized_record is None:
        vectorized_record = run_scenario(algorithm, spec.with_backend("vectorized"))
    if reference_record.status == "unsupported":
        return Verdict(ok=True, kind="skip", detail="unsupported pairing")
    left = _record_key_without_backend(reference_record)
    right = _record_key_without_backend(vectorized_record)
    if left == right:
        return Verdict(ok=True)
    fields = sorted(
        name
        for name, value in reference_record.to_dict().items()
        if name != "scenario" and vectorized_record.to_dict().get(name) != value
    )
    return Verdict(
        ok=False,
        kind="backend_divergence",
        detail=f"reference and vectorized records differ in: {', '.join(fields) or 'scenario'}",
    )


def settled_set(algorithm: str, spec: ScenarioSpec) -> Any:
    """Sorted settled positions of one run (the metamorphic observable).

    Runs the algorithm driver directly (not through the store) under the
    spec's instrumentation-free world: the relation is about fault-free
    schedules, and direct execution keeps it independent of the record layer.
    """
    alg = get_algorithm(algorithm)
    graph = build_graph(spec)
    placements = build_placements(spec, graph)
    adversary = build_scheduler(spec) if alg.setting == "async" else None
    with instrument(None):
        result = alg.run(
            graph, placements, adversary=adversary, seed=derive_seed(spec, "algorithm")
        )
    if not result.dispersed:
        raise AssertionError(f"{algorithm} failed to disperse on {spec.label()}")
    return sorted(result.positions.values())


def differential_pair(algorithm: str, spec: ScenarioSpec) -> Optional[str]:
    """The metamorphic twin to compare against, or ``None`` when out of scope.

    The relation holds for fault-free runs under the round-robin schedule (the
    "most synchronous" fair order); anything else is outside its hypothesis.
    """
    twin = ENGINE_PAIRS.get(algorithm)
    if twin is None:
        return None
    if FaultSpec.from_dict(spec.faults).is_active:
        return None
    if spec.scheduler != "async" or spec.adversary != "round_robin":
        return None
    return twin


def engine_differential(algorithm: str, spec: ScenarioSpec) -> Verdict:
    """SYNC vs ASYNC settled-set comparison (skip when out of scope)."""
    twin = differential_pair(algorithm, spec)
    if twin is None:
        return Verdict(ok=True, kind="skip", detail="no metamorphic twin in scope")
    base = spec.with_faults({}, check_invariants=False)
    try:
        mine = settled_set(algorithm, base)
        theirs = settled_set(twin, base)
    except Exception as exc:  # noqa: BLE001 - divergence report, not a crash
        return Verdict(ok=False, kind="engine_divergence", detail=str(exc))
    if mine == theirs:
        return Verdict(ok=True)
    return Verdict(
        ok=False,
        kind="engine_divergence",
        detail=(
            f"{algorithm} settled {len(mine)} node(s) {mine[:8]}... but "
            f"{twin} settled {len(theirs)} node(s) {theirs[:8]}..."
        ),
    )
