"""Continuous falsification: sample scenarios, check them, shrink what fails.

The runner makes every scenario a pure value (:class:`~repro.runner.scenario.
ScenarioSpec`) and every run byte-deterministic; this package turns those two
properties into a bug-hunting loop:

* :mod:`repro.fuzz.sampler` -- deterministic random draws over the full axis
  product (graph family x placement x scheduler x fault schedule), seeded per
  trial so any draw can be replayed from ``(campaign seed, trial index)``;
* :mod:`repro.fuzz.oracles` -- what "wrong" means: record-level invariant and
  dispersal checks, the reference-vs-vectorized backend differential, and the
  sync-vs-async metamorphic engine differential;
* :mod:`repro.fuzz.shrink` -- a delta-debugging shrinker over specs: greedily
  apply size-reducing / canonicalizing rewrites while the failure reproduces,
  until no single rewrite still fails (1-minimal);
* :mod:`repro.fuzz.explorer` -- for tiny instances, a bounded *exhaustive*
  enumeration of scheduler interleavings (the strongest tier: not sampling
  but model checking a prefix of the schedule space);
* :mod:`repro.fuzz.corpus` -- minimized repro fixtures (``repro-fuzz-repro-v1``)
  written under ``tests/fixtures/fuzz/`` and auto-replayed by a parametrized
  regression test, so every bug the campaign ever found stays fixed;
* :mod:`repro.fuzz.campaign` -- the ``repro fuzz`` loop tying it together,
  deduplicating every execution through the :class:`~repro.store.RunStore`
  (a repeat draw, or a shrink step that revisits a spec, costs one SQL lookup).
"""

from repro.fuzz.campaign import CampaignConfig, FuzzFinding, FuzzReport, run_campaign
from repro.fuzz.corpus import (
    FIXTURE_FORMAT,
    default_corpus_dir,
    fixture_entry,
    load_fixtures,
    replay_fixture,
    write_fixture,
)
from repro.fuzz.explorer import ScriptedScheduler, explore_interleavings
from repro.fuzz.oracles import Verdict, backend_differential, check_record, engine_differential
from repro.fuzz.sampler import Trial, sample_trial
from repro.fuzz.shrink import ShrinkResult, shrink

__all__ = [
    "CampaignConfig",
    "FuzzFinding",
    "FuzzReport",
    "run_campaign",
    "FIXTURE_FORMAT",
    "default_corpus_dir",
    "fixture_entry",
    "load_fixtures",
    "replay_fixture",
    "write_fixture",
    "ScriptedScheduler",
    "explore_interleavings",
    "Verdict",
    "backend_differential",
    "check_record",
    "engine_differential",
    "Trial",
    "sample_trial",
    "shrink",
    "ShrinkResult",
]
