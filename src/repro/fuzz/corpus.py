"""Minimized repro fixtures: the campaign's permanent memory.

Every bug the fuzzer pins ends up as one small JSON file -- format
``repro-fuzz-repro-v1`` -- holding the minimized ``(algorithm, scenario)``
pair, the failure kind it originally exhibited, and the canonical record
bytes the *fixed* code produces for it.  ``tests/test_fuzz_corpus.py``
auto-parametrizes over every fixture in ``tests/fixtures/fuzz/`` and asserts
two things on replay:

* the run's canonical record JSON equals ``expected_record`` byte for byte
  (reverting the fix changes the bytes -> the test goes red), and
* the record passes :func:`~repro.fuzz.oracles.check_record` (the bug stays
  fixed under its own oracle, not just byte-pinned).

Fixture filenames embed the failure kind, algorithm, and scenario digest, so
a corpus directory is content-addressed and merge-friendly: two campaign
shards that found the same minimal bug write the same file.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.fuzz.oracles import Verdict, check_record
from repro.runner.artifacts import canonical_record_json
from repro.runner.execute import RunRecord, run_scenario
from repro.runner.scenario import ScenarioSpec

__all__ = [
    "FIXTURE_FORMAT",
    "default_corpus_dir",
    "fixture_entry",
    "fixture_name",
    "write_fixture",
    "load_fixtures",
    "replay_fixture",
]

FIXTURE_FORMAT = "repro-fuzz-repro-v1"


def default_corpus_dir() -> str:
    """The committed corpus replayed by the regression test (repo-relative)."""
    return os.path.join("tests", "fixtures", "fuzz")


def fixture_name(entry: Dict[str, Any]) -> str:
    spec = ScenarioSpec.from_dict(entry["scenario"])
    return f"{entry['kind']}-{entry['algorithm']}-{spec.digest()}.json"


def fixture_entry(
    algorithm: str,
    spec: ScenarioSpec,
    kind: str,
    *,
    notes: str = "",
    found: Optional[Dict[str, int]] = None,
    shrink: Optional[Dict[str, int]] = None,
    record: Optional[RunRecord] = None,
) -> Dict[str, Any]:
    """Assemble a fixture dict (executing the scenario unless given its record)."""
    if record is None:
        record = run_scenario(algorithm, spec)
    entry: Dict[str, Any] = {
        "format": FIXTURE_FORMAT,
        "algorithm": algorithm,
        "scenario": spec.to_dict(),
        "kind": kind,
        "expected_record": json.loads(canonical_record_json(record)),
    }
    if notes:
        entry["notes"] = notes
    if found:
        entry["found"] = dict(found)
    if shrink:
        entry["shrink"] = dict(shrink)
    return entry


def write_fixture(corpus_dir: str, entry: Dict[str, Any]) -> str:
    """Write one fixture (idempotent: same minimal bug -> same file, same bytes)."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, fixture_name(entry))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_fixtures(corpus_dir: str) -> List[Tuple[str, Dict[str, Any]]]:
    """All ``(path, entry)`` fixtures under a corpus dir, sorted by filename."""
    if not os.path.isdir(corpus_dir):
        return []
    out = []
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(corpus_dir, name)
        with open(path, encoding="utf-8") as fh:
            entry = json.load(fh)
        if entry.get("format") != FIXTURE_FORMAT:
            raise ValueError(f"{path}: not a {FIXTURE_FORMAT} fixture")
        out.append((path, entry))
    return out


def replay_fixture(entry: Dict[str, Any]) -> Tuple[RunRecord, Verdict, bool]:
    """Re-run a fixture; returns ``(record, oracle verdict, bytes match)``."""
    spec = ScenarioSpec.from_dict(entry["scenario"])
    record = run_scenario(entry["algorithm"], spec)
    expected = json.dumps(entry["expected_record"], sort_keys=True, separators=(",", ":"))
    matches = canonical_record_json(record) == expected
    return record, check_record(record), matches
