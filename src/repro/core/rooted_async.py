"""Rooted ASYNC dispersion (paper Algorithm 8, Theorem 7.1).

``RootedAsyncDispersion`` disperses ``k ≤ n`` agents initially co-located on
one node in ``O(k log k)`` epochs with ``O(log(k + Δ))`` bits per agent under a
fully asynchronous scheduler.  It is the DFS skeleton of the classical
algorithms with two ASYNC-safe primitives:

* :func:`~repro.core.async_probe.async_probe` finds a fully unsettled neighbor
  of the DFS head in ``O(log k)`` epochs by doubling the prober pool with
  recruited settled helpers (Algorithm 3);
* :func:`~repro.core.async_probe.guest_see_off` returns every recruited helper
  to its home node *before* the DFS advances (Algorithm 4), so an "empty"
  observation at the next head cannot be an artifact of a helper still being in
  transit -- the subtle hazard of asynchrony described in Section 4.3.

Unlike the SYNC algorithm there are no empty tree nodes and no oscillation:
every visited node keeps a settler, and the DFS performs ``k - 1`` forward and
at most ``k - 1`` backtrack moves, each preceded by one probe/see-off pair.

The whole execution is driven by the adversarial activation scheduler of
:class:`~repro.sim.async_engine.AsyncEngine`; time is the engine's epoch count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.agents.agent import Agent, AgentRole
from repro.agents.memory import MemoryModel
from repro.analysis.verification import is_dispersed
from repro.core.async_probe import async_probe, guest_see_off
from repro.graph.port_graph import PortLabeledGraph
from repro.sim.adversary import Adversary
from repro.sim.async_engine import AsyncEngine, Move, Stay, WaitUntil
from repro.sim.result import DispersionResult

__all__ = ["RootedAsyncDispersion", "rooted_async_dispersion"]


class RootedAsyncDispersion:
    """Driver for the rooted ASYNC dispersion algorithm (Theorem 7.1).

    Parameters
    ----------
    graph, k, start_node:
        The substrate, population size, and the common start node.
    adversary:
        Activation policy (defaults to a seeded random adversary); see
        :mod:`repro.sim.adversary`.
    treelabel:
        Label written into every settler of this DFS (0 for the rooted case;
        the general-configuration driver uses distinct labels per root).
    strict:
        Verify every "fully unsettled" report against simulator ground truth.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        k: int,
        start_node: int = 0,
        adversary: Optional[Adversary] = None,
        treelabel: int = 0,
        strict: bool = True,
        max_activations: Optional[int] = None,
        engine: Optional[AsyncEngine] = None,
        agents: Optional[Dict[int, Agent]] = None,
        foreign_visited: Optional[Set[int]] = None,
        probe_cap: Optional[int] = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > graph.num_nodes:
            raise ValueError(f"k={k} agents cannot disperse on n={graph.num_nodes} nodes")
        self.graph = graph
        self.k = k
        self.root = start_node
        self.treelabel = treelabel
        self.strict = strict
        if agents is not None:
            # Group mode: operate on a shared engine and an agent subset.
            if engine is None:
                raise ValueError("group mode requires an existing engine")
            self.agents = dict(agents)
            self.engine = engine
            self.memory_model = next(iter(self.agents.values())).memory.model
        else:
            self.memory_model = MemoryModel(k=k, max_degree=graph.max_degree)
            self.agents = {
                i: Agent(i, start_node, self.memory_model) for i in range(1, k + 1)
            }
            if max_activations is None:
                import math

                log_k = int(math.log2(k + 2)) + 2
                max_activations = 600 * k * k * log_k + 200_000
            self.engine = AsyncEngine(
                graph,
                self.agents.values(),
                adversary=adversary,
                max_activations=max_activations,
            )
        self.leader = max(self.agents.values(), key=lambda a: a.agent_id)
        self.leader.role = AgentRole.LEADER
        self.metrics = self.engine.metrics
        #: Cap on ports probed per Async_Probe call (k in the rooted case).
        self.probe_cap = probe_cap if probe_cap is not None else k
        self.visited: Set[int] = set()
        self.foreign_visited: Set[int] = foreign_visited if foreign_visited is not None else set()
        self.dfs_parent: List[Optional[int]] = [None] * graph.num_nodes
        #: Set when the leader's program has ended (used in group mode, where a
        #: blocked DFS ends its program with agents still unsettled).
        self.finished = False
        self.blocked = False

    # ------------------------------------------------------------------- run
    def run(self) -> DispersionResult:
        """Execute the algorithm under the configured adversary."""
        self.engine.assign(self.leader.agent_id, self._leader_program())
        self.engine.run_until(lambda: all(a.settled for a in self.agents.values()))
        metrics = self.engine.finalize_metrics()
        return DispersionResult(
            dispersed=is_dispersed(self.agents.values()),
            positions=self.engine.kernel.positions(),
            metrics=metrics,
            dfs_parent=list(self.dfs_parent),
            algorithm="RootedAsyncDisp",
            notes={"k": self.k, "treelabel": self.treelabel},
        )

    def is_visited(self, node: int) -> bool:
        """Ground truth for strict checks: visited by this DFS or any other tree."""
        return node in self.visited or node in self.foreign_visited

    def settle_root(self) -> None:
        """Settle the smallest-ID group member at the root (time-0 action)."""
        self._settle_smallest_at(self.root, None)

    def run_group(self) -> List[Agent]:
        """Group-mode execution for the general-configuration driver.

        The caller has already settled this group's root.  Runs the leader
        program on the shared engine until the group has dispersed or its DFS
        is blocked by foreign trees; returns the still-unsettled group members.
        """
        self.engine.assign(self.leader.agent_id, self._leader_program(settle_root=False))
        self.engine.run_until(
            lambda: self.finished or all(a.settled for a in self.agents.values())
        )
        return [a for a in self.agents.values() if not a.settled]

    # --------------------------------------------------------------- helpers
    def settler_at(self, node: int) -> Optional[Agent]:
        """The settler whose home is ``node`` and who is currently there."""
        return self.engine.kernel.home_settler_at(node)

    def _settle_smallest_at(self, node: int, parent_port: Optional[int]) -> Agent:
        # ``agents_at`` is the fault-filtered Communicate query, so a crashed
        # or frozen agent can never be chosen to settle (v2 fault contract).
        candidates = [
            a
            for a in self.engine.kernel.agents_at(node)
            if not a.settled and a.agent_id in self.agents
        ]
        if not candidates:
            raise RuntimeError(
                f"no fault-eligible agent available to settle at node {node}"
            )
        non_leader = [a for a in candidates if a is not self.leader]
        pool = non_leader if non_leader else candidates
        agent = min(pool, key=lambda a: a.agent_id)
        agent.settle(node, parent_port, treelabel=self.treelabel)
        self.visited.add(node)
        self.metrics.bump("settled")
        return agent

    def _followers_at(self, node: int) -> List[Agent]:
        return [
            a
            for a in self.engine.kernel.agents_at(node)
            if not a.settled and a is not self.leader and a.agent_id in self.agents
        ]

    @staticmethod
    def _single_move(port: int):
        yield Move(port)

    def _group_move(self, w: int, port: int):
        """All unsettled agents at ``w`` cross ``port``; the leader waits for them."""
        followers = self._followers_at(w)
        target = self.graph.neighbor(w, port)
        for follower in followers:
            self.engine.assign(follower.agent_id, self._single_move(port))
        yield Move(port)
        follower_ids = tuple(f.agent_id for f in followers)
        yield WaitUntil(
            lambda ids=follower_ids, t=target: all(
                self.agents[i].position == t for i in ids
            )
        )

    # --------------------------------------------------------------- program
    def _leader_program(self, settle_root: bool = True):
        """Algorithm 8 from the leader's point of view."""
        if settle_root:
            self._settle_smallest_at(self.root, None)
            yield Stay()

        while not self.leader.settled:
            w = self.leader.position
            found, guests = yield from async_probe(self, w)
            yield from guest_see_off(self, w, guests)
            if found is not None:
                u = self.graph.neighbor(w, found)
                yield from self._group_move(w, found)
                parent_port = self.graph.reverse_port(w, found)
                self.dfs_parent[u] = w
                self._settle_smallest_at(u, parent_port)
                self.metrics.bump("forward_moves")
            else:
                settler = self.settler_at(w)
                if settler is None or settler.parent_port is None:
                    # Single-root executions can never reach this state; a group
                    # of a multi-root execution can, when its entire frontier is
                    # occupied by other trees.  The group driver scatters the
                    # leftover agents.
                    self.blocked = True
                    self.metrics.bump("group_blocked")
                    break
                yield from self._group_move(w, settler.parent_port)
                self.metrics.bump("backtrack_moves")
        self.finished = True


def rooted_async_dispersion(
    graph: PortLabeledGraph,
    k: int,
    start_node: int = 0,
    adversary: Optional[Adversary] = None,
    **kwargs,
) -> DispersionResult:
    """Convenience wrapper: run Theorem 7.1's algorithm and return the result."""
    return RootedAsyncDispersion(graph, k, start_node, adversary=adversary, **kwargs).run()
