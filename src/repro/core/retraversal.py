"""Post-DFS ascent and sibling-pointer re-traversal (paper §6, Lemma 9).

After the SYNC DFS has visited all ``k`` nodes, the still-unsettled agents (the
``⌈k/3⌉`` seekers plus any explorers that were un-settled again during
backtracks) travel with the leader

1. up to the DFS root following parent ports (:func:`ascend_to_root`), then
2. down the DFS tree in child order (:func:`retraverse_and_settle`), settling
   one agent on every empty node encountered.

Child enumeration uses the chunked *sibling-pointer* records of
:mod:`repro.core.navigation`: a node's own record lists its first three child
ports plus the port of the fourth child (the *anchor*); the anchor's record
lists the next two sibling ports and the next anchor, and so on.  The traversal
therefore keeps only ``O(1)`` port fields per agent while still running in
``O(k)`` rounds -- each tree edge is crossed ``O(1)`` times and every wait for
an oscillating record-holder is bounded by one oscillation trip (Lemma 2).
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["ascend_to_root", "retraverse_and_settle"]


def ascend_to_root(ctx) -> None:
    """Walk the whole group from the DFS head back to the root via parent ports."""
    current = ctx.leader.position
    while True:
        ctx.ensure_holder(current)
        record = ctx.ledger.get(current)
        if record.parent_port is None:
            break
        parent = ctx.graph.neighbor(current, record.parent_port)
        ctx.move_group(current, record.parent_port)
        current = parent
    ctx.metrics.bump("ascent_completed")


def retraverse_and_settle(ctx) -> None:
    """Depth-first re-traversal of the DFS tree settling agents on empty nodes.

    The walk is iterative (the physical agents never keep a recursion stack):
    the per-node progress lives in the ``rt_*`` cursor fields of the node's
    navigation record, and the continuation of a long child list is read from
    the anchor child's record on the way back up and installed at the parent.
    """
    current = ctx.root
    carried_queue: Optional[List[int]] = None
    carried_anchor: Optional[int] = None

    while True:
        ctx.ensure_holder(current)
        record = ctx.ledger.get(current)

        if not record.rt_initialized:
            queue = list(record.child_group)
            if record.next_anchor is not None:
                queue.append(record.next_anchor)
            ctx.ledger.update(
                current,
                rt_initialized=True,
                rt_queue=queue,
                rt_anchor_port=record.next_anchor,
            )
            if not record.occupied:
                ctx.settle_next_agent_at(current, record.parent_port)
                if ctx.all_settled():
                    break

        if carried_queue is not None:
            # We just returned from an anchor child: its record supplied the
            # ports of the next sibling group, which now continue the parent's
            # child enumeration.
            ctx.ledger.update(current, rt_queue=carried_queue, rt_anchor_port=carried_anchor)
            carried_queue = None
            carried_anchor = None

        record = ctx.ledger.get(current)
        if record.rt_queue:
            port = record.rt_queue[0]
            ctx.ledger.update(current, rt_queue=record.rt_queue[1:])
            is_anchor_child = (
                record.rt_anchor_port is not None and port == record.rt_anchor_port
            )
            child = ctx.graph.neighbor(current, port)
            ctx.move_group(current, port)
            current = child
            ctx.ensure_holder(current)
            if is_anchor_child:
                ctx.ledger.update(current, rt_is_anchor=True)
            continue

        # Child list exhausted at ``current``.
        if current == ctx.root:
            break
        child_record = ctx.ledger.get(current)
        if child_record.rt_is_anchor:
            carried_queue = list(child_record.sibling_group)
            if child_record.sibling_next_anchor is not None:
                carried_queue.append(child_record.sibling_next_anchor)
            carried_anchor = child_record.sibling_next_anchor
        parent_port = child_record.parent_port
        parent = ctx.graph.neighbor(current, parent_port)
        ctx.move_group(current, parent_port)
        current = parent

    ctx.metrics.bump("retraversal_completed")
