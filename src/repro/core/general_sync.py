"""General (multi-root) SYNC dispersion (paper Theorem 8.1).

Agents start on ``ℓ ≥ 2`` distinct nodes; each start node hosts one group that
grows its own DFS tree with the rooted machinery of
:class:`~repro.core.rooted_sync.RootedSyncDispersion` (seekers, empty nodes,
oscillation, Sync_Probe).  The driver here coordinates the groups on one shared
synchronous engine:

* every group's smallest-ID agent settles on its start node up front, so the
  probes of any other group physically detect those roots as occupied;
* groups are grown one after another, largest first (see DESIGN.md §3: the
  measured rounds of this serialized schedule are an upper bound on the truly
  concurrent schedule, so the ``O(k)`` shape claim is checked conservatively);
* a group whose entire frontier is occupied by other trees (possible only in
  multi-root runs) fills the empty nodes of the tree it has built and then
  *scatters* its leftover agents: the group walks, edge by edge, to the nearest
  node that holds no settler and settles one agent there, repeating until all
  are placed.  The size-based subsumption rule of the KS algorithm is provided
  in :mod:`repro.core.subsumption` and exercised separately (the serialized
  schedule never creates the large-meets-larger situation that requires a
  collapse walk).

Time is the shared engine's round counter over the whole execution; memory is
accounted per agent exactly as in the rooted algorithms.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.agents.agent import Agent
from repro.agents.memory import MemoryModel
from repro.analysis.verification import is_dispersed
from repro.core.rooted_sync import RootedSyncDispersion, SMALL_K_THRESHOLD
from repro.graph.port_graph import PortLabeledGraph
from repro.sim.result import DispersionResult
from repro.sim.sync_engine import SyncEngine

__all__ = ["GeneralSyncDispersion", "general_sync_dispersion"]


def _normalize_placements(
    graph: PortLabeledGraph, placements: Mapping[int, int]
) -> Dict[int, int]:
    total = 0
    normalized: Dict[int, int] = {}
    for node, count in placements.items():
        if not (0 <= node < graph.num_nodes):
            raise ValueError(f"placement node {node} is not in the graph")
        if count < 1:
            raise ValueError("every placement must contain at least one agent")
        normalized[node] = count
        total += count
    if total > graph.num_nodes:
        raise ValueError(f"k={total} agents cannot disperse on n={graph.num_nodes} nodes")
    if len(normalized) < 1:
        raise ValueError("need at least one start node")
    return normalized


class GeneralSyncDispersion:
    """Driver for general initial configurations under SYNC (Theorem 8.1).

    Parameters
    ----------
    graph:
        The anonymous port-labeled graph.
    placements:
        Mapping ``start node -> number of agents`` (``ℓ`` keys, total ``k``).
    wait_rounds, strict:
        Forwarded to the per-group rooted machinery.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        placements: Mapping[int, int],
        wait_rounds: int = 8,
        strict: bool = True,
        max_rounds: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.placements = _normalize_placements(graph, placements)
        self.k = sum(self.placements.values())
        self.wait_rounds = wait_rounds
        self.strict = strict

        self.memory_model = MemoryModel(k=self.k, max_degree=graph.max_degree)
        self.agents: Dict[int, Agent] = {}
        self.groups: Dict[int, List[Agent]] = {}
        next_id = 1
        for node in sorted(self.placements):
            members = []
            for _ in range(self.placements[node]):
                agent = Agent(next_id, node, self.memory_model)
                self.agents[next_id] = agent
                members.append(agent)
                next_id += 1
            self.groups[node] = members
        if max_rounds is None:
            max_rounds = 600 * (self.k + 4) * max(1, wait_rounds) // 4 + 20 * graph.num_nodes + 4000
        self.engine = SyncEngine(graph, self.agents.values(), max_rounds=max_rounds)
        self.metrics = self.engine.metrics
        #: Nodes belonging to any finished / parked tree (shared ground truth
        #: handed to each group's strict-mode checks as ``foreign_visited``).
        self.all_visited: Set[int] = set()
        self.dfs_parent: List[Optional[int]] = [None] * graph.num_nodes

    # ------------------------------------------------------------------- run
    def run(self) -> DispersionResult:
        group_drivers: List[Tuple[int, List[Agent], Optional[RootedSyncDispersion]]] = []
        # Phase 0: every group settles its smallest agent on its root immediately
        # (a time-0 action in the paper), so other groups' probes see it.
        for node, members in sorted(
            self.groups.items(), key=lambda item: -len(item[1])
        ):
            # A group whose every member is fault-blocked at time 0 cannot
            # settle its root no matter its size: it degrades to the scatter
            # path (thawed members recover later) instead of aborting the run.
            if len(members) >= SMALL_K_THRESHOLD and self._eligible_root_settler(members) is not None:
                driver = RootedSyncDispersion(
                    self.graph,
                    k=len(members),
                    start_node=node,
                    wait_rounds=self.wait_rounds,
                    strict=self.strict,
                    engine=self.engine,
                    agents={a.agent_id: a for a in members},
                    foreign_visited=self.all_visited,
                    probe_cap=self.k,
                )
                driver.settle_root()
            else:
                driver = None
                smallest = self._eligible_root_settler(members)
                if smallest is None:
                    # Every member of this tiny group is fault-blocked at time
                    # 0: nobody can execute a settle cycle, so the node stays
                    # unclaimed (thawed members are scattered later).
                    group_drivers.append((node, members, driver))
                    continue
                smallest.settle(node, None)
            self.all_visited.add(node)
            group_drivers.append((node, members, driver))

        # Phase 1: grow the trees, largest group first.
        leftovers: List[Tuple[int, List[Agent]]] = []
        for node, members, driver in group_drivers:
            if driver is not None:
                remaining = driver.run_group()
                self.all_visited.update(driver.visited)
                for v, parent in enumerate(driver.dfs_parent):
                    if parent is not None:
                        self.dfs_parent[v] = parent
                self.metrics.bump("groups_grown")
            else:
                remaining = [a for a in members if not a.settled]
            if remaining:
                leftovers.append((node, remaining))

        # Phase 2: scatter any leftover agents (blocked groups, tiny groups).
        for node, remaining in leftovers:
            self._scatter(remaining)

        metrics = self.engine.finalize_metrics()
        return DispersionResult(
            dispersed=is_dispersed(self.agents.values()),
            positions=self.engine.kernel.positions(),
            metrics=metrics,
            dfs_parent=list(self.dfs_parent),
            algorithm="GeneralSyncDisp",
            notes={
                "k": self.k,
                "roots": len(self.placements),
                "wait_rounds": self.wait_rounds,
            },
        )

    # --------------------------------------------------------------- scatter
    def _eligible_root_settler(self, members: Sequence[Agent]) -> Optional[Agent]:
        """Smallest group member whose settle cycle is not fault-blocked."""
        pool = [
            a
            for a in members
            if not a.settled and not self.engine.kernel.fault_view(a.agent_id).blocked_for_cycle
        ]
        return min(pool, key=lambda a: a.agent_id) if pool else None

    def _free_node(self, node: int) -> bool:
        """A node is free when no settled agent calls it home."""
        return not self.engine.kernel.has_home_settler(node)

    def _path_to_nearest_free(self, start: int) -> Optional[List[int]]:
        """BFS (simulator-side pathfinding, see DESIGN.md §3) to the closest free
        node; returns the list of ports to traverse, or ``None`` if no free node
        exists (impossible while unsettled agents remain, since ``k ≤ n``)."""
        if self._free_node(start):
            return []
        seen = {start}
        queue = deque([(start, [])])
        while queue:
            current, ports = queue.popleft()
            for port in self.graph.ports(current):
                nxt = self.graph.neighbor(current, port)
                if nxt in seen:
                    continue
                seen.add(nxt)
                path = ports + [port]
                if self._free_node(nxt):
                    return path
                queue.append((nxt, path))
        return None

    def _scatter(self, agents: Sequence[Agent]) -> None:
        """Walk a leftover group to free nodes one at a time and settle them.

        Every move is a real engine round; only the route planning is
        simulator-assisted (a plain DFS over occupied nodes would find the same
        nodes within the same asymptotic budget, see DESIGN.md §3).
        """
        group = [a for a in agents if not a.settled]
        while group:
            mobile = [
                a
                for a in group
                if not self.engine.kernel.fault_view(a.agent_id).blocked_for_cycle
            ]
            if not mobile:
                # Everybody left is crashed or frozen.  Frozen agents thaw, so
                # idle real rounds until one does; a group of pure crash-stop
                # agents runs into the engine's max_rounds cap instead (the
                # faulty run is then reported as data, not hung).
                self.engine.step({})
                group = [a for a in group if not a.settled]
                continue
            head = mobile[0].position
            # Only agents standing at the head may follow this path -- a
            # straggler (frozen during an earlier walk, thawed elsewhere) would
            # otherwise be driven through another node's ports.  It becomes
            # the head of a later iteration instead.
            walkers = [a for a in mobile if a.position == head]
            path = self._path_to_nearest_free(head)
            if path is None:
                raise RuntimeError("no free node left although agents remain unsettled")
            # One backend batch call walks the pack down the whole path.  A
            # walker whose move was fault-dropped is no longer on the path
            # head, so it falls out of the pack and is retried on a later
            # iteration (the ASYNC engine instead *defers* the dropped Move;
            # both converge).
            current = self.engine.step_path(
                [a.agent_id for a in walkers], head, path, counter="scatter_moves"
            )
            # An agent that froze mid-walk fell out of the pack; only agents
            # that actually completed the walk (and can execute a settle cycle
            # right now) are settlement candidates.  Stragglers are retried on
            # the next loop iteration.
            arrived = [
                a
                for a in walkers
                if a.position == current
                and not self.engine.kernel.fault_view(a.agent_id).blocked_for_cycle
            ]
            if arrived:
                settler = min(arrived, key=lambda a: a.agent_id)
                settler.settle(current, None)
                self.all_visited.add(current)
                self.metrics.bump("scatter_settled")
            group = [a for a in group if not a.settled]


def general_sync_dispersion(
    graph: PortLabeledGraph,
    placements: Mapping[int, int],
    **kwargs,
) -> DispersionResult:
    """Convenience wrapper: run Theorem 8.1's driver and return the result."""
    return GeneralSyncDispersion(graph, placements, **kwargs).run()
