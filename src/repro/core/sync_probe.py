"""Synchronous probing (paper Algorithm 2, ``Sync_Probe``, Figure 5).

At the DFS head ``w`` the leader must find a *fully unsettled* neighbor of
``w`` -- a node never visited by the DFS -- or learn that none exists.  With
``⌈k/3⌉`` seeker agents available, all relevant neighbors of ``w`` (at most
``min{k, δ_w}`` of them) can be probed in a constant number of parallel
iterations:

1. assign each available seeker to one unchecked port of ``w``;
2. the seekers cross their edges simultaneously, wait at the reached neighbors
   for a fixed window, and cross back;
3. a seeker that met a *settled* agent during its stay reports "visited"
   (settled nodes have their settler at home every other round, and empty
   DFS-tree nodes are visited by their covering oscillator at least once per
   trip, Lemma 2) -- a seeker that met nobody reports "fully unsettled".

The wait window is ``ctx.wait_rounds`` (paper value 6; default 8 here, see
DESIGN.md §3.2) and the whole call takes ``O(1)`` rounds (Lemma 4): at most
``⌈min{k, δ_w} / ⌈k/3⌉⌉ ≤ 3`` iterations of ``wait_rounds + 2`` rounds each.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.agents.agent import Agent

__all__ = ["sync_probe"]


def sync_probe(ctx, w: int) -> Optional[int]:
    """Run ``Sync_Probe`` at node ``w``; return the port of a fully unsettled
    neighbor (smallest such port) or ``None`` if every neighbor is settled or
    covered.

    ``ctx`` is the SYNC dispersion driver
    (:class:`repro.core.rooted_sync.RootedSyncDispersion` or the general-case
    driver), which provides the engine, the seeker set, the tick primitive and
    the strict-mode ground truth.
    """
    graph = ctx.graph
    degree = graph.degree(w)
    limit = min(ctx.probe_cap, degree)
    checked = 0
    ctx.metrics.bump("sync_probe_calls")

    while checked < limit:
        seekers: List[Agent] = [a for a in ctx.seekers if not a.settled]
        if not seekers:
            # Degenerate configurations (tiny k) fall back to the leader
            # probing alone; still O(1) per port, and only reachable when the
            # seeker pool was consumed, which the driver counts.
            seekers = [ctx.leader]
            ctx.metrics.bump("sync_probe_leader_fallback")
        batch = min(len(seekers), limit - checked)
        assigned: List[Tuple[Agent, int, int]] = []
        out_moves: Dict[int, int] = {}
        for j in range(batch):
            port = checked + 1 + j
            agent = seekers[j]
            target = graph.neighbor(w, port)
            assigned.append((agent, port, target))
            out_moves[agent.agent_id] = port

        ctx.tick(out_moves)  # all assigned seekers cross simultaneously
        # All met-checks of a round go through the backend's batched probe
        # primitive (one call per round instead of one co-location scan per
        # seeker); each answer is "did my seeker meet a settled agent other
        # than itself at its target".
        kernel = ctx.engine.kernel
        first = kernel.run_probe_round(
            [target for _agent, _port, target in assigned],
            [agent.agent_id for agent, _port, _target in assigned],
        )
        met: Dict[int, bool] = {
            agent.agent_id: hit
            for (agent, _port, _target), hit in zip(assigned, first)
        }
        for _ in range(ctx.wait_rounds):
            ctx.tick({})
            pending = [
                (agent, target)
                for agent, _port, target in assigned
                if not met[agent.agent_id]
            ]
            if pending:
                hits = kernel.run_probe_round(
                    [target for _agent, target in pending],
                    [agent.agent_id for agent, _target in pending],
                )
                for (agent, _target), hit in zip(pending, hits):
                    if hit:
                        met[agent.agent_id] = True
        back_moves = {
            agent.agent_id: graph.reverse_port(w, port) for agent, port, _target in assigned
        }
        ctx.tick(back_moves)
        ctx.metrics.bump("sync_probe_iterations")

        if ctx.strict:
            _verify_classification(ctx, w, assigned, met)

        found: Optional[int] = None
        for agent, port, _target in assigned:
            if not met[agent.agent_id]:
                found = port if found is None else min(found, port)
        if found is not None:
            return found
        checked += batch
    return None


def _verify_classification(ctx, w: int, assigned, met) -> None:
    """Strict mode: compare the physical classification with ground truth.

    A probed neighbor classified "fully unsettled" must not be a DFS-tree node,
    and one classified "visited" must be.  A violation means the oscillation
    cover failed to guarantee a meeting inside the wait window -- a correctness
    bug, surfaced immediately instead of corrupting the dispersion.
    """
    for agent, port, target in assigned:
        classified_visited = met[agent.agent_id]
        actually_visited = ctx.is_visited(target)
        if classified_visited and not actually_visited:
            raise AssertionError(
                f"Sync_Probe false positive at node {w} port {port}: neighbor "
                f"{target} was classified visited but is not in the DFS tree"
            )
        if not classified_visited and actually_visited:
            raise AssertionError(
                f"Sync_Probe missed the cover of node {target} (probed from {w} "
                f"port {port}): it is in the DFS tree but no settled agent was "
                f"seen within wait_rounds={ctx.wait_rounds}"
            )
