"""Rooted SYNC dispersion (paper Algorithms 5–7, Theorem 6.1).

``RootedSyncDispersion`` disperses ``k ≤ n`` agents that all start on one node
``s`` of an anonymous port-labeled graph in ``O(k)`` synchronous rounds with
``O(log(k + Δ))`` bits per agent.  The structure follows the paper exactly:

* the largest-ID agent ``a_max`` is the leader and conducts a DFS;
* ``⌈k/3⌉`` large-ID agents are *seekers* reserved for
  :func:`~repro.core.sync_probe.sync_probe`, which finds a fully unsettled
  neighbor of the DFS head in ``O(1)`` rounds;
* during the DFS only ~2/3 of the visited nodes receive a settler
  (Algorithm 1's rules applied on-line); the empty nodes are covered by
  *oscillating settlers* (:mod:`repro.core.oscillation`) so probes can tell
  "visited but empty" from "never visited";
* forward moves (Algorithm 6) settle agents on even-depth nodes and on every
  third odd-depth child; backtrack moves (Algorithm 7) un-settle two out of
  every three even-depth leaf siblings;
* once the DFS tree has ``k`` nodes, the remaining unsettled agents ascend to
  the root and re-traverse the tree via the sibling-pointer records
  (:mod:`repro.core.retraversal`), settling on the empty nodes.

Every round of the execution is a real engine round in which agents cross at
most one edge each; the reported time is the engine's round counter.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set

from repro.agents.agent import Agent, AgentRole
from repro.agents.memory import FieldKind, MemoryModel
from repro.analysis.verification import is_dispersed
from repro.core.empty_nodes import keeps_settler_at_position
from repro.core.navigation import NavLedger
from repro.core.oscillation import Oscillator
from repro.core.retraversal import ascend_to_root, retraverse_and_settle
from repro.core.sync_probe import sync_probe
from repro.graph.port_graph import PortLabeledGraph
from repro.sim.result import DispersionResult
from repro.sim.sync_engine import SyncEngine

__all__ = [
    "RootedSyncDispersion",
    "rooted_sync_dispersion",
    "SMALL_K_THRESHOLD",
    "GroupBlocked",
]


class GroupBlocked(RuntimeError):
    """Raised when a DFS group can no longer grow (its entire frontier is
    occupied by other trees).  Only possible in general (multi-root) runs; the
    general-configuration driver catches it and scatters the leftover agents."""

#: Below this population the seeker-set arithmetic degenerates (⌈k/3⌉ seekers
#: would leave too few explorers); the driver falls back to the sequential
#: probe DFS, which is O(kΔ) in general but O(1)·O(k) for constant k.
SMALL_K_THRESHOLD = 7

#: Upper bound on how long the driver waits for an oscillating record holder to
#: come home / land on a covered node; one full trip is at most 6 rounds.
_HOLDER_WAIT_LIMIT = 64


class RootedSyncDispersion:
    """Driver for the rooted SYNC dispersion algorithm (Theorem 6.1).

    Parameters
    ----------
    graph:
        The anonymous port-labeled graph.
    k:
        Number of agents (``k ≤ n``).
    start_node:
        The single node on which all agents start (the "root" of the DFS).
    wait_rounds:
        How long a probing seeker waits at the probed neighbor (paper: 6; the
        default adds slack for trips that restart mid-assignment, see DESIGN.md).
    strict:
        When True (default), every probe classification is checked against the
        simulator's ground truth and any mismatch raises immediately.
    max_rounds:
        Safety cap for the engine (defaults to a generous multiple of ``k``).
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        k: int,
        start_node: int = 0,
        wait_rounds: int = 8,
        seeker_fraction: float = 1.0 / 3.0,
        strict: bool = True,
        max_rounds: Optional[int] = None,
        engine: Optional[SyncEngine] = None,
        agents: Optional[Dict[int, Agent]] = None,
        foreign_visited: Optional[Set[int]] = None,
        probe_cap: Optional[int] = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > graph.num_nodes:
            raise ValueError(f"k={k} agents cannot disperse on n={graph.num_nodes} nodes")
        self.graph = graph
        self.k = k
        self.root = start_node
        self.wait_rounds = wait_rounds
        self.seeker_fraction = seeker_fraction
        self.strict = strict

        if agents is not None:
            # Group mode (used by the general-configuration driver): operate on
            # an existing engine and an agent subset that all start at ``start_node``.
            if engine is None:
                raise ValueError("group mode requires an existing engine")
            self.agents = dict(agents)
            self.engine = engine
            self.memory_model = next(iter(self.agents.values())).memory.model
        else:
            self.memory_model = MemoryModel(k=k, max_degree=graph.max_degree)
            self.agents = {
                i: Agent(i, start_node, self.memory_model) for i in range(1, k + 1)
            }
            if max_rounds is None:
                # ~O(k) with a generous constant: per tree edge we spend a constant
                # number of probe iterations, holder waits and side trips.
                max_rounds = 400 * (k + 4) * max(1, wait_rounds) // 4 + 2000
            self.engine = SyncEngine(self.graph, self.agents.values(), max_rounds=max_rounds)
        self.leader = max(self.agents.values(), key=lambda a: a.agent_id)
        self.leader.role = AgentRole.LEADER
        self.metrics = self.engine.metrics
        #: Upper bound on the number of ports probed per Sync_Probe call; the
        #: rooted case uses k (at most k-1 neighbors can ever be non-fresh).
        self.probe_cap = probe_cap if probe_cap is not None else k

        self.ledger = NavLedger()
        self.oscillators: Dict[int, Oscillator] = {}

        # Simulator-side ground truth (verification only, never drives decisions).
        self.visited: Set[int] = set()
        self.foreign_visited: Set[int] = foreign_visited if foreign_visited is not None else set()
        self.dfs_parent: List[Optional[int]] = [None] * graph.num_nodes
        self.depth: Dict[int, int] = {}

        self.seekers: List[Agent] = []
        self._declare_leader_fields()

    def is_visited(self, node: int) -> bool:
        """Ground truth for strict checks: visited by this DFS or by any other tree."""
        return node in self.visited or node in self.foreign_visited

    # ------------------------------------------------------------------ setup
    def _declare_leader_fields(self) -> None:
        """Charge the leader's persistent orchestration fields (O(log(k+Δ)) bits)."""
        mem = self.leader.memory
        mem.write("cur_depth", 0, FieldKind.DEPTH)
        mem.write("visited_count", 1, FieldKind.COUNTER_K)
        mem.write("probe_checked", 0, FieldKind.COUNTER_DELTA)
        mem.write("probe_next", 0, FieldKind.PORT)
        mem.write("rt_carry_a", 0, FieldKind.PORT)
        mem.write("rt_carry_b", 0, FieldKind.PORT)
        mem.write("rt_carry_anchor", 0, FieldKind.PORT)

    def _select_seekers(self) -> None:
        """``A_seeker``: the ``⌈k·fraction⌉`` largest-ID agents except the leader."""
        count = math.ceil(self.k * self.seeker_fraction)
        candidates = sorted(
            (a for a in self.agents.values() if a is not self.leader and not a.settled),
            key=lambda a: -a.agent_id,
        )
        self.seekers = candidates[:count]
        for seeker in self.seekers:
            seeker.role = AgentRole.SEEKER
            seeker.memory.write("probe_port", 0, FieldKind.PORT)
            seeker.memory.write("probe_met", False, FieldKind.FLAG)

    # ------------------------------------------------------------------- run
    def run(self) -> DispersionResult:
        """Execute the algorithm and return the verified result."""
        if self.k < SMALL_K_THRESHOLD:
            return self._small_k_fallback()

        self.settle_root()
        self._select_seekers()
        self._dfs_phase()
        ascend_to_root(self)
        retraverse_and_settle(self)
        self._quiesce_oscillators()
        return self._build_result()

    def run_group(self) -> List[Agent]:
        """Group-mode execution for the general-configuration driver.

        The caller has already settled this group's root (so other groups' probes
        see it) via :meth:`settle_root`.  Returns the group members that remain
        unsettled because the DFS was blocked by foreign trees; the caller
        scatters them separately.
        """
        self._select_seekers()
        try:
            self._dfs_phase()
        except GroupBlocked:
            self.metrics.bump("group_blocked")
        ascend_to_root(self)
        retraverse_and_settle(self)
        self._quiesce_oscillators()
        return [a for a in self.agents.values() if not a.settled]

    def _small_k_fallback(self) -> DispersionResult:
        """Sequential-probe DFS for tiny populations (documented deviation)."""
        from repro.baselines.naive_dfs import NaiveSyncDFS

        driver = NaiveSyncDFS(self.graph, self.k, self.root)
        result = driver.run()
        result.algorithm = "RootedSyncDisp(small-k fallback)"
        return result

    # ------------------------------------------------------------ DFS phase
    def settle_root(self) -> None:
        """Settle the smallest-ID agent at the root (the DFS's first action).

        Settling is part of the settling agent's own CCM cycle, so the
        candidate pool comes from the engine's fault-filtered co-location
        query: a crashed/frozen agent cannot take the root (v2 fault
        contract), the next-smallest healthy agent does.
        """
        candidates = [
            a
            for a in self.engine.kernel.agents_at(self.root)
            if not a.settled and a.agent_id in self.agents
        ]
        if not candidates:
            raise RuntimeError(
                f"every agent at root node {self.root} is fault-blocked; "
                "the DFS cannot settle its root"
            )
        amin = min(candidates, key=lambda a: a.agent_id)
        amin.settle(self.root, None)
        self.visited.add(self.root)
        self.depth[self.root] = 0
        self.ledger.create(
            self.root, amin, parent_port=None, depth_parity=0, occupied=True
        )

    def _dfs_phase(self) -> None:
        while len(self.visited) < self.k:
            w = self.leader.position
            port = sync_probe(self, w)
            if port is not None:
                self._forward_move(w, port)
            else:
                self._backtrack_move(w)

    # ---------------------------------------------------------- forward move
    def _forward_move(self, w: int, port: int) -> None:
        """Algorithm 6: advance the DFS head through ``port`` and settle/cover."""
        self.metrics.bump("forward_moves")
        self.ensure_holder(w)
        record = self.ledger.get(w)
        x = record.forward_count + 1
        self.ledger.update(w, forward_count=x)
        u = self.graph.neighbor(w, port)
        u_depth = self.depth[w] + 1

        # --- sibling-pointer bookkeeping for the child list of w -------------
        if x <= 3:
            self.ledger.append_child_port(w, port)
        elif x % 3 == 1:
            if x == 4:
                self.ledger.update(w, next_anchor=port, latest_anchor=port)
            else:
                prev_anchor_port = record.latest_anchor
                self._write_at_neighbor(
                    w, prev_anchor_port, sibling_next_anchor=port
                )
                self.ledger.update(w, latest_anchor=port)
        else:
            anchor_port = record.latest_anchor
            self._append_sibling_at_neighbor(w, anchor_port, port)

        # --- decide settlement / coverage of u (before moving, from w) -------
        settle_u = True
        coverer: Optional[Oscillator] = None
        cover_route: Sequence[int] = ()
        if u_depth % 2 == 1:
            if x <= 3:
                settle_u = False
                coverer = self._oscillator_for(self.ledger.owner(w), w)
                cover_route = (port,)
            elif x % 3 == 1:
                settle_u = True
            else:
                settle_u = False
                anchor_port = self.ledger.get(w).latest_anchor
                anchor_node = self.graph.neighbor(w, anchor_port)
                anchor_agent = self._visit_neighbor_and_get_owner(w, anchor_port)
                coverer = self._oscillator_for(anchor_agent, anchor_node)
                back_port = self.graph.reverse_port(w, anchor_port)
                cover_route = (back_port, port)

        # --- the forward move itself ------------------------------------------
        self.move_group(w, port)
        parent_port = self.graph.reverse_port(w, port)
        self.visited.add(u)
        self.dfs_parent[u] = w
        self.depth[u] = u_depth
        self.leader.memory.write("cur_depth", u_depth, FieldKind.DEPTH)
        self.leader.memory.write("visited_count", len(self.visited), FieldKind.COUNTER_K)

        if settle_u:
            settler = self._settle_smallest_at(u, parent_port)
            self.ledger.create(
                u,
                settler,
                parent_port=parent_port,
                depth_parity=u_depth % 2,
                occupied=True,
            )
        else:
            assert coverer is not None
            coverer.add_cover(u, cover_route)
            self.ledger.create(
                u,
                coverer.agent,
                parent_port=parent_port,
                depth_parity=u_depth % 2,
                occupied=False,
            )
            self.metrics.bump("nodes_left_empty")

    # -------------------------------------------------------- backtrack move
    def _backtrack_move(self, w: int) -> None:
        """Algorithm 7: retreat to the parent; apply the leaf-sibling rules."""
        self.metrics.bump("backtrack_moves")
        self.ensure_holder(w)
        record = self.ledger.get(w)
        was_even_leaf = (
            record.depth_parity == 0
            and record.forward_count == 0
            and record.parent_port is not None
        )
        parent_port = record.parent_port
        if parent_port is None:
            raise GroupBlocked(
                "DFS wants to backtrack from the root before visiting k nodes; "
                "every reachable frontier node is occupied by another tree"
            )
        pw = self.graph.neighbor(w, parent_port)
        self.move_group(w, parent_port)
        self.leader.memory.write("cur_depth", self.depth[pw], FieldKind.DEPTH)
        port_pw_to_w = self.graph.reverse_port(w, parent_port)

        if not was_even_leaf:
            return

        # Case A of Empty_Node_Selection, applied on-line: w is an even-depth
        # leaf; count it among its parent's leaf children and keep/remove its
        # settler accordingly.
        self.ensure_holder(pw)
        precord = self.ledger.get(pw)
        x = precord.leaf_child_count + 1
        self.ledger.update(pw, leaf_child_count=x)
        if keeps_settler_at_position(x):
            self.ledger.update(pw, leaf_anchor_port=port_pw_to_w)
            return

        # Remove the settler at w and let the current leaf anchor cover w.
        anchor_port = precord.leaf_anchor_port
        if anchor_port is None:
            raise AssertionError(
                f"leaf child #{x} of node {pw} has no kept leaf anchor to cover it"
            )
        anchor_node = self.graph.neighbor(pw, anchor_port)
        removed = self._fetch_settler(pw, port_pw_to_w)
        anchor_agent = self._visit_neighbor_and_get_owner(pw, anchor_port)
        anchor_osc = self._oscillator_for(anchor_agent, anchor_node)
        back_port = self.graph.reverse_port(pw, anchor_port)
        anchor_osc.add_cover(w, (back_port, port_pw_to_w))
        self.ledger.update(w, occupied=False)
        self.ledger.transfer(w, anchor_agent)
        self.metrics.bump("settlers_removed")

    # ------------------------------------------------------- helper motions
    def _fetch_settler(self, pw: int, port_pw_to_w: int) -> Agent:
        """Un-settle α(w) and bring it to ``pw`` (leader escorts it, O(1) rounds)."""
        w = self.graph.neighbor(pw, port_pw_to_w)
        # Leader walks to w ...
        self.tick({self.leader.agent_id: port_pw_to_w})
        settler = self.engine.kernel.home_settler_at(w)
        if settler is None:
            raise AssertionError(f"expected a settler at leaf node {w}")
        settler.unsettle()
        if settler.agent_id in self.oscillators:
            del self.oscillators[settler.agent_id]
        # ... and both walk back to pw.
        back = self.graph.reverse_port(pw, port_pw_to_w)
        self.tick({self.leader.agent_id: back, settler.agent_id: back})
        return settler

    def _visit_neighbor_and_get_owner(self, w: int, port: int) -> Agent:
        """Side trip ``w → neighbor → w`` by the leader to reach the neighbor's
        record owner (waiting for it if it is oscillating); returns that agent."""
        target = self.graph.neighbor(w, port)
        self.tick({self.leader.agent_id: port})
        self.ensure_holder(target)
        owner = self.ledger.owner(target)
        back = self.graph.reverse_port(w, port)
        self.tick({self.leader.agent_id: back})
        self.metrics.bump("leader_side_trips")
        return owner

    def _write_at_neighbor(self, w: int, port: int, **changes) -> None:
        """Side trip to a neighbor to update its navigation record."""
        target = self.graph.neighbor(w, port)
        self.tick({self.leader.agent_id: port})
        self.ensure_holder(target)
        self.ledger.update(target, **changes)
        back = self.graph.reverse_port(w, port)
        self.tick({self.leader.agent_id: back})
        self.metrics.bump("leader_side_trips")

    def _append_sibling_at_neighbor(self, w: int, anchor_port: int, new_port: int) -> None:
        """Side trip to the anchor child to append a sibling port to its record."""
        target = self.graph.neighbor(w, anchor_port)
        self.tick({self.leader.agent_id: anchor_port})
        self.ensure_holder(target)
        self.ledger.append_sibling_port(target, new_port)
        back = self.graph.reverse_port(w, anchor_port)
        self.tick({self.leader.agent_id: back})
        self.metrics.bump("leader_side_trips")

    # ----------------------------------------------------------- settlement
    def _settle_smallest_at(self, node: int, parent_port: Optional[int]) -> Agent:
        """Settle the smallest-ID unsettled non-leader agent at ``node``.

        Prefers explorers; falls back to a seeker only if the explorer pool is
        exhausted (counted, should not happen for k ≥ 7), and to the leader only
        when it is the last unsettled agent.
        """
        candidates = [
            a
            for a in self.engine.kernel.agents_at(node)
            if not a.settled and a is not self.leader and a.agent_id in self.agents
        ]
        explorers = [a for a in candidates if a not in self.seekers]
        pool = explorers if explorers else candidates
        if not pool:
            if self.engine.kernel.fault_view(self.leader.agent_id).blocked_for_cycle:
                raise RuntimeError(
                    f"no fault-eligible agent available to settle at node {node}"
                )
            pool = [self.leader]
            self.metrics.bump("leader_settled_during_dfs")
        elif not explorers:
            self.metrics.bump("seeker_settled_during_dfs")
        agent = min(pool, key=lambda a: a.agent_id)
        agent.settle(node, parent_port)
        if agent in self.seekers:
            self.seekers = [s for s in self.seekers if s is not agent]
        self.metrics.bump("settled_during_dfs")
        return agent

    def settle_next_agent_at(self, node: int, parent_port: Optional[int]) -> Agent:
        """Re-traversal settlement: smallest-ID unsettled agent settles at ``node``."""
        candidates = [
            a
            for a in self.engine.kernel.agents_at(node)
            if not a.settled and a.agent_id in self.agents
        ]
        if not candidates:
            raise AssertionError(f"no unsettled agent available to settle at node {node}")
        agent = min(candidates, key=lambda a: a.agent_id)
        agent.settle(node, parent_port)
        if agent in self.seekers:
            self.seekers = [s for s in self.seekers if s is not agent]
        self.ledger.update(node, occupied=True)
        self.ledger.transfer(node, agent)
        self.metrics.bump("settled_during_retraversal")
        return agent

    def all_settled(self) -> bool:
        """True when every agent has settled."""
        return all(a.settled for a in self.agents.values())

    # -------------------------------------------------------------- movement
    def tick(self, moves: Dict[int, int]) -> None:
        """Advance one round: controller moves plus all oscillator trips."""
        merged = dict(moves)
        for osc in self.oscillators.values():
            port = osc.plan_step()
            if port is not None:
                if osc.agent.agent_id in merged:
                    raise AssertionError(
                        f"agent {osc.agent.agent_id} scheduled by both the controller "
                        "and its oscillator in the same round"
                    )
                merged[osc.agent.agent_id] = port
        self.engine.step(merged)
        for osc in self.oscillators.values():
            here = osc.agent.position
            # A covered node is dropped only when an agent has *settled at* it
            # (home == here); another oscillator merely passing through must not
            # be mistaken for a settler of this node.
            other_settled = self.engine.kernel.has_home_settler(
                here, osc.agent.agent_id
            )
            osc.after_step(other_settled)

    def move_group(self, node: int, port: int) -> None:
        """Move every unsettled group member currently at ``node`` through ``port``."""
        moves = {
            a.agent_id: port
            for a in self.engine.kernel.agents_at(node)
            if not a.settled and a.agent_id in self.agents
        }
        self.tick(moves)

    def ensure_holder(self, node: int) -> None:
        """Wait (real rounds) until the owner of ``node``'s record is at ``node``."""
        owner = self.ledger.owner(node)
        waited = 0
        while owner.position != node:
            self.tick({})
            waited += 1
            if waited > _HOLDER_WAIT_LIMIT:
                raise RuntimeError(
                    f"record holder (agent {owner.agent_id}) never reached node "
                    f"{node}; oscillation coverage is broken"
                )
        if waited:
            self.metrics.bump("holder_wait_rounds", waited)

    # ------------------------------------------------------------ oscillators
    def _oscillator_for(self, agent: Agent, home: int) -> Oscillator:
        osc = self.oscillators.get(agent.agent_id)
        if osc is None:
            osc = Oscillator(agent, home, self.graph)
            self.oscillators[agent.agent_id] = osc
        return osc

    def _quiesce_oscillators(self) -> None:
        """Let every oscillator drop its (now settled) covered nodes and go home."""
        guard = 0
        while any(osc.is_active for osc in self.oscillators.values()):
            self.tick({})
            guard += 1
            if guard > 20 * (len(self.oscillators) + 2):
                raise RuntimeError("oscillators failed to quiesce after dispersion")
        for osc in self.oscillators.values():
            osc.stop()

    # ---------------------------------------------------------------- result
    def _build_result(self) -> DispersionResult:
        metrics = self.engine.finalize_metrics()
        result = DispersionResult(
            dispersed=is_dispersed(self.agents.values()),
            positions=self.engine.kernel.positions(),
            metrics=metrics,
            dfs_parent=list(self.dfs_parent),
            algorithm="RootedSyncDisp",
            notes={
                "k": self.k,
                "wait_rounds": self.wait_rounds,
                "seekers": math.ceil(self.k * self.seeker_fraction),
            },
        )
        return result


def rooted_sync_dispersion(
    graph: PortLabeledGraph,
    k: int,
    start_node: int = 0,
    **kwargs,
) -> DispersionResult:
    """Convenience wrapper: run Theorem 6.1's algorithm and return the result."""
    return RootedSyncDispersion(graph, k, start_node, **kwargs).run()
