"""Size-based subsumption bookkeeping (the KS algorithm of [OPODIS'21], §8).

When two DFS trees meet in a general (multi-root) execution, the paper resolves
the meeting with a *size-based subsumption* rule: the tree that has settled
fewer agents collapses into the larger one (ties favor the tree that was met,
i.e. the non-initiating tree, per the KS formulation ``D1 subsumes D2 iff
|D2| < |D1|``), its settled agents are collected by a re-traversal of the
collapsed tree (cost proportional to its size), and the winner keeps growing.

This module provides the rule and the per-tree accounting used by the general
drivers and by the ablation benchmark.  Note the scope deviation documented in
DESIGN.md §3: the end-to-end general drivers in this reproduction serialize the
growth of the individual DFS trees, in which regime a running tree only ever
meets trees that are not larger than itself, so the *collapse walk* of KS is
exercised by unit tests and the ablation benchmark on explicit tree pairs
rather than inside the end-to-end drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["TreeInfo", "MeetingOutcome", "decide_subsumption", "collapse_cost"]


@dataclass
class TreeInfo:
    """Book-keeping for one DFS tree in a general execution."""

    treelabel: int
    root: int
    settled_count: int = 0
    collapsed_into: Optional[int] = None

    @property
    def alive(self) -> bool:
        return self.collapsed_into is None


@dataclass(frozen=True)
class MeetingOutcome:
    """Result of applying the size rule to a meeting between two trees."""

    initiator: int          # treelabel of the DFS whose head detected the meeting
    other: int              # treelabel of the tree that was met
    winner: int
    loser: int
    collapse_walk_cost: int  # steps charged for re-traversing the losing tree


def decide_subsumption(initiator: TreeInfo, other: TreeInfo) -> MeetingOutcome:
    """Apply the KS size rule: the initiator subsumes iff the met tree is smaller.

    ``D1 subsumes D2 if and only if |D2| < |D1|, otherwise D2 subsumes D1``
    (paper §4.2); the collapse walk of the losing tree costs ``4·|loser|`` steps
    in the KS accounting (§8, footnote 6).
    """
    if other.settled_count < initiator.settled_count:
        winner, loser = initiator, other
    else:
        winner, loser = other, initiator
    return MeetingOutcome(
        initiator=initiator.treelabel,
        other=other.treelabel,
        winner=winner.treelabel,
        loser=loser.treelabel,
        collapse_walk_cost=collapse_cost(loser.settled_count),
    )


def collapse_cost(settled_count: int) -> int:
    """KS re-traversal cost of collapsing a tree with ``settled_count`` settlers."""
    return 4 * settled_count


def total_subsumption_cost(sizes_at_collapse: List[int]) -> int:
    """Sum of collapse-walk costs over a whole execution.

    The KS analysis (and the paper's footnote 6) observes this sum is ``O(k)``
    because every tree collapses at most once and the collapsed sizes are
    disjoint subsets of the ``k`` agents; the ablation benchmark checks that
    property empirically.
    """
    return sum(collapse_cost(s) for s in sizes_at_collapse)
