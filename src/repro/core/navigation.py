"""Per-node navigation records with per-agent memory charging.

Graph nodes are memoryless, so every piece of per-node DFS state the paper's
SYNC algorithm uses (parent port, forward-move counter, the sibling-pointer
child records of Lemma 9, re-traversal cursors, ...) must physically live in the
memory of an agent located at -- or oscillating over -- that node:

* for a settled node, the settler at that node holds the record,
* for an empty node, the oscillating settler covering it holds the record
  (each oscillator covers at most 3 empty nodes, so it holds at most 3 extra
  records -- a constant number of ``O(log(k+Δ))``-bit fields).

For implementation clarity the records are indexed centrally in a
:class:`NavLedger`, but every field is *charged* to the owning agent's
:class:`~repro.agents.memory.AgentMemory`, and the dispersion driver only reads
or writes a record while the owning agent is co-located with the DFS head
(it explicitly waits for oscillating owners to come by).  This keeps both the
time accounting (waits are real simulated rounds) and the memory accounting
honest while avoiding a fully distributed data structure in Python.

The child information is chunked exactly as in the paper's sibling-pointer
technique: a node's record stores the ports of its first three children plus an
*anchor* port to the fourth child; the fourth child's record stores the next two
sibling ports plus the anchor to the seventh child, and so on.  No agent ever
stores more than a constant number of port fields per node it owns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.agents.agent import Agent
from repro.agents.memory import FieldKind

__all__ = ["NavRecord", "NavLedger"]


@dataclass
class NavRecord:
    """Persistent DFS bookkeeping for one tree node.

    All fields are ``O(log(k + Δ))`` bits; see the field kinds charged in
    :meth:`NavLedger._charge`.
    """

    parent_port: Optional[int] = None       # port to the DFS-tree parent (⊥ at the root)
    depth_parity: int = 0                   # depth mod 2 (1 bit)
    occupied: bool = False                  # does the node currently hold a settler?
    forward_count: int = 0                  # x of Forward_Move: children discovered so far
    leaf_child_count: int = 0               # x of Backtrack_Move: leaf children seen so far
    leaf_anchor_port: Optional[int] = None  # port to the latest *kept* leaf child
    child_group: List[int] = field(default_factory=list)   # ports of children 1..3
    next_anchor: Optional[int] = None       # port of child 4 (first sibling anchor)
    latest_anchor: Optional[int] = None     # port of the latest anchor child (4, 7, ...)
    sibling_group: List[int] = field(default_factory=list)  # as an anchor: ports (at the parent) of the next ≤2 siblings
    sibling_next_anchor: Optional[int] = None  # as an anchor: port (at the parent) of the next anchor sibling
    rt_initialized: bool = False            # re-traversal: has this node been initialized?
    rt_is_anchor: bool = False              # re-traversal: is this node an anchor child of its parent?
    rt_queue: List[int] = field(default_factory=list)  # re-traversal: pending child ports (≤ 4)
    rt_anchor_port: Optional[int] = None    # re-traversal: current anchor child port


# (field name, FieldKind, is_list) charged per record; the list fields are
# bounded by 3 and 2 entries respectively, so the total stays O(log(k + Δ)).
_RECORD_FIELDS = (
    ("parent_port", FieldKind.PORT, False),
    ("depth_parity", FieldKind.FLAG, False),
    ("occupied", FieldKind.FLAG, False),
    ("forward_count", FieldKind.COUNTER_DELTA, False),
    ("leaf_child_count", FieldKind.COUNTER_DELTA, False),
    ("leaf_anchor_port", FieldKind.PORT, False),
    ("child_group", FieldKind.PORT, True),
    ("next_anchor", FieldKind.PORT, False),
    ("latest_anchor", FieldKind.PORT, False),
    ("sibling_group", FieldKind.PORT, True),
    ("sibling_next_anchor", FieldKind.PORT, False),
    ("rt_initialized", FieldKind.FLAG, False),
    ("rt_is_anchor", FieldKind.FLAG, False),
    ("rt_queue", FieldKind.PORT, True),
    ("rt_anchor_port", FieldKind.PORT, False),
)

_MAX_LIST_LEN = {"child_group": 3, "sibling_group": 2, "rt_queue": 4}


class NavLedger:
    """All per-node navigation records, each charged to its owning agent."""

    def __init__(self) -> None:
        self._records: Dict[int, NavRecord] = {}
        self._owners: Dict[int, Agent] = {}

    # -------------------------------------------------------------- lifecycle
    def create(self, node: int, owner: Agent, **initial) -> NavRecord:
        """Create the record for ``node`` owned by ``owner``."""
        if node in self._records:
            raise ValueError(f"record for node {node} already exists")
        record = NavRecord(**initial)
        self._records[node] = record
        self._owners[node] = owner
        self._charge(node, owner, record)
        return record

    def get(self, node: int) -> NavRecord:
        return self._records[node]

    def has(self, node: int) -> bool:
        return node in self._records

    def owner(self, node: int) -> Agent:
        return self._owners[node]

    def transfer(self, node: int, new_owner: Agent) -> None:
        """Move ownership (and the memory charge) of a record to another agent."""
        record = self._records[node]
        old = self._owners[node]
        self._discharge(node, old)
        self._owners[node] = new_owner
        self._charge(node, new_owner, record)

    # ------------------------------------------------------------- mutation
    def update(self, node: int, **changes) -> None:
        """Mutate record fields and refresh the owner's memory charge."""
        record = self._records[node]
        for name, value in changes.items():
            if not hasattr(record, name):
                raise AttributeError(f"NavRecord has no field {name!r}")
            if name in _MAX_LIST_LEN and isinstance(value, list):
                if len(value) > _MAX_LIST_LEN[name]:
                    raise ValueError(
                        f"{name} may hold at most {_MAX_LIST_LEN[name]} ports "
                        f"(got {len(value)}); the sibling-pointer chunking was violated"
                    )
            setattr(record, name, value)
        self._charge(node, self._owners[node], record)

    def append_child_port(self, node: int, port: int) -> None:
        """Append a port to the node's first child group (ports of children 1..3)."""
        record = self._records[node]
        self.update(node, child_group=record.child_group + [port])

    def append_sibling_port(self, node: int, port: int) -> None:
        """Append a port to the node's sibling group (when the node is an anchor)."""
        record = self._records[node]
        self.update(node, sibling_group=record.sibling_group + [port])

    # ------------------------------------------------------------ accounting
    @staticmethod
    def _field_names(node: int):
        for name, kind, is_list in _RECORD_FIELDS:
            if is_list:
                for i in range(_MAX_LIST_LEN[name]):
                    yield f"nav[{node}].{name}[{i}]", kind, name, i
            else:
                yield f"nav[{node}].{name}", kind, name, None

    def _charge(self, node: int, owner: Agent, record: NavRecord) -> None:
        for mem_name, kind, attr, index in self._field_names(node):
            value = getattr(record, attr)
            if index is not None:
                value = value[index] if index < len(value) else None
            if value is None:
                owner.memory.declare(mem_name, kind)
                owner.memory.write(mem_name, None)
            else:
                owner.memory.write(mem_name, value, kind)

    def _discharge(self, node: int, owner: Agent) -> None:
        for mem_name, kind, _attr, _index in self._field_names(node):
            owner.memory.declare(mem_name, kind)
            owner.memory.write(mem_name, None)
