"""The paper's contribution: time-(near-)optimal dispersion algorithms.

Public entry points
-------------------

* :func:`repro.core.rooted_sync.rooted_sync_dispersion` -- Theorem 6.1,
  ``O(k)`` rounds, ``O(log(k+Δ))`` bits, rooted initial configurations, SYNC.
* :func:`repro.core.rooted_async.rooted_async_dispersion` -- Theorem 7.1,
  ``O(k log k)`` epochs, ``O(log(k+Δ))`` bits, rooted, ASYNC.
* :func:`repro.core.general_sync.general_sync_dispersion` -- Theorem 8.1,
  ``O(k)`` rounds, general initial configurations, SYNC.
* :func:`repro.core.general_async.general_async_dispersion` -- Theorem 8.2,
  ``O(k log k)`` epochs, general initial configurations, ASYNC.

The building blocks (empty-node selection, oscillation, the probing primitives,
sibling-pointer re-traversal, size-based subsumption) are exposed as their own
modules so the per-figure benchmarks can exercise them in isolation.
"""

from repro.core.empty_nodes import EmptyNodeSelection, select_empty_nodes
from repro.core.rooted_sync import rooted_sync_dispersion, RootedSyncDispersion
from repro.core.rooted_async import rooted_async_dispersion, RootedAsyncDispersion

__all__ = [
    "EmptyNodeSelection",
    "select_empty_nodes",
    "rooted_sync_dispersion",
    "RootedSyncDispersion",
    "rooted_async_dispersion",
    "RootedAsyncDispersion",
    "general_sync_dispersion",
    "general_async_dispersion",
]


def __getattr__(name):  # pragma: no cover - thin lazy import shim
    """Lazily import the general-configuration drivers (they pull in the rooted
    machinery plus the subsumption module, which is only needed when used)."""
    if name == "general_sync_dispersion":
        from repro.core.general_sync import general_sync_dispersion

        return general_sync_dispersion
    if name == "general_async_dispersion":
        from repro.core.general_async import general_async_dispersion

        return general_async_dispersion
    raise AttributeError(name)
