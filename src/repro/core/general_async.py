"""General (multi-root) ASYNC dispersion (paper Theorem 8.2).

The ASYNC counterpart of :mod:`repro.core.general_sync`: each start node hosts
one group that grows its DFS tree with the rooted ASYNC machinery
(:class:`~repro.core.rooted_async.RootedAsyncDispersion`, i.e. ``Async_Probe``
plus ``Guest_See_Off``), all on one shared asynchronous engine whose epoch
counter measures the whole execution.

Coordination follows the same serialized schedule as the SYNC driver (largest
group first, every root settled up front, blocked groups scatter their leftover
agents), with the scatter walks expressed as agent programs so their cost is
measured in real activations/epochs.  See DESIGN.md §3 for why the serialized
schedule is a conservative (upper-bound) rendering of the concurrent KS
execution whose collapse machinery lives in :mod:`repro.core.subsumption`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.agents.agent import Agent
from repro.agents.memory import MemoryModel
from repro.analysis.verification import is_dispersed
from repro.core.general_sync import _normalize_placements
from repro.core.rooted_async import RootedAsyncDispersion
from repro.core.rooted_sync import SMALL_K_THRESHOLD
from repro.graph.port_graph import PortLabeledGraph
from repro.sim.adversary import Adversary
from repro.sim.async_engine import AsyncEngine, Move
from repro.sim.result import DispersionResult

__all__ = ["GeneralAsyncDispersion", "general_async_dispersion"]


class GeneralAsyncDispersion:
    """Driver for general initial configurations under ASYNC (Theorem 8.2)."""

    def __init__(
        self,
        graph: PortLabeledGraph,
        placements: Mapping[int, int],
        adversary: Optional[Adversary] = None,
        strict: bool = True,
        max_activations: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.placements = _normalize_placements(graph, placements)
        self.k = sum(self.placements.values())
        self.strict = strict

        self.memory_model = MemoryModel(k=self.k, max_degree=graph.max_degree)
        self.agents: Dict[int, Agent] = {}
        self.groups: Dict[int, List[Agent]] = {}
        next_id = 1
        for node in sorted(self.placements):
            members = []
            for _ in range(self.placements[node]):
                agent = Agent(next_id, node, self.memory_model)
                self.agents[next_id] = agent
                members.append(agent)
                next_id += 1
            self.groups[node] = members
        if max_activations is None:
            import math

            log_k = int(math.log2(self.k + 2)) + 2
            max_activations = 800 * self.k * self.k * log_k + 40 * self.k * graph.num_nodes + 400_000
        self.engine = AsyncEngine(
            graph, self.agents.values(), adversary=adversary, max_activations=max_activations
        )
        self.metrics = self.engine.metrics
        self.all_visited: Set[int] = set()
        self.dfs_parent: List[Optional[int]] = [None] * graph.num_nodes

    # ------------------------------------------------------------------- run
    def run(self) -> DispersionResult:
        group_drivers: List[Tuple[int, List[Agent], Optional[RootedAsyncDispersion]]] = []
        for label, (node, members) in enumerate(
            sorted(self.groups.items(), key=lambda item: -len(item[1]))
        ):
            # A group whose every member is fault-blocked at time 0 cannot
            # settle its root no matter its size: it degrades to the scatter
            # path (thawed members recover later) instead of aborting the run.
            if len(members) >= SMALL_K_THRESHOLD and self._eligible_root_settler(members) is not None:
                driver = RootedAsyncDispersion(
                    self.graph,
                    k=len(members),
                    start_node=node,
                    treelabel=label,
                    strict=self.strict,
                    engine=self.engine,
                    agents={a.agent_id: a for a in members},
                    foreign_visited=self.all_visited,
                    probe_cap=self.k,
                )
                driver.settle_root()
            else:
                driver = None
                smallest = self._eligible_root_settler(members)
                if smallest is None:
                    # Every member of this tiny group is fault-blocked at time
                    # 0: nobody can execute a settle cycle, so the node stays
                    # unclaimed (thawed members are scattered later) -- same
                    # rule as the SYNC driver (v2 fault contract).
                    group_drivers.append((node, members, driver))
                    continue
                smallest.settle(node, None, treelabel=label)
            self.all_visited.add(node)
            group_drivers.append((node, members, driver))

        leftovers: List[Tuple[int, List[Agent]]] = []
        for node, members, driver in group_drivers:
            if driver is not None:
                remaining = driver.run_group()
                self.all_visited.update(driver.visited)
                for v, parent in enumerate(driver.dfs_parent):
                    if parent is not None:
                        self.dfs_parent[v] = parent
                self.metrics.bump("groups_grown")
            else:
                remaining = [a for a in members if not a.settled]
            if remaining:
                leftovers.append((node, remaining))

        for node, remaining in leftovers:
            self._scatter(remaining)

        metrics = self.engine.finalize_metrics()
        return DispersionResult(
            dispersed=is_dispersed(self.agents.values()),
            positions=self.engine.kernel.positions(),
            metrics=metrics,
            dfs_parent=list(self.dfs_parent),
            algorithm="GeneralAsyncDisp",
            notes={"k": self.k, "roots": len(self.placements)},
        )

    # --------------------------------------------------------------- scatter
    def _eligible_root_settler(self, members: Sequence[Agent]) -> Optional[Agent]:
        """Smallest group member whose settle cycle is not fault-blocked."""
        pool = [
            a
            for a in members
            if not a.settled and not self.engine.kernel.fault_view(a.agent_id).blocked_for_cycle
        ]
        return min(pool, key=lambda a: a.agent_id) if pool else None

    def _free_node(self, node: int) -> bool:
        return not self.engine.kernel.has_home_settler(node)

    def _path_to_nearest_free(self, start: int) -> Optional[List[int]]:
        if self._free_node(start):
            return []
        seen = {start}
        queue = deque([(start, [])])
        while queue:
            current, ports = queue.popleft()
            for port in self.graph.ports(current):
                nxt = self.graph.neighbor(current, port)
                if nxt in seen:
                    continue
                seen.add(nxt)
                path = ports + [port]
                if self._free_node(nxt):
                    return path
                queue.append((nxt, path))
        return None

    @staticmethod
    def _walk_program(ports: Sequence[int]):
        for port in ports:
            yield Move(port)

    def _scatter(self, agents: Sequence[Agent]) -> None:
        """Walk leftover agents to free nodes via agent programs (measured)."""
        group = [a for a in agents if not a.settled]
        while group:
            mobile = [
                a
                for a in group
                if not self.engine.kernel.fault_view(a.agent_id).blocked_for_cycle
            ]
            if not mobile:
                # Everybody left is crashed or frozen.  Frozen agents thaw, so
                # burn activations until one does; pure crash-stop leftovers
                # run into the max_activations cap and the faulty run is
                # reported as data (same rule as the SYNC driver).
                ids = tuple(a.agent_id for a in group)
                self.engine.run_until(
                    lambda ids=ids: any(
                        not self.engine.kernel.fault_view(i).blocked_for_cycle for i in ids
                    )
                )
                group = [a for a in group if not a.settled]
                continue
            head = mobile[0].position
            # Only agents standing at the head may follow this path -- a
            # straggler (frozen during an earlier walk, thawed elsewhere) would
            # otherwise execute a program relative to another node's ports.
            # It becomes the head of a later iteration instead.
            walkers = [a for a in mobile if a.position == head]
            path = self._path_to_nearest_free(head)
            if path is None:
                raise RuntimeError("no free node left although agents remain unsettled")
            target = head
            for port in path:
                target = self.graph.neighbor(target, port)
            for agent in walkers:
                self.engine.assign(agent.agent_id, self._walk_program(list(path)))
            ids = tuple(a.agent_id for a in walkers)
            self.engine.run_until(
                lambda ids=ids, t=target: all(self.agents[i].position == t for i in ids)
            )
            self.metrics.bump("scatter_walks")
            # The walkers are all at the target; one of them must also be able
            # to execute a settle cycle *now* (an agent can arrive and then
            # freeze), so wait out any freeze window before settling.
            eligible = [
                a
                for a in walkers
                if not self.engine.kernel.fault_view(a.agent_id).blocked_for_cycle
            ]
            if not eligible:
                ids = tuple(a.agent_id for a in walkers)
                self.engine.run_until(
                    lambda ids=ids: any(
                        not self.engine.kernel.fault_view(i).blocked_for_cycle for i in ids
                    )
                )
                eligible = [
                    a
                    for a in walkers
                    if not self.engine.kernel.fault_view(a.agent_id).blocked_for_cycle
                ]
            settler = min(eligible, key=lambda a: a.agent_id)
            settler.settle(target, None)
            self.all_visited.add(target)
            self.metrics.bump("scatter_settled")
            group = [a for a in group if not a.settled]


def general_async_dispersion(
    graph: PortLabeledGraph,
    placements: Mapping[int, int],
    adversary: Optional[Adversary] = None,
    **kwargs,
) -> DispersionResult:
    """Convenience wrapper: run Theorem 8.2's driver and return the result."""
    return GeneralAsyncDispersion(graph, placements, adversary=adversary, **kwargs).run()
