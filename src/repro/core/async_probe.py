"""Asynchronous probing and guest see-off (paper Algorithms 3–4, Figures 6–7).

``Async_Probe`` finds a fully unsettled neighbor of the DFS head ``w`` (or
reports that none exists) in ``O(log k)`` epochs despite asynchrony:

* the agents currently at ``w`` (everybody except the settler ``α(w)``) probe
  as many unchecked ports as they can in parallel; each prober that finds a
  settled neighbor brings that settler back to ``w`` as a *helper*, doubling
  the prober pool for the next iteration (Lemma 5);
* the leader waits -- by locally observing ``w`` -- until every prober and every
  recruited helper has arrived before starting the next iteration, which is how
  the iterations are synchronized without a global clock.

``Guest_See_Off`` then walks every recruited helper back to its home node
*before* the DFS advances: helpers are paired by ID, each pair walks to the
first helper's home, the second returns, and the pool halves every iteration
(Lemma 6, ``O(log k)`` epochs).  This ordering is what makes an "empty"
observation at the next DFS node trustworthy under asynchrony (Section 4.3).

Both routines are written as generators of CCM actions for the leader (driven
by :class:`~repro.sim.async_engine.AsyncEngine`); the non-leader participants
receive their own small action programs, assigned while co-located with the
agent that instructs them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.agents.agent import Agent, AgentRole
from repro.agents.memory import FieldKind
from repro.sim.async_engine import Move, WaitUntil

__all__ = ["async_probe", "guest_see_off"]


def _resident_settler(ctx, node: int) -> Optional[Agent]:
    """The settler whose home is ``node`` and who is currently there."""
    return ctx.engine.kernel.home_settler_at(node)


def _prober_program(ctx, w: int, port: int, prober: Agent, recruited: List[Agent]):
    """Action program for a non-leader prober assigned to ``port`` of ``w``.

    The prober crosses to the neighbor, checks for a resident settler while it
    is there (its Communicate phase), recruits it as a helper if present (the
    recruit is given a one-move program to follow the prober back to ``w`` and
    remembers, in its own memory, which port of ``w`` it entered through so it
    can be seen off home later), and crosses back.
    """
    target = ctx.graph.neighbor(w, port)
    back = ctx.graph.reverse_port(w, port)
    yield Move(port)
    resident = _resident_settler(ctx, target)
    prober.memory.write("probe_found_empty", resident is None, FieldKind.FLAG)
    prober.memory.write("probe_port", port, FieldKind.PORT)
    if resident is not None:
        resident.memory.write("guest_entry_port", port, FieldKind.PORT)
        resident.role = AgentRole.HELPER
        ctx.engine.assign(resident.agent_id, _single_move(back))
        recruited.append(resident)
    # The completion flag is written in the same CCM cycle as the return move,
    # so "probe_done and back at w" certifies the probe really happened.
    prober.memory.write("probe_done", True, FieldKind.FLAG)
    yield Move(back)


def _single_move(port: int):
    yield Move(port)


def _escort_program(ctx, escort: Agent, guest: Agent, out_port: int, back_port: int):
    """Program for the escorting agent of a see-off pair.

    It follows the guest to the guest's home, waits (locally) until the guest
    is indeed at that home node, records completion in its own memory (readable
    by the leader once it is back), then returns to ``w``.
    """
    yield Move(out_port)
    yield WaitUntil(lambda g=guest: g.position == g.home)
    escort.memory.write("escort_done", True, FieldKind.FLAG)
    yield Move(back_port)


def async_probe(ctx, w: int):
    """Generator implementing ``Async_Probe`` at node ``w`` for the leader.

    Yields the leader's CCM actions; its return value (captured via
    ``yield from``) is ``(found_port, guests)`` where ``found_port`` is the
    smallest port of ``w`` leading to a fully unsettled neighbor (or ``None``)
    and ``guests`` is the list of settled helpers currently at ``w`` that must
    be seen off before the DFS moves.
    """
    graph = ctx.graph
    leader = ctx.leader
    settler_w = _resident_settler(ctx, w)
    degree = graph.degree(w)
    limit = min(ctx.probe_cap, degree)
    checked = 0
    found: Optional[int] = None
    guests: List[Agent] = []
    ctx.metrics.bump("async_probe_calls")
    if settler_w is not None:
        settler_w.memory.write("checked", 0, FieldKind.COUNTER_DELTA)
        settler_w.memory.write("next", 0, FieldKind.PORT)

    while checked < limit and found is None:
        probers = [
            a
            for a in ctx.engine.kernel.agents_at(w)
            if a is not settler_w and a.agent_id != leader.agent_id
        ]
        batch = min(len(probers) + 1, limit - checked)  # +1: the leader probes too
        recruited: List[Agent] = []
        assigned: List[Tuple[Agent, int]] = []
        leader_port: Optional[int] = None
        for j in range(batch):
            port = checked + 1 + j
            if j < len(probers):
                prober = probers[j]
                prober.memory.write("probe_done", False, FieldKind.FLAG)
                ctx.engine.assign(
                    prober.agent_id, _prober_program(ctx, w, port, prober, recruited)
                )
                assigned.append((prober, port))
            else:
                leader_port = port
        ctx.metrics.bump("async_probe_iterations")

        # The leader probes its own port (if it took one) with real moves.
        if leader_port is not None:
            target = graph.neighbor(w, leader_port)
            back = graph.reverse_port(w, leader_port)
            yield Move(leader_port)
            resident = _resident_settler(ctx, target)
            leader.memory.write("probe_found_empty", resident is None, FieldKind.FLAG)
            leader.memory.write("probe_port", leader_port, FieldKind.PORT)
            if resident is not None:
                resident.memory.write("guest_entry_port", leader_port, FieldKind.PORT)
                resident.role = AgentRole.HELPER
                ctx.engine.assign(resident.agent_id, _single_move(back))
                recruited.append(resident)
            yield Move(back)
            assigned.append((leader, leader_port))

        # Wait until every prober has completed its round trip (its "done" flag
        # is readable once it is back at w) and every recruited helper has
        # arrived at w.  ``recruited`` is a live list appended to by the prober
        # programs, which models the leader reading the returned probers' memory.
        prober_agents = tuple(a for a, _ in assigned if a is not leader)
        yield WaitUntil(
            lambda probers_=prober_agents, rec=recruited: all(
                p.position == w and bool(p.memory.read("probe_done", False))
                for p in probers_
            )
            and all(a.position == w for a in rec)
        )

        for prober, port in assigned:
            if bool(prober.memory.read("probe_found_empty", False)):
                found = port if found is None else min(found, port)
        guests.extend(recruited)
        checked += batch

    if settler_w is not None:
        settler_w.memory.write("checked", checked, FieldKind.COUNTER_DELTA)
        settler_w.memory.write("next", 0 if found is None else found, FieldKind.PORT)
    if ctx.strict:
        _verify_async_classification(ctx, w, found)
    return found, guests


def _verify_async_classification(ctx, w: int, found: Optional[int]) -> None:
    """Strict mode: the port reported empty must lead to a never-visited node."""
    if found is None:
        return
    target = ctx.graph.neighbor(w, found)
    if ctx.is_visited(target):
        raise AssertionError(
            f"Async_Probe at node {w} reported port {found} as fully unsettled but "
            f"node {target} was already visited; Guest_See_Off ordering is broken"
        )


def guest_see_off(ctx, w: int, guests: Sequence[Agent]):
    """Generator implementing ``Guest_See_Off`` at node ``w`` for the leader.

    Pairs the guests by ID; each pair walks out through the first guest's entry
    port (so the first guest is home), the second returns; the pool halves per
    iteration.  A final odd guest is escorted by the settler ``α(w)``, which
    then returns to ``w``.  The leader merely waits (locally observing ``w`` /
    the guests' arrival flags) between iterations; every wait is measured by
    the scheduler.
    """
    remaining: List[Agent] = sorted(guests, key=lambda a: a.agent_id)
    if not remaining:
        return
    ctx.metrics.bump("guest_see_off_calls")
    settler_w = _resident_settler(ctx, w)

    while remaining:
        ctx.metrics.bump("guest_see_off_iterations")
        if len(remaining) == 1:
            guest = remaining[0]
            out_port = int(guest.memory.read("guest_entry_port"))
            back_port = ctx.graph.reverse_port(w, out_port)
            ctx.engine.assign(guest.agent_id, _single_move(out_port))
            escort = settler_w if settler_w is not None else ctx.leader
            if escort is ctx.leader:
                # Degenerate case (no settler at w): the leader escorts in person.
                yield Move(out_port)
                yield WaitUntil(lambda g=guest: g.position == g.home)
                yield Move(back_port)
            else:
                escort.memory.write("escort_done", False, FieldKind.FLAG)
                ctx.engine.assign(
                    escort.agent_id,
                    _escort_program(ctx, escort, guest, out_port, back_port),
                )
                yield WaitUntil(
                    lambda e=escort: e.position == w
                    and bool(e.memory.read("escort_done", False))
                )
            guest.role = AgentRole.SETTLER
            guest.memory.clear("guest_entry_port")
            remaining = []
            break

        stayers: List[Agent] = []
        returners: List[Agent] = []
        index = 0
        while index + 1 < len(remaining):
            a, b = remaining[index], remaining[index + 1]
            out_port = int(a.memory.read("guest_entry_port"))
            back_port = ctx.graph.reverse_port(w, out_port)
            ctx.engine.assign(a.agent_id, _single_move(out_port))
            b.memory.write("escort_done", False, FieldKind.FLAG)
            ctx.engine.assign(b.agent_id, _escort_program(ctx, b, a, out_port, back_port))
            stayers.append(a)
            returners.append(b)
            index += 2
        leftover = remaining[index:] if index < len(remaining) else []

        # The leader proceeds only once every escort is back at w carrying its
        # "partner reached home" confirmation -- purely local observations at w.
        yield WaitUntil(
            lambda rt=tuple(returners): all(
                b.position == w and bool(b.memory.read("escort_done", False))
                for b in rt
            )
        )
        for a in stayers:
            a.role = AgentRole.SETTLER
            a.memory.clear("guest_entry_port")
        remaining = sorted(returners + leftover, key=lambda x: x.agent_id)
