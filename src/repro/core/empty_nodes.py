"""Empty-node selection (paper Algorithm 1, ``Empty_Node_Selection``).

Given an arbitrary rooted tree ``T`` with ``k`` nodes, decide which nodes
receive a settled agent and which are left empty so that

* at most ``⌊2k/3⌋`` nodes are occupied (Lemma 1: at least ``⌈k/3⌉`` empty),
* every empty node can be *covered* by a settled agent within 2 tree hops whose
  oscillation trip has length at most 6 rounds (Lemmas 2–3; see
  :mod:`repro.core.oscillation`).

The rules, following the paper:

1. Settle an agent on every node at **even depth** (root depth 0).
2. *Case A — remove extra settlers*: for every (odd-depth) node whose children
   include ``x > 1`` leaves of ``T`` (all at even depth, hence all settled),
   keep a settler only on the 1st, 4th, 7th, ... of those leaf children and
   remove the other ``⌊2x/3⌋`` settlers.
3. *Case B — put new settlers*: for every settled (even-depth) non-leaf node
   with ``x > 3`` children (all at odd depth, hence all empty), put a settler on
   its 4th, 7th, 10th, ... children (``⌈(x-3)/3⌉`` of them).

This module is the *centralized / static* version used for analysis, tests, and
the Figure-1 benchmark.  The SYNC dispersion algorithm applies the same rules
on-line while its DFS tree grows (Observation 1 of the paper); that on-line
version lives in :mod:`repro.core.rooted_sync` and is tested against this one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set

__all__ = ["EmptyNodeSelection", "select_empty_nodes", "keeps_settler_at_position"]


def keeps_settler_at_position(x: int) -> bool:
    """Whether the ``x``-th (1-based) sibling in a group keeps/receives a settler.

    Shared by the static algorithm and the on-line DFS rules: positions
    1 is implicitly kept only in Case A; in both cases the occupied positions
    beyond the first are exactly ``x ≡ 1 (mod 3)`` with ``x ≥ 4``.
    """
    return x == 1 or (x >= 4 and x % 3 == 1)


@dataclass
class EmptyNodeSelection:
    """Result of ``Empty_Node_Selection`` on a rooted tree.

    Attributes
    ----------
    occupied / empty:
        Partition of the tree's nodes.
    cover:
        ``empty node -> occupied node`` assignment: the settler responsible for
        covering the empty node through oscillation.  Children of an occupied
        node are covered by that node; empty siblings are covered by the
        occupied sibling that anchors their group.
    cover_sets:
        Inverse mapping ``occupied node -> list of covered empty nodes``.
    depth:
        Node depths (root at 0).
    """

    root: int
    occupied: Set[int]
    empty: Set[int]
    cover: Dict[int, int]
    cover_sets: Dict[int, List[int]]
    depth: Dict[int, int]

    @property
    def size(self) -> int:
        return len(self.occupied) + len(self.empty)

    def lemma1_holds(self) -> bool:
        """Lemma 1: at least ``⌈k/3⌉`` nodes are empty (for k >= 3)."""
        k = self.size
        if k < 3:
            return True
        return len(self.empty) >= math.ceil(k / 3)

    def coverage_is_local(self, parent: Mapping[int, Optional[int]]) -> bool:
        """Every empty node's coverer is its parent or a sibling (<= 2 hops)."""
        for node, coverer in self.cover.items():
            if parent.get(node) == coverer:
                continue
            if parent.get(node) is not None and parent.get(node) == parent.get(coverer):
                continue
            return False
        return True


def select_empty_nodes(
    children: Mapping[int, Sequence[int]],
    root: int,
) -> EmptyNodeSelection:
    """Run ``Empty_Node_Selection`` (Algorithm 1) on a rooted tree.

    Parameters
    ----------
    children:
        Ordered children lists (the order models the port / DFS-discovery order
        that the on-line algorithm would see).  Every tree node must appear as a
        key (leaves map to an empty sequence).
    root:
        The root node (depth 0).
    """
    # Depths via BFS.
    depth: Dict[int, int] = {root: 0}
    order: List[int] = [root]
    head = 0
    while head < len(order):
        v = order[head]
        head += 1
        for c in children.get(v, ()):  # keep given order
            if c in depth:
                raise ValueError(f"node {c} appears twice; input is not a tree")
            depth[c] = depth[v] + 1
            order.append(c)
    if set(children) - set(depth):
        raise ValueError("children mapping contains nodes unreachable from the root")

    parent: Dict[int, Optional[int]] = {root: None}
    for v in order:
        for c in children.get(v, ()):
            parent[c] = v

    is_leaf = {v: len(children.get(v, ())) == 0 for v in depth}

    # Step 1: settle at even depths.
    occupied: Set[int] = {v for v in depth if depth[v] % 2 == 0}

    # Case A: remove extra settlers from leaf children (of odd-depth parents).
    for v in order:
        leaf_children = [c for c in children.get(v, ()) if is_leaf[c] and depth[c] % 2 == 0]
        if len(leaf_children) <= 1:
            continue
        for position, c in enumerate(leaf_children, start=1):
            if not keeps_settler_at_position(position):
                occupied.discard(c)

    # Case B: put new settlers on the 4th, 7th, ... children of settled
    # even-depth non-leaf nodes.
    for v in order:
        if depth[v] % 2 != 0 or is_leaf[v]:
            continue
        kids = list(children.get(v, ()))
        if len(kids) > 3:
            for position, c in enumerate(kids, start=1):
                if position >= 4 and position % 3 == 1:
                    occupied.add(c)

    empty = {v for v in depth if v not in occupied}

    cover = _assign_cover(children, order, depth, is_leaf, occupied)
    cover_sets: Dict[int, List[int]] = {}
    for node, coverer in cover.items():
        cover_sets.setdefault(coverer, []).append(node)

    return EmptyNodeSelection(
        root=root,
        occupied=occupied,
        empty=empty,
        cover=cover,
        cover_sets=cover_sets,
        depth=depth,
    )


def _assign_cover(
    children: Mapping[int, Sequence[int]],
    order: Sequence[int],
    depth: Mapping[int, int],
    is_leaf: Mapping[int, bool],
    occupied: Set[int],
) -> Dict[int, int]:
    """Assign every empty node to a covering settler (Lemma 3 / Figure 3).

    Walking each node's children in order:

    * Children at **odd depth** (parent ``v`` at even depth, hence occupied):
      ``v`` covers its first up-to-3 empty children; every occupied child
      encountered afterwards (the Case-B settlers at positions 4, 7, ...)
      becomes the current *anchor*, covering up to 2 subsequent empty siblings.
    * Children at **even depth** (parent at odd depth): only *leaf* children can
      be empty (Case A removals).  Walking the leaf children only, each kept
      (occupied) leaf anchors its group and covers up to 2 removed leaf
      siblings.  Non-leaf children are always occupied and need no cover.
    """
    cover: Dict[int, int] = {}
    for v in order:
        kids = list(children.get(v, ()))
        if not kids:
            continue
        children_at_odd_depth = depth[v] % 2 == 0
        if children_at_odd_depth:
            coverer = v
            capacity = 3
            for c in kids:
                if c in occupied:
                    coverer = c
                    capacity = 2
                    continue
                if capacity <= 0:
                    raise AssertionError(
                        f"cover capacity exhausted at parent {v}; selection rules violated"
                    )
                cover[c] = coverer
                capacity -= 1
        else:
            # Children at even depth: only leaf children may be empty.
            coverer: Optional[int] = None
            capacity = 0
            for c in kids:
                if not is_leaf[c]:
                    continue
                if c in occupied:
                    coverer = c
                    capacity = 2
                    continue
                if coverer is None or capacity <= 0:
                    raise AssertionError(
                        f"empty leaf {c} under parent {v} has no sibling anchor"
                    )
                cover[c] = coverer
                capacity -= 1
    return cover
