"""Oscillating settlers (paper Section 5.2, Lemmas 2–3, Figures 2–4).

A settled agent whose group contains empty nodes *oscillates*: it repeatedly
performs a round-robin trip from its home node through its covered empty nodes
and back.  Two trip shapes exist:

* **child cover** (Case I): the settler at node ``w`` covers up to 3 empty
  children of ``w``; the trip is ``w – a – w – b – w – c – w`` (≤ 6 rounds),
* **sibling cover** (Case II): the settler at node ``w`` covers up to 2 empty
  siblings reachable through the common parent ``p``; the trip is
  ``w – p – a – p – b – p – w`` (≤ 6 rounds).

Because a waiting probe agent (Algorithm 2) stays at a probed node for more
rounds than one trip takes, it is guaranteed to meet the oscillator if the node
belongs to the DFS tree -- that is how "already visited" is detected without
node memory.

Two layers live here:

* *static* helpers (:func:`build_trip`, :func:`max_trip_length`) used by the
  Figure-2/3/4 analyses and by property tests of Lemma 2,
* the *runtime* :class:`Oscillator` state machine that the SYNC dispersion
  engine steps every round; it physically moves the settler, restarts its trip
  when its covered set changes, drops covered nodes once somebody settles on
  them, and returns home when it has nothing left to cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.agents.agent import Agent, AgentRole
from repro.graph.port_graph import PortLabeledGraph

__all__ = ["CoveredNode", "Oscillator", "build_trip", "max_trip_length"]


@dataclass(frozen=True)
class CoveredNode:
    """One empty node covered by an oscillating settler.

    ``route_out`` is the sequence of ports (starting from the oscillator's home
    node) leading to the covered node: one port for a child of the home node,
    two ports (home→parent, parent→sibling) for a sibling.  The return path uses
    the reverse ports, which the simulator provides on arrival (``pin``), so the
    oscillator itself only needs to remember ``route_out`` -- O(1) port fields.
    """

    node: int
    route_out: Tuple[int, ...]

    @property
    def is_sibling(self) -> bool:
        return len(self.route_out) == 2


def build_trip(covered: Sequence[CoveredNode]) -> List[int]:
    """Round lengths of a full oscillation trip over ``covered`` (Lemma 2).

    Returns the per-leg move counts; the total is the trip length in rounds.
    A child leg costs 2 rounds (out and back); sibling legs share the hop to the
    parent: the first sibling leg costs 3 (home→parent→sib→parent is 3 moves …
    we count home→parent, parent→sib, sib→parent), subsequent sibling legs 2,
    plus 1 final move parent→home.
    """
    if not covered:
        return []
    legs: List[int] = []
    siblings = [c for c in covered if c.is_sibling]
    children = [c for c in covered if not c.is_sibling]
    for _ in children:
        legs.append(2)
    if siblings:
        legs.append(1)  # home -> parent
        for _ in siblings:
            legs.append(2)  # parent -> sibling -> parent
        legs.append(1)  # parent -> home
    return legs


def max_trip_length(covered: Sequence[CoveredNode]) -> int:
    """Total rounds of one full trip (Lemma 2 asserts ≤ 6 for valid covers)."""
    return sum(build_trip(covered))


class Oscillator:
    """Runtime oscillation state machine for one settled agent.

    The SYNC engine calls :meth:`plan_step` once per round *before* executing
    the round to obtain the port (if any) this oscillator moves through, and
    :meth:`after_step` after the round so the oscillator can react to what it
    finds at its current node (e.g. a newly settled agent on a covered node).

    The oscillator's walk is driven entirely by a pre-planned list of ports from
    its home; it never needs more than O(1) port fields, which matches the
    memory accounting done by the caller.
    """

    def __init__(self, agent: Agent, home: int, graph: PortLabeledGraph) -> None:
        self.agent = agent
        self.home = home
        self.graph = graph
        self.covered: List[CoveredNode] = []
        self._plan: List[int] = []       # ports still to traverse in the current trip
        self._plan_pos: int = 0
        self._returning_home: bool = False
        self._stopped = False
        agent.role = AgentRole.OSCILLATOR

    # ------------------------------------------------------------ assignment
    def add_cover(self, node: int, route_out: Sequence[int]) -> None:
        """Start covering ``node`` (reached from home via ``route_out`` ports)."""
        if any(c.node == node for c in self.covered):
            return
        self.covered.append(CoveredNode(node=node, route_out=tuple(route_out)))
        # The new node is picked up on the next trip; if the oscillator was
        # parked at home with nothing to do, restart immediately.
        if not self._plan and self.agent.position == self.home:
            self._plan = self._full_trip()
            self._plan_pos = 0

    def drop_cover(self, node: int) -> None:
        """Stop covering ``node`` (someone settled there)."""
        self.covered = [c for c in self.covered if c.node != node]

    @property
    def is_active(self) -> bool:
        """True while the oscillator still has nodes to cover or is not home."""
        return bool(self.covered) or self.agent.position != self.home or bool(self._plan)

    # ---------------------------------------------------------------- moves
    def plan_step(self) -> Optional[int]:
        """Port to move through this round, or ``None`` to stay put."""
        if self._stopped:
            return None
        if not self._plan:
            if self.agent.position != self.home:
                # Finish walking home along the remainder of a cleared plan:
                # this only happens when covers were dropped mid-trip; the
                # remaining plan always ends at home, so rebuild a direct path.
                self._plan = self._path_home()
                self._plan_pos = 0
            elif self.covered:
                self._plan = self._full_trip()
                self._plan_pos = 0
            else:
                return None
        if self._plan_pos >= len(self._plan):
            self._plan = []
            self._plan_pos = 0
            return self.plan_step()
        port = self._plan[self._plan_pos]
        self._plan_pos += 1
        if self._plan_pos >= len(self._plan):
            self._plan = []
            self._plan_pos = 0
        return port

    def after_step(self, settled_here_other: bool) -> None:
        """Round post-processing: drop covered nodes that acquired a settler."""
        if settled_here_other:
            here = self.agent.position
            if any(c.node == here for c in self.covered):
                self.drop_cover(here)

    # --------------------------------------------------------------- helpers
    def _full_trip(self) -> List[int]:
        """Ports of one complete round-robin trip starting and ending at home."""
        ports: List[int] = []
        children = [c for c in self.covered if not c.is_sibling]
        siblings = [c for c in self.covered if c.is_sibling]
        for c in children:
            out = c.route_out[0]
            back = self.graph.reverse_port(self.home, out)
            ports.extend([out, back])
        if siblings:
            to_parent = siblings[0].route_out[0]
            parent = self.graph.neighbor(self.home, to_parent)
            ports.append(to_parent)
            for c in siblings:
                out = c.route_out[1]
                back = self.graph.reverse_port(parent, out)
                ports.extend([out, back])
            ports.append(self.graph.reverse_port(self.home, to_parent))
        return ports

    def _path_home(self) -> List[int]:
        """Shortest port path from the current position back home.

        The oscillator is always within 2 hops of home, so this is at most two
        ports; the BFS below is simulator-side convenience and bounded by the
        same 2 hops (it never explores further).
        """
        start = self.agent.position
        if start == self.home:
            return []
        # Direct neighbor?
        for port in self.graph.ports(start):
            if self.graph.neighbor(start, port) == self.home:
                return [port]
        # Two hops: via any common neighbor (the parent node of a sibling trip).
        for port in self.graph.ports(start):
            mid = self.graph.neighbor(start, port)
            for port2 in self.graph.ports(mid):
                if self.graph.neighbor(mid, port2) == self.home:
                    return [port, port2]
        raise AssertionError(
            f"oscillator for agent {self.agent.agent_id} strayed more than 2 hops from home"
        )

    def stop(self) -> None:
        """Permanently stop oscillating (used once dispersion is complete)."""
        self._stopped = True
        self.agent.role = AgentRole.SETTLER
