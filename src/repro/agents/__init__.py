"""Mobile-agent substrate: agent state, roles, and memory-bit accounting."""

from repro.agents.agent import Agent, AgentRole
from repro.agents.memory import AgentMemory, FieldKind, MemoryModel

__all__ = ["Agent", "AgentRole", "AgentMemory", "FieldKind", "MemoryModel"]
