"""Per-agent persistent-memory accounting.

Memory complexity in the paper is "the number of bits stored at any agent over
one CCM cycle to the next"; temporary memory used during the Compute phase is
free.  To make memory complexity a *measured* quantity rather than a claim, every
algorithm in this reproduction stores its persistent per-agent state through an
:class:`AgentMemory`, which

* maps each named field to a :class:`FieldKind` describing how many bits it
  costs under the paper's accounting convention (an agent ID costs
  ``ceil(log2 k_max)`` bits, a port-valued field ``ceil(log2 (Δ+1))`` bits, a
  counter bounded by ``k`` costs ``ceil(log2 (k+1))`` bits, a flag 1 bit, ...),
* tracks the *peak* total bits ever held simultaneously, which is what the
  ``O(log(k + Δ))`` claims of Theorems 6.1/7.1/8.1/8.2 bound.

The accounting is deliberately conservative: a field is charged from the moment
it is first written until it is explicitly cleared, and list-valued fields are
charged per element.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["FieldKind", "MemoryModel", "AgentMemory"]


class FieldKind(enum.Enum):
    """How a persistent field is charged, in bits."""

    ID = "id"            # agent identifier: ceil(log2 max_id)
    PORT = "port"        # a port number in [1, Δ] or ⊥: ceil(log2 (Δ + 2))
    COUNTER_K = "counter_k"  # a counter bounded by k: ceil(log2 (k + 1))
    COUNTER_DELTA = "counter_delta"  # a counter bounded by Δ: ceil(log2 (Δ + 1))
    DEPTH = "depth"      # a tree depth (bounded by k): ceil(log2 (k + 1))
    LABEL = "label"      # a tree label (bounded by number of roots <= k)
    FLAG = "flag"        # one bit
    SMALL = "small"      # O(1) bits; charged as 3 bits (a small constant)


@dataclass(frozen=True)
class MemoryModel:
    """The parameters that fix field costs: ``k`` agents, maximum degree ``Δ``.

    ``max_id`` defaults to ``k`` (the paper assumes IDs in ``[1, k^{O(1)}]``; with
    polynomial IDs the ID cost is still ``O(log k)``).
    """

    k: int
    max_degree: int
    max_id: Optional[int] = None

    def bits(self, kind: FieldKind) -> int:
        """Bit cost of one field of the given kind."""
        k = max(2, self.k)
        delta = max(2, self.max_degree)
        max_id = self.max_id if self.max_id is not None else k
        max_id = max(2, max_id)
        if kind is FieldKind.ID:
            return math.ceil(math.log2(max_id + 1))
        if kind is FieldKind.PORT:
            return math.ceil(math.log2(delta + 2))
        if kind is FieldKind.COUNTER_K:
            return math.ceil(math.log2(k + 1))
        if kind is FieldKind.COUNTER_DELTA:
            return math.ceil(math.log2(delta + 1))
        if kind is FieldKind.DEPTH:
            return math.ceil(math.log2(k + 1))
        if kind is FieldKind.LABEL:
            return math.ceil(math.log2(k + 1))
        if kind is FieldKind.FLAG:
            return 1
        if kind is FieldKind.SMALL:
            return 3
        raise ValueError(f"unknown field kind {kind}")

    def log_k_plus_delta_bits(self) -> float:
        """``log2(k + Δ)`` -- the unit in which Theorems 6.1–8.2 state memory."""
        return math.log2(max(2, self.k + self.max_degree))


class AgentMemory:
    """Persistent per-agent memory with bit accounting.

    Fields are accessed like a mapping but must be *declared* with a
    :class:`FieldKind` on first write so their bit cost is known.  Writing
    ``None`` to a field clears it (it stops being charged); the paper's ``⊥``
    value for port fields is represented by the integer ``0`` so that a field
    holding ``⊥`` is still charged (the agent must remember that it is ``⊥``).
    """

    __slots__ = ("_model", "_values", "_kinds", "_peak_bits", "_current_bits")

    def __init__(self, model: MemoryModel) -> None:
        self._model = model
        self._values: Dict[str, object] = {}
        self._kinds: Dict[str, FieldKind] = {}
        self._current_bits = 0
        self._peak_bits = 0

    # ------------------------------------------------------------------ core
    def declare(self, name: str, kind: FieldKind) -> None:
        """Declare a field's kind without writing a value."""
        existing = self._kinds.get(name)
        if existing is not None and existing is not kind:
            raise ValueError(f"field {name!r} re-declared with a different kind")
        self._kinds[name] = kind

    def write(self, name: str, value: object, kind: Optional[FieldKind] = None) -> None:
        """Write a persistent field (charging its bits while it is set)."""
        if kind is not None:
            self.declare(name, kind)
        if name not in self._kinds:
            raise KeyError(f"field {name!r} was never declared with a kind")
        was_set = name in self._values
        if value is None:
            if was_set:
                del self._values[name]
                self._current_bits -= self._model.bits(self._kinds[name])
            return
        if not was_set:
            self._current_bits += self._model.bits(self._kinds[name])
        self._values[name] = value
        self._peak_bits = max(self._peak_bits, self._current_bits)

    def read(self, name: str, default: object = None) -> object:
        """Read a field (``default`` when unset)."""
        return self._values.get(name, default)

    def clear(self, name: str) -> None:
        """Clear a field so it is no longer charged."""
        self.write(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    # ------------------------------------------------------------ accounting
    @property
    def current_bits(self) -> int:
        """Bits currently held."""
        return self._current_bits

    @property
    def peak_bits(self) -> int:
        """Maximum bits ever held simultaneously."""
        return self._peak_bits

    @property
    def model(self) -> MemoryModel:
        return self._model

    def peak_in_log_units(self) -> float:
        """Peak bits divided by ``log2(k + Δ)``.

        The Theorems claim this ratio is bounded by a constant independent of
        ``k`` and ``Δ``; benchmarks report it directly.
        """
        return self._peak_bits / self._model.log_k_plus_delta_bits()

    def snapshot(self) -> Dict[str, object]:
        """Copy of the current field values (for tests/debugging)."""
        return dict(self._values)
