"""The mobile agent (paper Section 2, "Agents").

An :class:`Agent` owns

* a unique positive integer identifier (``a_i.ID``),
* a current position (a node of the graph -- simulator bookkeeping; the agent
  itself cannot read the node's identity, only its degree and the incoming
  port),
* the read-only incoming port ``pin`` set by the simulator after each move,
* a *role* describing what the agent is currently doing (explorer, seeker,
  settler, ...), and
* an :class:`~repro.agents.memory.AgentMemory` holding all persistent state the
  algorithm stores on the agent, with bit accounting.

Roles exist purely for readability of the algorithms and the traces; they mirror
the paper's vocabulary (Section 4.2).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.agents.memory import AgentMemory, FieldKind, MemoryModel

__all__ = ["AgentRole", "Agent"]


class AgentRole(enum.Enum):
    """What an agent is currently doing, using the paper's vocabulary."""

    EXPLORER = "explorer"          # travels with the DFS head, will settle later
    SEEKER = "seeker"              # reserved for synchronous probing (SYNC)
    SETTLER = "settler"            # settled at its home node, not oscillating
    OSCILLATOR = "oscillator"      # settled, currently covering empty nodes
    HELPER = "helper"              # settled agent temporarily helping Async_Probe
    LEADER = "leader"              # a_max, conducts the DFS


class Agent:
    """A single mobile agent.

    Parameters
    ----------
    agent_id:
        Unique positive integer identifier.
    start_node:
        Initial position (node index).
    memory_model:
        The :class:`MemoryModel` fixing per-field bit costs.
    """

    __slots__ = (
        "agent_id",
        "position",
        "pin",
        "role",
        "settled",
        "home",
        "treelabel",
        "memory",
        "unsettle_count",
        "_observer",
    )

    def __init__(self, agent_id: int, start_node: int, memory_model: MemoryModel) -> None:
        if agent_id <= 0:
            raise ValueError("agent IDs must be positive integers")
        self.agent_id = agent_id
        self.position = start_node
        self.pin: Optional[int] = None  # incoming port, ⊥ at time 0
        self.role = AgentRole.EXPLORER
        self.settled = False
        self.home: Optional[int] = None  # home node once settled (simulator view)
        self.treelabel: Optional[int] = None
        #: Sanctioned un-settlements so far (Backtrack_Move, subsumption); the
        #: invariant checker uses this to tell legitimate settled-count drops
        #: from state corruption.
        self.unsettle_count = 0
        #: Settled-index hook of the bound kernel backend (None when the
        #: backend keeps no index); set by the backend on bind, never by
        #: algorithm code.  Agents stay observable-state-identical either way.
        self._observer = None
        self.memory = AgentMemory(memory_model)
        # Every agent persistently stores its own ID (the Ω(log k) lower bound).
        self.memory.write("ID", agent_id, FieldKind.ID)
        # settled flag and pin are part of the persistent state.
        self.memory.write("settled", False, FieldKind.FLAG)
        self.memory.write("pin", 0, FieldKind.PORT)

    # ----------------------------------------------------------------- moves
    def arrive(self, node: int, incoming_port: int) -> None:
        """Simulator callback: the agent crossed an edge and arrived at ``node``."""
        self.position = node
        self.pin = incoming_port
        self.memory.write("pin", incoming_port, FieldKind.PORT)

    # ----------------------------------------------------------------- state
    def settle(self, node: int, parent_port: Optional[int], treelabel: Optional[int] = None) -> None:
        """Mark the agent as settled at ``node``.

        ``parent_port`` is the port of ``node`` leading to its DFS-tree parent
        (``None``/⊥ for a DFS root), stored persistently as the paper's
        ``α(w).parent``.
        """
        if self._observer is not None and self.settled:
            self._observer.notify_unsettle(self)  # re-settling moves the index entry
        self.settled = True
        self.home = node
        self.role = AgentRole.SETTLER
        self.memory.write("settled", True, FieldKind.FLAG)
        self.memory.write("parent", 0 if parent_port is None else parent_port, FieldKind.PORT)
        if treelabel is not None:
            self.treelabel = treelabel
            self.memory.write("treelabel", treelabel, FieldKind.LABEL)
        if self._observer is not None:
            self._observer.notify_settle(self)

    def unsettle(self) -> None:
        """Turn a settled agent back into an explorer (Backtrack_Move, subsumption)."""
        if self._observer is not None and self.settled:
            self._observer.notify_unsettle(self)  # needs the pre-reset home
        self.settled = False
        self.home = None
        self.role = AgentRole.EXPLORER
        self.unsettle_count += 1
        self.memory.write("settled", False, FieldKind.FLAG)
        self.memory.clear("parent")

    @property
    def parent_port(self) -> Optional[int]:
        """Port to the DFS-tree parent (``None`` when unset or ⊥)."""
        value = self.memory.read("parent")
        if value in (None, 0):
            return None
        return int(value)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Agent(id={self.agent_id}, at={self.position}, role={self.role.value}, "
            f"settled={self.settled})"
        )
