"""Self-contained browser replay for ``repro-trace-v1`` payloads.

:func:`render_html` emits one HTML document with everything inline: the trace
payload as embedded JSON, a deterministic Python-computed graph layout, and a
small vanilla-JS player (play/pause/step/scrub over ticks, fault overlays,
settled rings, a counter timeline).  No script/style/font is fetched from
anywhere -- the page works from ``file://`` on an air-gapped machine, which the
trace-smoke CI job pins by grepping the output for external URLs.

The layout is computed here rather than in the browser so it is a pure
function of the payload (circle initialization plus a fixed-iteration
Fruchterman–Reingold pass for small graphs): rendering the same trace twice
yields byte-identical HTML.  SVG elements are created by assigning markup
strings inside an inline ``<svg>`` (HTML5 parses that without any namespace
machinery), which is also what keeps the page free of namespace URLs.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.trace import TRACE_FORMAT, TraceError, trace_stats, verify_trace

__all__ = ["render_html", "summarize"]

#: Spring layout is O(n^2) per iteration; past this size the circle layout is
#: both instant and more legible anyway.
_SPRING_MAX_NODES = 300
_SPRING_ITERATIONS = 60


def _spring_layout(
    n: int, edges: Sequence[Tuple[int, int]]
) -> List[Tuple[float, float]]:
    """Deterministic node coordinates in the unit disc (no RNG anywhere)."""
    if n == 0:
        return []
    pos = [
        [math.cos(2 * math.pi * i / n), math.sin(2 * math.pi * i / n)]
        for i in range(n)
    ]
    if n < 3 or n > _SPRING_MAX_NODES or not edges:
        return [(p[0], p[1]) for p in pos]
    k = math.sqrt(4.0 / n)  # ideal edge length for a unit-disc area
    temperature = 0.12
    cooling = temperature / (_SPRING_ITERATIONS + 1)
    for _ in range(_SPRING_ITERATIONS):
        disp = [[0.0, 0.0] for _ in range(n)]
        for i in range(n):
            xi, yi = pos[i]
            for j in range(i + 1, n):
                dx = xi - pos[j][0]
                dy = yi - pos[j][1]
                d2 = dx * dx + dy * dy
                if d2 < 1e-9:
                    d2 = 1e-9
                f = k * k / d2
                disp[i][0] += dx * f
                disp[i][1] += dy * f
                disp[j][0] -= dx * f
                disp[j][1] -= dy * f
        for u, v in edges:
            dx = pos[u][0] - pos[v][0]
            dy = pos[u][1] - pos[v][1]
            d = math.sqrt(dx * dx + dy * dy)
            if d < 1e-9:
                continue
            pull = d / k
            disp[u][0] -= dx * pull
            disp[u][1] -= dy * pull
            disp[v][0] += dx * pull
            disp[v][1] += dy * pull
        for i in range(n):
            dx, dy = disp[i]
            d = math.sqrt(dx * dx + dy * dy)
            if d > 1e-9:
                step = min(d, temperature)
                pos[i][0] += dx / d * step
                pos[i][1] += dy / d * step
        temperature -= cooling
    return [(p[0], p[1]) for p in pos]


def _scaled_layout(
    n: int,
    edges: Sequence[Sequence[int]],
    width: float = 860.0,
    height: float = 560.0,
    margin: float = 40.0,
) -> List[List[float]]:
    """Layout scaled into the SVG viewport, rounded for compact embedding."""
    raw = _spring_layout(n, [(int(u), int(v)) for u, v in edges])
    if not raw:
        return []
    xs = [p[0] for p in raw]
    ys = [p[1] for p in raw]
    span_x = (max(xs) - min(xs)) or 1.0
    span_y = (max(ys) - min(ys)) or 1.0
    return [
        [
            round(margin + (x - min(xs)) / span_x * (width - 2 * margin), 1),
            round(margin + (y - min(ys)) / span_y * (height - 2 * margin), 1),
        ]
        for x, y in raw
    ]


def _embed_json(data: Any) -> str:
    # "</" would terminate the surrounding <script> block mid-payload.
    return json.dumps(data, sort_keys=True, separators=(",", ":")).replace(
        "</", "<\\/"
    )


_CSS = """
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 1rem;
       background: #11141a; color: #d7dce2; }
h1 { font-size: 1.05rem; margin: 0 0 .6rem 0; }
#controls { display: flex; gap: .5rem; align-items: center; margin-bottom: .6rem;
            flex-wrap: wrap; }
#controls button, #controls select { background: #222835; color: #d7dce2;
  border: 1px solid #3a4152; border-radius: 4px; padding: .25rem .6rem;
  cursor: pointer; font: inherit; }
#controls button:hover { background: #2c3444; }
#scrub { flex: 1; min-width: 12rem; accent-color: #6ea8fe; }
#tick { min-width: 9rem; text-align: right; }
#main { display: flex; gap: 1rem; align-items: flex-start; flex-wrap: wrap; }
#world { background: #171b24; border: 1px solid #2a3040; border-radius: 6px; }
#side { width: 21rem; display: flex; flex-direction: column; gap: .6rem; }
.panel { background: #171b24; border: 1px solid #2a3040; border-radius: 6px;
         padding: .5rem .7rem; font-size: .82rem; }
.panel h2 { font-size: .82rem; margin: 0 0 .3rem 0; color: #8fa1b8; }
#log { max-height: 16rem; overflow-y: auto; }
#log .past { color: #d7dce2; }
#log .future { color: #525b6b; }
#log .violation { color: #ff8f8f; }
.legend span { margin-right: .8rem; }
.dot { display: inline-block; width: .6rem; height: .6rem; border-radius: 50%;
       margin-right: .25rem; vertical-align: middle; }
"""

_JS = """
'use strict';
const payload = JSON.parse(document.getElementById('trace-data').textContent);
const layouts = JSON.parse(document.getElementById('layout-data').textContent);
let segIndex = 0, t = 0, playing = false, timer = null, speed = 4;

const el = id => document.getElementById(id);
const svg = el('world'), spark = el('spark');

function seg() { return payload.segments[segIndex]; }
function maxT(s) {
  let m = 0;
  for (const e of s.events) if (e[0] > m) m = e[0];
  const met = s.final.metrics;
  const native = s.granularity === 'activations' ? met.activations : met.rounds;
  return Math.max(m, native);
}
function stateAt(s, upto) {
  const pos = {}, homes = {};
  s.agents.forEach((a, i) => { pos[a] = s.init.positions[i]; });
  const settled = new Set(s.init.settled);
  const blocked = new Set();
  const edges = new Set(s.graph.edges.map(e => e[0] + '-' + e[1]));
  let moves = 0;
  for (const e of s.events) {
    if (e[0] > upto) break;
    if (e[1] === 'move') { pos[e[2]] = e[4]; moves++; }
    else if (e[1] === 'settle') { settled.add(e[2]); homes[e[2]] = e[3]; }
    else if (e[1] === 'unsettle') { settled.delete(e[2]); delete homes[e[2]]; }
    else if (e[1] === 'block') { blocked.add(e[2]); }
    else if (e[1] === 'unblock') { blocked.delete(e[2]); }
    else if (e[1] === 'churn') {
      for (const r of e[2]) edges.delete(r[0] + '-' + r[1]);
      for (const a of e[3]) edges.add(a[0] + '-' + a[1]);
    }
  }
  return { pos, homes, settled, blocked, edges, moves };
}
function settledSeries(s) {
  const end = maxT(s), series = new Array(end + 1).fill(0);
  let count = s.init.settled.length;
  let i = 0;
  for (let tick = 0; tick <= end; tick++) {
    while (i < s.events.length && s.events[i][0] <= tick) {
      if (s.events[i][1] === 'settle') count++;
      else if (s.events[i][1] === 'unsettle') count--;
      i++;
    }
    series[tick] = count;
  }
  return series;
}

function render() {
  const s = seg(), xy = layouts[segIndex], st = stateAt(s, t);
  let out = '';
  for (const key of st.edges) {
    const [u, v] = key.split('-').map(Number);
    if (!xy[u] || !xy[v]) continue;
    out += `<line x1="${xy[u][0]}" y1="${xy[u][1]}" x2="${xy[v][0]}" y2="${xy[v][1]}" stroke="#3a4152" stroke-width="1"/>`;
  }
  const homeNodes = new Set();
  for (const a of st.settled)
    homeNodes.add(st.homes[a] !== undefined ? st.homes[a] : st.pos[a]);
  for (let node = 0; node < s.graph.nodes; node++) {
    const p = xy[node];
    const ring = homeNodes.has(node)
      ? ' stroke="#57d98f" stroke-width="2.5"' : ' stroke="#4a5264" stroke-width="1"';
    out += `<circle cx="${p[0]}" cy="${p[1]}" r="7" fill="#232938"${ring}/>`;
    if (s.graph.nodes <= 64)
      out += `<text x="${p[0]}" y="${p[1] - 10}" fill="#667089" font-size="8" text-anchor="middle">${node}</text>`;
  }
  const byNode = {};
  for (const a of s.agents) (byNode[st.pos[a]] = byNode[st.pos[a]] || []).push(a);
  for (const node in byNode) {
    const group = byNode[node], p = xy[node];
    group.forEach((a, i) => {
      const angle = 2 * Math.PI * i / group.length;
      const r = group.length > 1 ? 11 : 0;
      const x = p[0] + r * Math.cos(angle), y = p[1] + r * Math.sin(angle);
      const fill = st.blocked.has(a) ? '#ff6b6b'
        : st.settled.has(a) ? '#57d98f' : '#6ea8fe';
      out += `<circle cx="${x.toFixed(1)}" cy="${y.toFixed(1)}" r="4.5" fill="${fill}"><title>agent ${a}${st.settled.has(a) ? ' (settled)' : ''}${st.blocked.has(a) ? ' (fault-blocked)' : ''}</title></circle>`;
      if (st.blocked.has(a))
        out += `<text x="${x.toFixed(1)}" y="${(y + 3).toFixed(1)}" fill="#fff" font-size="8" text-anchor="middle">x</text>`;
    });
  }
  svg.innerHTML = out;

  const end = maxT(s);
  el('scrub').max = end;
  el('scrub').value = t;
  const unit = s.granularity === 'activations' ? 'activation' : 'round';
  el('tick').textContent = `${unit} ${t} / ${end}`;
  const sched = s.schedule && t > 0 ? ` active=${s.schedule[Math.min(t, s.schedule.length) - 1]}` : '';
  el('counters').innerHTML =
    `settled ${st.settled.size}/${s.agents.length} · blocked ${st.blocked.size}` +
    ` · moves ${st.moves}/${s.counters.moves}${sched}`;

  const series = settledSeries(s), w = 300, h = 56;
  const peak = Math.max(s.agents.length, 1);
  const pts = series.map((v, i) =>
    `${(i / Math.max(end, 1) * w).toFixed(1)},${(h - 4 - v / peak * (h - 8)).toFixed(1)}`);
  const cx = (t / Math.max(end, 1) * w).toFixed(1);
  spark.innerHTML =
    `<polyline points="${pts.join(' ')}" fill="none" stroke="#57d98f" stroke-width="1.5"/>` +
    `<line x1="${cx}" y1="0" x2="${cx}" y2="${h}" stroke="#6ea8fe" stroke-width="1"/>`;

  let log = '';
  for (const f of s.faults) {
    const cls = f[0] <= Math.max(t - 1, 0) && t > 0 ? 'past' : 'future';
    log += `<div class="${cls}">t=${f[0]} ${f[1]}: ${f[2]}</div>`;
  }
  for (const v of s.violations)
    log += `<div class="violation">t=${v[0]} INVARIANT ${v[1]}: ${v[2]}</div>`;
  el('log').innerHTML = log || '<div class="future">no fault or violation events</div>';
}

function setPlaying(on) {
  playing = on;
  el('play').textContent = on ? 'pause' : 'play';
  if (timer) { clearInterval(timer); timer = null; }
  if (on) timer = setInterval(() => {
    if (t >= maxT(seg())) { setPlaying(false); return; }
    t++; render();
  }, 1000 / speed);
}

el('play').addEventListener('click', () => setPlaying(!playing));
el('back').addEventListener('click', () => { setPlaying(false); if (t > 0) { t--; render(); } });
el('fwd').addEventListener('click', () => { setPlaying(false); if (t < maxT(seg())) { t++; render(); } });
el('start').addEventListener('click', () => { setPlaying(false); t = 0; render(); });
el('end').addEventListener('click', () => { setPlaying(false); t = maxT(seg()); render(); });
el('scrub').addEventListener('input', e => { setPlaying(false); t = Number(e.target.value); render(); });
el('speed').addEventListener('change', e => { speed = Number(e.target.value); if (playing) setPlaying(true); });
document.addEventListener('keydown', e => {
  if (e.key === 'ArrowRight') el('fwd').click();
  else if (e.key === 'ArrowLeft') el('back').click();
  else if (e.key === ' ') { e.preventDefault(); el('play').click(); }
});
const segSel = el('segment');
if (segSel) segSel.addEventListener('change', e => {
  setPlaying(false); segIndex = Number(e.target.value); t = 0; render();
});
render();
"""


def render_html(payload: Mapping[str, Any], title: Optional[str] = None) -> str:
    """One self-contained replay page for a ``repro-trace-v1`` payload.

    Raises :class:`~repro.sim.trace.TraceError` on a foreign or empty payload
    (the CLI's clean-error path turns that into one line on stderr).
    """
    if payload.get("format") != TRACE_FORMAT:
        raise TraceError(
            f"not a {TRACE_FORMAT} payload (format={payload.get('format')!r})"
        )
    segments = payload.get("segments", [])
    if not segments:
        raise TraceError("trace payload has no segments to replay")
    layouts = [
        _scaled_layout(s["graph"]["nodes"], s["graph"]["edges"]) for s in segments
    ]
    heading = title or f"{payload.get('algorithm') or 'trace'} replay"
    segment_picker = ""
    if len(segments) > 1:
        options = "".join(
            f'<option value="{i}">segment {i} ({s["granularity"]})</option>'
            for i, s in enumerate(segments)
        )
        segment_picker = f'<select id="segment">{options}</select>'
    stats = trace_stats(payload)
    return f"""<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{heading}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>{heading} &middot; {TRACE_FORMAT} &middot; {stats['events']} event(s)</h1>
<div id="controls">
<button id="start" title="jump to start">|&lt;</button>
<button id="back" title="step back">&lt;</button>
<button id="play">play</button>
<button id="fwd" title="step forward">&gt;</button>
<button id="end" title="jump to end">&gt;|</button>
<select id="speed">
<option value="2">2 ticks/s</option>
<option value="4" selected>4 ticks/s</option>
<option value="10">10 ticks/s</option>
<option value="30">30 ticks/s</option>
</select>
{segment_picker}
<input id="scrub" type="range" min="0" max="1" value="0">
<span id="tick"></span>
</div>
<div id="main">
<svg id="world" width="860" height="560" viewBox="0 0 860 560"></svg>
<div id="side">
<div class="panel legend">
<span><span class="dot" style="background:#6ea8fe"></span>walking</span>
<span><span class="dot" style="background:#57d98f"></span>settled</span>
<span><span class="dot" style="background:#ff6b6b"></span>fault-blocked</span>
</div>
<div class="panel"><h2>counters</h2><div id="counters"></div></div>
<div class="panel"><h2>settled agents over time</h2>
<svg id="spark" width="300" height="56" viewBox="0 0 300 56"></svg></div>
<div class="panel"><h2>faults &amp; violations</h2><div id="log"></div></div>
</div>
</div>
<script id="trace-data" type="application/json">{_embed_json(payload)}</script>
<script id="layout-data" type="application/json">{_embed_json(layouts)}</script>
<script>{_JS}</script>
</body>
</html>
"""


def summarize(payload: Mapping[str, Any], label: Optional[str] = None) -> str:
    """Text summary of a payload for ``repro trace --summary``.

    Includes a replay verification verdict per payload: the events are applied
    over the initial state and compared against the recorded final state, so a
    corrupted or hand-edited trace is caught without opening a browser.
    """
    stats = trace_stats(payload)
    problems = verify_trace(payload)
    lines: List[str] = []
    head = label or payload.get("algorithm") or "trace"
    lines.append(
        f"{TRACE_FORMAT}: {head} -- {stats['segments']} segment(s), "
        f"{stats['events']} event(s), replay "
        + ("ok" if not problems else "MISMATCH")
    )
    for index, segment in enumerate(payload.get("segments", [])):
        counters: Dict[str, int] = segment.get("counters", {})
        final = segment["final"]
        metrics = final["metrics"]
        native = (
            metrics["activations"]
            if segment["granularity"] == "activations"
            else metrics["rounds"]
        )
        lines.append(
            f"segment {index}: {segment['granularity']}={native} "
            f"n={segment['graph']['nodes']} agents={len(segment['agents'])} "
            f"settled={len(final['settled'])}/{len(segment['agents'])}"
        )
        lines.append(
            f"  events={len(segment['events'])} moves={counters.get('moves', 0)} "
            f"settles={counters.get('settles', 0)} "
            f"blocked={counters.get('blocked', 0)} "
            f"churn={counters.get('churn_events', 0)} "
            f"probes={counters.get('probes_answered', 0)}"
            f"/{counters.get('probe_queries', 0)}"
        )
        faults = segment.get("faults", [])
        violations = segment.get("violations", [])
        lines.append(
            f"  faults={len(faults)} violations={len(violations)} "
            f"total_moves={metrics['total_moves']}"
        )
        for time_, name, detail in violations[:3]:
            lines.append(f"    [t={time_}] {name}: {detail}")
    for problem in problems:
        lines.append(f"REPLAY MISMATCH: {problem}")
    return "\n".join(lines)
