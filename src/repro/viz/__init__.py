"""Visualization of recorded runs: the self-contained trace replay page.

One renderer (:func:`render_html`) turns a ``repro-trace-v1`` payload
(:mod:`repro.sim.trace`) into a single HTML file with inline CSS/JS and no
network dependencies -- the trace-smoke CI job asserts the output contains no
external URL -- plus :func:`summarize` for the text mode of ``repro trace``.
"""

from repro.viz.replay import render_html, summarize

__all__ = ["render_html", "summarize"]
