"""Sweep executor: fan a scenario grid out over worker processes.

A :class:`SweepSpec` is the cross product ``algorithms x graphs x ks x seeds``
(with per-scenario placement/adversary settings).  :func:`run_sweep` executes
every compatible (algorithm, scenario) job -- serially or on a
``multiprocessing`` pool -- and returns the records in a deterministic order,
so the same sweep spec always produces a byte-identical artifact regardless of
worker count or scheduling.

Workers receive only ``(algorithm_name, scenario_dict)`` pairs: both sides are
plain JSON-safe data, so no graphs, closures, or engines ever cross the process
boundary, and every worker rebuilds its scenario from the spec exactly as a
fresh interpreter would.
"""

from __future__ import annotations

import itertools
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.runner.execute import RunRecord, run_scenario
from repro.runner.registry import get_algorithm
from repro.runner.scenario import ScenarioSpec

__all__ = ["SweepSpec", "run_sweep", "collect_series", "smoke_sweep"]

#: Job as shipped to a worker: both halves are picklable plain data.
_Job = Tuple[str, Dict[str, Any]]


@dataclass
class SweepSpec:
    """A named grid of (algorithm, scenario) jobs.

    ``scenarios`` is the explicit list (after grid expansion); build one either
    directly or via :meth:`from_grid`.
    """

    name: str
    algorithms: List[str]
    scenarios: List[ScenarioSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name in self.algorithms:
            get_algorithm(name)  # fail fast on unknown names

    @classmethod
    def from_grid(
        cls,
        name: str,
        algorithms: Sequence[str],
        graphs: Sequence[Mapping[str, Any]],
        ks: Sequence[int],
        seeds: Sequence[int] = (0,),
        **scenario_kwargs: Any,
    ) -> "SweepSpec":
        """Expand ``graphs x ks x seeds`` into scenarios.

        Each entry of ``graphs`` is ``{"family": ..., "params": {...}}``;
        ``scenario_kwargs`` (placement, adversary, ...) apply to every scenario.
        """
        scenarios = [
            ScenarioSpec(
                family=graph["family"],
                params=graph.get("params", {}),
                k=k,
                seed=seed,
                **scenario_kwargs,
            )
            for graph, k, seed in itertools.product(graphs, ks, seeds)
        ]
        return cls(name=name, algorithms=list(algorithms), scenarios=scenarios)

    def jobs(self) -> List[_Job]:
        """All compatible (algorithm, scenario) pairs in deterministic order.

        Rooted-only algorithms are paired only with rooted placements; general
        algorithms run on every placement; SYNC algorithms (lockstep by
        construction) are paired only with the classic ``"async"`` scheduler
        default, so a synchrony-spectrum sweep targets exactly the
        ASYNC-capable algorithms.  The filter works off the specs alone so the
        job list is known before any graph is built.
        """
        return [
            (algorithm, scenario.to_dict())
            for scenario in self.scenarios
            for algorithm in self.algorithms
            if (
                get_algorithm(algorithm).config == "general"
                or scenario.placement == "rooted"
            )
            and get_algorithm(algorithm).supports_scheduler(scenario.scheduler)
        ]

    def with_profiles(
        self,
        profiles: Sequence[Mapping[str, Any]],
        check_invariants: Optional[bool] = None,
    ) -> "SweepSpec":
        """Cross this sweep's scenarios with a list of fault profiles.

        Each profile is the dict form of a :class:`~repro.sim.faults.FaultSpec`
        (``{}`` is the fault-free profile).  Scenario order is
        profile-major, so artifact diffs group whole profiles together.
        ``check_invariants=None`` keeps each scenario's own setting (a spec
        file may enable checking per scenario); a bool overrides it everywhere.
        """
        scenarios = [
            scenario.with_faults(profile, check_invariants=check_invariants)
            for profile in profiles
            for scenario in self.scenarios
        ]
        return SweepSpec(name=self.name, algorithms=list(self.algorithms), scenarios=scenarios)

    def with_scheduler(
        self, scheduler: str, scheduler_params: Optional[Mapping[str, Any]] = None
    ) -> "SweepSpec":
        """Run this sweep's scenarios under a different synchrony discipline.

        Every scenario keeps its world (graph, placement, faults, seeds) and
        swaps only the activation schedule; see
        :meth:`ScenarioSpec.with_scheduler`.  Pair with :meth:`jobs`'s
        scheduler filter: SYNC algorithms simply drop out of a non-default
        scheduler sweep instead of producing unsupported records.
        """
        scenarios = [
            scenario.with_scheduler(scheduler, scheduler_params)
            for scenario in self.scenarios
        ]
        return SweepSpec(name=self.name, algorithms=list(self.algorithms), scenarios=scenarios)

    def with_backend(self, backend: str) -> "SweepSpec":
        """Run every scenario of this sweep on a different kernel backend.

        Records are guaranteed identical to the default-backend sweep apart
        from the scenario's own ``backend`` tag (the differential suite pins
        this); the point is wall-clock speed on large grids.
        """
        scenarios = [scenario.with_backend(backend) for scenario in self.scenarios]
        return SweepSpec(name=self.name, algorithms=list(self.algorithms), scenarios=scenarios)

    def with_trace(self, trace: bool = True) -> "SweepSpec":
        """Record an execution trace on every scenario of this sweep.

        Measurements are untouched (tracing only observes; the trace
        determinism suite pins this); every record gains a ``repro-trace-v1``
        payload, which worker processes ship back inside the record dict like
        any other field.
        """
        scenarios = [scenario.with_trace(trace) for scenario in self.scenarios]
        return SweepSpec(name=self.name, algorithms=list(self.algorithms), scenarios=scenarios)

    def with_invariants(self, check_invariants: bool = True) -> "SweepSpec":
        """Toggle invariant checking everywhere *without* touching fault profiles.

        The companion to :meth:`with_profiles` for ``--check-invariants`` alone:
        a spec file's per-scenario fault profiles survive unchanged.
        """
        scenarios = [
            scenario.with_faults(scenario.faults, check_invariants=check_invariants)
            for scenario in self.scenarios
        ]
        return SweepSpec(name=self.name, algorithms=list(self.algorithms), scenarios=scenarios)

    def filter_algorithms(self, names: Sequence[str]) -> "SweepSpec":
        """Restrict the sweep to a subset of its algorithms (unknown names raise)."""
        for name in names:
            get_algorithm(name)
        keep = [name for name in self.algorithms if name in set(names)]
        return SweepSpec(name=self.name, algorithms=keep, scenarios=list(self.scenarios))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "algorithms": list(self.algorithms),
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        return cls(
            name=data["name"],
            algorithms=list(data["algorithms"]),
            scenarios=[ScenarioSpec.from_dict(s) for s in data.get("scenarios", [])],
        )


def _run_job(job: _Job) -> Dict[str, Any]:
    """Worker entry point (top-level so it pickles under every start method)."""
    algorithm, scenario_dict = job
    record = run_scenario(algorithm, ScenarioSpec.from_dict(scenario_dict))
    return record.to_dict()


def run_sweep(
    sweep: SweepSpec,
    workers: int = 1,
    progress: Optional[Callable[[int, int, Dict[str, Any]], None]] = None,
    store: Optional[Any] = None,
) -> List[RunRecord]:
    """Execute every job of the sweep and return records in job order.

    ``workers <= 1`` runs serially in-process; otherwise jobs fan out over a
    ``multiprocessing`` pool.  Results are returned in the deterministic job
    order either way (each scenario carries its own derived seeds, so
    scheduling cannot leak into the metrics).

    ``progress``, when given, is called as ``progress(done, total, record)``
    after every job.

    ``store``, when given, is a :class:`repro.store.RunStore`: jobs whose
    content fingerprint is already stored are served from it without
    executing, and every newly executed record is written back (its own
    commit), making interrupted sweeps resumable.  Cache hits flow through
    ``progress`` like any other record, and the returned records -- hence the
    artifact bytes -- are identical to a cold run's.
    """
    if store is not None:
        from repro.store.cache import run_sweep_cached

        adapter = None
        if progress is not None:
            def adapter(done: int, total: int, record: Dict[str, Any], cached: bool) -> None:
                progress(done, total, record)
        return run_sweep_cached(sweep, store, workers=workers, progress=adapter)
    jobs = sweep.jobs()
    raw: List[Dict[str, Any]]
    if workers <= 1 or len(jobs) <= 1:
        raw = []
        for i, job in enumerate(jobs):
            record = _run_job(job)
            raw.append(record)
            if progress is not None:
                progress(i + 1, len(jobs), record)
    else:
        with multiprocessing.Pool(processes=min(workers, len(jobs))) as pool:
            raw = []
            # imap preserves job order while letting workers run ahead.
            for i, record in enumerate(pool.imap(_run_job, jobs, chunksize=1)):
                raw.append(record)
                if progress is not None:
                    progress(i + 1, len(jobs), record)
    return [RunRecord.from_dict(r) for r in raw]


def collect_series(
    algorithms: Sequence[str],
    scenarios: Iterable[ScenarioSpec],
    time_field: str = "time",
    workers: int = 1,
    strict: bool = True,
) -> Dict[str, Dict[int, float]]:
    """Run a small grid and shape it for :func:`repro.analysis.tables.comparison_table`.

    Returns ``{algorithm: {k: value}}`` where ``value`` is the requested record
    field (``time``, ``rounds``, ``epochs``, ``total_moves``, ...).  With
    ``strict`` (default) any failed or non-dispersed run raises -- the mode the
    benchmark asserts want.
    """
    sweep = SweepSpec(name="series", algorithms=list(algorithms), scenarios=list(scenarios))
    rows: Dict[str, Dict[int, float]] = {name: {} for name in sweep.algorithms}
    for record in run_sweep(sweep, workers=workers):
        if record.status != "ok" or not record.dispersed:
            if strict and get_algorithm(record.algorithm).guaranteed:
                raise RuntimeError(
                    f"{record.algorithm} failed on {record.scenario}: "
                    f"status={record.status} dispersed={record.dispersed} "
                    f"error={record.error}"
                )
            continue
        value = getattr(record, time_field)
        rows[record.algorithm][record.k] = float(value)
    return rows


def smoke_sweep(name: str = "smoke") -> SweepSpec:
    """The CI smoke grid: every registered algorithm family on small graphs.

    Small enough to finish in seconds, broad enough to cross every adapter,
    both engines, rooted and general placements, and a seeded random topology.
    """
    rooted = SweepSpec.from_grid(
        name=name,
        algorithms=[
            "rooted_sync",
            "rooted_async",
            "naive_dfs",
            "sudo_disc24",
            "ks_opodis21",
            "random_walk",
        ],
        graphs=[
            {"family": "line", "params": {"n": 16}},
            {"family": "complete", "params": {"n": 12}},
            {"family": "erdos_renyi", "params": {"n": 18, "p": 0.25}},
        ],
        ks=[8, 12],
        seeds=[0],
    )
    general = SweepSpec.from_grid(
        name=name,
        algorithms=["general_sync", "general_async"],
        graphs=[
            {"family": "line", "params": {"n": 24}},
            {"family": "erdos_renyi", "params": {"n": 20, "p": 0.25}},
        ],
        ks=[12],
        seeds=[0],
        placement="split",
        placement_parts=2,
    )
    return SweepSpec(
        name=name,
        algorithms=sorted(set(rooted.algorithms) | set(general.algorithms)),
        scenarios=rooted.scenarios + general.scenarios,
    )
