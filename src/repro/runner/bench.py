"""``repro bench``: kernel steps-per-second per backend, as a committed report.

The bench answers one question per (workload, backend) pair: how many kernel
steps per wall-clock second does the batch-stepping tier sustain on a large
world?  Four workloads cover the regimes the ROADMAP's north star cares
about:

``random_walk``
    Pure movement -- every agent crosses one uniformly random edge per round.
    This is the upper bound on kernel throughput (no settle logic).
``dispersion``
    The random-walk scattering heuristic: walk plus the min-id
    settle-on-empty-node rule each round, the interactive-exploration
    workload.
``scatter``
    The DFS drivers' scatter-walk phase: the whole population follows one
    precomputed port path through :meth:`SyncEngine.step_path` (the
    :meth:`KernelBackend.run_scatter` primitive).  One step = one agent
    crossing one edge.
``probe``
    The probe phase's settled-presence queries: every node of a fully
    settled world is queried once per round through
    :meth:`ExecutionKernel.run_probe_round`.  One step = one answered
    query (no rounds advance).

Reports are schema-versioned JSON (:data:`BENCH_FORMAT`) mapping
nodes/agents/workload/backend to steps-per-second, with cross-backend
speedup ratios precomputed.  Each report carries named **tiers**:

``full``
    The headline measurement (10^5 nodes, 1s budget) -- the perf-trajectory
    number PR-over-PR diffs care about.
``quick``
    A small/short configuration CI can afford per push.
``scale-N``
    One tier per ``--nodes N`` value: the scale axis (10^4 .. 10^6 nodes).
    At sizes >= :data:`SHORT_HORIZON_NODES` the reference legs switch to a
    **short horizon** (no warm-up, one-round chunks, at most
    :data:`SHORT_HORIZON_CALLS` calls) so a 10^6-node world stays measurable:
    a single reference round there costs seconds, so amortized chunk growth
    would blow any budget.  Short rows carry ``"short_horizon": true`` --
    their per-call overhead is not amortized, so treat their ratios as
    indicative, not gate-grade.

A default ``repro bench`` run measures the ``full`` and ``quick`` tiers so
the committed baseline (``benchmarks/BENCH_kernel.json``) contains
quick-tier numbers for CI to gate against like-for-like; ``--quick``
measures only the quick tier, and ``--nodes`` (repeatable) measures the
listed scale tiers instead (added to full+quick without ``--quick``).  The
``bench-guard`` job re-measures quick plus the 10^5 scale tier and gates on
the **speedup ratio** per workload of the common tier(s), not on absolute
steps/s -- ratios transfer across machines, absolute numbers do not (they
are still recorded, so the perf trajectory stays visible PR over PR).
"""

from __future__ import annotations

import json
import math
import os
import random
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.agents.agent import Agent
from repro.agents.memory import MemoryModel
from repro.runner.scenario import ScenarioSpec, build_graph
from repro.sim.backends import DEFAULT_BACKEND
from repro.sim.sync_engine import SyncEngine

__all__ = [
    "BENCH_FORMAT",
    "WORKLOADS",
    "run_bench",
    "render",
    "write_report",
    "load_report",
    "check_report",
]

#: The bench report's schema tag.  Bump only with a loader that still reads
#: every older tag.
BENCH_FORMAT = "repro-bench-v1"

#: Workload names, in report order.
WORKLOADS = ("random_walk", "dispersion", "scatter", "probe")

#: Default world sizes (nodes; agents default to the same number).
FULL_NODES = 100_000
QUICK_NODES = 20_000

#: From this world size up, reference-backend legs run the short horizon (no
#: warm-up, one-round chunks, at most :data:`SHORT_HORIZON_CALLS` calls): one
#: reference round at 10^6 nodes is seconds of Python, so the amortizing
#: chunk ladder would never fit a budget.  Tiers this large also drop to a
#: single measurement pass -- their rows are trajectory data, not gate input.
SHORT_HORIZON_NODES = 200_000
SHORT_HORIZON_CALLS = 2

#: Minimum wall-clock spent measuring each (workload, backend) leg.  The
#: quick budget is sized so the vectorized leg reliably reaches the large
#: chunk sizes where per-call overhead is amortized -- cutting it shorter
#: makes the best-chunk rate depend on where the budget boundary lands,
#: which is exactly the run-to-run noise bench-guard cannot afford.
FULL_BUDGET_S = 1.0
QUICK_BUDGET_S = 1.0


def bench_scenario(nodes: int, agents: int, backend: str = DEFAULT_BACKEND, seed: int = 0) -> ScenarioSpec:
    """The canonical bench world: a near-square 2D grid, rooted placement.

    grid2d builds in O(n) with no rejection sampling, so world setup stays a
    small fraction of a bench run even at 10^6 nodes.
    """
    rows = max(2, int(math.sqrt(nodes)))
    cols = max(2, (nodes + rows - 1) // rows)
    return ScenarioSpec(
        family="grid2d",
        params={"rows": rows, "cols": cols},
        k=agents,
        seed=seed,
        backend=backend,
    )


def _workload_runner(
    engine: SyncEngine, workload: str, seed: int
) -> Callable[[int, int], int]:
    """Build the measured closure for one leg: ``run(chunk, salt) -> steps``.

    ``chunk`` is the number of rounds (walk workloads), path hops (scatter),
    or full query sweeps (probe) per timed call; ``salt`` decorrelates the
    RNG streams across calls.  Any one-off setup a workload needs (settling
    the probe world, seeding the scatter path RNG) happens here, outside the
    timed region.
    """
    kernel = engine.kernel
    backend = kernel.backend
    if workload in ("random_walk", "dispersion"):
        settle = workload == "dispersion"

        def run(chunk: int, salt: int) -> int:
            return backend.run_walk(chunk, seed=seed + 1 + salt, settle=settle)

        return run
    if workload == "scatter":
        graph = kernel.graph
        walker_ids = sorted(kernel.agents)
        rng = random.Random(seed)
        # The whole population walks one shared path, exactly like a blocked
        # group's scatter phase; the head node persists across calls.
        state = {"node": kernel.agents[walker_ids[0]].position}

        def run(chunk: int, salt: int) -> int:
            node = state["node"]
            ports: List[int] = []
            for _ in range(chunk):
                port = rng.randint(1, graph.degree(node))
                ports.append(port)
                node = graph.neighbor(node, port)
            state["node"] = engine.step_path(
                walker_ids, state["node"], ports, counter="scatter_moves"
            )
            return chunk * len(walker_ids)

        return run
    if workload == "probe":
        graph = kernel.graph
        n = graph.num_nodes
        # A fully settled world (measure_tier spreads the population across
        # the nodes): every query does real settled-presence work.
        for agent in kernel.agents.values():
            if not agent.settled:
                agent.settle(agent.position, None)
        nodes_q: Any
        excl_q: Any
        from repro.sim.backends.vectorized import VectorizedBackend
        from repro.sim.backends.vectorized import np as _np

        if _np is not None and isinstance(backend, VectorizedBackend):
            # Prebuilt int64 arrays enter the vectorized primitive zero-copy;
            # the reference leg gets plain lists -- each backend is fed its
            # native container so neither pays conversion inside the loop.
            nodes_q = _np.arange(n, dtype=_np.int64)
            excl_q = _np.zeros(n, dtype=_np.int64)
        else:
            nodes_q = list(range(n))
            excl_q = [0] * n

        def run(chunk: int, salt: int) -> int:
            for _ in range(chunk):
                kernel.run_probe_round(nodes_q, excl_q)
            return chunk * n

        return run
    raise ValueError(f"unknown workload {workload!r}; known: {WORKLOADS}")


def _measure(
    engine: SyncEngine,
    workload: str,
    seed: int,
    budget_s: float,
    short: bool = False,
) -> Dict[str, Any]:
    """Time workload chunks until the budget is spent; return the tallies."""
    run = _workload_runner(engine, workload, seed)
    if not short:
        # One untimed warm-up call absorbs first-touch costs (array views,
        # page faults) so the measured rate reflects steady state.  Short
        # legs skip it: at 10^6 nodes the warm-up alone would cost seconds.
        run(1, 0)
    steps = 0
    calls = 0
    rounds_before = engine.metrics.rounds
    # Chunks grow geometrically (the pyperf pattern): per-call costs -- state
    # rebuilds and the vectorized backend's O(k) sync-back -- amortize away,
    # so the measured rate converges on the backend's true per-round rate.
    # The reported steps/s is the *best* chunk's rate (again pyperf: the
    # minimum-time estimator), which a transient stall cannot drag down --
    # that stability is what lets bench-guard gate ratios with a +-25% band.
    # Short legs pin chunk=1 and stop after SHORT_HORIZON_CALLS calls.
    chunk = 1 if short else 4
    best_rate = 0.0
    start = time.perf_counter()
    elapsed = 0.0
    while elapsed < budget_s:
        chunk_start = time.perf_counter()
        done = run(chunk, steps)
        chunk_end = time.perf_counter()
        calls += 1
        steps += done
        elapsed = chunk_end - start
        if done == 0:
            break  # dispersion completed: further rounds are no-ops
        if chunk_end > chunk_start:
            best_rate = max(best_rate, done / (chunk_end - chunk_start))
        if short:
            if calls >= SHORT_HORIZON_CALLS:
                break
        else:
            chunk = min(chunk * 4, 4096)
    rounds = engine.metrics.rounds - rounds_before
    measured: Dict[str, Any] = {
        "rounds": rounds,
        "steps": steps,
        "seconds": round(elapsed, 6),
        "steps_per_second": round(best_rate, 3),
    }
    if short:
        measured["short_horizon"] = True
    return measured


def measure_tier(
    backends: Sequence[str],
    workloads: Sequence[str] = WORKLOADS,
    nodes: Optional[int] = None,
    agents: Optional[int] = None,
    seed: int = 0,
    quick: bool = False,
) -> Dict[str, Any]:
    """Measure every (workload, backend) pair at one tier's size and budget.

    The graph is built once and shared (read-only) across legs; every leg
    gets a fresh agent population so backends never see each other's state.
    """
    for workload in workloads:
        if workload not in WORKLOADS:
            raise ValueError(f"unknown workload {workload!r}; known: {WORKLOADS}")
    if nodes is None:
        nodes = QUICK_NODES if quick else FULL_NODES
    if agents is None:
        agents = nodes
    budget_s = QUICK_BUDGET_S if quick else FULL_BUDGET_S
    scenario = bench_scenario(nodes, agents, seed=seed)
    graph = build_graph(scenario)
    if agents > graph.num_nodes:
        raise ValueError(f"agents={agents} exceeds bench graph size {graph.num_nodes}")
    model = MemoryModel(k=agents, max_degree=graph.max_degree)
    # Two interleaved passes per leg, best pass kept: a burst of CPU
    # contention (the dominant noise on shared boxes) then has to hit the
    # same leg twice, minutes apart, to drag its reported rate down -- and
    # interleaving means both backends sample comparable noise windows, which
    # is what keeps the *ratio* stable enough for bench-guard's band.
    # Short-horizon sizes get a single pass: world setup alone is ~10s/leg at
    # 10^6 nodes, and their rows are trajectory data, not gate input.
    short_tier = graph.num_nodes >= SHORT_HORIZON_NODES
    passes = 1 if short_tier else 2
    best: Dict[tuple, Dict[str, Any]] = {}
    for _pass in range(passes):
        for workload in workloads:
            for backend in backends:
                # The probe workload spreads the population so settling each
                # agent in place yields a fully settled world; every other
                # workload starts rooted (everyone on node 0).
                if workload == "probe":
                    population = [
                        Agent(i, (i - 1) % graph.num_nodes, model)
                        for i in range(1, agents + 1)
                    ]
                else:
                    population = [Agent(i, 0, model) for i in range(1, agents + 1)]
                engine = SyncEngine(graph, population, backend=backend)
                short = short_tier and backend == DEFAULT_BACKEND
                measured = _measure(
                    engine, workload, seed=seed, budget_s=budget_s, short=short
                )
                key = (workload, backend)
                if (
                    key not in best
                    or measured["steps_per_second"]
                    > best[key]["steps_per_second"]
                ):
                    best[key] = measured
    results: List[Dict[str, Any]] = [
        {
            "workload": workload,
            "backend": backend,
            "family": scenario.family,
            "nodes": graph.num_nodes,
            "agents": agents,
            **best[(workload, backend)],
        }
        for workload in workloads
        for backend in backends
    ]
    return {
        "nodes": graph.num_nodes,
        "agents": agents,
        "results": results,
        "speedups": _speedups(results),
    }


def run_bench(
    backends: Sequence[str],
    workloads: Sequence[str] = WORKLOADS,
    nodes: Optional[int] = None,
    agents: Optional[int] = None,
    seed: int = 0,
    quick: bool = False,
    scale: Optional[Sequence[int]] = None,
) -> Dict[str, Any]:
    """Measure and return the report payload.

    ``quick`` measures only the quick tier (CI's per-push budget); the default
    measures **both** tiers, so a committed baseline always contains the
    quick-tier ratios a later ``--quick --check`` run gates against
    like-for-like.  ``nodes``/``agents`` override the size of the tier being
    headlined (the full tier, or the quick tier under ``quick``).

    ``scale`` (the CLI's repeatable ``--nodes``) adds one ``scale-N`` tier
    per listed size, measured at the quick budget; with ``quick`` the scale
    tiers *replace* the quick tier, so a CI invocation like
    ``--quick --nodes 1000000 --backend vectorized`` measures exactly one
    time-budgeted smoke tier.
    """
    tiers: Dict[str, Dict[str, Any]] = {}
    if scale:
        if nodes is not None:
            raise ValueError("pass either nodes= (headline override) or scale=, not both")
        for size in scale:
            tiers[f"scale-{size}"] = measure_tier(
                backends, workloads, nodes=size, agents=agents, seed=seed, quick=True
            )
        if not quick:
            tiers["full"] = measure_tier(
                backends, workloads, agents=agents, seed=seed, quick=False
            )
            tiers["quick"] = measure_tier(backends, workloads, seed=seed, quick=True)
    elif quick:
        tiers["quick"] = measure_tier(
            backends, workloads, nodes=nodes, agents=agents, seed=seed, quick=True
        )
    else:
        tiers["full"] = measure_tier(
            backends, workloads, nodes=nodes, agents=agents, seed=seed, quick=False
        )
        tiers["quick"] = measure_tier(backends, workloads, seed=seed, quick=True)
    return {
        "format": BENCH_FORMAT,
        "quick": quick,
        "seed": seed,
        "tiers": tiers,
    }


def _speedups(results: Sequence[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Per-workload ``backend -> steps/s ratio`` over the reference leg."""
    speedups: Dict[str, Dict[str, float]] = {}
    by_workload: Dict[str, Dict[str, float]] = {}
    for entry in results:
        by_workload.setdefault(entry["workload"], {})[entry["backend"]] = entry[
            "steps_per_second"
        ]
    for workload, rates in by_workload.items():
        base = rates.get(DEFAULT_BACKEND)
        if not base:
            continue
        speedups[workload] = {
            backend: round(rate / base, 3)
            for backend, rate in rates.items()
            if backend != DEFAULT_BACKEND
        }
    return speedups


def _tier_order(tiers: Dict[str, Any]) -> List[str]:
    """Report order: full, quick, then scale tiers by ascending size."""
    names = [name for name in ("full", "quick") if name in tiers]
    scales = sorted(
        (name for name in tiers if name.startswith("scale-")),
        key=lambda name: int(name.rsplit("-", 1)[1]),
    )
    return names + scales


def render(payload: Dict[str, Any]) -> str:
    """Human-readable tables of a report payload, one block per tier."""
    lines: List[str] = []
    for tier_name in _tier_order(payload["tiers"]):
        tier = payload["tiers"][tier_name]
        if lines:
            lines.append("")
        lines.append(
            f"kernel bench [{tier_name}] ({tier['nodes']} nodes, {tier['agents']} agents)"
        )
        lines.append(
            f"{'workload':12s} {'backend':11s} {'rounds':>7s} {'steps':>12s} {'steps/s':>14s}"
        )
        for entry in tier["results"]:
            lines.append(
                f"{entry['workload']:12s} {entry['backend']:11s} "
                f"{entry['rounds']:7d} {entry['steps']:12d} "
                f"{entry['steps_per_second']:14,.0f}"
                + ("  [short horizon]" if entry.get("short_horizon") else "")
            )
        for workload, ratios in sorted(tier.get("speedups", {}).items()):
            for backend, ratio in sorted(ratios.items()):
                lines.append(f"speedup[{workload}] {backend} = {ratio:.1f}x reference")
    return "\n".join(lines)


def write_report(payload: Dict[str, Any], path: str) -> str:
    """Write the report as stable, diff-friendly JSON and return the path."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, indent=2)
        fh.write("\n")
    return path


def load_report(path: str) -> Dict[str, Any]:
    """Load and schema-check a bench report."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("format") != BENCH_FORMAT:
        raise ValueError(
            f"{path} is not a {BENCH_FORMAT} bench report "
            f"(format={payload.get('format') if isinstance(payload, dict) else None!r})"
        )
    return payload


def check_report(
    fresh: Dict[str, Any], baseline_path: str, tolerance: float = 0.25
) -> List[str]:
    """Gate a fresh payload against a committed baseline; return problems.

    The portable invariant is the per-workload cross-backend *speedup ratio*:
    for every tier present in **both** reports (a ``--quick`` run gates
    against the baseline's quick tier, like-for-like), a fresh ratio may not
    fall more than ``tolerance`` below the baseline's (being faster never
    fails).  Workload/backend pairs the baseline gated on must still be
    present.  Absolute steps/s are intentionally not gated -- they do not
    transfer across machines.
    """
    if not (0.0 <= tolerance < 1.0):
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    baseline = load_report(baseline_path)
    problems: List[str] = []
    common = [t for t in baseline.get("tiers", {}) if t in fresh.get("tiers", {})]
    if not common:
        problems.append(
            f"no common tier between the fresh report ({sorted(fresh.get('tiers', {}))}) "
            f"and {baseline_path} ({sorted(baseline.get('tiers', {}))})"
        )
    for tier_name in common:
        fresh_speedups = fresh["tiers"][tier_name].get("speedups", {})
        for workload, ratios in sorted(
            baseline["tiers"][tier_name].get("speedups", {}).items()
        ):
            for backend, base_ratio in sorted(ratios.items()):
                got = fresh_speedups.get(workload, {}).get(backend)
                if got is None:
                    problems.append(
                        f"[{tier_name}] {workload}/{backend}: no fresh measurement "
                        f"(baseline speedup {base_ratio:.1f}x)"
                    )
                    continue
                floor = base_ratio * (1.0 - tolerance)
                if got < floor:
                    problems.append(
                        f"[{tier_name}] {workload}/{backend}: speedup {got:.2f}x "
                        f"fell below {floor:.2f}x "
                        f"({base_ratio:.2f}x baseline - {tolerance:.0%})"
                    )
    return problems
