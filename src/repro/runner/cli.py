"""``python -m repro`` / ``repro``: the experiment-runner command line.

Five subcommand families mirror the workflow the benchmarks automate:

* ``repro run``    -- one algorithm on one scenario, summary on stdout;
* ``repro sweep``  -- a scenario grid (from a JSON spec file or the built-in
  ``--smoke`` grid) fanned out over worker processes, written as JSON/CSV
  artifacts; with ``--store`` the sweep runs against a persistent experiment
  store (cache hits skip execution, finished records are committed one by
  one, and ``--resume`` completes an interrupted sweep);
* ``repro report`` -- Table-1 style comparison tables from a sweep artifact;
* ``repro bench``  -- kernel steps/s per backend as a schema-versioned JSON
  report; ``--check`` gates the cross-backend speedup ratio against a
  committed baseline (CI's ``bench-guard``);
* ``repro db``     -- the experiment-store toolbox: ``query`` filtered
  records into artifact files, ``diff`` two snapshots (stores or artifacts)
  for metric regressions, ``import`` legacy artifacts, ``gc`` stale
  code-version records, ``stats`` the store's shape, ``traces`` the
  content-addressed trace index;
* ``repro trace``  -- inspect a recorded ``repro-trace-v1`` execution trace
  (from a ``--trace`` run record, sweep artifact, store, or trace file):
  ``--summary`` text with a replay-verification verdict, ``--json`` the raw
  payload, ``--html`` a self-contained browser replay page
  (play/pause/step/scrub, fault overlays, counter timeline; no network).

``run``/``sweep`` accept ``--backend {reference,vectorized}`` to pick the
kernel state layout; records are backend-invariant apart from the scenario's
own ``backend`` tag (the differential suite pins this), so the axis buys
wall-clock speed, never different science.

``--faults`` / ``--check-invariants`` attach the fault-model and
invariant-checking subsystem (:mod:`repro.sim.faults` /
:mod:`repro.sim.invariants`): faults stress the run with crash-stop, freeze,
and edge-churn schedules; the checker continuously verifies dispersion safety
properties and reports violation counts in the records.  ``sweep --faults`` is
repeatable -- the grid is crossed with every given profile -- and records from
*fault-free* profiles still fail the sweep on errors or invariant violations,
while faulty profiles report findings as data (exit 0).

Examples
--------
::

    repro run --algorithm rooted_sync --family complete --param n=32 --k 32
    repro run --algorithm rooted_sync --family ring --param n=24 --k 16 \\
        --faults crash:0.1 --check-invariants
    repro run --algorithm rooted_async --family ring --param n=24 --k 16 \\
        --scheduler semi-sync:0.25
    repro sweep --smoke --workers 2 --out artifacts/smoke.json
    repro sweep --smoke --scheduler bounded-delay:2 --out artifacts/bd.json
    repro sweep --smoke --algorithms paper --check-invariants \\
        --faults none --faults crash:0.1,freeze:0.1:60 --out artifacts/faults.json
    repro sweep --spec myspec.json --out artifacts/mysweep.json --csv artifacts/mysweep.csv
    repro sweep --smoke --store artifacts/runs.sqlite --progress --out artifacts/smoke.json
    repro sweep --smoke --store artifacts/runs.sqlite --resume
    repro sweep --smoke --backend vectorized --out artifacts/smoke-vec.json
    repro run --algorithm rooted_sync --family ring --param n=24 --k 16 \\
        --faults crash:0.1 --trace --trace-out artifacts/run-trace.json
    repro sweep --smoke --trace --faults crash:0.15 --out artifacts/traced.json
    repro trace artifacts/traced.json --algorithm rooted_sync --summary
    repro trace artifacts/run-trace.json --html artifacts/replay.html
    repro report artifacts/smoke.json
    repro bench --quick --out artifacts/BENCH_kernel.json
    repro bench --quick --check benchmarks/BENCH_kernel.json --tolerance 0.25
    repro db query artifacts/runs.sqlite --algorithm rooted_sync --out artifacts/q.json
    repro db diff artifacts/old.json artifacts/runs.sqlite
    repro db import artifacts/runs.sqlite artifacts/legacy-sweep.json
    repro db gc artifacts/runs.sqlite
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runner import artifacts as artifacts_mod
from repro.runner.execute import RunRecord, run_scenario
from repro.runner.registry import (
    algorithm_names,
    core_algorithm_names,
    get_algorithm,
    list_algorithms,
)
from repro.runner.scenario import (
    ADVERSARIES,
    GRAPH_FAMILIES,
    PLACEMENTS,
    SCHEDULERS,
    ScenarioSpec,
)
from repro.runner.sweep import SweepSpec, run_sweep, smoke_sweep
from repro.sim.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    available_backends,
    require_backend,
)
from repro.sim.faults import parse_faults

__all__ = ["main", "build_parser"]

#: Where committed minimized repro fixtures live (``repro fuzz --replay``).
_DEFAULT_FUZZ_CORPUS = "tests/fixtures/fuzz"


def _parse_params(pairs: Sequence[str]) -> Dict[str, Any]:
    """Parse repeated ``--param name=value`` options (ints, floats, strings)."""
    params: Dict[str, Any] = {}
    for pair in pairs:
        name, sep, raw = pair.partition("=")
        if not sep or not name:
            raise argparse.ArgumentTypeError(
                f"--param expects name=value, got {pair!r}"
            )
        value: Any
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        params[name] = value
    return params


def _parse_scheduler(text: str) -> tuple:
    """Parse ``--scheduler NAME[:PARAM]`` into ``(name, params)``.

    The optional suffix is the discipline's headline knob: the activation
    probability for ``semi-sync`` (``semi-sync:0.25``) and the delay factor
    for ``bounded-delay`` (``bounded-delay:3`` bounds every agent's
    inattention by ``3 * k`` activations).
    """
    name, sep, raw = text.partition(":")
    if name not in SCHEDULERS:
        raise argparse.ArgumentTypeError(
            f"unknown scheduler {name!r}; known: {list(SCHEDULERS)}"
        )
    if not sep:
        return name, {}
    if name == "semi-sync":
        try:
            p = float(raw)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--scheduler semi-sync:P expects a float probability, got {raw!r}"
            ) from None
        if not (0.0 < p <= 1.0):
            raise argparse.ArgumentTypeError(
                f"--scheduler semi-sync:P expects P in (0, 1], got {p}"
            )
        return name, {"p": p}
    if name == "bounded-delay":
        try:
            delay_factor = int(raw)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--scheduler bounded-delay:K expects an int delay factor, got {raw!r}"
            ) from None
        if delay_factor < 1:
            raise argparse.ArgumentTypeError(
                f"--scheduler bounded-delay:K expects K >= 1, got {delay_factor}"
            )
        return name, {"delay_factor": delay_factor}
    raise argparse.ArgumentTypeError(f"scheduler {name!r} takes no parameter")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Experiment runner for the dispersion reproduction "
        "(registry of paper algorithms + baselines, scenario sweeps, reports).",
    )
    from repro import __version__

    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one algorithm on one scenario")
    run_p.add_argument("--algorithm", required=True, choices=algorithm_names())
    run_p.add_argument("--family", required=True, choices=sorted(GRAPH_FAMILIES))
    run_p.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="graph generator parameter (repeatable), e.g. --param n=32",
    )
    run_p.add_argument("--k", type=int, required=True, help="number of agents")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--port-assignment",
        default="adjacency",
        choices=["adjacency", "random", "async_safe"],
    )
    run_p.add_argument("--placement", default="rooted", choices=list(PLACEMENTS))
    run_p.add_argument("--parts", type=int, default=2, help="start nodes for split placement")
    run_p.add_argument("--start-node", type=int, default=0)
    run_p.add_argument("--adversary", default="round_robin", choices=list(ADVERSARIES))
    run_p.add_argument(
        "--scheduler",
        default="async",
        metavar="NAME[:PARAM]",
        help="synchrony discipline for ASYNC-capable algorithms: async "
        "(default; --adversary picks the policy), lockstep, semi-sync[:p], "
        "bounded-delay[:factor]",
    )
    run_p.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault profile, e.g. crash:0.1,freeze:0.2:40,churn:0.02 (or 'none')",
    )
    run_p.add_argument(
        "--check-invariants",
        action="store_true",
        help="continuously verify dispersion invariants; violations fail the run",
    )
    run_p.add_argument(
        "--backend",
        default=DEFAULT_BACKEND,
        choices=list(BACKEND_NAMES),
        help="kernel world-state backend: reference (pure Python, the oracle) "
        "or vectorized (numpy struct-of-arrays; needs the 'fast' extra). "
        "Records are identical either way, only speed differs",
    )
    run_p.add_argument(
        "--trace",
        action="store_true",
        help="record a repro-trace-v1 execution trace; the payload lands on "
        "the record (inspect it with 'repro trace')",
    )
    run_p.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the trace payload to this JSON file (implies --trace)",
    )
    run_p.add_argument("--json", action="store_true", help="print the full record as JSON")

    sweep_p = sub.add_parser("sweep", help="run a scenario grid and write artifacts")
    source = sweep_p.add_mutually_exclusive_group(required=True)
    source.add_argument("--smoke", action="store_true", help="run the built-in CI smoke grid")
    source.add_argument("--spec", help="path to a sweep spec JSON file")
    sweep_p.add_argument("--out", default=None, help="JSON artifact path (default artifacts/<name>.json)")
    sweep_p.add_argument("--csv", default=None, help="also write a CSV view to this path")
    sweep_p.add_argument("--workers", type=int, default=1, help="worker processes (1 = serial)")
    sweep_p.add_argument("--quiet", action="store_true", help="suppress per-job progress lines")
    sweep_p.add_argument(
        "--faults",
        action="append",
        default=[],
        metavar="SPEC",
        help="fault profile to cross the grid with (repeatable); 'none' is the "
        "fault-free profile, e.g. --faults none --faults crash:0.1",
    )
    sweep_p.add_argument(
        "--check-invariants",
        action="store_true",
        help="attach the invariant checker to every run; violations in "
        "fault-free profiles fail the sweep",
    )
    sweep_p.add_argument(
        "--scheduler",
        default=None,
        metavar="NAME[:PARAM]",
        help="run every scenario under this synchrony discipline (lockstep, "
        "semi-sync[:p], bounded-delay[:factor]); SYNC algorithms drop out of "
        "the grid, the world seeds stay those of the classic sweep",
    )
    sweep_p.add_argument(
        "--algorithms",
        default=None,
        metavar="NAMES",
        help="comma-separated subset of the sweep's algorithms, or 'paper' for "
        "the paper's own algorithms only",
    )
    sweep_p.add_argument(
        "--backend",
        default=None,
        choices=list(BACKEND_NAMES),
        help="run every scenario on this kernel backend (availability is "
        "checked up front, so a missing numpy fails fast instead of erroring "
        "every job)",
    )
    sweep_p.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent experiment store (SQLite): cached records skip "
        "execution, new records are committed as they finish",
    )
    sweep_p.add_argument(
        "--resume",
        action="store_true",
        help="make resuming an interrupted sweep explicit; the cache semantics "
        "are those of --store alone (missing records execute, stored ones "
        "are served), this flag just validates that a --store was given",
    )
    sweep_p.add_argument(
        "--trace",
        action="store_true",
        help="record a repro-trace-v1 execution trace on every run; records "
        "embed the payload and stores index it (see 'repro db traces')",
    )
    sweep_p.add_argument(
        "--progress",
        action="store_true",
        help="one-line progress on stderr: records done/total, cache hits, "
        "fault events, invariant violations, ETA",
    )

    report_p = sub.add_parser("report", help="print comparison tables from an artifact")
    report_p.add_argument("artifact", help="path to a sweep JSON artifact")
    report_p.add_argument(
        "--time-field",
        default="time",
        choices=["time", "rounds", "epochs", "activations", "total_moves", "peak_memory_bits"],
        help="record field shown in the table cells",
    )

    db_p = sub.add_parser("db", help="query and maintain a persistent experiment store")
    db_sub = db_p.add_subparsers(dest="db_command", required=True)

    query_p = db_sub.add_parser(
        "query", help="filter store records into artifact files (or a summary)"
    )
    query_p.add_argument("store", help="path to an experiment store")
    query_p.add_argument(
        "--algorithm",
        default=None,
        metavar="NAMES",
        help="comma-separated algorithm names, or 'paper'",
    )
    query_p.add_argument("--family", default=None, choices=sorted(GRAPH_FAMILIES))
    query_p.add_argument("--k", type=int, default=None)
    query_p.add_argument("--seed", type=int, default=None)
    query_p.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="select one fault profile ('none' for fault-free records only)",
    )
    query_p.add_argument(
        "--status", default=None, choices=["ok", "unsupported", "error"]
    )
    query_p.add_argument(
        "--out", default=None, help="write matches as a sweep JSON artifact"
    )
    query_p.add_argument("--csv", default=None, help="also write a CSV view")

    diff_p = db_sub.add_parser(
        "diff", help="compare run metrics between two snapshots (store or artifact)"
    )
    diff_p.add_argument("old", help="baseline snapshot: store or JSON artifact")
    diff_p.add_argument("new", help="candidate snapshot: store or JSON artifact")

    gc_p = db_sub.add_parser(
        "gc", help="drop records whose algorithm code-version tag is stale"
    )
    gc_p.add_argument("store", help="path to an experiment store")
    gc_p.add_argument("--dry-run", action="store_true", help="report, don't delete")

    import_p = db_sub.add_parser(
        "import", help="ingest sweep JSON artifacts into a store"
    )
    import_p.add_argument("store", help="path to an experiment store (created if missing)")
    import_p.add_argument("artifacts", nargs="+", help="sweep JSON artifact paths")

    stats_p = db_sub.add_parser("stats", help="summarize a store's contents")
    stats_p.add_argument("store", help="path to an experiment store")

    traces_p = db_sub.add_parser(
        "traces", help="list the store's content-addressed trace index"
    )
    traces_p.add_argument("store", help="path to an experiment store")
    traces_p.add_argument(
        "--algorithm",
        default=None,
        metavar="NAMES",
        help="comma-separated algorithm names, or 'paper'",
    )

    trace_p = sub.add_parser(
        "trace", help="inspect or replay a recorded repro-trace-v1 execution trace"
    )
    trace_p.add_argument(
        "run",
        help="where the trace lives: a trace JSON file (repro run --trace-out), "
        "a sweep artifact with traced records, or an experiment store",
    )
    trace_p.add_argument(
        "--algorithm",
        default=None,
        metavar="NAME",
        help="select the traced record of this algorithm (artifact/store inputs)",
    )
    trace_p.add_argument(
        "--index",
        type=int,
        default=None,
        help="select the i-th matching traced record (artifact/store inputs)",
    )
    trace_p.add_argument(
        "--fingerprint",
        default=None,
        metavar="HEX",
        help="select a store record by (a unique prefix of) its fingerprint",
    )
    trace_p.add_argument(
        "--summary",
        action="store_true",
        help="print the text summary with a replay-verification verdict (default)",
    )
    trace_p.add_argument(
        "--json",
        default=None,
        dest="json_out",
        metavar="PATH",
        help="write the raw repro-trace-v1 payload to this file",
    )
    trace_p.add_argument(
        "--html",
        default=None,
        metavar="PATH",
        help="write a self-contained browser replay page (inline JS/CSS, no "
        "network) to this file",
    )

    bench_p = sub.add_parser(
        "bench",
        help="measure kernel steps-per-second per backend and write BENCH_kernel.json",
    )
    bench_p.add_argument(
        "--backend",
        action="append",
        default=[],
        choices=list(BACKEND_NAMES),
        help="backend(s) to measure (repeatable; default: every available one)",
    )
    bench_p.add_argument(
        "--workload",
        action="append",
        default=[],
        choices=["random_walk", "dispersion", "scatter", "probe"],
        help="workload(s) to measure (repeatable; default: all four)",
    )
    bench_p.add_argument(
        "--nodes",
        type=int,
        action="append",
        default=[],
        help="scale axis: measure one scale-N tier per value (repeatable; "
        "10^6 is feasible -- reference legs switch to a short horizon at "
        ">= 200k nodes); without it the default full/quick tier sizes apply",
    )
    bench_p.add_argument("--agents", type=int, default=None, help="population size (default: nodes)")
    bench_p.add_argument("--seed", type=int, default=0)
    bench_p.add_argument(
        "--quick",
        action="store_true",
        help="CI sizing: smaller graph, shorter timing budget; with --nodes, "
        "measure only the listed scale tier(s)",
    )
    bench_p.add_argument(
        "--profile",
        action="store_true",
        help="run the measurement under cProfile and print the top functions "
        "by cumulative time to stderr",
    )
    bench_p.add_argument(
        "--out",
        default="artifacts/BENCH_kernel.json",
        help="where to write the schema-versioned report",
    )
    bench_p.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a committed BENCH_kernel.json: the "
        "vectorized/reference speedup ratio per workload must stay within "
        "--tolerance of the baseline's (absolute steps/s are reported but "
        "not gated -- they are hardware-dependent)",
    )
    bench_p.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative speedup regression for --check (default 0.25)",
    )

    fuzz_p = sub.add_parser(
        "fuzz",
        help="continuous falsification: sample random scenarios, check them "
        "(invariants + differentials), shrink failures to 1-minimal repros",
    )
    fuzz_p.add_argument("--trials", type=int, default=100, help="scenarios to sample")
    fuzz_p.add_argument("--seed", type=int, default=0, help="campaign seed (trial i of seed s is a fixed scenario)")
    fuzz_p.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="RunStore for dedup: repeat draws and shrink re-evaluations "
        "become cache hits (shards may share one store; WAL handles the "
        "concurrent writers)",
    )
    fuzz_p.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="write minimized repro fixtures (repro-fuzz-repro-v1) here",
    )
    fuzz_p.add_argument(
        "--algorithms",
        default=None,
        help="comma-separated registry names to fuzz (default: all)",
    )
    fuzz_p.add_argument("--max-nodes", type=int, default=12, help="graph-size ceiling for sampled worlds")
    fuzz_p.add_argument("--max-agents", type=int, default=8, help="population ceiling for sampled worlds")
    fuzz_p.add_argument("--shrink-budget", type=int, default=400, help="max predicate evaluations per shrink")
    fuzz_p.add_argument("--no-shrink", action="store_true", help="report raw failing specs without minimizing")
    fuzz_p.add_argument(
        "--no-differential",
        action="store_true",
        help="skip the backend and sync-vs-async differential oracles",
    )
    fuzz_p.add_argument(
        "--no-explore",
        action="store_true",
        help="skip exhaustive scheduler-interleaving enumeration on tiny instances",
    )
    fuzz_p.add_argument("--explore-depth", type=int, default=4, help="scripted schedule prefix length")
    fuzz_p.add_argument("--explore-budget", type=int, default=128, help="max interleavings per tiny instance")
    fuzz_p.add_argument(
        "--plant-bug",
        action="store_true",
        help="swap in a deliberately broken oracle (self-test: the campaign "
        "must find and shrink it to the known minimal spec)",
    )
    fuzz_p.add_argument(
        "--replay",
        nargs="?",
        const=_DEFAULT_FUZZ_CORPUS,
        default=None,
        metavar="DIR",
        help="instead of fuzzing, replay every committed fixture in DIR "
        f"(default {_DEFAULT_FUZZ_CORPUS}) and verify byte-identical, "
        "oracle-clean records",
    )
    fuzz_p.add_argument("--progress", action="store_true", help="per-trial progress line on stderr")

    sub.add_parser("list", help="list registered algorithms and backends")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    scheduler, scheduler_params = _parse_scheduler(args.scheduler)
    require_backend(args.backend)  # fail fast with install guidance
    scenario = ScenarioSpec(
        family=args.family,
        params=_parse_params(args.param),
        k=args.k,
        port_assignment=args.port_assignment,
        placement=args.placement,
        placement_parts=args.parts,
        start_node=args.start_node,
        adversary=args.adversary,
        scheduler=scheduler,
        scheduler_params=scheduler_params,
        seed=args.seed,
        faults=parse_faults(args.faults) if args.faults is not None else {},
        check_invariants=args.check_invariants,
        backend=args.backend,
        trace=args.trace or bool(args.trace_out),
    )
    record = run_scenario(args.algorithm, scenario)
    if record.trace is not None and args.trace_out:
        import os

        from repro.sim.trace import canonical_trace_json

        parent = os.path.dirname(os.path.abspath(args.trace_out))
        os.makedirs(parent, exist_ok=True)
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            fh.write(canonical_trace_json(record.trace))
            fh.write("\n")
        # stderr so --json stdout stays a single parseable JSON document.
        print(f"wrote trace to {args.trace_out}", file=sys.stderr)
    if args.json:
        print(json.dumps(record.to_dict(), sort_keys=True, indent=2))
    else:
        print(f"{record.algorithm} on {scenario.label()}:")
        if record.status != "ok":
            print(f"  status={record.status}: {record.error}")
        else:
            print(
                f"  dispersed={record.dispersed} time={record.time} {record.time_unit} "
                f"moves={record.total_moves} peak_mem={record.peak_memory_bits} bits"
            )
        if record.fault_events is not None:
            print(f"  fault_events={record.fault_events}")
        if record.invariant_violations is not None:
            print(f"  invariant_violations={record.invariant_violations}")
        if record.trace is not None:
            from repro.sim.trace import trace_stats

            stats = trace_stats(record.trace)
            print(
                f"  trace: {stats['events']} event(s) across "
                f"{stats['segments']} segment(s) [{stats['granularity']}]"
            )
    if record.status != "ok":
        return 1
    return 1 if record.invariant_violations else 0


def _load_sweep_spec(path: str) -> SweepSpec:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if "scenarios" in data:
        return SweepSpec.from_dict(data)
    # Grid shorthand: {"name", "algorithms", "graphs", "ks", "seeds"?, ...}.
    grid_keys = {"name", "algorithms", "graphs", "ks", "seeds"}
    extra = {key: value for key, value in data.items() if key not in grid_keys}
    return SweepSpec.from_grid(
        name=data["name"],
        algorithms=data["algorithms"],
        graphs=data["graphs"],
        ks=data["ks"],
        seeds=data.get("seeds", (0,)),
        **extra,
    )


def _parse_algorithm_names(text: str) -> List[str]:
    """``'paper'`` or a comma-separated list of registry names (validated)."""
    if text.strip() == "paper":
        return core_algorithm_names()
    names = [n.strip() for n in text.split(",") if n.strip()]
    if not names:
        raise ValueError(f"no algorithm names in {text!r}")
    for name in names:
        get_algorithm(name)  # fail fast with the registry's message
    return names


class _ProgressLine:
    """The ``--progress`` stderr line: done/total, cache hits, faults, ETA.

    On a TTY the line redraws in place (carriage return); on a pipe each
    update is its own line so logs stay readable.  The ETA extrapolates from
    *executed* jobs only -- cache hits are effectively free, and counting them
    would make the estimate collapse toward zero on warm sweeps.  When the
    caller announces how many jobs will actually execute
    (:meth:`expect_executed` -- the store path knows this from its plan), the
    ETA covers only the remaining *executions*: a fully cached rerun reads
    ``eta=0.0s`` from the first record on, instead of extrapolating from zero
    executed jobs (the old line printed ``?`` all the way through a warm
    sweep and could divide by zero the moment a remaining-hit estimate was
    attempted).  Fault events and invariant violations accumulate across
    records -- cached ones included, their findings are equally real -- so a
    warm rerun reports the same ``faults=``/``viol=`` totals as the cold run.
    """

    def __init__(self, stream: Any = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._start = time.monotonic()
        self._hits = 0
        self._executed = 0
        self._faults = 0
        self._violations = 0
        self._pending_total: Optional[int] = None
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())
        self._last_width = 0

    def expect_executed(self, pending_total: int) -> None:
        """Announce how many of the sweep's jobs will execute (store plans)."""
        self._pending_total = pending_total

    def _eta_text(self, done: int, total: int) -> str:
        if self._pending_total is not None:
            remaining = max(0, self._pending_total - self._executed)
        else:
            remaining = total - done
        if remaining == 0:
            return "0.0s"
        if not self._executed:
            return "?"
        eta = remaining * (time.monotonic() - self._start) / self._executed
        return f"{eta:.1f}s"

    def __call__(self, done: int, total: int, record: Dict[str, Any], cached: bool = False) -> None:
        if cached:
            self._hits += 1
        else:
            self._executed += 1
        self._faults += record.get("fault_events") or 0
        self._violations += record.get("invariant_violations") or 0
        line = (
            f"[{done}/{total}] hits={self._hits} faults={self._faults} "
            f"viol={self._violations} eta={self._eta_text(done, total)}"
        )
        if self._tty:
            pad = " " * max(0, self._last_width - len(line))
            self._stream.write(f"\r{line}{pad}")
            self._last_width = len(line)
        else:
            self._stream.write(line + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._tty:
            self._stream.write("\n")
            self._stream.flush()


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.resume and not args.store:
        raise ValueError("--resume needs --store: the store is what it resumes from")
    sweep = smoke_sweep() if args.smoke else _load_sweep_spec(args.spec)
    if args.scheduler:
        scheduler, scheduler_params = _parse_scheduler(args.scheduler)
        sweep = sweep.with_scheduler(scheduler, scheduler_params)
    if args.algorithms:
        sweep = sweep.filter_algorithms(_parse_algorithm_names(args.algorithms))
    if args.backend:
        require_backend(args.backend)  # one clear error beats a sweep of them
        sweep = sweep.with_backend(args.backend)
    if args.trace:
        sweep = sweep.with_trace()
    profiles = [parse_faults(text) for text in args.faults]
    if profiles:
        # --check-invariants switches checking on everywhere; without it each
        # scenario keeps whatever its spec file configured.
        sweep = sweep.with_profiles(
            profiles, check_invariants=True if args.check_invariants else None
        )
    elif args.check_invariants:
        # No --faults given: turn checking on without clobbering fault
        # profiles a spec file configured per scenario.
        sweep = sweep.with_invariants(True)
    if not sweep.jobs():
        raise ValueError(
            f"sweep grid {sweep.name!r} is empty: no compatible "
            "(algorithm, scenario) pairs -- check the algorithms and scenarios lists"
        )
    per_job = None
    if not args.quiet:
        def per_job(done: int, total: int, record: Dict[str, Any], cached: bool) -> None:
            scenario = record["scenario"]
            status = record["status"]
            tag = "" if status == "ok" else f" [{status}]"
            if cached:
                tag += " [cached]"
            print(
                f"[{done}/{total}] {record['algorithm']:13s} "
                f"{scenario['family']}/k={scenario['k']}"
                f" -> time={record['time']}{tag}",
                flush=True,
            )
    progress_line = _ProgressLine() if args.progress else None

    def on_record(done: int, total: int, record: Dict[str, Any], cached: bool = False) -> None:
        if per_job is not None:
            per_job(done, total, record, cached)
        if progress_line is not None:
            progress_line(done, total, record, cached)

    executed: Optional[int] = None
    hits = 0
    try:
        if args.store:
            from repro.store import RunStore, execute_plan, plan_sweep

            with RunStore(args.store) as store:
                plan = plan_sweep(sweep, store)
                hits, executed = plan.hits, plan.total - plan.hits
                if progress_line is not None:
                    progress_line.expect_executed(executed)
                print(
                    f"store {args.store}: {hits}/{plan.total} cache hit(s), "
                    f"executing {executed} job(s)",
                    flush=True,
                )
                records = execute_plan(
                    plan, store=store, workers=args.workers, progress=on_record
                )
        else:
            records = run_sweep(sweep, workers=args.workers, progress=on_record)
    finally:
        if progress_line is not None:
            progress_line.close()
    out = args.out or f"artifacts/{sweep.name}.json"
    artifacts_mod.write_json(records, out, sweep=sweep)
    print(f"wrote {len(records)} records to {out}")
    if executed is not None:
        if executed == 0:
            print(f"all {len(records)} records served from cache (0 jobs executed)")
        else:
            print(f"cache: {hits} hit(s), {executed} executed")
    if args.csv:
        artifacts_mod.write_csv(records, args.csv)
        print(f"wrote CSV view to {args.csv}")
    summary = artifacts_mod.fault_summary(records)
    if summary is not None:
        print()
        print(summary.render())
    failed = [record for record in records if _record_fails_sweep(record)]
    if failed:
        for record in failed:
            print(
                f"FAILED: {record.algorithm} on {record.scenario}: "
                f"{record.error or _fault_free_failure(record)}",
                file=sys.stderr,
            )
        return 1
    return 0


def _record_fails_sweep(record: RunRecord) -> bool:
    """Whether a record should fail the sweep's exit code.

    Records from *faulty* profiles never fail the sweep: crashes,
    non-dispersal, and invariant violations under injected faults are the
    findings the harness exists to collect.  Fault-free records fail on
    errors, non-dispersal of guaranteed algorithms, or any invariant
    violation.
    """
    if record.scenario.get("faults"):
        return False
    if record.status == "error":
        return True
    if record.status == "ok" and not record.dispersed and get_algorithm(record.algorithm).guaranteed:
        return True
    return bool(record.invariant_violations)


def _fault_free_failure(record: RunRecord) -> str:
    if record.invariant_violations:
        return f"{record.invariant_violations} invariant violation(s)"
    return "not dispersed"


def _cmd_report(args: argparse.Namespace) -> int:
    records = artifacts_mod.load_json(args.artifact)
    tables = artifacts_mod.report_tables(records, time_field=args.time_field)
    if not tables:
        print("no successful records in artifact")
        return 1
    for table in tables:
        print(table.render())
        print()
    summary = artifacts_mod.fault_summary(records)
    if summary is not None:
        print(summary.render())
        print()
    skipped = [r for r in records if r.status != "ok"]
    if skipped:
        print(f"({len(skipped)} non-ok records not shown)")
    return 0


def _cmd_db(args: argparse.Namespace) -> int:
    from repro.store import RunStore, diff_paths

    if args.db_command == "query":
        with RunStore(args.store, create=False) as store:
            records = store.query(
                algorithms=_parse_algorithm_names(args.algorithm) if args.algorithm else None,
                family=args.family,
                k=args.k,
                seed=args.seed,
                faults=parse_faults(args.faults) if args.faults is not None else None,
                status=args.status,
            )
        if args.out:
            artifacts_mod.write_json(records, args.out)
            print(f"wrote {len(records)} records to {args.out}")
        if args.csv:
            artifacts_mod.write_csv(records, args.csv)
            print(f"wrote CSV view to {args.csv}")
        if not args.out and not args.csv:
            for record in records:
                scenario = record.scenario
                tag = "" if record.status == "ok" else f" [{record.status}]"
                print(
                    f"{record.algorithm:14s} {scenario['family']}/k={scenario['k']}"
                    f"/seed={scenario['seed']} -> time={record.time}{tag}"
                )
            print(f"{len(records)} record(s) match")
        return 0

    if args.db_command == "diff":
        result = diff_paths(args.old, args.new)
        if result.only_old:
            print(f"{len(result.only_old)} run(s) only in {args.old}")
        if result.only_new:
            print(f"{len(result.only_new)} run(s) only in {args.new}")
        if result.is_clean:
            print(f"no metric changes across {result.common} common run(s)")
            return 0
        for change in result.changed:
            print(change.render())
        print(
            f"{len(result.changed)} metric change(s) across "
            f"{result.common} common run(s)"
        )
        return 1

    if args.db_command == "gc":
        with RunStore(args.store, create=False) as store:
            stats = store.gc(dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        print(
            f"{verb} {stats.total} record(s) "
            f"({stats.stale_version} stale code-version, "
            f"{stats.unregistered} unregistered algorithm)"
        )
        return 0

    if args.db_command == "import":
        with RunStore(args.store) as store:
            for path in args.artifacts:
                added, skipped = store.import_records(artifacts_mod.load_json(path))
                print(f"{path}: imported {added} record(s), skipped {skipped} already stored")
        return 0

    if args.db_command == "traces":
        with RunStore(args.store, create=False) as store:
            rows = store.traces(
                algorithms=_parse_algorithm_names(args.algorithm) if args.algorithm else None
            )
        for row in rows:
            print(
                f"{row['fingerprint'][:12]} {row['algorithm']:14s} "
                f"{row['granularity']:11s} events={row['events']} "
                f"bytes={row['bytes']} hash={row['content_hash'][:12]}"
            )
        print(f"{len(rows)} trace(s) indexed")
        return 0

    # stats
    with RunStore(args.store, create=False) as store:
        stats = store.stats()
    print(f"{stats['path']}: {stats['records']} record(s)")
    for algorithm, versions in stats["per_algorithm"].items():
        for version, count in versions.items():
            print(f"  {algorithm:14s} v{version}: {count}")
    print(f"traces indexed: {stats['traces']}")
    print(f"collectable by gc: {stats['collectable']}")
    return 0


def _cmd_list() -> int:
    for spec in list_algorithms():
        flags = "" if spec.guaranteed else " (heuristic)"
        print(
            f"{spec.name:14s} {spec.setting:5s} {spec.config:7s} "
            f"{spec.claimed_bound:15s} {spec.display}{flags}"
        )
    print()
    usable = set(available_backends())
    for name in BACKEND_NAMES:
        status = "available" if name in usable else "unavailable (install the 'fast' extra)"
        default = " [default]" if name == DEFAULT_BACKEND else ""
        print(f"backend {name:11s} {status}{default}")
    print()
    for spec in list_algorithms():
        if spec.setting == "sync":
            capability = "round-granularity trace (SYNC lockstep rounds)"
        else:
            capability = "activation-granularity trace (ASYNC activations + schedule)"
        print(f"trace {spec.name:14s} {capability}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.runner import bench as bench_mod

    backends = list(dict.fromkeys(args.backend)) or available_backends()
    for name in backends:
        require_backend(name)
    workloads = list(dict.fromkeys(args.workload)) or list(bench_mod.WORKLOADS)
    scale = list(dict.fromkeys(args.nodes))

    def _run() -> Dict[str, Any]:
        return bench_mod.run_bench(
            backends=backends,
            workloads=workloads,
            agents=args.agents,
            seed=args.seed,
            quick=args.quick,
            scale=scale or None,
        )

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        payload = profiler.runcall(_run)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative")
        print("bench profile (top 30 by cumulative time):", file=sys.stderr)
        stats.print_stats(30)
    else:
        payload = _run()
    print(bench_mod.render(payload))
    path = bench_mod.write_report(payload, args.out)
    print(f"wrote bench report to {path}")
    if args.check:
        problems = bench_mod.check_report(payload, args.check, tolerance=args.tolerance)
        if problems:
            for line in problems:
                print(f"BENCH REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"bench-guard: speedups within {args.tolerance:.0%} of {args.check}")
    return 0


def _resolve_trace(args: argparse.Namespace) -> Tuple[Dict[str, Any], str]:
    """Resolve ``repro trace RUN`` to exactly one ``(payload, label)``.

    ``RUN`` may be a raw trace JSON file (``repro run --trace-out``), a sweep
    artifact (``repro sweep --trace``), or a run store (``--store``).  When
    the source holds more than one trace, ``--algorithm``/``--fingerprint``
    narrow it down and ``--index`` picks one of what remains.
    """
    from repro.sim.trace import TRACE_FORMAT
    from repro.store import is_store_file

    candidates: List[Tuple[Dict[str, Any], str]] = []
    if is_store_file(args.run):
        from repro.store import RunStore

        with RunStore(args.run, create=False) as store:
            if args.fingerprint:
                rows = [
                    row
                    for row in store.traces()
                    if row["fingerprint"].startswith(args.fingerprint)
                ]
                if not rows:
                    raise ValueError(
                        f"no stored trace matches fingerprint {args.fingerprint!r}"
                    )
                for row in rows:
                    payload = store.get_trace(row["fingerprint"])
                    if payload is not None:
                        candidates.append(
                            (payload, f"{row['algorithm']} @ {row['fingerprint'][:12]}")
                        )
            else:
                for row in store.traces():
                    payload = store.get_trace(row["fingerprint"])
                    if payload is not None:
                        candidates.append(
                            (payload, f"{row['algorithm']} @ {row['fingerprint'][:12]}")
                        )
    else:
        with open(args.run, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if isinstance(data, dict) and data.get("format") == TRACE_FORMAT:
            candidates.append((data, args.run))
        else:
            for record in artifacts_mod.load_json(args.run):
                if record.trace is not None:
                    scenario = record.scenario
                    label = (
                        f"{record.algorithm} on {scenario['family']}"
                        f"/k={scenario['k']}/seed={scenario['seed']}"
                    )
                    candidates.append((record.trace, label))
    if args.algorithm:
        names = set(_parse_algorithm_names(args.algorithm))
        candidates = [
            (payload, label)
            for payload, label in candidates
            if payload.get("algorithm") in names
        ]
    if not candidates:
        raise ValueError(
            f"no trace found in {args.run!r} -- record one with "
            "'repro run --trace-out' or 'repro sweep --trace'"
        )
    if args.index is not None:
        if not 0 <= args.index < len(candidates):
            raise ValueError(
                f"--index {args.index} out of range: {len(candidates)} trace(s) available"
            )
        return candidates[args.index]
    if len(candidates) > 1:
        raise ValueError(
            f"{args.run!r} holds {len(candidates)} traces -- pick one with "
            "--index/--algorithm/--fingerprint:\n"
            + "\n".join(f"  [{i}] {label}" for i, (_, label) in enumerate(candidates))
        )
    return candidates[0]


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.trace import canonical_trace_json
    from repro.viz import render_html, summarize

    payload, label = _resolve_trace(args)
    wrote_output = False
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            fh.write(canonical_trace_json(payload))
            fh.write("\n")
        print(f"wrote trace to {args.json_out}")
        wrote_output = True
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_html(payload, title=label))
        print(f"wrote replay page to {args.html}")
        wrote_output = True
    if args.summary or not wrote_output:
        print(summarize(payload, label=label))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import CampaignConfig, load_fixtures, replay_fixture, run_campaign

    if args.replay is not None:
        fixtures = load_fixtures(args.replay)
        if not fixtures:
            print(f"no fuzz fixtures under {args.replay}")
            return 0
        bad = 0
        for path, entry in fixtures:
            record, verdict, matches = replay_fixture(entry)
            problems = []
            if not matches:
                problems.append("record bytes diverged from expected_record")
            if not verdict.ok:
                problems.append(f"oracle failed ({verdict.kind}: {verdict.detail})")
            status = "ok" if not problems else "FAIL " + "; ".join(problems)
            print(f"{path}: {status}")
            bad += bool(problems)
        print(f"replayed {len(fixtures)} fixture(s), {bad} failing")
        return 1 if bad else 0

    algorithms = None
    if args.algorithms:
        algorithms = [name.strip() for name in args.algorithms.split(",") if name.strip()]
        for name in algorithms:
            try:
                get_algorithm(name)
            except KeyError as exc:
                # KeyError's str() is the repr of its message (extra quotes);
                # re-raise as ValueError for the standard one-line error.
                raise ValueError(exc.args[0]) from None
    config = CampaignConfig(
        trials=args.trials,
        seed=args.seed,
        store_path=args.store,
        corpus_dir=args.corpus,
        algorithms=algorithms,
        max_nodes=args.max_nodes,
        max_agents=args.max_agents,
        shrink=not args.no_shrink,
        shrink_budget=args.shrink_budget,
        differential=not args.no_differential,
        explore=not args.no_explore,
        explore_depth=args.explore_depth,
        explore_budget=args.explore_budget,
        planted_bug=args.plant_bug,
    )

    def progress(index: int, total: int, kind: str) -> None:
        print(f"[{index + 1}/{total}] {kind}", file=sys.stderr, flush=True)

    report = run_campaign(config, progress=progress if args.progress else None)
    print(
        f"fuzz seed={config.seed}: {report.trials} trial(s), "
        f"{report.executed} executed, {report.cache_hits} cache hit(s), "
        f"{report.skipped} skipped, {report.differentials} differential(s), "
        f"{report.explored_schedules} interleaving(s) explored"
    )
    if report.ok:
        print("no failures found")
        return 0
    for finding in report.findings:
        print()
        print(
            f"FALSIFIED trial {finding.trial}: {finding.algorithm} "
            f"[{finding.verdict.kind}] {finding.verdict.detail}"
        )
        print(f"  scenario:  {finding.spec.key()}")
        if finding.minimized is not None:
            print(
                f"  minimized: {finding.minimized.key()} "
                f"({finding.shrink_steps} step(s), "
                f"{finding.shrink_evaluations} evaluation(s))"
            )
        if finding.fixture_path:
            print(f"  fixture:   {finding.fixture_path}")
    print()
    print(f"{len(report.findings)} failure(s) found")
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "db":
            return _cmd_db(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        return _cmd_list()
    except BrokenPipeError:
        # stdout piped into `head` etc.; exiting quietly is the convention.
        return 0
    except KeyboardInterrupt:
        # Records finished before the interrupt are already committed when a
        # --store is attached, so point at the resume path instead of dumping
        # a traceback.
        message = "interrupted"
        if getattr(args, "store", None):
            message += f" -- rerun with --store {args.store} --resume to finish"
        print(message, file=sys.stderr)
        return 130
    except (
        argparse.ArgumentTypeError,
        ValueError,
        KeyError,
        TypeError,
        OSError,
        json.JSONDecodeError,
    ) as exc:
        # User-input problems (bad --param, unreadable spec/artifact, unknown
        # or misspelled spec fields) get one clean line, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
