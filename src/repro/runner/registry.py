"""Algorithm registry: one uniform adapter per dispersion algorithm.

Every algorithm in :mod:`repro.core` and :mod:`repro.baselines` is registered
here under a short stable name (``rooted_sync``, ``ks_opodis21``, ...) together
with the metadata the experiment layer needs: SYNC vs ASYNC (which decides the
time unit and whether an adversary applies), rooted vs general initial
configurations, and the paper's claimed bound (printed in report tables).

The adapters give every algorithm the same call shape --
``run(graph, placements, adversary, seed) -> DispersionResult`` -- so sweeps,
benchmarks, and the CLI never special-case individual algorithms again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.graph.port_graph import PortLabeledGraph
from repro.sim.adversary import Adversary
from repro.sim.result import DispersionResult

__all__ = [
    "AlgorithmSpec",
    "register",
    "get_algorithm",
    "list_algorithms",
    "algorithm_names",
    "core_algorithm_names",
    "code_versions",
    "supports",
]

#: Adapter signature shared by every registered algorithm.
Adapter = Callable[
    [PortLabeledGraph, Mapping[int, int], Optional[Adversary], int],
    DispersionResult,
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """A registered dispersion algorithm.

    Attributes
    ----------
    name:
        Registry key (stable; used in sweep specs and artifacts).
    display:
        Human-readable name used in report tables.
    setting:
        ``"sync"`` (time = rounds) or ``"async"`` (time = epochs).
    config:
        ``"rooted"`` -- requires all agents on one start node -- or
        ``"general"`` -- accepts any initial placement.
    claimed_bound:
        The paper's bound for the table's last column.
    adapter:
        Uniform ``(graph, placements, adversary, seed) -> DispersionResult``.
    entry_point:
        ``"module:function"`` of the underlying public driver; used by the
        registry-completeness tests to prove every algorithm in ``core/`` and
        ``baselines/`` is covered.
    guaranteed:
        False for heuristics (e.g. the random-walk baseline) whose runs may
        legitimately end with ``dispersed=False``; sweeps report rather than
        fail those.
    code_version:
        Opaque tag naming the current implementation of the algorithm.  The
        experiment store (:mod:`repro.store`) mixes it into every run
        fingerprint, so bumping the tag when an algorithm's behaviour changes
        invalidates exactly that algorithm's cached records -- nothing else.
    """

    name: str
    display: str
    setting: str
    config: str
    claimed_bound: str
    adapter: Adapter
    entry_point: str = ""
    guaranteed: bool = True
    code_version: str = "1"

    @property
    def time_unit(self) -> str:
        return "rounds" if self.setting == "sync" else "epochs"

    def supports_scheduler(self, scheduler: str) -> bool:
        """Whether the algorithm can run under this synchrony discipline.

        ASYNC-capable algorithms accept every scheduler: their correctness
        holds against arbitrary fair activation orders, of which lockstep,
        semi-synchronous, and bounded-delay schedules are restrictions.  SYNC
        algorithms run lockstep *by construction* (their drivers call
        ``SyncEngine.step``), so only the classic default applies -- asking
        for another discipline is an unsupported pairing, not a silent no-op.
        """
        return self.setting == "async" or scheduler == "async"

    @property
    def is_paper(self) -> bool:
        """True for the paper's own algorithms (vs. comparison baselines)."""
        return self.entry_point.startswith("repro.core.")

    def run(
        self,
        graph: PortLabeledGraph,
        placements: Mapping[int, int],
        adversary: Optional[Adversary] = None,
        seed: int = 0,
    ) -> DispersionResult:
        """Run the algorithm on an initial ``node -> agent count`` placement."""
        return self.adapter(graph, placements, adversary, seed)


_REGISTRY: Dict[str, AlgorithmSpec] = {}


def register(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Add an algorithm to the registry (rejects duplicate names)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"algorithm {spec.name!r} is already registered")
    if spec.setting not in ("sync", "async"):
        raise ValueError(f"setting must be 'sync' or 'async', got {spec.setting!r}")
    if spec.config not in ("rooted", "general"):
        raise ValueError(f"config must be 'rooted' or 'general', got {spec.config!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def list_algorithms() -> List[AlgorithmSpec]:
    """All registered algorithms, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def algorithm_names() -> List[str]:
    """Sorted registry keys."""
    return sorted(_REGISTRY)


def core_algorithm_names() -> List[str]:
    """Sorted keys of the paper's own algorithms (the fault-sweep CI targets)."""
    return [name for name in sorted(_REGISTRY) if _REGISTRY[name].is_paper]


def code_versions() -> Dict[str, str]:
    """Current ``{algorithm name: code-version tag}`` map (for store GC)."""
    return {name: _REGISTRY[name].code_version for name in sorted(_REGISTRY)}


def supports(spec: AlgorithmSpec, placements: Mapping[int, int]) -> bool:
    """True when the algorithm can run from this initial placement."""
    if spec.config == "general":
        return True
    return len(placements) == 1


# --------------------------------------------------------------------------
# Adapters.  Imports happen lazily inside each adapter so that importing the
# runner package stays cheap (the general drivers pull in the full subsumption
# machinery).


def _single_root(placements: Mapping[int, int]) -> tuple:
    if len(placements) != 1:
        raise ValueError("rooted algorithm requires a single start node")
    ((start, k),) = placements.items()
    return start, k


def _rooted_sync(graph, placements, adversary, seed):
    from repro.core.rooted_sync import rooted_sync_dispersion

    start, k = _single_root(placements)
    return rooted_sync_dispersion(graph, k, start_node=start)


def _rooted_async(graph, placements, adversary, seed):
    from repro.core.rooted_async import rooted_async_dispersion

    start, k = _single_root(placements)
    return rooted_async_dispersion(graph, k, start_node=start, adversary=adversary)


def _general_sync(graph, placements, adversary, seed):
    from repro.core.general_sync import general_sync_dispersion

    return general_sync_dispersion(graph, placements)


def _general_async(graph, placements, adversary, seed):
    from repro.core.general_async import general_async_dispersion

    return general_async_dispersion(graph, placements, adversary=adversary)


def _naive_dfs(graph, placements, adversary, seed):
    from repro.baselines.naive_dfs import naive_sync_dispersion

    start, k = _single_root(placements)
    return naive_sync_dispersion(graph, k, start_node=start)


def _sudo_disc24(graph, placements, adversary, seed):
    from repro.baselines.sudo_disc24 import sudo_sync_dispersion

    start, k = _single_root(placements)
    return sudo_sync_dispersion(graph, k, start_node=start)


def _ks_opodis21(graph, placements, adversary, seed):
    from repro.baselines.ks_opodis21 import ks_async_dispersion

    start, k = _single_root(placements)
    return ks_async_dispersion(graph, k, start_node=start, adversary=adversary)


def _random_walk(graph, placements, adversary, seed):
    from repro.baselines.random_walk import random_walk_dispersion

    start, k = _single_root(placements)
    return random_walk_dispersion(graph, k, start_node=start, seed=seed)


register(AlgorithmSpec(
    name="rooted_sync",
    display="RootedSyncDisp (ours)",
    setting="sync",
    config="rooted",
    claimed_bound="O(k)",
    adapter=_rooted_sync,
    entry_point="repro.core.rooted_sync:rooted_sync_dispersion",
    # v2: the SYNC engine now skips the whole CCM cycle of crashed/frozen
    # agents (settle + probe paths), changing every fault-sweep record.
    code_version="2",
))
register(AlgorithmSpec(
    name="rooted_async",
    display="RootedAsyncDisp (ours)",
    setting="async",
    config="rooted",
    claimed_bound="O(k log k)",
    adapter=_rooted_async,
    entry_point="repro.core.rooted_async:rooted_async_dispersion",
    # v2: the ASYNC engine always skipped blocked cycles, but its co-location
    # queries now hide crashed/frozen agents too (probe answers, settle
    # candidacy), so cached fault records must be recomputed as well.
    code_version="2",
))
register(AlgorithmSpec(
    name="general_sync",
    display="GeneralSyncDisp (ours)",
    setting="sync",
    config="general",
    claimed_bound="O(k)",
    adapter=_general_sync,
    entry_point="repro.core.general_sync:general_sync_dispersion",
    code_version="2",  # v2 fault semantics (see rooted_sync)
))
register(AlgorithmSpec(
    name="general_async",
    display="GeneralAsyncDisp (ours)",
    setting="async",
    config="general",
    claimed_bound="O(k log k)",
    adapter=_general_async,
    entry_point="repro.core.general_async:general_async_dispersion",
    code_version="2",  # v2 fault semantics (see rooted_async)
))
register(AlgorithmSpec(
    name="naive_dfs",
    display="naive seq-probe DFS",
    setting="sync",
    config="rooted",
    claimed_bound="O(min{m, kΔ})",
    adapter=_naive_dfs,
    entry_point="repro.baselines.naive_dfs:naive_sync_dispersion",
    code_version="2",  # v2 fault semantics (see rooted_sync)
))
register(AlgorithmSpec(
    name="sudo_disc24",
    display="Sudo'24-style",
    setting="sync",
    config="rooted",
    claimed_bound="O(k log k)",
    adapter=_sudo_disc24,
    entry_point="repro.baselines.sudo_disc24:sudo_sync_dispersion",
    code_version="2",  # v2 fault semantics (see rooted_sync)
))
register(AlgorithmSpec(
    name="ks_opodis21",
    display="KS'21-style ASYNC",
    setting="async",
    config="rooted",
    claimed_bound="O(min{m, kΔ})",
    adapter=_ks_opodis21,
    entry_point="repro.baselines.ks_opodis21:ks_async_dispersion",
    code_version="2",  # v2 fault semantics (see rooted_async)
))
register(AlgorithmSpec(
    name="random_walk",
    display="random-walk heuristic",
    setting="sync",
    config="rooted",
    claimed_bound="(heuristic)",
    adapter=_random_walk,
    entry_point="repro.baselines.random_walk:random_walk_dispersion",
    guaranteed=False,
    code_version="2",  # v2 fault semantics (see rooted_sync)
))
