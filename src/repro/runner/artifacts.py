"""Deterministic sweep artifacts: JSON for machines, CSV for spreadsheets.

The JSON artifact is the contract between the sweep executor and everything
downstream (report tables, plotting, regression diffs in CI).  It is written
canonically -- sorted keys, fixed separators, no timestamps -- so re-running
the same sweep spec produces a byte-identical file; CI exploits that to diff
artifacts across commits.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.analysis.tables import Table, comparison_table, fault_summary_table
from repro.runner.execute import RunRecord
from repro.runner.registry import get_algorithm
from repro.runner.sweep import SweepSpec

__all__ = [
    "ARTIFACT_FORMAT",
    "ArtifactError",
    "canonical_record_json",
    "record_from_dict",
    "write_json",
    "load_json",
    "load_payload",
    "write_csv",
    "records_to_results",
    "report_tables",
    "fault_summary",
]

#: The JSON artifact's schema/version envelope tag.  Bump only with a loader
#: that still reads every older tag.
ARTIFACT_FORMAT = "repro-sweep-v1"


class ArtifactError(ValueError):
    """A file is not a readable sweep artifact (foreign, truncated, or malformed).

    Subclasses :class:`ValueError` so existing ``except ValueError`` error
    paths (the CLI's clean-message handler in particular) keep working.
    """


def canonical_record_json(record: RunRecord) -> str:
    """One record as canonical JSON -- the byte representation shared by the
    artifact writer and the experiment store (:mod:`repro.store`).

    Canonical means sorted keys and fixed separators, so the same record always
    serializes to the same bytes and a store round-trip cannot perturb the
    artifact bytes a sweep would have produced cold.
    """
    return json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":"))


def record_from_dict(data: Any, source: str = "artifact") -> RunRecord:
    """Validate one raw record dict and build the :class:`RunRecord`.

    Raises :class:`ArtifactError` (not ``KeyError``/``TypeError``) on foreign
    or truncated payloads, naming the offending source and field set.
    """
    if not isinstance(data, dict):
        raise ArtifactError(f"{source}: record entry is {type(data).__name__}, not an object")
    known = set(RunRecord.__dataclass_fields__)
    unknown = set(data) - known
    if unknown:
        raise ArtifactError(f"{source}: unknown record fields {sorted(unknown)}")
    if "algorithm" not in data or "scenario" not in data:
        missing = sorted({"algorithm", "scenario"} - set(data))
        raise ArtifactError(f"{source}: record missing required fields {missing}")
    try:
        return RunRecord.from_dict(data)
    except TypeError as exc:
        raise ArtifactError(f"{source}: malformed record: {exc}") from None

#: Flat CSV column order (scenario fields get a ``scenario_`` prefix).
_CSV_SCENARIO_FIELDS = (
    "family",
    "params",
    "k",
    "port_assignment",
    "placement",
    "placement_parts",
    "start_node",
    "adversary",
    "adversary_params",
    "scheduler",
    "scheduler_params",
    "seed",
    "faults",
    "check_invariants",
    "backend",
)
_CSV_RECORD_FIELDS = (
    "algorithm",
    "status",
    "n",
    "m",
    "dispersed",
    "time",
    "time_unit",
    "rounds",
    "epochs",
    "activations",
    "total_moves",
    "max_moves_per_agent",
    "peak_memory_bits",
    "peak_memory_log_units",
    "fault_events",
    "invariant_violations",
    "error",
)


def write_json(
    records: Sequence[RunRecord],
    path: str,
    sweep: Optional[SweepSpec] = None,
) -> str:
    """Write the canonical JSON artifact and return its path."""
    payload: Dict[str, Any] = {
        "format": ARTIFACT_FORMAT,
        "sweep": sweep.to_dict() if sweep is not None else None,
        "records": [r.to_dict() for r in records],
    }
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, indent=2, separators=(",", ": "))
        fh.write("\n")
    return path


def load_payload(path: str) -> Dict[str, Any]:
    """Load and validate a JSON artifact's full payload (envelope + records).

    Every failure mode of a foreign or truncated file -- invalid JSON, a
    non-object top level, a wrong/missing ``format`` tag, a missing or
    non-list ``records`` entry, malformed record entries -- raises
    :class:`ArtifactError` with the path in the message, never a raw
    ``KeyError`` or ``JSONDecodeError``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"{path} is not valid JSON (truncated?): {exc}") from None
        except UnicodeDecodeError:
            raise ArtifactError(
                f"{path} is a binary file, not a JSON artifact -- if it is an "
                "experiment store, query it with `repro db query` first"
            ) from None
    if not isinstance(payload, dict):
        raise ArtifactError(f"{path}: top level is {type(payload).__name__}, not an object")
    fmt = payload.get("format")
    if fmt != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"{path} is not a repro sweep artifact "
            f"(format={fmt!r}, expected {ARTIFACT_FORMAT!r})"
        )
    records = payload.get("records")
    if not isinstance(records, list):
        raise ArtifactError(f"{path}: 'records' is missing or not a list")
    return payload


def load_json(path: str) -> List[RunRecord]:
    """Load the records of a JSON artifact (see :func:`load_payload`)."""
    payload = load_payload(path)
    return [record_from_dict(r, source=path) for r in payload["records"]]


def write_csv(records: Sequence[RunRecord], path: str) -> str:
    """Write a flat CSV view of the records and return its path."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    columns = list(_CSV_RECORD_FIELDS) + [f"scenario_{f}" for f in _CSV_SCENARIO_FIELDS]
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(columns)
        for record in records:
            row = [getattr(record, f) for f in _CSV_RECORD_FIELDS]
            scenario = record.scenario
            for f in _CSV_SCENARIO_FIELDS:
                value = scenario.get(f)
                if isinstance(value, dict):
                    value = json.dumps(value, sort_keys=True, separators=(",", ":"))
                row.append(value)
            writer.writerow(row)
    return path


def records_to_results(
    records: Iterable[RunRecord],
    time_field: str = "time",
    key_field: str = "k",
) -> Dict[str, Dict[int, float]]:
    """Shape records for :func:`repro.analysis.tables.comparison_table`.

    Returns ``{algorithm display name: {k: value}}`` over the successful,
    dispersed records.  When several records share an (algorithm, k) cell
    (e.g. multiple seeds), the cell holds their mean.
    """
    cells: Dict[str, Dict[int, List[float]]] = {}
    for record in records:
        if record.status != "ok" or not record.dispersed:
            continue
        value = getattr(record, time_field)
        if value is None:
            continue
        display = get_algorithm(record.algorithm).display
        key = record.scenario[key_field] if key_field in record.scenario else getattr(record, key_field)
        cells.setdefault(display, {}).setdefault(key, []).append(float(value))
    return {
        display: {k: sum(vs) / len(vs) for k, vs in series.items()}
        for display, series in cells.items()
    }


def fault_summary(records: Iterable[RunRecord]) -> Optional[Table]:
    """Aggregate fault-sweep outcomes per (algorithm, fault profile).

    Returns ``None`` when no record carries fault or invariant data (plain
    sweeps keep their reports unchanged).  Rows count runs, dispersals,
    errors, world-level fault events, and invariant violations -- the harness's
    falsification scoreboard.
    """
    records = list(records)
    if all(
        record.fault_events is None and record.invariant_violations is None
        for record in records
    ):
        return None
    # Some profile was instrumented: summarize *every* record, so fault-free
    # baseline rows (which may be uninstrumented) still appear next to their
    # faulty counterparts instead of silently dropping out of the comparison.
    rows: Dict[tuple, Dict[str, int]] = {}
    for record in records:
        profile = record.scenario.get("faults") or {}
        label = (
            ",".join(f"{k}:{v}" for k, v in sorted(profile.items())) if profile else "none"
        )
        cell = rows.setdefault(
            (record.algorithm, label),
            {"runs": 0, "dispersed": 0, "errors": 0, "fault_events": 0, "violations": 0},
        )
        cell["runs"] += 1
        cell["dispersed"] += 1 if record.dispersed else 0
        cell["errors"] += 1 if record.status == "error" else 0
        cell["fault_events"] += record.fault_events or 0
        cell["violations"] += record.invariant_violations or 0
    return fault_summary_table(
        [
            {"algorithm": algorithm, "profile": label, **cell}
            for (algorithm, label), cell in sorted(rows.items())
        ]
    )


def report_tables(records: Sequence[RunRecord], time_field: str = "time") -> List[Table]:
    """Table-1 style comparisons, one table per (family, time unit) group."""
    groups: Dict[tuple, List[RunRecord]] = {}
    for record in records:
        if record.status != "ok":
            continue
        groups.setdefault((record.scenario["family"], record.time_unit), []).append(record)
    tables = []
    for (family, unit), group in sorted(groups.items()):
        results = records_to_results(group, time_field=time_field)
        if not results:
            continue
        bounds = {
            get_algorithm(r.algorithm).display: get_algorithm(r.algorithm).claimed_bound
            for r in group
        }
        tables.append(
            comparison_table(
                f"{family} graphs ({time_field} in {unit})", results, unit, bounds
            )
        )
    return tables
