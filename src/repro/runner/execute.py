"""Run one (algorithm, scenario) pair and flatten the outcome into a record.

A :class:`RunRecord` is the unit every artifact is made of: a flat, JSON-safe
summary of one execution -- the scenario spec, the graph's realized size, the
engine-measured metrics, and a status.  Failures are captured as data
(``status="error"``) rather than exceptions so a sweep always produces a
complete artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.runner.registry import AlgorithmSpec, get_algorithm, supports
from repro.runner.scenario import (
    ScenarioSpec,
    build_graph,
    build_instrumentation,
    build_placements,
    build_scheduler,
    derive_seed,
)
from repro.sim.instrumentation import InstrumentationConfig, instrument

__all__ = ["RunRecord", "run_scenario"]


@dataclass
class RunRecord:
    """Flat summary of one dispersion run (JSON/CSV-friendly)."""

    algorithm: str
    scenario: Dict[str, Any]
    status: str = "ok"  # "ok" | "unsupported" | "error"
    error: Optional[str] = None
    n: Optional[int] = None
    m: Optional[int] = None
    k: Optional[int] = None
    dispersed: Optional[bool] = None
    time: Optional[int] = None
    time_unit: Optional[str] = None
    rounds: Optional[int] = None
    epochs: Optional[int] = None
    activations: Optional[int] = None
    total_moves: Optional[int] = None
    max_moves_per_agent: Optional[int] = None
    peak_memory_bits: Optional[int] = None
    peak_memory_log_units: Optional[float] = None
    fault_events: Optional[int] = None
    invariant_violations: Optional[int] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "scenario": dict(self.scenario),
            "status": self.status,
            "error": self.error,
            "n": self.n,
            "m": self.m,
            "k": self.k,
            "dispersed": self.dispersed,
            "time": self.time,
            "time_unit": self.time_unit,
            "rounds": self.rounds,
            "epochs": self.epochs,
            "activations": self.activations,
            "total_moves": self.total_moves,
            "max_moves_per_agent": self.max_moves_per_agent,
            "peak_memory_bits": self.peak_memory_bits,
            "peak_memory_log_units": self.peak_memory_log_units,
            "fault_events": self.fault_events,
            "invariant_violations": self.invariant_violations,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        return cls(**data)


def run_scenario(
    algorithm: str | AlgorithmSpec, scenario: ScenarioSpec
) -> RunRecord:
    """Execute one scenario under one algorithm and return its record.

    Never raises for model-level failures: incompatible (algorithm, placement)
    pairs come back with ``status="unsupported"`` and crashes with
    ``status="error"`` plus the exception text, so grid sweeps keep going.
    """
    spec = get_algorithm(algorithm) if isinstance(algorithm, str) else algorithm
    record = RunRecord(algorithm=spec.name, scenario=scenario.to_dict(), k=scenario.k)
    config = build_instrumentation(scenario)
    try:
        graph = build_graph(scenario)
        placements = build_placements(scenario, graph)
        record.n = graph.num_nodes
        record.m = graph.num_edges
        if not supports(spec, placements):
            record.status = "unsupported"
            record.error = (
                f"{spec.name} requires a rooted placement but got "
                f"{len(placements)} start nodes"
            )
            return record
        if not spec.supports_scheduler(scenario.scheduler):
            record.status = "unsupported"
            record.error = (
                f"{spec.name} is a SYNC algorithm (lockstep by construction); "
                f"the {scenario.scheduler!r} scheduler applies to ASYNC-capable "
                "algorithms only"
            )
            return record
        adversary = build_scheduler(scenario) if spec.setting == "async" else None
        with instrument(config):
            result = spec.run(
                graph,
                placements,
                adversary=adversary,
                seed=derive_seed(scenario, "algorithm"),
            )
    except Exception as exc:  # noqa: BLE001 - sweep robustness is the point
        record.status = "error"
        record.error = f"{type(exc).__name__}: {exc}"
        _record_instrumentation(record, config)
        return record

    metrics = result.metrics
    record.dispersed = bool(result.dispersed)
    record.time = metrics.time
    record.time_unit = spec.time_unit
    record.rounds = metrics.rounds
    record.epochs = metrics.epochs
    record.activations = metrics.activations
    record.total_moves = metrics.total_moves
    record.max_moves_per_agent = metrics.max_moves_per_agent
    record.peak_memory_bits = metrics.peak_memory_bits
    record.peak_memory_log_units = metrics.peak_memory_log_units
    record.extra = {name: float(value) for name, value in sorted(metrics.extra.items())}
    _record_instrumentation(record, config)
    return record


def _record_instrumentation(
    record: RunRecord, config: Optional[InstrumentationConfig]
) -> None:
    """Lift fault/invariant counts onto the record (even for aborted runs).

    Counts come from the config's live instances rather than the metrics
    extras: a crashed run never reaches ``finalize_metrics``, but a fault sweep
    must still report how many faults fired before the algorithm gave up.
    """
    if config is None:
        return
    if config.faults is not None:
        record.fault_events = config.fault_events()
    if config.check_invariants:
        record.invariant_violations = config.violation_count()
