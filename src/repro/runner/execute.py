"""Run one (algorithm, scenario) pair and flatten the outcome into a record.

A :class:`RunRecord` is the unit every artifact is made of: a flat, JSON-safe
summary of one execution -- the scenario spec, the graph's realized size, the
engine-measured metrics, and a status.  Failures are captured as data
(``status="error"``) rather than exceptions so a sweep always produces a
complete artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Union

from repro.agents.agent import Agent
from repro.agents.memory import MemoryModel
from repro.graph.port_graph import PortLabeledGraph
from repro.runner.registry import AlgorithmSpec, get_algorithm, supports
from repro.runner.scenario import (
    ScenarioSpec,
    build_graph,
    build_instrumentation,
    build_placements,
    build_scheduler,
    derive_seed,
)
from repro.sim.adversary import Adversary
from repro.sim.async_engine import AsyncEngine
from repro.sim.faults import FaultSchedule
from repro.sim.instrumentation import InstrumentationConfig, instrument
from repro.sim.sync_engine import SyncEngine

__all__ = ["RunRecord", "build_engine", "run_scenario"]


@dataclass
class RunRecord:
    """Flat summary of one dispersion run (JSON/CSV-friendly)."""

    algorithm: str
    scenario: Dict[str, Any]
    status: str = "ok"  # "ok" | "unsupported" | "error"
    error: Optional[str] = None
    n: Optional[int] = None
    m: Optional[int] = None
    k: Optional[int] = None
    dispersed: Optional[bool] = None
    time: Optional[int] = None
    time_unit: Optional[str] = None
    rounds: Optional[int] = None
    epochs: Optional[int] = None
    activations: Optional[int] = None
    total_moves: Optional[int] = None
    max_moves_per_agent: Optional[int] = None
    peak_memory_bits: Optional[int] = None
    peak_memory_log_units: Optional[float] = None
    fault_events: Optional[int] = None
    invariant_violations: Optional[int] = None
    extra: Dict[str, float] = field(default_factory=dict)
    #: The run's ``repro-trace-v1`` payload (:mod:`repro.sim.trace`); only
    #: present when the scenario enabled tracing.
    trace: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "algorithm": self.algorithm,
            "scenario": dict(self.scenario),
            "status": self.status,
            "error": self.error,
            "n": self.n,
            "m": self.m,
            "k": self.k,
            "dispersed": self.dispersed,
            "time": self.time,
            "time_unit": self.time_unit,
            "rounds": self.rounds,
            "epochs": self.epochs,
            "activations": self.activations,
            "total_moves": self.total_moves,
            "max_moves_per_agent": self.max_moves_per_agent,
            "peak_memory_bits": self.peak_memory_bits,
            "peak_memory_log_units": self.peak_memory_log_units,
            "fault_events": self.fault_events,
            "invariant_violations": self.invariant_violations,
            "extra": dict(self.extra),
        }
        # Emitted only when present: every key above serializes for every
        # record, so an unconditional "trace": None would change the bytes of
        # every existing artifact and store row.
        if self.trace is not None:
            data["trace"] = dict(self.trace)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        return cls(**data)


def build_engine(
    scenario: Optional[ScenarioSpec] = None,
    *,
    setting: str = "sync",
    graph: Optional[PortLabeledGraph] = None,
    agents: Optional[Iterable[Agent]] = None,
    adversary: Optional[Adversary] = None,
    max_rounds: Optional[int] = None,
    max_activations: Optional[int] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    record_fault_observations: bool = False,
    check_invariants: bool = False,
    backend: Optional[str] = None,
    trace: bool = False,
) -> Union[SyncEngine, AsyncEngine]:
    """The one factory behind every engine+injector+checker construction.

    Two modes share the same wiring (and replace the four copies that used to
    live in the runner, the conformance suite, and both engine facades):

    **Scenario mode** (``scenario`` given): materialize the spec's graph and
    placements, number agents ``1..k`` across the placement nodes in node
    order, build the spec's scheduler for ASYNC engines, and construct the
    engine under the spec's full instrumentation (faults, invariants,
    backend) exactly as :func:`run_scenario` instruments algorithm drivers.
    Keyword arguments override the corresponding spec-derived pieces.

    **Explicit mode** (``graph`` + ``agents`` given): wire a prepared world,
    optionally pinning an exact :class:`~repro.sim.faults.FaultSchedule` --
    the conformance suite's construction, where SYNC and ASYNC runs of one
    scenario must face the *same* adversary.

    ``setting`` picks the engine (``"sync"``/``"async"``); ``backend`` the
    kernel state layout (default: the scenario's, else ``"reference"``).
    """
    if scenario is not None:
        if graph is None:
            graph = build_graph(scenario)
        if agents is None:
            placements = build_placements(scenario, graph)
            model = MemoryModel(k=scenario.k, max_degree=graph.max_degree)
            agents = []
            next_id = 1
            for node in sorted(placements):
                for _ in range(placements[node]):
                    agents.append(Agent(next_id, node, model))
                    next_id += 1
        if adversary is None and setting == "async":
            adversary = build_scheduler(scenario)
        if backend is None:
            backend = scenario.backend
        config = build_instrumentation(scenario)
        if config is None and (record_fault_observations or check_invariants or trace):
            config = InstrumentationConfig()
        if config is not None:
            if record_fault_observations:
                config.record_fault_observations = True
            if check_invariants:
                config.check_invariants = True
            if trace:
                config.trace = True
    elif graph is None or agents is None:
        raise ValueError("build_engine needs a scenario or explicit graph+agents")
    else:
        config = None
        if fault_schedule is not None or check_invariants or trace:
            config = InstrumentationConfig(
                fault_schedule=fault_schedule,
                record_fault_observations=record_fault_observations,
                check_invariants=check_invariants,
                trace=trace,
            )
    with instrument(config):
        if setting == "sync":
            return SyncEngine(graph, agents, max_rounds=max_rounds, backend=backend)
        if setting == "async":
            return AsyncEngine(
                graph,
                agents,
                adversary=adversary,
                max_activations=max_activations,
                backend=backend,
            )
    raise ValueError(f"setting must be 'sync' or 'async', got {setting!r}")


def run_scenario(
    algorithm: str | AlgorithmSpec, scenario: ScenarioSpec
) -> RunRecord:
    """Execute one scenario under one algorithm and return its record.

    Never raises for model-level failures: incompatible (algorithm, placement)
    pairs come back with ``status="unsupported"`` and crashes with
    ``status="error"`` plus the exception text, so grid sweeps keep going.
    """
    spec = get_algorithm(algorithm) if isinstance(algorithm, str) else algorithm
    record = RunRecord(algorithm=spec.name, scenario=scenario.to_dict(), k=scenario.k)
    config = build_instrumentation(scenario)
    try:
        graph = build_graph(scenario)
        placements = build_placements(scenario, graph)
        record.n = graph.num_nodes
        record.m = graph.num_edges
        if not supports(spec, placements):
            record.status = "unsupported"
            record.error = (
                f"{spec.name} requires a rooted placement but got "
                f"{len(placements)} start nodes"
            )
            return record
        if not spec.supports_scheduler(scenario.scheduler):
            record.status = "unsupported"
            record.error = (
                f"{spec.name} is a SYNC algorithm (lockstep by construction); "
                f"the {scenario.scheduler!r} scheduler applies to ASYNC-capable "
                "algorithms only"
            )
            return record
        adversary = build_scheduler(scenario) if spec.setting == "async" else None
        with instrument(config):
            result = spec.run(
                graph,
                placements,
                adversary=adversary,
                seed=derive_seed(scenario, "algorithm"),
            )
    except Exception as exc:  # noqa: BLE001 - sweep robustness is the point
        record.status = "error"
        record.error = f"{type(exc).__name__}: {exc}"
        _record_instrumentation(record, config)
        return record

    metrics = result.metrics
    record.dispersed = bool(result.dispersed)
    record.time = metrics.time
    record.time_unit = spec.time_unit
    record.rounds = metrics.rounds
    record.epochs = metrics.epochs
    record.activations = metrics.activations
    record.total_moves = metrics.total_moves
    record.max_moves_per_agent = metrics.max_moves_per_agent
    record.peak_memory_bits = metrics.peak_memory_bits
    record.peak_memory_log_units = metrics.peak_memory_log_units
    record.extra = {name: float(value) for name, value in sorted(metrics.extra.items())}
    _record_instrumentation(record, config)
    return record


def _record_instrumentation(
    record: RunRecord, config: Optional[InstrumentationConfig]
) -> None:
    """Lift fault/invariant counts onto the record (even for aborted runs).

    Counts come from the config's live instances rather than the metrics
    extras: a crashed run never reaches ``finalize_metrics``, but a fault sweep
    must still report how many faults fired before the algorithm gave up.
    """
    if config is None:
        return
    if config.faults is not None:
        record.fault_events = config.fault_events()
    if config.check_invariants:
        record.invariant_violations = config.violation_count()
    if config.trace and config.recorders:
        from repro.sim.trace import trace_payload

        record.trace = trace_payload(config.recorders, algorithm=record.algorithm)
