"""Experiment-runner subsystem: registry, scenarios, sweeps, artifacts, CLI.

This package is the uniform way to *measure* everything the repository
implements.  The pieces compose bottom-up:

* :mod:`repro.runner.registry` -- maps stable names (``rooted_sync``,
  ``ks_opodis21``, ...) to uniform adapters over every algorithm in
  :mod:`repro.core` and :mod:`repro.baselines`;
* :mod:`repro.runner.scenario` -- :class:`ScenarioSpec` pins down graph family,
  ``k``, ports, placement, adversary, and seed; all randomness derives from the
  spec, so every run is reproducible from its spec alone;
* :mod:`repro.runner.execute` -- one (algorithm, scenario) run flattened into a
  JSON-safe :class:`RunRecord`;
* :mod:`repro.runner.sweep` -- grids of records, executed serially or over a
  ``multiprocessing`` pool, in deterministic order;
* :mod:`repro.runner.artifacts` -- canonical (byte-reproducible) JSON plus CSV
  views and Table-1 style report tables;
* :mod:`repro.runner.cli` -- the ``repro`` / ``python -m repro`` entry point.

:mod:`repro.store` layers a persistent, content-addressed experiment store
under the sweep executor (``run_sweep(..., store=...)``): cached records skip
execution entirely while preserving byte-identical artifacts.
"""

from repro.runner.registry import (
    AlgorithmSpec,
    algorithm_names,
    code_versions,
    core_algorithm_names,
    get_algorithm,
    list_algorithms,
    register,
)
from repro.runner.scenario import (
    ADVERSARIES,
    GRAPH_FAMILIES,
    PLACEMENTS,
    SCHEDULERS,
    ScenarioSpec,
    build_adversary,
    build_graph,
    build_instrumentation,
    build_placements,
    build_scheduler,
    derive_fault_seed,
    derive_scheduler_seed,
    derive_seed,
)
from repro.runner.execute import RunRecord, run_scenario
from repro.runner.sweep import SweepSpec, collect_series, run_sweep, smoke_sweep
from repro.runner.artifacts import (
    ArtifactError,
    canonical_record_json,
    fault_summary,
    load_json,
    load_payload,
    records_to_results,
    report_tables,
    write_csv,
    write_json,
)

__all__ = [
    "AlgorithmSpec",
    "algorithm_names",
    "code_versions",
    "core_algorithm_names",
    "get_algorithm",
    "list_algorithms",
    "register",
    "ADVERSARIES",
    "GRAPH_FAMILIES",
    "PLACEMENTS",
    "SCHEDULERS",
    "ScenarioSpec",
    "build_adversary",
    "build_graph",
    "build_instrumentation",
    "build_placements",
    "build_scheduler",
    "derive_fault_seed",
    "derive_scheduler_seed",
    "derive_seed",
    "RunRecord",
    "run_scenario",
    "SweepSpec",
    "collect_series",
    "run_sweep",
    "smoke_sweep",
    "ArtifactError",
    "canonical_record_json",
    "fault_summary",
    "load_json",
    "load_payload",
    "records_to_results",
    "report_tables",
    "write_csv",
    "write_json",
]
