"""Scenario specifications: everything one run needs, in one hashable spec.

A :class:`ScenarioSpec` pins down the *entire* input of a dispersion run --
graph family and parameters, population size ``k``, port-assignment policy,
initial placement, ASYNC adversary, and a master seed.  Every source of
randomness in a run (graph generation, port shuffling, adversary choices,
randomized baselines) draws its seed deterministically from the spec via
:func:`derive_seed`, so any run is reproducible from its spec alone: the same
spec produces byte-identical metrics on any machine, in any process, in any
order within a sweep.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from repro.graph import generators
from repro.graph.port_graph import PortAssignment, PortLabeledGraph
from repro.sim.adversary import (
    AdaptiveCollisionAdversary,
    Adversary,
    BoundedDelayScheduler,
    LazySettlerAdversary,
    LockstepScheduler,
    RandomAdversary,
    RoundRobinAdversary,
    SemiSyncScheduler,
    StarvationAdversary,
)
from repro.sim.backends import BACKEND_NAMES, DEFAULT_BACKEND
from repro.sim.faults import FaultSpec
from repro.sim.instrumentation import InstrumentationConfig

__all__ = [
    "GRAPH_FAMILIES",
    "ADVERSARIES",
    "SCHEDULERS",
    "PLACEMENTS",
    "BACKENDS",
    "ScenarioSpec",
    "derive_seed",
    "derive_fault_seed",
    "derive_scheduler_seed",
    "build_graph",
    "build_adversary",
    "build_scheduler",
    "build_placements",
    "build_instrumentation",
]

#: Graph families a spec may name, mapped to their generator in
#: :mod:`repro.graph.generators` (a whitelist -- specs come from JSON files).
GRAPH_FAMILIES: Dict[str, Any] = {
    "line": generators.line,
    "ring": generators.ring,
    "star": generators.star,
    "complete": generators.complete,
    "binary_tree": generators.binary_tree,
    "random_tree": generators.random_tree,
    "caterpillar": generators.caterpillar,
    "broom": generators.broom,
    "spider": generators.spider,
    "grid2d": generators.grid2d,
    "hypercube": generators.hypercube,
    "erdos_renyi": generators.erdos_renyi,
    "random_regular": generators.random_regular,
    "barbell": generators.barbell,
    "lollipop": generators.lollipop,
}

#: Adversary policies a spec may name (fully asynchronous runs only).
ADVERSARIES = ("round_robin", "random", "starvation", "adaptive_collision", "lazy_settler")

#: Synchrony-spectrum scheduling disciplines a spec may name.  ``"async"`` is
#: the classic fully asynchronous setting, in which the ``adversary`` field
#: picks the activation policy; the other disciplines *replace* the adversary
#: with a synchrony-restricted scheduler from :mod:`repro.sim.adversary`.
SCHEDULERS = ("async", "lockstep", "semi-sync", "bounded-delay")

#: Initial-placement policies: ``rooted`` puts all k agents on ``start_node``;
#: ``split`` spreads them over ``placement_parts`` evenly spaced nodes.
PLACEMENTS = ("rooted", "split")

#: Kernel backends a spec may name (see :mod:`repro.sim.backends`).  Like the
#: graph families, this is a *name* whitelist: availability (numpy installed?)
#: is an environment property checked when the backend is instantiated, so
#: spec files stay portable across machines.
BACKENDS = BACKEND_NAMES


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully specified dispersion scenario.

    Attributes
    ----------
    family, params:
        Graph family name (a key of :data:`GRAPH_FAMILIES`) and the keyword
        arguments of its generator (e.g. ``{"n": 64}`` or ``{"n": 48, "p": 0.2}``).
    k:
        Number of agents.
    port_assignment:
        ``"adjacency"``, ``"random"`` or ``"async_safe"``
        (:class:`~repro.graph.port_graph.PortAssignment` values).
    placement:
        ``"rooted"`` or ``"split"`` (see :data:`PLACEMENTS`).
    placement_parts:
        Number of start nodes for ``split`` placements.
    start_node:
        Root node for ``rooted`` placements.
    adversary, adversary_params:
        ASYNC activation policy and its keyword arguments (ignored by SYNC
        algorithms, and by non-``"async"`` schedulers, which replace the
        adversary wholesale).
    scheduler, scheduler_params:
        Synchrony-spectrum discipline for ASYNC-capable algorithms (a key of
        :data:`SCHEDULERS`) and its keyword arguments (e.g. ``{"p": 0.25}``
        for ``semi-sync``, ``{"delay_factor": 3}`` for ``bounded-delay``).
        The default ``"async"`` is the classic setting and is *omitted* from
        the serialized spec, so pre-scheduler scenarios keep their canonical
        key, digest, seeds, and record bytes unchanged.  Like the fault
        profile, the scheduler is excluded from the world-seed derivation:
        the same scenario under different schedulers runs on the identical
        graph/placement -- only the activation schedule differs, which is
        exactly what a synchrony-spectrum sweep compares.
    seed:
        Master seed; all component seeds are derived from it together with the
        rest of the spec (see :func:`derive_seed`).
    faults:
        Fault profile (dict form of :class:`~repro.sim.faults.FaultSpec`);
        empty means fault-free.  The profile is *excluded* from the seed
        derivation of graph/adversary/algorithm, so the same scenario under
        different fault profiles runs on the identical world -- only the fault
        schedule differs.
    check_invariants:
        Attach an :class:`~repro.sim.invariants.InvariantChecker` to the run's
        engine(s); violation counts land in the run record.
    backend:
        Kernel world-state backend (a key of :data:`BACKENDS`).  The default
        ``"reference"`` is *omitted* from the serialized spec, the canonical
        key/digest, and the store fingerprint -- the scheduler-field trick
        again -- so every pre-backend record, artifact, and store row keeps
        its exact bytes.  The backend is excluded from all seed derivation:
        it must never change what a run computes, only how fast (the
        differential suite enforces record equality across backends).
    trace:
        Record a ``repro-trace-v1`` execution trace (:mod:`repro.sim.trace`)
        on the run's engine(s); the payload lands on the run record.  The
        default ``False`` is *omitted* from the serialized spec, the canonical
        key/digest, and the store fingerprint (the backend-field trick again),
        so every pre-trace record, artifact, and store row keeps its exact
        bytes.  Tracing is excluded from all seed derivation: it observes a
        run, it must never change one.
    """

    family: str
    params: Mapping[str, Any]
    k: int
    port_assignment: str = "adjacency"
    placement: str = "rooted"
    placement_parts: int = 1
    start_node: int = 0
    adversary: str = "round_robin"
    adversary_params: Mapping[str, Any] = field(default_factory=dict)
    scheduler: str = "async"
    scheduler_params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    faults: Mapping[str, Any] = field(default_factory=dict)
    check_invariants: bool = False
    backend: str = DEFAULT_BACKEND
    trace: bool = False

    def __post_init__(self) -> None:
        if self.family not in GRAPH_FAMILIES:
            raise ValueError(
                f"unknown graph family {self.family!r}; known: {sorted(GRAPH_FAMILIES)}"
            )
        PortAssignment(self.port_assignment)  # raises on unknown policy
        if self.placement not in PLACEMENTS:
            raise ValueError(f"unknown placement {self.placement!r}; known: {PLACEMENTS}")
        if self.adversary not in ADVERSARIES:
            raise ValueError(f"unknown adversary {self.adversary!r}; known: {ADVERSARIES}")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {self.scheduler!r}; known: {SCHEDULERS}")
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; known: {BACKENDS}")
        if self.scheduler_params and self.scheduler == "async":
            raise ValueError(
                "scheduler_params need a non-'async' scheduler; the classic "
                "setting is parameterized through adversary/adversary_params"
            )
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.placement == "split" and self.placement_parts < 2:
            raise ValueError("split placement needs placement_parts >= 2")
        # Copy the mappings so a spec cannot be mutated through the caller's
        # dicts after construction.  The fault profile additionally round-trips
        # through FaultSpec (which also validates it): profiles that spell out
        # default fields or use int probabilities must key/fingerprint/seed
        # identically to their canonical minimal form.
        object.__setattr__(self, "trace", bool(self.trace))
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "adversary_params", dict(self.adversary_params))
        object.__setattr__(self, "scheduler_params", dict(self.scheduler_params))
        object.__setattr__(self, "faults", FaultSpec.from_dict(self.faults).to_dict())

    def __hash__(self) -> int:
        # The dataclass-generated hash would choke on the dict fields; the
        # canonical key covers every field, so hash it instead (specs are
        # legitimately used as set members / cache keys for dedup).
        return hash(self.key())

    # -------------------------------------------------------- serialization
    def base_dict(self) -> Dict[str, Any]:
        """The world-defining fields: everything except faults/invariants
        and the scheduler axis.

        This is the pre-fault-subsystem spec format; :func:`derive_seed` hashes
        it so (a) component seeds are unchanged from earlier artifact formats
        and (b) every fault profile *and every scheduler* of a scenario shares
        the same graph, placement, and adversary stream -- a synchrony-spectrum
        sweep compares schedules over one world.
        """
        return {
            "family": self.family,
            "params": dict(self.params),
            "k": self.k,
            "port_assignment": self.port_assignment,
            "placement": self.placement,
            "placement_parts": self.placement_parts,
            "start_node": self.start_node,
            "adversary": self.adversary,
            "adversary_params": dict(self.adversary_params),
            "seed": self.seed,
        }

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe, round-trips through :meth:`from_dict`).

        The scheduler axis serializes only when it departs from the classic
        ``"async"`` default, so every pre-scheduler spec -- and every record,
        artifact, and store row derived from one -- keeps its exact bytes.
        """
        data = self.base_dict()
        if self.scheduler != "async":
            data["scheduler"] = self.scheduler
            data["scheduler_params"] = dict(self.scheduler_params)
        # The backend serializes only when non-default, for the same byte
        # stability; unlike the scheduler it never changes the record's
        # *measurements*, only which kernel state layout computed them.
        if self.backend != DEFAULT_BACKEND:
            data["backend"] = self.backend
        # Tracing serializes only when enabled, for the same byte stability;
        # like the backend it never changes the record's *measurements*, only
        # whether a replayable event log rides along.
        if self.trace:
            data["trace"] = True
        data["faults"] = dict(self.faults)
        data["check_invariants"] = self.check_invariants
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        return cls(**data)

    def key(self) -> str:
        """Canonical JSON string of the spec -- stable across processes/runs."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def base_key(self) -> str:
        """Canonical JSON of :meth:`base_dict` (the seed-derivation key)."""
        return json.dumps(self.base_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Short stable hex digest of :meth:`key` (a scenario identity tag).

        Two specs share a digest exactly when they are the same scenario under
        the same fault/invariant settings; the experiment store indexes rows by
        it so queries and diffs can match scenarios without comparing full
        canonical JSON strings.
        """
        return hashlib.sha256(self.key().encode("utf-8")).hexdigest()[:16]

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """The same scenario under a different master seed."""
        return replace(self, seed=seed)

    def with_faults(
        self,
        faults: Mapping[str, Any],
        check_invariants: Optional[bool] = None,
    ) -> "ScenarioSpec":
        """The same world under a different fault profile (see ``faults`` docs)."""
        if check_invariants is None:
            check_invariants = self.check_invariants
        return replace(self, faults=dict(faults), check_invariants=check_invariants)

    def with_scheduler(
        self, scheduler: str, scheduler_params: Optional[Mapping[str, Any]] = None
    ) -> "ScenarioSpec":
        """The same world under a different synchrony discipline.

        The graph, placement, fault schedule, and every derived world seed are
        untouched (see :meth:`base_dict`): only the activation schedule of
        ASYNC-capable algorithms changes.
        """
        return replace(
            self,
            scheduler=scheduler,
            scheduler_params=dict(scheduler_params) if scheduler_params else {},
        )

    def with_backend(self, backend: str) -> "ScenarioSpec":
        """The same scenario computed by a different kernel backend.

        Everything observable -- graph, placements, seeds, schedules, and the
        run's measured record -- is unchanged by construction (the
        differential suite pins this); only the execution representation and
        its speed differ.
        """
        return replace(self, backend=backend)

    def with_trace(self, trace: bool = True) -> "ScenarioSpec":
        """The same scenario with execution tracing toggled.

        Tracing only *observes*: the graph, placements, seeds, schedules, and
        every measured metric are unchanged by construction (the trace
        determinism suite pins this) -- the run record just gains the
        ``repro-trace-v1`` payload.
        """
        return replace(self, trace=trace)

    def label(self) -> str:
        """Compact human-readable tag used in logs and CSV rows."""
        params = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        tag = f"{self.family}({params})/k={self.k}/seed={self.seed}"
        if self.scheduler != "async":
            tag += f"/sched={self.scheduler}"
        if self.backend != DEFAULT_BACKEND:
            tag += f"/backend={self.backend}"
        if self.trace:
            tag += "/trace"
        return tag


def derive_seed(spec: ScenarioSpec, component: str) -> int:
    """Deterministic per-component seed for a scenario.

    Hashing the canonical *base* spec string together with the component name
    gives independent, reproducible streams for graph generation, the
    adversary, and randomized algorithms -- without any global RNG state, so
    sweep workers can run scenarios in any order.  Fault fields are excluded
    (see :meth:`ScenarioSpec.base_dict`): the fault schedule draws from its own
    seed via :func:`derive_fault_seed` instead.
    """
    digest = hashlib.sha256(f"{spec.base_key()}#{component}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_fault_seed(spec: ScenarioSpec) -> int:
    """Seed for the fault schedule; distinct profiles get distinct schedules."""
    profile = json.dumps(dict(spec.faults), sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(
        f"{spec.base_key()}#{profile}#faults".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def derive_scheduler_seed(spec: ScenarioSpec) -> int:
    """Seed for a non-``"async"`` scheduler's activation stream.

    Mixes the scheduler name and parameters over the world key (the
    :func:`derive_fault_seed` pattern), so distinct disciplines draw distinct
    streams while the world itself stays shared across the scheduler axis.
    """
    params = json.dumps(dict(spec.scheduler_params), sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(
        f"{spec.base_key()}#{spec.scheduler}#{params}#scheduler".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def build_graph(spec: ScenarioSpec) -> PortLabeledGraph:
    """Materialize the scenario's port-labeled graph."""
    factory = GRAPH_FAMILIES[spec.family]
    assignment = PortAssignment(spec.port_assignment)
    return factory(
        **spec.params,
        assignment=assignment,
        seed=derive_seed(spec, "graph"),
    )


def build_adversary(spec: ScenarioSpec) -> Adversary:
    """Materialize the scenario's fully asynchronous activation adversary."""
    if spec.adversary == "round_robin":
        return RoundRobinAdversary()
    if spec.adversary == "random":
        return RandomAdversary(seed=derive_seed(spec, "adversary"))
    if spec.adversary == "adaptive_collision":
        return AdaptiveCollisionAdversary(
            seed=derive_seed(spec, "adversary"), **spec.adversary_params
        )
    if spec.adversary == "lazy_settler":
        return LazySettlerAdversary(
            seed=derive_seed(spec, "adversary"), **spec.adversary_params
        )
    return StarvationAdversary(
        seed=derive_seed(spec, "adversary"), **spec.adversary_params
    )


def build_scheduler(spec: ScenarioSpec) -> Adversary:
    """Materialize the scenario's activation scheduler (the synchrony axis).

    The classic ``"async"`` discipline defers to :func:`build_adversary` (the
    ``adversary``/``adversary_params`` fields, with their historical seed
    stream); the synchrony-restricted disciplines construct their scheduler
    from ``scheduler_params`` and a scheduler-specific seed.
    """
    if spec.scheduler == "async":
        return build_adversary(spec)
    if spec.scheduler == "lockstep":
        return LockstepScheduler(**spec.scheduler_params)
    if spec.scheduler == "semi-sync":
        return SemiSyncScheduler(
            seed=derive_scheduler_seed(spec), **spec.scheduler_params
        )
    return BoundedDelayScheduler(
        seed=derive_scheduler_seed(spec), **spec.scheduler_params
    )


def build_instrumentation(spec: ScenarioSpec) -> Optional[InstrumentationConfig]:
    """Fault/invariant/backend instrumentation for the scenario (``None`` when plain).

    The returned config is handed to :func:`repro.sim.instrumentation.instrument`
    around the algorithm run; engines constructed inside pick it up.  A
    non-default backend needs a config even for a fault-free unchecked run:
    the ambient context is the only channel reaching engines that algorithm
    drivers build internally.
    """
    fault_spec = FaultSpec.from_dict(spec.faults)
    if (
        not fault_spec.is_active
        and not spec.check_invariants
        and spec.backend == DEFAULT_BACKEND
        and not spec.trace
    ):
        return None
    return InstrumentationConfig(
        faults=fault_spec if fault_spec.is_active else None,
        fault_seed=derive_fault_seed(spec),
        check_invariants=spec.check_invariants,
        backend=spec.backend if spec.backend != DEFAULT_BACKEND else None,
        trace=spec.trace,
    )


def build_placements(spec: ScenarioSpec, graph: PortLabeledGraph) -> Dict[int, int]:
    """Initial ``node -> agent count`` placement for the scenario.

    ``rooted`` puts everyone on ``start_node``; ``split`` spreads the agents
    over ``placement_parts`` evenly spaced nodes (the multi-root configurations
    of the general algorithms), remainder on the first part.
    """
    if spec.k > graph.num_nodes:
        raise ValueError(
            f"k={spec.k} agents cannot disperse on n={graph.num_nodes} nodes"
        )
    if spec.placement == "rooted":
        if not (0 <= spec.start_node < graph.num_nodes):
            raise ValueError(f"start_node {spec.start_node} outside graph")
        return {spec.start_node: spec.k}
    parts = min(spec.placement_parts, spec.k)
    n = graph.num_nodes
    chosen = [int(i * (n - 1) / max(1, parts - 1)) for i in range(parts)]
    chosen = sorted(set(chosen))
    base = spec.k // len(chosen)
    placements = {node: base for node in chosen}
    placements[chosen[0]] += spec.k - base * len(chosen)
    return {node: count for node, count in placements.items() if count > 0}
