"""Persistent experiment store: content-addressed run cache + query/diff layer.

The runner (:mod:`repro.runner`) makes every run byte-deterministic and
reproducible from its :class:`~repro.runner.scenario.ScenarioSpec`; this
package turns that determinism into *incremental* computation.  The pieces:

* :mod:`repro.store.fingerprint` -- a run's content fingerprint: SHA-256 over
  the scenario's world key, fault profile, invariant flag, algorithm name,
  and the algorithm's registry code-version tag;
* :mod:`repro.store.db` -- :class:`RunStore`, a stdlib-``sqlite3`` database
  mapping fingerprints to canonical record JSON, with SQL-side query filters,
  legacy-artifact import, and code-version GC;
* :mod:`repro.store.cache` -- cache-aware sweep planning/execution: serve
  hits from the store, execute only the misses, write back per record (which
  is what makes ``repro sweep --resume`` work after an interrupt);
* :mod:`repro.store.diff` -- cross-snapshot regression diffs between stores
  and/or JSON artifacts.

A fully cached sweep executes zero jobs and still emits byte-identical
JSON/CSV artifacts -- the store keeps the runner's core guarantee intact.
"""

from repro.store.cache import SweepPlan, execute_plan, plan_sweep, run_sweep_cached
from repro.store.db import GCStats, RunStore, StoreError, is_store_file
from repro.store.diff import DIFF_FIELDS, DiffResult, FieldChange, diff_paths, diff_records, load_side
from repro.store.fingerprint import fingerprint_material, run_fingerprint

__all__ = [
    "SweepPlan",
    "execute_plan",
    "plan_sweep",
    "run_sweep_cached",
    "GCStats",
    "RunStore",
    "StoreError",
    "is_store_file",
    "DIFF_FIELDS",
    "DiffResult",
    "FieldChange",
    "diff_paths",
    "diff_records",
    "load_side",
    "fingerprint_material",
    "run_fingerprint",
]
