"""Cross-snapshot regression diffs between stores and/or JSON artifacts.

``repro db diff OLD NEW`` compares two snapshots of experiment results --
each side either a :class:`~repro.store.db.RunStore` file or a sweep JSON
artifact -- record by record.  Records are matched by *run identity*
(algorithm + canonical scenario key, deliberately ignoring code-version tags:
the whole point is to see what a code change did to the numbers), and the
comparison covers the metrics regressions care about: status, dispersal,
time, total moves, and invariant violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.runner.artifacts import load_json
from repro.runner.execute import RunRecord
from repro.runner.scenario import ScenarioSpec
from repro.store.db import RunStore, StoreError, is_store_file

__all__ = ["DIFF_FIELDS", "FieldChange", "DiffResult", "load_side", "diff_records", "diff_paths"]

#: Record fields a diff compares, in report order.
DIFF_FIELDS = ("status", "dispersed", "time", "total_moves", "invariant_violations")

#: Run identity: (algorithm, canonical scenario JSON).
_Key = Tuple[str, str]


@dataclass(frozen=True)
class FieldChange:
    """One metric that moved between the two snapshots."""

    algorithm: str
    scenario_label: str
    field: str
    old: Any
    new: Any

    def render(self) -> str:
        return (
            f"{self.algorithm:14s} {self.scenario_label:42s} "
            f"{self.field}: {self.old} -> {self.new}"
        )


@dataclass
class DiffResult:
    """Everything that differs between two snapshots."""

    changed: List[FieldChange] = field(default_factory=list)
    only_old: List[_Key] = field(default_factory=list)
    only_new: List[_Key] = field(default_factory=list)
    common: int = 0

    @property
    def is_clean(self) -> bool:
        """True when the common records carry identical metrics."""
        return not self.changed


def load_side(path: str) -> Dict[_Key, RunRecord]:
    """Load one diff side -- store or artifact -- keyed by run identity.

    A snapshot may legitimately hold several records for one identity only if
    they are byte-identical duplicates (e.g. an artifact written from a sweep
    that repeats a job); conflicting duplicates raise :class:`StoreError`
    because the diff would be ambiguous.
    """
    if is_store_file(path):
        with RunStore(path, create=False) as store:
            records = store.all_records()
    else:
        records = load_json(path)
    side: Dict[_Key, RunRecord] = {}
    for record in records:
        key = (record.algorithm, ScenarioSpec.from_dict(record.scenario).key())
        if key in side and side[key].to_dict() != record.to_dict():
            raise StoreError(
                f"{path}: conflicting duplicate records for {record.algorithm} "
                f"on {record.scenario}"
            )
        side[key] = record
    return side


def diff_records(
    old: Dict[_Key, RunRecord], new: Dict[_Key, RunRecord]
) -> DiffResult:
    """Compare two keyed snapshots over :data:`DIFF_FIELDS`."""
    result = DiffResult()
    result.only_old = sorted(set(old) - set(new))
    result.only_new = sorted(set(new) - set(old))
    for key in sorted(set(old) & set(new)):
        result.common += 1
        record_old, record_new = old[key], new[key]
        label = ScenarioSpec.from_dict(record_new.scenario).label()
        for field_name in DIFF_FIELDS:
            value_old = getattr(record_old, field_name)
            value_new = getattr(record_new, field_name)
            if value_old != value_new:
                result.changed.append(FieldChange(
                    algorithm=record_new.algorithm,
                    scenario_label=label,
                    field=field_name,
                    old=value_old,
                    new=value_new,
                ))
    return result


def diff_paths(old_path: str, new_path: str) -> DiffResult:
    """Diff two snapshot files (each a store or a JSON artifact)."""
    return diff_records(load_side(old_path), load_side(new_path))
