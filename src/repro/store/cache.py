"""Cache-aware sweep execution: plan against a store, run only the misses.

:func:`plan_sweep` fingerprints every job of a :class:`SweepSpec` and splits
the deterministic job list into cache hits (records served straight from the
:class:`~repro.store.db.RunStore`) and pending jobs.  :func:`execute_plan`
runs the pending jobs -- serially or over a ``multiprocessing`` pool, exactly
like a cold :func:`~repro.runner.sweep.run_sweep` -- writes each finished
record back to the store with its own commit (so an interrupt loses at most
the in-flight job and ``repro sweep --resume`` completes only the remainder),
and returns *all* records in job order.

Because stored records are the canonical JSON bytes of the records a cold run
would produce (the runner's byte-determinism), a fully cached sweep emits a
byte-identical artifact while executing zero jobs.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.runner.execute import RunRecord
from repro.runner.scenario import ScenarioSpec
from repro.runner.sweep import SweepSpec, _run_job
from repro.store.db import RunStore
from repro.store.fingerprint import run_fingerprint

__all__ = ["SweepPlan", "plan_sweep", "execute_plan", "run_sweep_cached"]

#: ``progress(done, total, record_dict, cached)`` -- the store-aware progress
#: callback (one extra flag over the plain sweep's three-argument form).
ProgressFn = Callable[[int, int, Dict[str, Any], bool], None]


@dataclass
class SweepPlan:
    """A sweep's job list split into cache hits and pending executions."""

    sweep: SweepSpec
    jobs: List[Tuple[str, Dict[str, Any]]]
    fingerprints: List[str]
    cached: Dict[int, RunRecord] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.jobs)

    @property
    def hits(self) -> int:
        return len(self.cached)

    @property
    def pending(self) -> List[int]:
        """Indices of the jobs that still need executing, in job order."""
        return [i for i in range(len(self.jobs)) if i not in self.cached]


def plan_sweep(sweep: SweepSpec, store: RunStore) -> SweepPlan:
    """Fingerprint every job and look the fingerprints up in the store."""
    jobs = sweep.jobs()
    fingerprints = [
        run_fingerprint(algorithm, ScenarioSpec.from_dict(scenario_dict))
        for algorithm, scenario_dict in jobs
    ]
    found = store.get_many(fingerprints)
    cached = {
        index: found[fingerprint]
        for index, fingerprint in enumerate(fingerprints)
        if fingerprint in found
    }
    return SweepPlan(sweep=sweep, jobs=jobs, fingerprints=fingerprints, cached=cached)


def execute_plan(
    plan: SweepPlan,
    store: Optional[RunStore] = None,
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
) -> List[RunRecord]:
    """Run the plan's pending jobs, write them back, return records in job order.

    Cached records flow through ``progress`` too (with ``cached=True``), so a
    progress line counts every record of the sweep, not just the executed ones.
    """
    pending = plan.pending
    pending_jobs = [plan.jobs[i] for i in pending]

    def finish(index: int, raw: Dict[str, Any]) -> RunRecord:
        record = RunRecord.from_dict(raw)
        if store is not None:
            # Per-record commit: this is what --resume picks up after a kill.
            store.put(plan.fingerprints[index], record)
        return record

    records: List[Optional[RunRecord]] = [None] * plan.total
    done = 0

    def emit(index: int, record: RunRecord, cached: bool) -> None:
        nonlocal done
        records[index] = record
        done += 1
        if progress is not None:
            progress(done, plan.total, record.to_dict(), cached)

    if workers <= 1 or len(pending_jobs) <= 1:
        for index in range(plan.total):
            if index in plan.cached:
                emit(index, plan.cached[index], cached=True)
            else:
                emit(index, finish(index, _run_job(plan.jobs[index])), cached=False)
    else:
        with multiprocessing.Pool(processes=min(workers, len(pending_jobs))) as pool:
            # imap yields pending results in pending order while workers run
            # ahead; cached records are emitted as the job-order walk reaches
            # them, so progress and write-back both follow job order.
            results_iter = pool.imap(_run_job, pending_jobs, chunksize=1)
            pending_iter = iter(pending)
            for index in range(plan.total):
                if index in plan.cached:
                    emit(index, plan.cached[index], cached=True)
                else:
                    pending_index = next(pending_iter)
                    assert pending_index == index
                    emit(index, finish(index, next(results_iter)), cached=False)
    assert all(record is not None for record in records)
    return [record for record in records if record is not None]


def run_sweep_cached(
    sweep: SweepSpec,
    store: RunStore,
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
) -> List[RunRecord]:
    """Plan + execute in one call (the ``run_sweep(..., store=...)`` backend)."""
    return execute_plan(plan_sweep(sweep, store), store=store, workers=workers, progress=progress)
