"""Content fingerprints: the experiment store's cache keys.

A run's fingerprint pins down *everything* that determines its record bytes:

* the scenario's world (``ScenarioSpec.base_key()`` -- graph family/params,
  ``k``, ports, placement, adversary, master seed),
* the fault profile and invariant-checking flag (they change the fault
  schedule and the ``fault_events``/``invariant_violations`` fields),
* the synchrony discipline (``scheduler``/``scheduler_params``; omitted for
  the classic ``"async"`` default so pre-scheduler fingerprints are stable),
* the algorithm name, and
* the algorithm's **code-version tag** from the registry
  (:attr:`~repro.runner.registry.AlgorithmSpec.code_version`).

Because every run is byte-deterministic given its spec (the runner's core
guarantee), two jobs with equal fingerprints produce byte-identical records --
which is exactly what makes serving a record from the store sound.  Bumping an
algorithm's ``code_version`` when its implementation changes behaviour gives
that algorithm fresh fingerprints while every other algorithm keeps hitting
its cache.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.runner.registry import get_algorithm
from repro.runner.scenario import ScenarioSpec

__all__ = ["run_fingerprint", "fingerprint_material"]


def fingerprint_material(
    algorithm: str, scenario: ScenarioSpec, code_version: Optional[str] = None
) -> str:
    """The canonical string a fingerprint hashes (stable across processes).

    ``code_version=None`` reads the current tag from the registry; passing an
    explicit tag lets tests and GC reason about hypothetical versions without
    mutating registry state.
    """
    if code_version is None:
        code_version = get_algorithm(algorithm).code_version
    envelope = {
        "algorithm": algorithm,
        "code_version": code_version,
        "world": scenario.base_dict(),
        "faults": dict(scenario.faults),
        "check_invariants": scenario.check_invariants,
    }
    # The synchrony discipline changes the activation schedule, hence the
    # record bytes -- it must key the cache.  The classic "async" default is
    # omitted (matching ScenarioSpec.to_dict), so every pre-scheduler
    # fingerprint -- and with it every existing store row -- stays valid.
    if scenario.scheduler != "async":
        envelope["scheduler"] = {
            "name": scenario.scheduler,
            "params": dict(scenario.scheduler_params),
        }
    # The kernel backend never changes a record's measurements (differential
    # suite guarantee), but it *is* part of the scenario's serialized identity
    # (the record embeds the scenario tag), so a non-default backend keys its
    # own cache rows.  The "reference" default is omitted, keeping every
    # pre-backend fingerprint -- and store row -- valid.
    if scenario.backend != "reference":
        envelope["backend"] = scenario.backend
    # Tracing never changes a record's measurements either, but a traced
    # record *carries* the trace payload, so its bytes differ from the
    # untraced record's -- it must key its own cache rows.  The disabled
    # default is omitted, keeping every pre-trace fingerprint valid.
    if scenario.trace:
        envelope["trace"] = True
    return json.dumps(envelope, sort_keys=True, separators=(",", ":"))


def run_fingerprint(
    algorithm: str, scenario: ScenarioSpec, code_version: Optional[str] = None
) -> str:
    """Hex SHA-256 fingerprint of one (algorithm, scenario) run."""
    material = fingerprint_material(algorithm, scenario, code_version)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()
