"""``RunStore``: a persistent, content-addressed database of run records.

The store is a single stdlib-``sqlite3`` file mapping run fingerprints
(:mod:`repro.store.fingerprint`) to the canonical JSON bytes of their
:class:`~repro.runner.execute.RunRecord`.  Alongside the record it keeps the
flat columns queries and GC need -- algorithm, family, ``k``, seed, fault
profile, status, and the code-version tag the fingerprint was minted under --
so ``repro db query`` filters entirely in SQL.

Soundness rests on the runner's byte-determinism: a fingerprint already
present in the store *is* the record a fresh execution would produce, byte for
byte, so cache-served sweeps emit artifacts identical to cold ones.  Writes
commit per record (``put``) or per batch (``put_many``), which is what makes
an interrupted sweep resumable: every record completed before the interrupt is
durably on disk.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.runner.artifacts import canonical_record_json, record_from_dict
from repro.runner.execute import RunRecord
from repro.runner.registry import code_versions
from repro.runner.scenario import ScenarioSpec
from repro.store.fingerprint import run_fingerprint

__all__ = ["RunStore", "StoreError", "GCStats", "is_store_file", "SQLITE_MAGIC"]

#: First bytes of every SQLite database file (used to tell stores from
#: JSON artifacts when a CLI argument may be either).
SQLITE_MAGIC = b"SQLite format 3\x00"

_SCHEMA_VERSION = "1"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    fingerprint      TEXT PRIMARY KEY,
    algorithm        TEXT NOT NULL,
    family           TEXT NOT NULL,
    k                INTEGER NOT NULL,
    seed             INTEGER NOT NULL,
    faults           TEXT NOT NULL,
    check_invariants INTEGER NOT NULL,
    status           TEXT NOT NULL,
    code_version     TEXT NOT NULL,
    scenario_digest  TEXT NOT NULL,
    scenario_key     TEXT NOT NULL,
    record           TEXT NOT NULL,
    created_at       REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_algorithm ON runs (algorithm);
CREATE INDEX IF NOT EXISTS idx_runs_family ON runs (family, k);
CREATE INDEX IF NOT EXISTS idx_runs_version ON runs (algorithm, code_version);
CREATE TABLE IF NOT EXISTS traces (
    fingerprint     TEXT PRIMARY KEY,
    content_hash    TEXT NOT NULL,
    algorithm       TEXT NOT NULL,
    scenario_digest TEXT NOT NULL,
    granularity     TEXT,
    segments        INTEGER NOT NULL,
    events          INTEGER NOT NULL,
    bytes           INTEGER NOT NULL,
    created_at      REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_traces_algorithm ON traces (algorithm);
"""


class StoreError(ValueError):
    """The store file is unreadable, foreign, or from an unknown schema.

    Subclasses :class:`ValueError` so the CLI's clean-error path applies.
    """


@dataclass(frozen=True)
class GCStats:
    """What ``RunStore.gc`` removed (or would remove, with ``dry_run``)."""

    stale_version: int
    unregistered: int

    @property
    def total(self) -> int:
        return self.stale_version + self.unregistered


def is_store_file(path: str) -> bool:
    """True when ``path`` exists and starts with the SQLite magic header."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC
    except OSError:
        return False


def _canonical_faults(faults: Mapping[str, Any]) -> str:
    return json.dumps(dict(faults), sort_keys=True, separators=(",", ":"))


class RunStore:
    """One open experiment-store database (also a context manager)."""

    def __init__(self, path: str, create: bool = True) -> None:
        self.path = path
        if path != ":memory:":
            if not create and not os.path.exists(path):
                raise StoreError(f"store {path} does not exist")
            if os.path.exists(path) and os.path.getsize(path) > 0 and not is_store_file(path):
                raise StoreError(f"{path} is not an experiment store (not an SQLite file)")
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        try:
            self._conn = sqlite3.connect(path)
            # Concurrent-writer hygiene: WAL lets readers proceed while a
            # writer commits (fuzz shards and sweep workers share one store),
            # and the busy timeout turns "database is locked" races between
            # two writers into a short wait instead of an exception.  WAL is
            # a no-op for :memory: databases (sqlite reports "memory").
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA busy_timeout=10000")
            self._conn.executescript(_SCHEMA)
            self._check_schema_version()
            self._conn.commit()
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open store {path}: {exc}") from None

    def _check_schema_version(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (_SCHEMA_VERSION,),
            )
        elif row[0] != _SCHEMA_VERSION:
            raise StoreError(
                f"store {self.path} has schema version {row[0]}, "
                f"this build reads {_SCHEMA_VERSION}"
            )

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -------------------------------------------------------------- writes
    def put(
        self,
        fingerprint: str,
        record: RunRecord,
        code_version: Optional[str] = None,
    ) -> None:
        """Insert (or overwrite) one record and commit immediately.

        The per-record commit is the resumability contract: a sweep killed
        between jobs loses only the in-flight job, never completed ones.
        """
        self.put_many([(fingerprint, record)], code_version=code_version)

    def put_many(
        self,
        entries: Iterable[Tuple[str, RunRecord]],
        code_version: Optional[str] = None,
    ) -> int:
        """Insert a batch of ``(fingerprint, record)`` pairs in one transaction.

        Records carrying a ``repro-trace-v1`` payload additionally index into
        the content-addressed ``traces`` table (the payload itself stays
        inline in the canonical record JSON, so reads stay one lookup; the
        index row carries the content hash and the summary columns ``repro db
        traces`` lists).
        """
        versions = code_versions()
        rows = []
        trace_rows = []
        now = time.time()
        for fingerprint, record in entries:
            scenario = ScenarioSpec.from_dict(record.scenario)
            version = code_version or versions.get(record.algorithm, "")
            rows.append((
                fingerprint,
                record.algorithm,
                scenario.family,
                scenario.k,
                scenario.seed,
                _canonical_faults(scenario.faults),
                1 if scenario.check_invariants else 0,
                record.status,
                version,
                scenario.digest(),
                scenario.key(),
                canonical_record_json(record),
                now,
            ))
            if record.trace is not None:
                from repro.sim.trace import (
                    canonical_trace_json,
                    trace_digest,
                    trace_stats,
                )

                stats = trace_stats(record.trace)
                trace_rows.append((
                    fingerprint,
                    trace_digest(record.trace),
                    record.algorithm,
                    scenario.digest(),
                    stats["granularity"],
                    stats["segments"],
                    stats["events"],
                    len(canonical_trace_json(record.trace).encode("utf-8")),
                    now,
                ))
        try:
            with self._conn:  # one transaction for the whole batch
                self._conn.executemany(
                    "INSERT OR REPLACE INTO runs (fingerprint, algorithm, family, k,"
                    " seed, faults, check_invariants, status, code_version,"
                    " scenario_digest, scenario_key, record, created_at)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    rows,
                )
                if trace_rows:
                    self._conn.executemany(
                        "INSERT OR REPLACE INTO traces (fingerprint, content_hash,"
                        " algorithm, scenario_digest, granularity, segments,"
                        " events, bytes, created_at)"
                        " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        trace_rows,
                    )
        except sqlite3.Error as exc:
            raise StoreError(f"store write failed: {exc}") from None
        return len(rows)

    def import_records(self, records: Sequence[RunRecord]) -> Tuple[int, int]:
        """Ingest legacy artifact records; returns ``(added, skipped)``.

        Imported records are fingerprinted under each algorithm's *current*
        code-version tag (an artifact carries no tag of its own -- importing
        asserts it was produced by the current code).  Fingerprints already
        present are skipped, never overwritten, so an import can't clobber
        records the store computed itself.
        """
        added = skipped = 0
        batch = []
        for record in records:
            scenario = ScenarioSpec.from_dict(record.scenario)
            fingerprint = run_fingerprint(record.algorithm, scenario)
            if self.get(fingerprint) is None:
                batch.append((fingerprint, record))
                added += 1
            else:
                skipped += 1
        self.put_many(batch)
        return added, skipped

    def delete(self, fingerprints: Sequence[str]) -> int:
        """Remove the given fingerprints; returns how many existed.

        Trace index rows ride with their run record: deleting (and hence
        ``gc``-ing) a fingerprint drops its ``traces`` row too.
        """
        keys = [(f,) for f in fingerprints]
        with self._conn:
            self._conn.executemany("DELETE FROM traces WHERE fingerprint = ?", keys)
            cursor = self._conn.executemany(
                "DELETE FROM runs WHERE fingerprint = ?",
                keys,
            )
        return cursor.rowcount if cursor.rowcount >= 0 else 0

    def gc(self, dry_run: bool = False) -> GCStats:
        """Drop records no current fingerprint can ever reach.

        Two kinds of garbage: rows minted under a code-version tag that is no
        longer the algorithm's current tag, and rows of algorithms that left
        the registry entirely.  Everything else stays -- a store legitimately
        holds many sweeps' worth of live records.
        """
        versions = code_versions()
        stale = unregistered = 0
        doomed: List[str] = []
        for fingerprint, algorithm, version in self._conn.execute(
            "SELECT fingerprint, algorithm, code_version FROM runs"
        ):
            current = versions.get(algorithm)
            if current is None:
                unregistered += 1
                doomed.append(fingerprint)
            elif version != current:
                stale += 1
                doomed.append(fingerprint)
        if doomed and not dry_run:
            self.delete(doomed)
        return GCStats(stale_version=stale, unregistered=unregistered)

    # --------------------------------------------------------------- reads
    def get(self, fingerprint: str) -> Optional[RunRecord]:
        """The record stored under a fingerprint, or ``None``."""
        row = self._conn.execute(
            "SELECT record FROM runs WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        if row is None:
            return None
        return record_from_dict(json.loads(row[0]), source=f"store:{self.path}")

    def get_many(self, fingerprints: Sequence[str]) -> Dict[str, RunRecord]:
        """Bulk lookup: ``{fingerprint: record}`` for the fingerprints present."""
        found: Dict[str, RunRecord] = {}
        batch = 500  # stay well under SQLite's bound-parameter limit
        unique = list(dict.fromkeys(fingerprints))
        for start in range(0, len(unique), batch):
            chunk = unique[start : start + batch]
            marks = ",".join("?" for _ in chunk)
            for fingerprint, record in self._conn.execute(
                f"SELECT fingerprint, record FROM runs WHERE fingerprint IN ({marks})",
                chunk,
            ):
                found[fingerprint] = record_from_dict(
                    json.loads(record), source=f"store:{self.path}"
                )
        return found

    def query(
        self,
        algorithms: Optional[Sequence[str]] = None,
        family: Optional[str] = None,
        k: Optional[int] = None,
        seed: Optional[int] = None,
        faults: Optional[Mapping[str, Any]] = None,
        status: Optional[str] = None,
    ) -> List[RunRecord]:
        """Filtered records in a deterministic order.

        All filters are conjunctive; ``faults={}`` selects exactly the
        fault-free records (``faults=None`` means "any profile").  The order
        -- family, k, seed, scenario identity, algorithm -- is fixed so a
        query's artifact bytes are reproducible from the same store state.
        """
        clauses: List[str] = []
        params: List[Any] = []
        if algorithms is not None:
            if not list(algorithms):
                return []  # an explicit empty filter matches nothing
            clauses.append(
                "algorithm IN (%s)" % ",".join("?" for _ in algorithms)
            )
            params.extend(algorithms)
        for column, value in (("family", family), ("k", k), ("seed", seed), ("status", status)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if faults is not None:
            clauses.append("faults = ?")
            params.append(_canonical_faults(faults))
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._conn.execute(
            "SELECT record FROM runs" + where +
            " ORDER BY family, k, seed, scenario_key, algorithm",
            params,
        ).fetchall()
        return [
            record_from_dict(json.loads(row[0]), source=f"store:{self.path}")
            for row in rows
        ]

    def all_records(self) -> List[RunRecord]:
        """Every record, in the same deterministic order as :meth:`query`."""
        return self.query()

    def traces(self, algorithms: Optional[Sequence[str]] = None) -> List[Dict[str, Any]]:
        """The trace index rows, deterministically ordered (for ``repro db traces``).

        Each row summarizes one stored ``repro-trace-v1`` payload: the run
        fingerprint it belongs to, the payload's content hash, and the counts
        the recorder serialized.  The payloads themselves live inline in the
        run records (:meth:`get_trace`).
        """
        clauses = ""
        params: List[Any] = []
        if algorithms is not None:
            if not list(algorithms):
                return []
            clauses = " WHERE algorithm IN (%s)" % ",".join("?" for _ in algorithms)
            params.extend(algorithms)
        rows = self._conn.execute(
            "SELECT fingerprint, content_hash, algorithm, scenario_digest,"
            " granularity, segments, events, bytes FROM traces" + clauses +
            " ORDER BY algorithm, scenario_digest, fingerprint",
            params,
        ).fetchall()
        columns = (
            "fingerprint", "content_hash", "algorithm", "scenario_digest",
            "granularity", "segments", "events", "bytes",
        )
        return [dict(zip(columns, row)) for row in rows]

    def get_trace(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The trace payload stored under a run fingerprint, or ``None``."""
        record = self.get(fingerprint)
        if record is None:
            return None
        return record.trace

    def has(self, fingerprint: str) -> bool:
        """Membership test without decoding the record (the fuzz dedup path)."""
        row = self._conn.execute(
            "SELECT 1 FROM runs WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return row is not None

    def missing(self, fingerprints: Sequence[str]) -> List[str]:
        """The subset of ``fingerprints`` not yet stored, in input order.

        The fuzz campaign's corpus query: a repeated pass over the same seeded
        scenario stream asks this first, so repeat draws execute zero jobs.
        """
        present: set = set()
        batch = 500  # stay well under SQLite's bound-parameter limit
        unique = list(dict.fromkeys(fingerprints))
        for start in range(0, len(unique), batch):
            chunk = unique[start : start + batch]
            marks = ",".join("?" for _ in chunk)
            for (fingerprint,) in self._conn.execute(
                f"SELECT fingerprint FROM runs WHERE fingerprint IN ({marks})",
                chunk,
            ):
                present.add(fingerprint)
        return [f for f in fingerprints if f not in present]

    def count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def stats(self) -> Dict[str, Any]:
        """Aggregate shape of the store (for ``repro db stats``)."""
        per_algorithm: Dict[str, Dict[str, int]] = {}
        for algorithm, version, n in self._conn.execute(
            "SELECT algorithm, code_version, COUNT(*) FROM runs"
            " GROUP BY algorithm, code_version ORDER BY algorithm, code_version"
        ):
            per_algorithm.setdefault(algorithm, {})[version] = n
        gc_preview = self.gc(dry_run=True)
        return {
            "path": self.path,
            "records": self.count(),
            "per_algorithm": per_algorithm,
            "traces": self._conn.execute("SELECT COUNT(*) FROM traces").fetchone()[0],
            "collectable": gc_preview.total,
        }
