"""Ambient fault/invariant instrumentation for the simulation engines.

The algorithm drivers construct their engines internally (sometimes more than
one: the rooted SYNC driver builds a second engine for its small-``k``
fallback, the general drivers share one engine across DFS groups).  Threading
fault and invariant configuration through every driver signature would touch
every algorithm for what is purely simulator-level concern, so the runner
instead establishes an *instrumentation context*: a scoped configuration that
any engine constructed inside the ``with`` block picks up automatically.

    config = InstrumentationConfig(faults=FaultSpec(crash=0.1), fault_seed=7,
                                   check_invariants=True)
    with instrument(config):
        result = spec.run(graph, placements, adversary, seed)
    print(config.checkers[-1].summary())

Engines may also be given explicit ``fault_injector`` / ``invariant_checker``
arguments, which take precedence over the ambient context (used by unit
tests).  The context is plain module state, not a ``contextvar``: engines and
drivers are single-threaded within a process, and sweep workers are separate
processes that each establish their own context.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.sim.faults import FaultInjector, FaultSchedule, FaultSpec
from repro.sim.invariants import InvariantChecker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.agent import Agent
    from repro.graph.port_graph import PortLabeledGraph
    from repro.sim.kernel import ExecutionKernel
    from repro.sim.trace import TraceRecorder

__all__ = ["InstrumentationConfig", "instrument", "current"]


@dataclass
class InstrumentationConfig:
    """What to inject and what to verify for engines built under the context.

    Attributes
    ----------
    faults, fault_seed:
        Fault profile and the seed its schedule derives from (``None`` /
        inactive profile disables injection).
    fault_schedule:
        Explicit :class:`~repro.sim.faults.FaultSchedule` overriding the
        seeded draw -- the conformance suite pins exactly which agent fails
        when, so the SYNC and ASYNC runs of one scenario face the *same*
        adversary.  Takes precedence over ``faults``.
    record_fault_observations:
        When True every injector keeps its ``(agent_id, time)`` blocked
        observations (see :attr:`FaultInjector.blocked_observations`).
    check_invariants, check_every, strict:
        Invariant-checker construction parameters.
    backend:
        Kernel-backend name (:mod:`repro.sim.backends`) every engine built
        under the context uses for its world state; ``None`` keeps the
        ``"reference"`` default.  This is how ``--backend`` reaches engines
        that algorithm drivers construct internally, exactly as faults do.
    trace:
        Attach a :class:`~repro.sim.trace.TraceRecorder` to every kernel built
        under the context; the run's recorders serialize into one
        ``repro-trace-v1`` payload (see :func:`repro.sim.trace.trace_payload`).
    injectors, checkers, recorders:
        Every instance handed to an engine while the context was active, in
        construction order.  The caller reads counts from these even when the
        run aborts mid-way (fault sweeps *expect* aborted runs).
    """

    faults: Optional[FaultSpec] = None
    fault_seed: int = 0
    fault_schedule: Optional[FaultSchedule] = None
    record_fault_observations: bool = False
    check_invariants: bool = False
    check_every: int = 1
    strict: bool = False
    backend: Optional[str] = None
    trace: bool = False
    injectors: List[FaultInjector] = field(default_factory=list)
    checkers: List[InvariantChecker] = field(default_factory=list)
    recorders: List["TraceRecorder"] = field(default_factory=list)

    def make_injector(self, agent_ids: Sequence[int]) -> Optional[FaultInjector]:
        if self.fault_schedule is not None:
            injector = FaultInjector.from_schedule(
                agent_ids,
                crash_at=self.fault_schedule.crash_at,
                freeze_windows=self.fault_schedule.freeze_windows,
            )
        elif self.faults is None or not self.faults.is_active:
            return None
        else:
            injector = FaultInjector(self.faults, agent_ids, seed=self.fault_seed)
        injector.record_observations = self.record_fault_observations
        self.injectors.append(injector)
        return injector

    def make_checker(
        self, graph: "PortLabeledGraph", agents: Mapping[int, "Agent"]
    ) -> Optional[InvariantChecker]:
        if not self.check_invariants:
            return None
        checker = InvariantChecker(check_every=self.check_every, strict=self.strict)
        checker.attach(graph, agents)
        self.checkers.append(checker)
        return checker

    def make_recorder(self, kernel: "ExecutionKernel") -> "TraceRecorder":
        """Build, register, and return a trace recorder for ``kernel``.

        Imported lazily: the trace module is pure observation and must never
        tax engine construction when tracing is off (the kernel only calls
        this behind ``config.trace``).
        """
        from repro.sim.trace import TraceRecorder

        recorder = TraceRecorder(kernel)
        self.recorders.append(recorder)
        return recorder

    @property
    def active(self) -> bool:
        return (
            self.check_invariants
            or self.trace
            or self.fault_schedule is not None
            or (self.faults is not None and self.faults.is_active)
        )

    # ------------------------------------------------------------- aggregates
    def fault_events(self) -> int:
        """World-level fault events across every engine run under this config."""
        return sum(injector.total_events for injector in self.injectors)

    def blocked_observations(self) -> List[Tuple[int, int]]:
        """All ``(agent_id, time)`` blocked observations, in injector order.

        Empty unless ``record_fault_observations`` was set before the run.
        """
        merged: List[Tuple[int, int]] = []
        for injector in self.injectors:
            merged.extend(injector.blocked_observations)
        return merged

    def blocked_agents(self) -> Set[int]:
        """Ids of every agent observed fault-blocked at least once."""
        return {agent_id for agent_id, _time in self.blocked_observations()}

    def violation_count(self) -> int:
        """Invariant violations across every engine run under this config."""
        return sum(checker.violation_count for checker in self.checkers)


_current: Optional[InstrumentationConfig] = None


def current() -> Optional[InstrumentationConfig]:
    """The active instrumentation context, if any (engines call this)."""
    return _current


@contextmanager
def instrument(config: Optional[InstrumentationConfig]) -> Iterator[Optional[InstrumentationConfig]]:
    """Scope ``config`` as the ambient instrumentation (``None`` is a no-op)."""
    global _current
    previous = _current
    _current = config
    try:
        yield config
    finally:
        _current = previous
