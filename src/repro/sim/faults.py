"""Fault models for the simulation engines (adversarial world dynamics).

The paper's algorithms are analysed in a static, fault-free world; this module
supplies the complementary *stress* axis: seeded, reproducible fault schedules
that the engines apply while an algorithm runs, so sweeps can probe how far
each algorithm's guarantees survive outside its model.  Three fault kinds are
supported, mirroring the drop/freeze harness of the CCMModel stress tests and
the dynamic-graph literature:

* **crash-stop** -- an agent halts forever at a scheduled time: it stays on its
  node (still observable by co-located agents) but never moves or executes
  another cycle;
* **freeze/resume** -- an agent is inert during a scheduled window and resumes
  afterwards, modelling arbitrarily long (but finite) delays beyond what the
  activation adversary alone can produce;
* **edge churn** -- a scheduled rewiring of the graph that removes a non-bridge
  edge and inserts a fresh one, preserving connectivity and the port-bijection
  contract (see :meth:`repro.graph.port_graph.PortLabeledGraph.rewire`) while
  invalidating any port a settled agent may have memorised.

A :class:`FaultSpec` is plain JSON-safe configuration (what faults, with what
probability, over what horizon); a :class:`FaultInjector` is the runtime object
owned by an engine.  The entire schedule is precomputed from a seed at
construction time, so fault timing is a pure function of ``(spec, seed)`` --
independent of scheduling, worker count, or dict iteration order -- which keeps
sweep artifacts byte-deterministic.

Time is the engine's native unit: rounds for :class:`~repro.sim.sync_engine.
SyncEngine`, activations for :class:`~repro.sim.async_engine.AsyncEngine`.

Fault-semantics v2 -- the per-agent contract
--------------------------------------------
Both engines consume the same per-agent :class:`AgentFaultView` (the
adversary/scheduler interface of Aspnes' lecture-notes formulation): a
crashed or frozen agent is *blocked for its whole CCM cycle*, which entails

* ``blocked_for_cycle`` -- the agent executes no Communicate/Compute step this
  tick: it cannot settle, cannot be settled by a co-located instructing agent,
  and is skipped by the engines' co-location (communication) queries;
* ``blocked_for_move`` -- the agent crosses no edge this tick;
* ``answers_probes`` -- whether a settled agent is visible to the probe
  primitives; blocked agents do **not** answer, so a probe of their node
  observes "no settler" exactly as with a crashed process in the crash-stop
  model.

The agent's *body* remains on its node (``positions()`` and physical occupancy
are unaffected); only its participation in the protocol stops.  The
:class:`~repro.sim.sync_engine.SyncEngine` used to filter moves only -- the v2
contract makes it skip the entire cycle, matching what
:meth:`~repro.sim.async_engine.AsyncEngine._activate` always did.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "FaultSpec",
    "FaultEvent",
    "FaultSchedule",
    "AgentFaultView",
    "FaultInjector",
    "parse_faults",
]

#: Keys accepted in the dict form of a fault profile.
_SPEC_KEYS = ("crash", "freeze", "freeze_duration", "churn", "horizon")


@dataclass(frozen=True)
class FaultSpec:
    """A fault profile: which faults occur, how often, over what horizon.

    Attributes
    ----------
    crash:
        Probability that each agent crash-stops at a uniformly random time in
        ``[0, horizon)``.
    freeze:
        Probability that each agent gets one freeze window starting at a
        uniformly random time in ``[0, horizon)``.
    freeze_duration:
        Length of each freeze window, in engine ticks.
    churn:
        Per-tick probability of a rewiring event while ``t < horizon``.
    horizon:
        Number of initial engine ticks during which faults may start.  Faults
        scheduled late in a run that ends early simply never fire.
    """

    crash: float = 0.0
    freeze: float = 0.0
    freeze_duration: int = 40
    churn: float = 0.0
    # Small enough that fault times land inside typical SYNC runs on
    # test-scale graphs (a few hundred rounds), early enough to matter for
    # ASYNC runs (tens of thousands of activations).
    horizon: int = 240

    def __post_init__(self) -> None:
        # Coerce to the canonical numeric types first: profiles written as
        # ints in spec files ({"crash": 1}) must compare -- and serialize --
        # identically to their float twins, or equal scenarios would get
        # different fault seeds and store fingerprints.
        for name in ("crash", "freeze", "churn"):
            object.__setattr__(self, name, float(getattr(self, name)))
        for name in ("freeze_duration", "horizon"):
            object.__setattr__(self, name, int(getattr(self, name)))
        for name in ("crash", "freeze", "churn"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"fault probability {name}={value!r} must be in [0, 1]")
        if self.freeze_duration < 1:
            raise ValueError("freeze_duration must be >= 1")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")

    @property
    def is_active(self) -> bool:
        """True when the profile can produce at least one fault."""
        return self.crash > 0 or self.freeze > 0 or self.churn > 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (only non-default entries, canonical for specs)."""
        default = FaultSpec()
        return {
            key: getattr(self, key)
            for key in _SPEC_KEYS
            if getattr(self, key) != getattr(default, key)
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        unknown = set(data) - set(_SPEC_KEYS)
        if unknown:
            raise ValueError(
                f"unknown fault fields {sorted(unknown)}; known: {list(_SPEC_KEYS)}"
            )
        return cls(**dict(data))

    @classmethod
    def from_string(cls, text: str) -> "FaultSpec":
        """Parse the CLI shorthand, e.g. ``"crash:0.1,freeze:0.2:40,churn:0.02"``.

        ``"none"`` (or an empty string) is the fault-free profile.  ``freeze``
        takes an optional third field, the window length; ``horizon:N`` adjusts
        the scheduling horizon.
        """
        text = text.strip()
        if text in ("", "none", "off"):
            return cls()
        fields: Dict[str, Any] = {}
        seen: set[str] = set()
        for clause in text.split(","):
            parts = clause.strip().split(":")
            name = parts[0].strip()
            if name in seen:
                # Last-wins would silently drop the earlier clause -- a typo'd
                # profile like "crash:0.1,crash:0.9" must not fuzz half-blind.
                raise ValueError(
                    f"duplicate fault clause {name!r}: each of crash, freeze, "
                    "churn, and horizon may appear at most once"
                )
            seen.add(name)
            if name == "crash" and len(parts) == 2:
                fields["crash"] = _prob(clause, parts[1])
            elif name == "freeze" and len(parts) in (2, 3):
                fields["freeze"] = _prob(clause, parts[1])
                if len(parts) == 3:
                    fields["freeze_duration"] = _positive_int(clause, parts[2])
            elif name == "churn" and len(parts) == 2:
                fields["churn"] = _prob(clause, parts[1])
            elif name == "horizon" and len(parts) == 2:
                fields["horizon"] = _positive_int(clause, parts[1])
            else:
                raise ValueError(
                    f"malformed fault clause {clause.strip()!r}; expected "
                    "crash:P, freeze:P[:DURATION], churn:P, or horizon:N"
                )
        return cls.from_dict(fields)


def _prob(clause: str, raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"fault clause {clause.strip()!r}: {raw!r} is not a number") from None
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"fault clause {clause.strip()!r}: probability must be in [0, 1]")
    return value


def _positive_int(clause: str, raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"fault clause {clause.strip()!r}: {raw!r} is not an integer") from None
    if value < 1:
        raise ValueError(f"fault clause {clause.strip()!r}: value must be >= 1")
    return value


def parse_faults(text: str) -> Dict[str, Any]:
    """CLI helper: shorthand string -> JSON-safe profile dict (may be empty)."""
    return FaultSpec.from_string(text).to_dict()


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired during a run."""

    time: int
    kind: str  # "crash" | "freeze" | "thaw" | "churn" | "churn_skipped"
    detail: str


@dataclass(frozen=True)
class AgentFaultView:
    """What one agent may do at one tick -- the engine-facing fault contract.

    Both :meth:`~repro.sim.sync_engine.SyncEngine.step` and
    :meth:`~repro.sim.async_engine.AsyncEngine._activate` consume this view and
    nothing else, so the two engines cannot drift apart in what a crashed or
    frozen agent is allowed to do.  For the crash-stop and freeze models the
    three capabilities move together (a blocked cycle blocks the move and mutes
    probe answers); they are kept separate so future fault kinds (e.g. a
    mobility fault that leaves communication intact) slot into the same
    contract without touching the engines.
    """

    agent_id: int
    blocked_for_cycle: bool = False
    blocked_for_move: bool = False
    answers_probes: bool = True

    @property
    def healthy(self) -> bool:
        """True when no capability is restricted this tick."""
        return not self.blocked_for_cycle and not self.blocked_for_move and self.answers_probes


@dataclass(frozen=True)
class FaultSchedule:
    """An explicit (non-probabilistic) crash/freeze schedule.

    Used by tests and the conformance suite to pin *exactly* which agent fails
    when, instead of deriving the schedule from a seed: ``crash_at`` maps agent
    id to its crash-stop time, ``freeze_windows`` maps agent id to one
    ``[start, end)`` inert window.
    """

    crash_at: Mapping[int, int] = field(default_factory=dict)
    freeze_windows: Mapping[int, Tuple[int, int]] = field(default_factory=dict)


class FaultInjector:
    """Applies a precomputed fault schedule to a running engine.

    The engine calls :meth:`begin_tick` once per tick (before executing agent
    actions), reads :meth:`blocked_cycle_agents` / :meth:`view` to decide which
    cycles to skip, and reports every skipped cycle via :meth:`record_blocked`.
    All randomness is consumed at construction, so two injectors built from the
    same ``(spec, agent_ids, seed)`` behave identically regardless of how the
    run unfolds -- except churn targets, which are drawn from a dedicated
    stream at event time because they depend on the graph's current shape.

    The whole schedule is compiled into sorted event cursors up front
    (:meth:`_compile`), so :meth:`begin_tick` is O(1) amortized over a run --
    ASYNC executions make hundreds of thousands of ticks against a ~240-tick
    fault horizon, and the per-tick rescan of every crash/freeze entry this
    replaces dominated their fault overhead.
    """

    def __init__(self, spec: FaultSpec, agent_ids: Sequence[int], seed: int) -> None:
        self.spec = spec
        rng = random.Random(seed)
        self.crash_at: Dict[int, int] = {}
        self.freeze_window: Dict[int, Tuple[int, int]] = {}
        # Iterate ids in sorted order so the schedule is independent of the
        # caller's container ordering.
        for agent_id in sorted(agent_ids):
            if spec.crash > 0 and rng.random() < spec.crash:
                self.crash_at[agent_id] = rng.randrange(spec.horizon)
            if spec.freeze > 0 and rng.random() < spec.freeze:
                start = rng.randrange(spec.horizon)
                self.freeze_window[agent_id] = (start, start + spec.freeze_duration)
        self.churn_times: List[int] = (
            [t for t in range(spec.horizon) if rng.random() < spec.churn]
            if spec.churn > 0
            else []
        )
        self._churn_rng = random.Random(rng.getrandbits(64))
        self.events: List[FaultEvent] = []
        self.counts: Dict[str, int] = {
            "crash": 0,
            "freeze": 0,
            "churn": 0,
            "churn_skipped": 0,
            "blocked": 0,
        }
        #: When True, every skipped cycle is kept as an ``(agent_id, time)``
        #: observation in :attr:`blocked_observations` (off by default: long
        #: faulty ASYNC runs would otherwise accumulate one tuple per skipped
        #: activation).  The conformance suite flips this on.
        self.record_observations = False
        self.blocked_observations: List[Tuple[int, int]] = []
        self._compile()

    @classmethod
    def from_schedule(
        cls,
        agent_ids: Sequence[int],
        crash_at: Optional[Mapping[int, int]] = None,
        freeze_windows: Optional[Mapping[int, Tuple[int, int]]] = None,
    ) -> "FaultInjector":
        """Build an injector from an explicit :class:`FaultSchedule`.

        ``agent_ids`` plays the same role as in the seeded constructor (the
        population the injector may block); scheduling entries for unknown
        agents are rejected so a typo cannot silently schedule a no-op fault.
        """
        injector = cls(FaultSpec(), agent_ids, seed=0)  # inactive spec: no draws
        known = set(agent_ids)
        for agent_id, when in dict(crash_at or {}).items():
            if agent_id not in known:
                raise ValueError(f"crash schedule names unknown agent {agent_id}")
            if when < 0:
                raise ValueError(f"crash time for agent {agent_id} must be >= 0")
            injector.crash_at[agent_id] = int(when)
        for agent_id, (start, end) in dict(freeze_windows or {}).items():
            if agent_id not in known:
                raise ValueError(f"freeze schedule names unknown agent {agent_id}")
            if not (0 <= start < end):
                raise ValueError(
                    f"freeze window for agent {agent_id} must satisfy 0 <= start < end"
                )
            injector.freeze_window[agent_id] = (int(start), int(end))
        injector._compile()
        return injector

    # ------------------------------------------------------------- compilation
    def _compile(self) -> None:
        """Build the sorted event cursors from ``crash_at``/``freeze_window``.

        Two streams: *announcements* (one FaultEvent + counter bump per fault,
        at its start time) and *block transitions* (+1 at crash/freeze start,
        -1 at thaw) maintaining the currently-blocked set.  Both are consumed
        by a monotone cursor in :meth:`_advance`; ``is_blocked``/:meth:`view`
        stay pure point queries over the schedule dicts.
        """
        # (time, kind_rank, agent_id, freeze_end): rank keeps the legacy
        # same-tick order (crashes before freezes, each by agent id).
        announcements: List[Tuple[int, int, int, int]] = []
        transitions: List[Tuple[int, int, int]] = []  # (time, delta, agent_id)
        for agent_id, when in self.crash_at.items():
            announcements.append((when, 0, agent_id, -1))
            transitions.append((when, 1, agent_id))
        for agent_id, (start, end) in self.freeze_window.items():
            announcements.append((start, 1, agent_id, end))
            transitions.append((start, 1, agent_id))
            transitions.append((end, -1, agent_id))
        self._announcements = sorted(announcements)
        self._transitions = sorted(transitions)
        self._next_announcement = 0
        self._next_transition = 0
        self._next_churn = 0
        self._block_depth: Dict[int, int] = {}
        self._blocked_now: set[int] = set()
        self._clock = -1

    # ------------------------------------------------------------------ ticks
    def _advance(self, time: int) -> None:
        """Advance the event cursors to ``time`` (monotone, O(1) amortized)."""
        if time <= self._clock:
            return
        self._clock = time
        announcements = self._announcements
        index = self._next_announcement
        while index < len(announcements) and announcements[index][0] <= time:
            when, kind_rank, agent_id, end = announcements[index]
            index += 1
            if kind_rank == 0:
                self.counts["crash"] += 1
                self.events.append(FaultEvent(time, "crash", f"agent {agent_id} crash-stops"))
            else:
                self.counts["freeze"] += 1
                self.events.append(
                    FaultEvent(time, "freeze", f"agent {agent_id} frozen until t={end}")
                )
        self._next_announcement = index
        transitions = self._transitions
        index = self._next_transition
        while index < len(transitions) and transitions[index][0] <= time:
            _when, delta, agent_id = transitions[index]
            index += 1
            depth = self._block_depth.get(agent_id, 0) + delta
            self._block_depth[agent_id] = depth
            if depth > 0:
                self._blocked_now.add(agent_id)
            else:
                self._blocked_now.discard(agent_id)
        self._next_transition = index

    def begin_tick(self, time: int, engine: Any) -> None:
        """Apply all world-level events due at ``time`` (churn, fault logging)."""
        self._advance(time)
        while self._next_churn < len(self.churn_times) and self.churn_times[self._next_churn] <= time:
            self._next_churn += 1
            detail = self._apply_churn(engine.graph)
            if detail is not None:
                self.counts["churn"] += 1
                self.events.append(FaultEvent(time, "churn", detail))
            else:
                # The schedule fired but the world offered no legal rewiring
                # (e.g. a 2-node graph: its one edge is a bridge and no edge is
                # missing).  Record the skip instead of dropping the event, so
                # the fault-event count stays a function of the schedule alone
                # -- two engines replaying the same schedule must agree on it
                # even when their graphs degenerate at different ticks.
                self.counts["churn_skipped"] += 1
                self.events.append(
                    FaultEvent(time, "churn_skipped", "no legal rewiring; churn skipped")
                )

    def blocked_cycle_agents(self, time: int) -> frozenset[int]:
        """Agents whose whole CCM cycle is suppressed at ``time``.

        Advances the cursors (so it may be called before or after
        :meth:`begin_tick` for the same tick) and returns a snapshot of the
        currently-blocked set.  The cursor clock is monotone, so historical
        queries are rejected rather than mislabeled -- use the pure
        :meth:`is_blocked` point query for arbitrary times.
        """
        if time < self._clock:
            raise ValueError(
                f"blocked_cycle_agents({time}) after the cursor advanced to "
                f"t={self._clock}; use is_blocked() for past-time queries"
            )
        self._advance(time)
        return frozenset(self._blocked_now)

    def view(self, agent_id: int, time: int) -> AgentFaultView:
        """The :class:`AgentFaultView` for one agent at one tick (pure query)."""
        blocked = self.is_blocked(agent_id, time)
        return AgentFaultView(
            agent_id=agent_id,
            blocked_for_cycle=blocked,
            blocked_for_move=blocked,
            answers_probes=not blocked,
        )

    def is_blocked(self, agent_id: int, time: int) -> bool:
        """True when the agent may not act at ``time`` (crashed or frozen).

        A pure point query over the precomputed schedule -- unlike the cursor
        state it may be asked about any time, in any order.
        """
        when = self.crash_at.get(agent_id)
        if when is not None and when <= time:
            return True
        window = self.freeze_window.get(agent_id)
        if window is not None and window[0] <= time < window[1]:
            return True
        return False

    def record_blocked(self, agent_id: int, time: int) -> None:
        """Count one suppressed CCM cycle (both engines report through here)."""
        self.counts["blocked"] += 1
        if self.record_observations:
            self.blocked_observations.append((agent_id, time))

    # ------------------------------------------------------------------ churn
    def _apply_churn(self, graph: Any) -> Optional[str]:
        """One rewiring event: remove a non-bridge edge, add a fresh edge.

        Returns a human-readable description, or ``None`` when the graph offers
        no legal rewiring (e.g. a tree that is also complete -- impossible for
        n >= 3, but tiny graphs can lack either half).  Each half is optional:
        trees only gain an edge, complete graphs only lose one.
        """
        rng = self._churn_rng
        removable = graph.removable_edges()
        missing = graph.missing_edges()
        remove = rng.choice(sorted(removable)) if removable else None
        add = rng.choice(sorted(missing)) if missing else None
        if remove is None and add is None:
            return None
        graph.rewire(remove=remove, add=add)
        return f"rewire -{remove} +{add}"

    # ---------------------------------------------------------------- reports
    @property
    def total_events(self) -> int:
        """World-level fault events (crashes + freezes + churn, including
        skipped churn -- the schedule fired either way); suppressed agent
        actions are reported separately as ``fault_blocked``."""
        return (
            self.counts["crash"]
            + self.counts["freeze"]
            + self.counts["churn"]
            + self.counts["churn_skipped"]
        )

    def metrics_extra(self) -> Dict[str, float]:
        """Counters folded into :class:`~repro.sim.metrics.RunMetrics` extras."""
        extras = {
            "fault_events": float(self.total_events),
            "fault_crash": float(self.counts["crash"]),
            "fault_freeze": float(self.counts["freeze"]),
            "fault_churn": float(self.counts["churn"]),
            "fault_blocked": float(self.counts["blocked"]),
        }
        # Emitted only when a skip happened: degenerate worlds are the rare
        # case, and an unconditional zero would change the bytes of every
        # existing faulty record and store row.
        if self.counts["churn_skipped"]:
            extras["fault_churn_skipped"] = float(self.counts["churn_skipped"])
        return extras
