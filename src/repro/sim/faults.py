"""Fault models for the simulation engines (adversarial world dynamics).

The paper's algorithms are analysed in a static, fault-free world; this module
supplies the complementary *stress* axis: seeded, reproducible fault schedules
that the engines apply while an algorithm runs, so sweeps can probe how far
each algorithm's guarantees survive outside its model.  Three fault kinds are
supported, mirroring the drop/freeze harness of the CCMModel stress tests and
the dynamic-graph literature:

* **crash-stop** -- an agent halts forever at a scheduled time: it stays on its
  node (still observable by co-located agents) but never moves or executes
  another cycle;
* **freeze/resume** -- an agent is inert during a scheduled window and resumes
  afterwards, modelling arbitrarily long (but finite) delays beyond what the
  activation adversary alone can produce;
* **edge churn** -- a scheduled rewiring of the graph that removes a non-bridge
  edge and inserts a fresh one, preserving connectivity and the port-bijection
  contract (see :meth:`repro.graph.port_graph.PortLabeledGraph.rewire`) while
  invalidating any port a settled agent may have memorised.

A :class:`FaultSpec` is plain JSON-safe configuration (what faults, with what
probability, over what horizon); a :class:`FaultInjector` is the runtime object
owned by an engine.  The entire schedule is precomputed from a seed at
construction time, so fault timing is a pure function of ``(spec, seed)`` --
independent of scheduling, worker count, or dict iteration order -- which keeps
sweep artifacts byte-deterministic.

Time is the engine's native unit: rounds for :class:`~repro.sim.sync_engine.
SyncEngine`, activations for :class:`~repro.sim.async_engine.AsyncEngine`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["FaultSpec", "FaultEvent", "FaultInjector", "parse_faults"]

#: Keys accepted in the dict form of a fault profile.
_SPEC_KEYS = ("crash", "freeze", "freeze_duration", "churn", "horizon")


@dataclass(frozen=True)
class FaultSpec:
    """A fault profile: which faults occur, how often, over what horizon.

    Attributes
    ----------
    crash:
        Probability that each agent crash-stops at a uniformly random time in
        ``[0, horizon)``.
    freeze:
        Probability that each agent gets one freeze window starting at a
        uniformly random time in ``[0, horizon)``.
    freeze_duration:
        Length of each freeze window, in engine ticks.
    churn:
        Per-tick probability of a rewiring event while ``t < horizon``.
    horizon:
        Number of initial engine ticks during which faults may start.  Faults
        scheduled late in a run that ends early simply never fire.
    """

    crash: float = 0.0
    freeze: float = 0.0
    freeze_duration: int = 40
    churn: float = 0.0
    # Small enough that fault times land inside typical SYNC runs on
    # test-scale graphs (a few hundred rounds), early enough to matter for
    # ASYNC runs (tens of thousands of activations).
    horizon: int = 240

    def __post_init__(self) -> None:
        # Coerce to the canonical numeric types first: profiles written as
        # ints in spec files ({"crash": 1}) must compare -- and serialize --
        # identically to their float twins, or equal scenarios would get
        # different fault seeds and store fingerprints.
        for name in ("crash", "freeze", "churn"):
            object.__setattr__(self, name, float(getattr(self, name)))
        for name in ("freeze_duration", "horizon"):
            object.__setattr__(self, name, int(getattr(self, name)))
        for name in ("crash", "freeze", "churn"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"fault probability {name}={value!r} must be in [0, 1]")
        if self.freeze_duration < 1:
            raise ValueError("freeze_duration must be >= 1")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")

    @property
    def is_active(self) -> bool:
        """True when the profile can produce at least one fault."""
        return self.crash > 0 or self.freeze > 0 or self.churn > 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (only non-default entries, canonical for specs)."""
        default = FaultSpec()
        return {
            key: getattr(self, key)
            for key in _SPEC_KEYS
            if getattr(self, key) != getattr(default, key)
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        unknown = set(data) - set(_SPEC_KEYS)
        if unknown:
            raise ValueError(
                f"unknown fault fields {sorted(unknown)}; known: {list(_SPEC_KEYS)}"
            )
        return cls(**dict(data))

    @classmethod
    def from_string(cls, text: str) -> "FaultSpec":
        """Parse the CLI shorthand, e.g. ``"crash:0.1,freeze:0.2:40,churn:0.02"``.

        ``"none"`` (or an empty string) is the fault-free profile.  ``freeze``
        takes an optional third field, the window length; ``horizon:N`` adjusts
        the scheduling horizon.
        """
        text = text.strip()
        if text in ("", "none", "off"):
            return cls()
        fields: Dict[str, Any] = {}
        for clause in text.split(","):
            parts = clause.strip().split(":")
            name = parts[0].strip()
            if name == "crash" and len(parts) == 2:
                fields["crash"] = _prob(clause, parts[1])
            elif name == "freeze" and len(parts) in (2, 3):
                fields["freeze"] = _prob(clause, parts[1])
                if len(parts) == 3:
                    fields["freeze_duration"] = _positive_int(clause, parts[2])
            elif name == "churn" and len(parts) == 2:
                fields["churn"] = _prob(clause, parts[1])
            elif name == "horizon" and len(parts) == 2:
                fields["horizon"] = _positive_int(clause, parts[1])
            else:
                raise ValueError(
                    f"malformed fault clause {clause.strip()!r}; expected "
                    "crash:P, freeze:P[:DURATION], churn:P, or horizon:N"
                )
        return cls.from_dict(fields)


def _prob(clause: str, raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"fault clause {clause.strip()!r}: {raw!r} is not a number") from None
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"fault clause {clause.strip()!r}: probability must be in [0, 1]")
    return value


def _positive_int(clause: str, raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"fault clause {clause.strip()!r}: {raw!r} is not an integer") from None
    if value < 1:
        raise ValueError(f"fault clause {clause.strip()!r}: value must be >= 1")
    return value


def parse_faults(text: str) -> Dict[str, Any]:
    """CLI helper: shorthand string -> JSON-safe profile dict (may be empty)."""
    return FaultSpec.from_string(text).to_dict()


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired during a run."""

    time: int
    kind: str  # "crash" | "freeze" | "thaw" | "churn"
    detail: str


class FaultInjector:
    """Applies a precomputed fault schedule to a running engine.

    The engine calls :meth:`begin_tick` once per tick (before executing agent
    actions) and :meth:`is_blocked` per agent action.  All randomness is
    consumed at construction, so two injectors built from the same
    ``(spec, agent_ids, seed)`` behave identically regardless of how the run
    unfolds -- except churn targets, which are drawn from a dedicated stream at
    event time because they depend on the graph's current shape.
    """

    def __init__(self, spec: FaultSpec, agent_ids: Sequence[int], seed: int) -> None:
        self.spec = spec
        rng = random.Random(seed)
        self.crash_at: Dict[int, int] = {}
        self.freeze_window: Dict[int, Tuple[int, int]] = {}
        # Iterate ids in sorted order so the schedule is independent of the
        # caller's container ordering.
        for agent_id in sorted(agent_ids):
            if spec.crash > 0 and rng.random() < spec.crash:
                self.crash_at[agent_id] = rng.randrange(spec.horizon)
            if spec.freeze > 0 and rng.random() < spec.freeze:
                start = rng.randrange(spec.horizon)
                self.freeze_window[agent_id] = (start, start + spec.freeze_duration)
        self.churn_times: List[int] = (
            [t for t in range(spec.horizon) if rng.random() < spec.churn]
            if spec.churn > 0
            else []
        )
        self._churn_rng = random.Random(rng.getrandbits(64))
        self._next_churn = 0
        self._crash_announced: set[int] = set()
        self._freeze_announced: set[int] = set()
        self.events: List[FaultEvent] = []
        self.counts: Dict[str, int] = {
            "crash": 0,
            "freeze": 0,
            "churn": 0,
            "blocked": 0,
        }

    # ------------------------------------------------------------------ ticks
    def begin_tick(self, time: int, engine: Any) -> None:
        """Apply all world-level events due at ``time`` (churn, fault logging)."""
        for agent_id, when in self.crash_at.items():
            if when <= time and agent_id not in self._crash_announced:
                self._crash_announced.add(agent_id)
                self.counts["crash"] += 1
                self.events.append(FaultEvent(time, "crash", f"agent {agent_id} crash-stops"))
        for agent_id, (start, end) in self.freeze_window.items():
            if start <= time and agent_id not in self._freeze_announced:
                self._freeze_announced.add(agent_id)
                self.counts["freeze"] += 1
                self.events.append(
                    FaultEvent(time, "freeze", f"agent {agent_id} frozen until t={end}")
                )
        while self._next_churn < len(self.churn_times) and self.churn_times[self._next_churn] <= time:
            self._next_churn += 1
            detail = self._apply_churn(engine.graph)
            if detail is not None:
                self.counts["churn"] += 1
                self.events.append(FaultEvent(time, "churn", detail))

    def is_blocked(self, agent_id: int, time: int) -> bool:
        """True when the agent may not act at ``time`` (crashed or frozen)."""
        when = self.crash_at.get(agent_id)
        if when is not None and when <= time:
            return True
        window = self.freeze_window.get(agent_id)
        if window is not None and window[0] <= time < window[1]:
            return True
        return False

    def filter_moves(
        self, moves: Mapping[int, Optional[int]], time: int
    ) -> Dict[int, Optional[int]]:
        """Drop moves of blocked agents, counting each suppression."""
        allowed: Dict[int, Optional[int]] = {}
        for agent_id, port in moves.items():
            if port is not None and self.is_blocked(agent_id, time):
                self.counts["blocked"] += 1
            else:
                allowed[agent_id] = port
        return allowed

    def count_blocked(self) -> None:
        """Record one suppressed activation (ASYNC engine)."""
        self.counts["blocked"] += 1

    # ------------------------------------------------------------------ churn
    def _apply_churn(self, graph: Any) -> Optional[str]:
        """One rewiring event: remove a non-bridge edge, add a fresh edge.

        Returns a human-readable description, or ``None`` when the graph offers
        no legal rewiring (e.g. a tree that is also complete -- impossible for
        n >= 3, but tiny graphs can lack either half).  Each half is optional:
        trees only gain an edge, complete graphs only lose one.
        """
        rng = self._churn_rng
        removable = graph.removable_edges()
        missing = graph.missing_edges()
        remove = rng.choice(sorted(removable)) if removable else None
        add = rng.choice(sorted(missing)) if missing else None
        if remove is None and add is None:
            return None
        graph.rewire(remove=remove, add=add)
        return f"rewire -{remove} +{add}"

    # ---------------------------------------------------------------- reports
    @property
    def total_events(self) -> int:
        """World-level fault events (crashes + freezes + churn); suppressed
        agent actions are reported separately as ``fault_blocked``."""
        return self.counts["crash"] + self.counts["freeze"] + self.counts["churn"]

    def metrics_extra(self) -> Dict[str, float]:
        """Counters folded into :class:`~repro.sim.metrics.RunMetrics` extras."""
        return {
            "fault_events": float(self.total_events),
            "fault_crash": float(self.counts["crash"]),
            "fault_freeze": float(self.counts["freeze"]),
            "fault_churn": float(self.counts["churn"]),
            "fault_blocked": float(self.counts["blocked"]),
        }
