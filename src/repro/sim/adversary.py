"""Pluggable activation schedulers: the synchrony spectrum as a policy family.

Synchrony is a property of the *scheduler*, not of the execution engine:
SYNC's lockstep rounds and ASYNC's adversary-chosen single activations are
two points on one spectrum of activation orders over the same
Communicate–Compute–Move cycle.  Every class here implements the one-method
:class:`Scheduler` contract -- ``next_agent()`` -- and plugs into
:class:`~repro.sim.async_engine.AsyncEngine` unchanged, so any ASYNC-capable
algorithm can be swept across the whole spectrum:

========================  =================================================
scheduler                 synchrony model
========================  =================================================
:class:`LockstepScheduler`       SYNC-like: every agent acts exactly once per
                                 round, in id order (the fully synchronous
                                 extreme of the spectrum).
:class:`SemiSyncScheduler`       SSYNC/FSYNC-style: each round the adversary
                                 picks a non-empty agent subset; exactly the
                                 selected agents act that round.
:class:`BoundedDelayScheduler`   k-bounded delay: arbitrary activation order,
                                 but every agent acts at least once in any
                                 window of ``bound`` consecutive activations.
ASYNC adversaries below          fully asynchronous: fairness only.
========================  =================================================

Subset and single-activation schedules are *sequentialized*: the engine
executes one CCM cycle at a time, so a semi-synchronous round is emitted as
its members' cycles in ascending id order.  For the dispersion algorithms --
which are correct against every fair sequential interleaving -- this is the
standard simulation of the stronger model by the weaker one; the rounds
structure is what the scheduler constrains.

In fully asynchronous runs the only fairness guarantee is that every agent
is activated infinitely often.  Time is measured in *epochs* (the smallest
interval within which every agent completes at least one CCM cycle), so the
scheduler controls how much wall-clock work happens per epoch but not the
epoch count semantics.

The algorithms of the paper must meet their epoch bounds against *every*
adversary.  The benchmarks therefore run each ASYNC algorithm under several
policies:

* :class:`RandomAdversary` -- uniformly random agent each activation,
* :class:`RoundRobinAdversary` -- cyclic order (the "most synchronous" adversary),
* :class:`StarvationAdversary` -- a chosen set of victim agents is activated only
  once for every ``slowdown`` activations of the others, which stretches every
  epoch and stresses the waiting logic of ``Async_Probe``/``Guest_See_Off``,
* :class:`AdaptiveCollisionAdversary` -- *adaptive*: it observes the engine and
  preferentially activates agents at the most crowded node, keeping explorer
  packs together to maximize contention at the DFS head,
* :class:`LazySettlerAdversary` -- adaptive: settled agents (whose replies the
  probing primitives wait for) act only once per ``laziness`` activations of
  the unsettled ones.

Adaptive adversaries remain *fair*: both enforce a bounded-staleness guarantee
(no agent waits more than a fixed number of activations), which is exactly the
fairness assumption the paper's model grants the algorithm.

Every scheduler supports deterministic re-binding: :meth:`Scheduler.bind`
resets all internal state (RNG streams, cursors, round queues), so reusing one
scheduler object across engines replays the same schedule -- a property the
runner's byte-deterministic artifacts rely on.
"""

from __future__ import annotations

import abc
import random
from typing import TYPE_CHECKING, Deque, Dict, Iterable, List, Optional, Sequence, Set

from collections import deque

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.async_engine import AsyncEngine

__all__ = [
    "Scheduler",
    "Adversary",
    "RandomAdversary",
    "RoundRobinAdversary",
    "StarvationAdversary",
    "AdaptiveCollisionAdversary",
    "LazySettlerAdversary",
    "LockstepScheduler",
    "SemiSyncScheduler",
    "BoundedDelayScheduler",
]


class Scheduler(abc.ABC):
    """Chooses which agent performs the next CCM cycle."""

    def bind(self, agent_ids: Sequence[int]) -> None:
        """Called by the engine with the full set of agent ids.

        Re-binding (engine reuse) must reset every piece of internal state, so
        the activation sequence is a pure function of the bound population --
        subclasses that keep RNGs or cursors reset them in their override.
        """
        self.agent_ids = list(agent_ids)

    def attach(self, engine: "AsyncEngine") -> None:
        """Give adaptive adversaries a read-only view of the engine.

        Called by the engine right after :meth:`bind`.  The default is a no-op:
        oblivious adversaries never look at the execution.
        """

    @abc.abstractmethod
    def next_agent(self) -> int:
        """Return the id of the agent to activate next."""


#: Historical name of the scheduler contract.  The classic ASYNC policies keep
#: "Adversary" in their class names (that is the model's vocabulary: the
#: algorithm must beat every adversary); the synchrony-restricted disciplines
#: below use "Scheduler".  The contract is one and the same.
Adversary = Scheduler


class RandomAdversary(Adversary):
    """Uniformly random activations (seeded, reproducible)."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def bind(self, agent_ids: Sequence[int]) -> None:
        super().bind(agent_ids)
        # Restart the stream so a re-bound adversary replays deterministically.
        self._rng = random.Random(self._seed)

    def next_agent(self) -> int:
        return self._rng.choice(self.agent_ids)


class RoundRobinAdversary(Adversary):
    """Cyclic activation order; every epoch is exactly one pass over the agents."""

    def __init__(self) -> None:
        self._index = 0

    def bind(self, agent_ids: Sequence[int]) -> None:
        super().bind(agent_ids)
        self._index = 0

    def next_agent(self) -> int:
        agent = self.agent_ids[self._index % len(self.agent_ids)]
        self._index += 1
        return agent


class StarvationAdversary(Adversary):
    """Starve a set of victims: they act once per ``slowdown`` non-victim passes.

    ``victims`` may be given as explicit agent ids or as ``"largest"`` /
    ``"smallest"`` to starve the agents with the largest (the leader ``a_max``)
    or smallest ids.  Epoch counts are unaffected by *how slow* the victims are
    (an epoch ends only when every agent has acted), so this adversary checks
    that the algorithms' epoch bounds hold when the leader or the helpers are the
    bottleneck.
    """

    def __init__(
        self,
        victims: Iterable[int] | str = "largest",
        num_victims: int = 1,
        slowdown: int = 5,
        seed: int = 0,
    ) -> None:
        if slowdown < 1:
            raise ValueError("slowdown must be >= 1")
        self._victims_spec = victims
        self._num_victims = num_victims
        self._slowdown = slowdown
        self._seed = seed
        self._rng = random.Random(seed)
        self._victims: Set[int] = set()
        self._others: List[int] = []
        self._counter = 0

    def bind(self, agent_ids: Sequence[int]) -> None:
        super().bind(agent_ids)
        self._rng = random.Random(self._seed)
        self._counter = 0
        ordered = sorted(agent_ids)
        if isinstance(self._victims_spec, str):
            if self._victims_spec == "largest":
                self._victims = set(ordered[-self._num_victims:])
            elif self._victims_spec == "smallest":
                self._victims = set(ordered[: self._num_victims])
            else:
                raise ValueError(f"unknown victim spec {self._victims_spec!r}")
        else:
            self._victims = set(self._victims_spec)
        self._others = [a for a in agent_ids if a not in self._victims]
        if not self._others:
            # Everyone is a victim: degenerate to random activations.
            self._others = list(agent_ids)
            self._victims = set()

    def next_agent(self) -> int:
        self._counter += 1
        if self._victims and self._counter % (self._slowdown * max(1, len(self._others))) == 0:
            return self._rng.choice(sorted(self._victims))
        return self._rng.choice(self._others)


class _AdaptiveAdversary(Adversary):
    """Shared machinery for adversaries that observe the engine.

    Maintains a bounded-staleness fairness guarantee: whenever some agent has
    not acted for ``starvation_bound`` activations (default ``8 * k``), it is
    activated next, regardless of the adaptive policy.  Without an attached
    engine (standalone use) the policy degrades to seeded-random choices.
    """

    def __init__(self, seed: int = 0, starvation_bound: Optional[int] = None) -> None:
        self._seed = seed
        self._starvation_bound = starvation_bound
        self._rng = random.Random(seed)
        self._engine: Optional["AsyncEngine"] = None
        self._last_active: Dict[int, int] = {}
        self._clock = 0

    def bind(self, agent_ids: Sequence[int]) -> None:
        super().bind(agent_ids)
        self._rng = random.Random(self._seed)
        self._last_active = {agent_id: 0 for agent_id in self.agent_ids}
        self._clock = 0

    def attach(self, engine: "AsyncEngine") -> None:
        self._engine = engine

    @property
    def bound(self) -> int:
        return self._starvation_bound or 8 * len(self.agent_ids)

    def next_agent(self) -> int:
        self._clock += 1
        stalest = min(self._last_active, key=lambda a: (self._last_active[a], a))
        if self._clock - self._last_active[stalest] > self.bound:
            choice = stalest
        else:
            choice = self._pick()
        self._last_active[choice] = self._clock
        return choice

    def _pick(self) -> int:
        """The adaptive policy; subclasses override."""
        return self._rng.choice(self.agent_ids)


class AdaptiveCollisionAdversary(_AdaptiveAdversary):
    """Activate an agent at the most crowded node ``crowd_bias`` of the time.

    Crowds are where collisions, probe contention, and co-location writes
    happen, so concentrating activations there is the natural adaptive attack
    on the probing primitives.  Ties between equally crowded nodes break to the
    lowest node index, and within the crowd the least recently activated agent
    is chosen -- both deterministic given the seed.
    """

    def __init__(
        self,
        seed: int = 0,
        crowd_bias: float = 0.75,
        starvation_bound: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed, starvation_bound=starvation_bound)
        if not (0.0 <= crowd_bias <= 1.0):
            raise ValueError("crowd_bias must be in [0, 1]")
        self._crowd_bias = crowd_bias

    def _pick(self) -> int:
        engine = self._engine
        if engine is None or self._rng.random() >= self._crowd_bias:
            return self._rng.choice(self.agent_ids)
        occupancy = engine._occupancy
        crowd: Set[int] = max(
            (occupancy[node] for node in range(len(occupancy)) if occupancy[node]),
            key=len,
            default=set(),
        )
        # max() with key=len keeps the first maximum, i.e. the lowest node.
        eligible = [a for a in crowd if a in self._last_active]
        if not eligible:
            return self._rng.choice(self.agent_ids)
        return min(eligible, key=lambda a: (self._last_active[a], a))


class LazySettlerAdversary(_AdaptiveAdversary):
    """Settled agents act only once per ``laziness`` unsettled activations.

    The probing primitives repeatedly wait on *settled* agents (record holders,
    recruited helpers); delaying exactly those agents maximizes the waiting in
    ``WaitUntil`` loops while the unsettled frontier races ahead.
    """

    def __init__(
        self,
        seed: int = 0,
        laziness: int = 4,
        starvation_bound: Optional[int] = None,
    ) -> None:
        super().__init__(seed=seed, starvation_bound=starvation_bound)
        if laziness < 1:
            raise ValueError("laziness must be >= 1")
        self._laziness = laziness

    def _pick(self) -> int:
        engine = self._engine
        if engine is None:
            return self._rng.choice(self.agent_ids)
        settled = [a for a in self.agent_ids if engine.agents[a].settled]
        unsettled = [a for a in self.agent_ids if not engine.agents[a].settled]
        if settled and (not unsettled or self._clock % (self._laziness + 1) == 0):
            return self._rng.choice(settled)
        if unsettled:
            return self._rng.choice(unsettled)
        return self._rng.choice(self.agent_ids)


# ---------------------------------------------------------------------------
# Synchrony-restricted schedulers: the SYNC and semi-synchronous ends of the
# spectrum, expressed as activation policies so ASYNC-capable algorithms run
# under them unchanged.


class LockstepScheduler(RoundRobinAdversary):
    """The fully synchronous end of the spectrum: id-order lockstep rounds.

    Every agent performs exactly one CCM cycle per round, in ascending id
    order -- the sequentialization of a SYNC round.  Behaviorally this is
    :class:`RoundRobinAdversary` (the conformance suite exploits exactly that
    equivalence to pin the kernel's SYNC traces); the distinct name makes the
    scenario axis explicit: ``scheduler="lockstep"`` declares the workload
    synchronous, not merely adversary-friendly.
    """


class SemiSyncScheduler(Scheduler):
    """Semi-synchronous (SSYNC/FSYNC-style) rounds: a chosen subset acts.

    Each round the adversary draws a subset of the agents -- every agent
    independently with probability ``p`` -- and exactly the selected agents
    perform one CCM cycle that round, emitted in ascending id order.  An empty
    draw is re-centred on one random agent so time always advances.

    Fairness is guaranteed by a bounded-staleness rule, mirroring the adaptive
    adversaries: an agent left out of ``max_stale`` consecutive rounds is
    force-included in the next draw, so every agent acts at least once per
    ``max_stale + 1`` rounds -- the paper's "activated infinitely often"
    assumption with an explicit constant.
    """

    def __init__(self, seed: int = 0, p: float = 0.5, max_stale: int = 4) -> None:
        if not (0.0 < p <= 1.0):
            raise ValueError("p must be in (0, 1]")
        if max_stale < 1:
            raise ValueError("max_stale must be >= 1")
        self._seed = seed
        self._p = p
        self._max_stale = max_stale
        self._rng = random.Random(seed)
        self._stale: Dict[int, int] = {}
        self._round_queue: Deque[int] = deque()
        #: Completed + in-progress rounds (draws) so far.
        self.rounds = 0

    def bind(self, agent_ids: Sequence[int]) -> None:
        super().bind(agent_ids)
        self._rng = random.Random(self._seed)
        self._stale = {agent_id: 0 for agent_id in self.agent_ids}
        self._round_queue = deque()
        self.rounds = 0

    def _draw_round(self) -> None:
        # One rng.random() per agent, in sorted order, keeps the draw count --
        # hence the whole stream -- deterministic regardless of staleness.
        selected = [
            agent_id
            for agent_id in sorted(self.agent_ids)
            if self._rng.random() < self._p or self._stale[agent_id] >= self._max_stale
        ]
        if not selected:
            selected = [self._rng.choice(sorted(self.agent_ids))]
        chosen = set(selected)
        for agent_id in self.agent_ids:
            self._stale[agent_id] = 0 if agent_id in chosen else self._stale[agent_id] + 1
        self._round_queue.extend(selected)
        self.rounds += 1

    def next_agent(self) -> int:
        if not self._round_queue:
            self._draw_round()
        return self._round_queue.popleft()


class BoundedDelayScheduler(Scheduler):
    """k-bounded-delay schedules: arbitrary order, bounded inattention.

    The adversary activates agents in any (seeded random) order, but every
    agent is guaranteed to act at least once in any window of ``bound``
    consecutive activations, where ``bound = delay_factor * population``
    (``delay_factor >= 1``, so the bound is always achievable).  This is the
    classic partially synchronous middle of the spectrum: stronger than
    fairness-only ASYNC, weaker than lockstep.

    The guarantee is enforced with per-agent deadlines: agent ``a`` activated
    at tick ``t`` gets deadline ``t + bound``; a tick whose deadline is due
    activates exactly that agent, every other tick is free random choice.
    Deadlines are pairwise distinct by construction (one activation per tick,
    plus staggered initial deadlines), so no two agents ever fall due at once
    and the window property holds unconditionally -- which the Hypothesis
    property suite pins against a sliding-window oracle.
    """

    def __init__(self, seed: int = 0, delay_factor: int = 2) -> None:
        if delay_factor < 1:
            raise ValueError("delay_factor must be >= 1")
        self._seed = seed
        self._delay_factor = delay_factor
        self._rng = random.Random(seed)
        self._clock = 0
        #: Activation window bound (set at bind time; documented attribute).
        self.bound = 0
        self._deadline_of: Dict[int, int] = {}
        self._agent_due_at: Dict[int, int] = {}

    def bind(self, agent_ids: Sequence[int]) -> None:
        super().bind(agent_ids)
        self._rng = random.Random(self._seed)
        self._clock = 0
        n = len(self.agent_ids)
        self.bound = self._delay_factor * n
        # Staggered initial deadlines bound-n+1 .. bound (distinct, all >= 1):
        # the first window already contains every agent at least once.
        ordered = sorted(self.agent_ids)
        self._deadline_of = {
            agent_id: self.bound - (n - 1 - index)
            for index, agent_id in enumerate(ordered)
        }
        self._agent_due_at = {
            deadline: agent_id for agent_id, deadline in self._deadline_of.items()
        }

    def next_agent(self) -> int:
        self._clock += 1
        due = self._agent_due_at.pop(self._clock, None)
        if due is not None:
            choice = due
        else:
            choice = self._rng.choice(self.agent_ids)
            # The randomly chosen agent's old deadline is no longer due.
            del self._agent_due_at[self._deadline_of[choice]]
        deadline = self._clock + self.bound
        self._deadline_of[choice] = deadline
        self._agent_due_at[deadline] = choice
        return choice
