"""Adversarial activation schedulers for the ASYNC setting.

In ASYNC agents become active at arbitrary times; the only fairness guarantee is
that every agent is activated infinitely often.  Time is measured in *epochs*
(the smallest interval within which every agent completes at least one CCM
cycle), so the adversary controls how much wall-clock work happens per epoch but
not the epoch count semantics.

The algorithms of the paper must meet their epoch bounds against *every*
adversary.  The benchmarks therefore run each ASYNC algorithm under several
policies:

* :class:`RandomAdversary` -- uniformly random agent each activation,
* :class:`RoundRobinAdversary` -- cyclic order (the "most synchronous" adversary),
* :class:`StarvationAdversary` -- a chosen set of victim agents is activated only
  once for every ``slowdown`` activations of the others, which stretches every
  epoch and stresses the waiting logic of ``Async_Probe``/``Guest_See_Off``.
"""

from __future__ import annotations

import abc
import random
from typing import Iterable, List, Sequence, Set

__all__ = [
    "Adversary",
    "RandomAdversary",
    "RoundRobinAdversary",
    "StarvationAdversary",
]


class Adversary(abc.ABC):
    """Chooses which agent performs the next CCM cycle."""

    def bind(self, agent_ids: Sequence[int]) -> None:
        """Called once by the engine with the full set of agent ids."""
        self.agent_ids = list(agent_ids)

    @abc.abstractmethod
    def next_agent(self) -> int:
        """Return the id of the agent to activate next."""


class RandomAdversary(Adversary):
    """Uniformly random activations (seeded, reproducible)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def next_agent(self) -> int:
        return self._rng.choice(self.agent_ids)


class RoundRobinAdversary(Adversary):
    """Cyclic activation order; every epoch is exactly one pass over the agents."""

    def __init__(self) -> None:
        self._index = 0

    def next_agent(self) -> int:
        agent = self.agent_ids[self._index % len(self.agent_ids)]
        self._index += 1
        return agent


class StarvationAdversary(Adversary):
    """Starve a set of victims: they act once per ``slowdown`` non-victim passes.

    ``victims`` may be given as explicit agent ids or as ``"largest"`` /
    ``"smallest"`` to starve the agents with the largest (the leader ``a_max``)
    or smallest ids.  Epoch counts are unaffected by *how slow* the victims are
    (an epoch ends only when every agent has acted), so this adversary checks
    that the algorithms' epoch bounds hold when the leader or the helpers are the
    bottleneck.
    """

    def __init__(
        self,
        victims: Iterable[int] | str = "largest",
        num_victims: int = 1,
        slowdown: int = 5,
        seed: int = 0,
    ) -> None:
        if slowdown < 1:
            raise ValueError("slowdown must be >= 1")
        self._victims_spec = victims
        self._num_victims = num_victims
        self._slowdown = slowdown
        self._rng = random.Random(seed)
        self._victims: Set[int] = set()
        self._others: List[int] = []
        self._counter = 0

    def bind(self, agent_ids: Sequence[int]) -> None:
        super().bind(agent_ids)
        ordered = sorted(agent_ids)
        if isinstance(self._victims_spec, str):
            if self._victims_spec == "largest":
                self._victims = set(ordered[-self._num_victims:])
            elif self._victims_spec == "smallest":
                self._victims = set(ordered[: self._num_victims])
            else:
                raise ValueError(f"unknown victim spec {self._victims_spec!r}")
        else:
            self._victims = set(self._victims_spec)
        self._others = [a for a in agent_ids if a not in self._victims]
        if not self._others:
            # Everyone is a victim: degenerate to random activations.
            self._others = list(agent_ids)
            self._victims = set()

    def next_agent(self) -> int:
        self._counter += 1
        if self._victims and self._counter % (self._slowdown * max(1, len(self._others))) == 0:
            return self._rng.choice(sorted(self._victims))
        return self._rng.choice(self._others)
