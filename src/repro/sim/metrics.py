"""Run-level metrics collected by the engines and reported by the harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.agents.agent import Agent

__all__ = ["RunMetrics"]


@dataclass
class RunMetrics:
    """Counters describing one execution of a dispersion algorithm.

    ``rounds`` is meaningful for SYNC runs, ``epochs``/``activations`` for ASYNC
    runs; the other fields apply to both.  ``extra`` holds algorithm-specific
    counters (e.g. number of probe calls, probe iterations, subsumption events)
    that the benchmarks report alongside the headline time figure.
    """

    rounds: int = 0
    epochs: int = 0
    activations: int = 0
    total_moves: int = 0
    max_moves_per_agent: int = 0
    peak_memory_bits: int = 0
    peak_memory_log_units: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def record_memory(self, agents: Iterable[Agent]) -> None:
        """Fold the per-agent peak memory into the run metrics."""
        peak = 0
        peak_units = 0.0
        for agent in agents:
            peak = max(peak, agent.memory.peak_bits)
            peak_units = max(peak_units, agent.memory.peak_in_log_units())
        self.peak_memory_bits = max(self.peak_memory_bits, peak)
        self.peak_memory_log_units = max(self.peak_memory_log_units, peak_units)

    def bump(self, name: str, amount: float = 1.0) -> None:
        """Increment an algorithm-specific counter."""
        self.extra[name] = self.extra.get(name, 0.0) + amount

    def set_extra(self, name: str, value: float) -> None:
        """Set an algorithm-specific gauge."""
        self.extra[name] = value

    @property
    def time(self) -> int:
        """The headline time figure: rounds if synchronous, else epochs."""
        return self.rounds if self.rounds else self.epochs
