"""Synchronous execution engine (the paper's SYNC setting).

In SYNC every agent executes its Communicate–Compute–Move cycle in lockstep:
one *round* consists of every agent optionally crossing one incident edge, all
moves happening simultaneously.  The engine therefore exposes a single
primitive, :meth:`SyncEngine.step`, which takes the batch of moves for this
round (``agent_id -> port``), executes them in parallel, and advances the round
counter.  Time complexity of a SYNC algorithm is exactly the number of
``step`` calls it makes -- it is never self-reported.

The engine is a thin facade over the shared
:class:`~repro.sim.kernel.ExecutionKernel`: the kernel owns the world (agent
table, occupancy, move mechanics, fault wiring, observation queries) while
this class contributes only the lockstep scheduling discipline -- the round
counter, the per-round fault gate, and the simultaneous move batch.  The
co-location queries implementing the local communication model (an agent may
inspect, and by convention of the algorithms write to, the memory of agents
at its own node only) are the kernel's, re-exported unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Union

from repro.agents.agent import Agent
from repro.graph.port_graph import PortLabeledGraph
from repro.sim.backends import KernelBackend
from repro.sim.faults import AgentFaultView, FaultInjector
from repro.sim.invariants import InvariantChecker
from repro.sim.kernel import ExecutionKernel
from repro.sim.metrics import RunMetrics

__all__ = ["SyncEngine"]


class SyncEngine:
    """Round-synchronous mover for a set of agents on a port-labeled graph.

    Parameters
    ----------
    graph:
        The anonymous port-labeled graph.
    agents:
        The agents, each already carrying its start position.
    max_rounds:
        Safety cap; exceeding it raises ``RuntimeError`` (used by tests to turn
        non-termination bugs into failures instead of hangs).
    fault_injector, invariant_checker:
        Optional fault model and run-time safety checks (see
        :mod:`repro.sim.faults` / :mod:`repro.sim.invariants`).  When omitted,
        both are resolved from the ambient instrumentation context
        (:mod:`repro.sim.instrumentation`), which is how the experiment runner
        instruments engines that algorithm drivers construct internally.
    backend:
        World-state representation (:mod:`repro.sim.backends`): a registry
        name or instance; ``None`` resolves from the ambient context, falling
        back to the ``"reference"`` default.

    Construction is fully delegated to
    :meth:`ExecutionKernel.for_engine` (shared verbatim with
    :class:`~repro.sim.async_engine.AsyncEngine`); scenario-level wiring
    lives one layer up in :func:`repro.runner.execute.build_engine`.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        agents: Iterable[Agent],
        max_rounds: Optional[int] = None,
        fault_injector: Optional[FaultInjector] = None,
        invariant_checker: Optional[InvariantChecker] = None,
        backend: Union[None, str, KernelBackend] = None,
    ) -> None:
        self._kernel = ExecutionKernel.for_engine(
            "sync",
            graph,
            agents,
            fault_injector=fault_injector,
            invariant_checker=invariant_checker,
            backend=backend,
        )
        self.max_rounds = max_rounds

    # ------------------------------------------------------- kernel delegation
    @property
    def kernel(self) -> ExecutionKernel:
        """The shared execution kernel this engine schedules."""
        return self._kernel

    @property
    def graph(self) -> PortLabeledGraph:
        return self._kernel.graph

    @property
    def agents(self) -> Dict[int, Agent]:
        return self._kernel.agents

    @property
    def metrics(self) -> RunMetrics:
        return self._kernel.metrics

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        return self._kernel.fault_injector

    @property
    def invariant_checker(self) -> Optional[InvariantChecker]:
        return self._kernel.invariant_checker

    @property
    def _occupancy(self) -> List[Set[int]]:
        return self._kernel.occupancy

    @property
    def _moves_per_agent(self) -> Dict[int, int]:
        return self._kernel.moves_per_agent

    # ----------------------------------------------------------------- round
    @property
    def round(self) -> int:
        """Number of completed rounds."""
        return self._kernel.metrics.rounds

    def step(self, moves: Mapping[int, Optional[int]] | None = None) -> None:
        """Execute one synchronous round.

        ``moves`` maps agent id to the port it exits through this round; agents
        absent from the mapping (or mapped to ``None``) stay put.  All moves are
        validated against the *current* positions and then applied
        simultaneously, exactly as in the SYNC model (no agent observes another
        on an edge).
        """
        kernel = self._kernel
        metrics = kernel.metrics
        if self.max_rounds is not None and metrics.rounds >= self.max_rounds:
            raise RuntimeError(
                f"exceeded max_rounds={self.max_rounds}; "
                "the algorithm is probably not terminating"
            )
        injector = kernel.fault_injector
        if injector is not None:
            now = metrics.rounds
            injector.begin_tick(now, self)
            blocked = injector.blocked_cycle_agents(now)
            if blocked:
                # A crashed/frozen agent skips its *entire* CCM cycle this
                # round (v2 contract): its move is dropped below, and the
                # co-location queries already hid it from every Communicate
                # interaction, so it can neither settle nor answer probes --
                # exactly as the ASYNC engine skips a blocked activation.
                for agent_id in sorted(blocked):
                    if agent_id in kernel.agents:
                        injector.record_blocked(agent_id, now)
            if moves:
                moves = {
                    a: p
                    for a, p in moves.items()
                    if not injector.view(a, now).blocked_for_move
                }
        if moves:
            kernel.apply_batch(moves)
        metrics.rounds += 1
        if kernel.invariant_checker is not None:
            kernel.invariant_checker.after_tick(metrics.rounds)
        if kernel.trace is not None:
            kernel.trace.record_tick()

    def idle_rounds(self, count: int) -> None:
        """Advance ``count`` rounds in which nobody the caller controls moves.

        Background processes (oscillators) are *not* advanced by this method --
        it exists only for algorithms with no background activity that must wait
        (e.g. the sequential-probe baselines waiting for a reply convention).
        Rides the backend's :meth:`~repro.sim.backends.KernelBackend.run_phase`
        batch primitive (O(1) on the vectorized backend when no injector,
        checker, or trace must observe the individual rounds).
        """
        self._kernel.backend.run_phase(self, count)

    def step_path(
        self,
        walker_ids: Sequence[int],
        start: int,
        ports: Sequence[int],
        counter: Optional[str] = None,
    ) -> int:
        """Walk the pack ``walker_ids`` from ``start`` down the port path, one
        round per hop; returns the node at the end of the path.

        Each hop moves exactly the walkers still standing on the path head (a
        fault-dropped walker falls out of the pack and is left where it
        stalled); ``counter`` names a metrics counter bumped once per hop.
        Rides the backend's
        :meth:`~repro.sim.backends.KernelBackend.run_scatter` batch primitive.
        """
        return self._kernel.backend.run_scatter(
            self, walker_ids, start, ports, counter=counter
        )

    # ------------------------------------------------------------ observation
    # The kernel's observation queries are the single documented query
    # surface (the v2 fault-visibility contract lives there, shared verbatim
    # with the ASYNC engine and with every backend).  The methods below are
    # thin aliases kept for engine-level ergonomics and back-compat; new code
    # -- like the migrated drivers in ``repro.core`` -- should call
    # ``engine.kernel.<query>`` directly.

    def fault_view(self, agent_id: int) -> AgentFaultView:
        """The agent's :class:`AgentFaultView` for the upcoming round."""
        return self._kernel.fault_view(agent_id)

    def agents_at(self, node: int) -> List[Agent]:
        """Agents at ``node`` that participate in communication this round."""
        return self._kernel.agents_at(node)

    def occupied(self, node: int) -> bool:
        """True when at least one agent body is at ``node`` (physical query)."""
        return self._kernel.occupied(node)

    def settled_agent_at(self, node: int) -> Optional[Agent]:
        """The settled agent at ``node`` that answers probes this round."""
        return self._kernel.settled_agent_at(node)

    def settled_agents_at(self, node: int) -> List[Agent]:
        """All settled agents at ``node`` that answer probes this round."""
        return self._kernel.settled_agents_at(node)

    def positions(self) -> Dict[int, int]:
        """Snapshot of ``agent_id -> node``."""
        return self._kernel.positions()

    def finalize_metrics(self) -> RunMetrics:
        """Fold per-agent memory peaks (and any fault/invariant counters) into
        the run metrics and return them."""
        return self._kernel.finalize_metrics()
