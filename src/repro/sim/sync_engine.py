"""Synchronous execution engine (the paper's SYNC setting).

In SYNC every agent executes its Communicate–Compute–Move cycle in lockstep:
one *round* consists of every agent optionally crossing one incident edge, all
moves happening simultaneously.  The engine therefore exposes a single
primitive, :meth:`SyncEngine.step`, which takes the batch of moves for this
round (``agent_id -> port``), executes them in parallel, and advances the round
counter.  Time complexity of a SYNC algorithm is exactly the number of
``step`` calls it makes -- it is never self-reported.

The engine also provides the co-location queries that implement the local
communication model: an agent may inspect (and, by convention of the
algorithms, write to) the memory of agents at its own node only.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.agents.agent import Agent
from repro.graph.port_graph import PortLabeledGraph
from repro.sim import instrumentation
from repro.sim.faults import AgentFaultView, FaultInjector
from repro.sim.invariants import InvariantChecker
from repro.sim.metrics import RunMetrics

__all__ = ["SyncEngine"]


class SyncEngine:
    """Round-synchronous mover for a set of agents on a port-labeled graph.

    Parameters
    ----------
    graph:
        The anonymous port-labeled graph.
    agents:
        The agents, each already carrying its start position.
    max_rounds:
        Safety cap; exceeding it raises ``RuntimeError`` (used by tests to turn
        non-termination bugs into failures instead of hangs).
    fault_injector, invariant_checker:
        Optional fault model and run-time safety checks (see
        :mod:`repro.sim.faults` / :mod:`repro.sim.invariants`).  When omitted,
        both are resolved from the ambient instrumentation context
        (:mod:`repro.sim.instrumentation`), which is how the experiment runner
        instruments engines that algorithm drivers construct internally.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        agents: Iterable[Agent],
        max_rounds: Optional[int] = None,
        fault_injector: Optional[FaultInjector] = None,
        invariant_checker: Optional[InvariantChecker] = None,
    ) -> None:
        self.graph = graph
        self.agents: Dict[int, Agent] = {}
        # Occupancy is a dense per-node list of id sets: node indices are the
        # engine's hottest keys, so direct indexing beats dict hashing.
        self._occupancy: List[Set[int]] = [set() for _ in range(graph.num_nodes)]
        for agent in agents:
            if agent.agent_id in self.agents:
                raise ValueError(f"duplicate agent id {agent.agent_id}")
            self.agents[agent.agent_id] = agent
            self._occupancy[agent.position].add(agent.agent_id)
        if not self.agents:
            raise ValueError("need at least one agent")
        self.metrics = RunMetrics()
        self._moves_per_agent: Dict[int, int] = {}
        self.max_rounds = max_rounds
        config = instrumentation.current()
        if fault_injector is None and config is not None:
            fault_injector = config.make_injector(sorted(self.agents))
        if invariant_checker is None and config is not None:
            invariant_checker = config.make_checker(graph, self.agents)
        elif invariant_checker is not None:
            invariant_checker.attach(graph, self.agents)
        self.fault_injector = fault_injector
        self.invariant_checker = invariant_checker

    # ----------------------------------------------------------------- round
    @property
    def round(self) -> int:
        """Number of completed rounds."""
        return self.metrics.rounds

    def step(self, moves: Mapping[int, Optional[int]] | None = None) -> None:
        """Execute one synchronous round.

        ``moves`` maps agent id to the port it exits through this round; agents
        absent from the mapping (or mapped to ``None``) stay put.  All moves are
        validated against the *current* positions and then applied
        simultaneously, exactly as in the SYNC model (no agent observes another
        on an edge).
        """
        if self.max_rounds is not None and self.metrics.rounds >= self.max_rounds:
            raise RuntimeError(
                f"exceeded max_rounds={self.max_rounds}; "
                "the algorithm is probably not terminating"
            )
        injector = self.fault_injector
        if injector is not None:
            now = self.metrics.rounds
            injector.begin_tick(now, self)
            blocked = injector.blocked_cycle_agents(now)
            if blocked:
                # A crashed/frozen agent skips its *entire* CCM cycle this
                # round (v2 contract): its move is dropped below, and the
                # co-location queries already hid it from every Communicate
                # interaction, so it can neither settle nor answer probes --
                # exactly as the ASYNC engine skips a blocked activation.
                for agent_id in sorted(blocked):
                    if agent_id in self.agents:
                        injector.record_blocked(agent_id, now)
            if moves:
                moves = {
                    a: p
                    for a, p in moves.items()
                    if not injector.view(a, now).blocked_for_move
                }
        if moves:
            edge = self.graph.move
            occupancy = self._occupancy
            planned: List[tuple[Agent, int, int]] = []  # agent, dst, rev_port
            # Validate every move against the *current* positions first ...
            for agent_id, port in moves.items():
                if port is None:
                    continue
                agent = self.agents[agent_id]
                dst, rev = edge(agent.position, port)
                planned.append((agent, dst, rev))
            # ... then vacate all sources and apply the batch simultaneously,
            # exactly as in the SYNC model (no agent observes another on an edge).
            for agent, _dst, _rev in planned:
                occupancy[agent.position].discard(agent.agent_id)
            moves_per_agent = self._moves_per_agent
            max_moves = self.metrics.max_moves_per_agent
            for agent, dst, rev in planned:
                agent.arrive(dst, rev)
                occupancy[dst].add(agent.agent_id)
                count = moves_per_agent.get(agent.agent_id, 0) + 1
                moves_per_agent[agent.agent_id] = count
                if count > max_moves:
                    max_moves = count
            self.metrics.total_moves += len(planned)
            self.metrics.max_moves_per_agent = max_moves
        self.metrics.rounds += 1
        if self.invariant_checker is not None:
            self.invariant_checker.after_tick(self.metrics.rounds)

    def idle_rounds(self, count: int) -> None:
        """Advance ``count`` rounds in which nobody the caller controls moves.

        Background processes (oscillators) are *not* advanced by this method --
        it exists only for algorithms with no background activity that must wait
        (e.g. the sequential-probe baselines waiting for a reply convention).
        """
        for _ in range(count):
            self.step({})

    # ------------------------------------------------------------ observation
    def fault_view(self, agent_id: int) -> AgentFaultView:
        """The agent's :class:`AgentFaultView` for the upcoming round.

        The healthy view when no fault injector is installed; drivers gate
        their on-behalf-of actions (settling an agent, conscripting it into a
        group move) through this instead of reaching into the injector.
        """
        if self.fault_injector is None:
            return AgentFaultView(agent_id=agent_id)
        return self.fault_injector.view(agent_id, self.metrics.rounds)

    def agents_at(self, node: int) -> List[Agent]:
        """Agents at ``node`` that participate in communication this round.

        This is the Communicate-phase query: a crashed/frozen agent's body
        remains on the node (see :meth:`positions` / :meth:`occupied`) but it
        executes no cycle, so it is invisible here -- it cannot answer probes,
        be settled, or be instructed while blocked (v2 fault contract).
        """
        present = sorted(self._occupancy[node])
        injector = self.fault_injector
        if injector is None:
            return [self.agents[a] for a in present]
        now = self.metrics.rounds
        return [self.agents[a] for a in present if not injector.is_blocked(a, now)]

    def occupied(self, node: int) -> bool:
        """True when at least one agent body is at ``node`` (physical query)."""
        return bool(self._occupancy[node])

    def settled_agent_at(self, node: int) -> Optional[Agent]:
        """The settled agent at ``node`` that answers probes this round."""
        for agent in self.agents_at(node):
            if agent.settled and self.fault_view(agent.agent_id).answers_probes:
                return agent
        return None

    def positions(self) -> Dict[int, int]:
        """Snapshot of ``agent_id -> node``."""
        return {a.agent_id: a.position for a in self.agents.values()}

    def finalize_metrics(self) -> RunMetrics:
        """Fold per-agent memory peaks (and any fault/invariant counters) into
        the run metrics and return them."""
        self.metrics.record_memory(self.agents.values())
        if self.invariant_checker is not None:
            self.invariant_checker.finalize(self.metrics.rounds)
            for name, value in self.invariant_checker.metrics_extra().items():
                self.metrics.set_extra(name, value)
        if self.fault_injector is not None:
            for name, value in self.fault_injector.metrics_extra().items():
                self.metrics.set_extra(name, value)
        return self.metrics
