"""Kernel-level execution tracing: the ``repro-trace-v1`` artifact.

A :class:`TraceRecorder` is attached to one
:class:`~repro.sim.kernel.ExecutionKernel` (resolved from the ambient
instrumentation context, exactly as injectors and checkers are) and captures a
complete, replayable event log of the run: per-round / per-activation agent
moves, settle/unsettle transitions, fault block/unblock edges, churn rewires,
the ASYNC activation schedule, plus op counters (moves, settles, probes
answered) and wall-clock phase timers.

Recording is *diff-based*: the engines call :meth:`TraceRecorder.record_tick`
(SYNC, once per round) or :meth:`TraceRecorder.record_activation` (ASYNC, once
per activation) and the recorder scans the kernel's world state against its
last snapshot, emitting only what changed.  Settles happen in driver code
(``agent.settle(...)``), not through a kernel primitive, so diffing is the one
hook point that sees *every* state transition regardless of which layer caused
it; a final catch-up diff at serialization time picks up driver-side settle
passes that run after the last engine step.

Determinism contract: the serialized payload is a pure function of the run's
observable state sequence.  It deliberately contains no wall-clock data (the
phase timers stay on the recorder object), no backend tag, and no scenario
dict, so the same spec + seed yields byte-identical payloads across engines,
kernel backends, and sweep worker processes -- the property the trace
determinism suite pins.  Fault queries use the injector's *pure* point queries
(:meth:`~repro.sim.faults.FaultInjector.is_blocked`), never the monotone
cursor, so recording cannot disturb fault scheduling.

Event rows are compact JSON-safe lists ``[t, kind, ...]``:

=============  =======================================  ======================
kind           row                                      meaning
=============  =======================================  ======================
``move``       ``[t, "move", agent, src, dst]``         agent crossed an edge
``settle``     ``[t, "settle", agent, node]``           agent settled at node
``unsettle``   ``[t, "unsettle", agent]``               sanctioned unsettle
``block``      ``[t, "block", agent]``                  fault-blocked from t on
``unblock``    ``[t, "unblock", agent]``                fault window ended
``churn``      ``[t, "churn", removed, added]``         edge rewire (edge lists)
=============  =======================================  ======================

``t`` is the engine's native clock *after* the tick executed (rounds for SYNC,
activations for ASYNC), so replaying all events with ``t <= T`` reconstructs
the world exactly as it stood after tick ``T``.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import ExecutionKernel

__all__ = [
    "TRACE_FORMAT",
    "TraceError",
    "TraceRecorder",
    "trace_payload",
    "canonical_trace_json",
    "trace_digest",
    "trace_stats",
    "replay_segment",
    "verify_trace",
]

#: Schema tag of every serialized trace payload.
TRACE_FORMAT = "repro-trace-v1"


class TraceError(ValueError):
    """A trace payload is malformed or does not replay to its recorded final
    state.  Subclasses :class:`ValueError` so the CLI's clean-error path
    applies."""


def _edge_list(graph: Any) -> List[Tuple[int, int]]:
    """The graph's undirected edge set as sorted ``(min, max)`` tuples."""
    return sorted({(u, v) if u <= v else (v, u) for u, v in graph.edges()})


class TraceRecorder:
    """Diff-based event recorder bound to one execution kernel.

    Construction snapshots the initial world (positions, settled bits, edge
    set); every :meth:`record_tick` emits the delta since the previous tick.
    One recorder covers one engine; runs whose driver builds several engines
    (the rooted SYNC small-``k`` fallback) serialize as multiple *segments*
    under one payload, in construction order.
    """

    def __init__(self, kernel: "ExecutionKernel") -> None:
        self.kernel = kernel
        self.granularity = "activations" if kernel._count_activations else "rounds"
        graph = kernel.graph
        self.num_nodes = int(graph.num_nodes)
        self.agent_ids: List[int] = sorted(kernel.agents)
        self._edges = _edge_list(graph)
        self.initial_edges: List[List[int]] = [list(e) for e in self._edges]
        positions = kernel.positions()
        self._positions: Dict[int, int] = {a: positions[a] for a in self.agent_ids}
        self._settled: Set[int] = {
            a for a in self.agent_ids if kernel.agents[a].settled
        }
        self._blocked: Set[int] = set()
        self._churn_seen = graph.churn_count
        self.init_positions: List[int] = [self._positions[a] for a in self.agent_ids]
        self.init_settled: List[int] = sorted(self._settled)
        self.events: List[List[Any]] = []
        #: ASYNC only: the scheduler's activation choices, in order.
        self.schedule: List[int] = []
        self.counters: Dict[str, int] = {
            "ticks": 0,
            "moves": 0,
            "settles": 0,
            "unsettles": 0,
            "blocked": 0,
            "unblocked": 0,
            "churn_events": 0,
            "probe_queries": 0,
            "probes_answered": 0,
        }
        #: Wall-clock phase timers (seconds).  Never serialized: the payload
        #: must stay a pure function of the run, not of the machine.
        self.timings: Dict[str, float] = {"record_s": 0.0, "serialize_s": 0.0}
        self._final_diffed = False

    # ------------------------------------------------------------- recording
    def record_tick(
        self,
        positions: Optional[Mapping[int, int]] = None,
        settled: Optional[Set[int]] = None,
    ) -> None:
        """Record the delta of one completed tick (round or activation).

        Called by the engines after their native counter advanced; batch
        backends (``run_walk``) pass their array-derived ``positions`` /
        ``settled`` views so mid-block rounds trace without a per-round
        sync-back of the Agent objects.
        """
        start = time.perf_counter()
        self._diff(self._now(), positions, settled)
        self.counters["ticks"] += 1
        self.timings["record_s"] += time.perf_counter() - start

    def record_activation(self, agent_id: int) -> None:
        """ASYNC hook: note the scheduler's choice, then record the tick.

        Runs for blocked activations too -- the schedule is the adversary's
        full decision sequence, and the block/unblock overlay comes from the
        diff pass.
        """
        self.schedule.append(agent_id)
        self.record_tick()

    def count_probe(self, answered: bool) -> None:
        """Kernel hook: one settled-agent probe query (answered or not)."""
        self.counters["probe_queries"] += 1
        if answered:
            self.counters["probes_answered"] += 1

    def _now(self) -> int:
        metrics = self.kernel.metrics
        return metrics.activations if self.granularity == "activations" else metrics.rounds

    def _diff(
        self,
        t: int,
        positions: Optional[Mapping[int, int]] = None,
        settled: Optional[Set[int]] = None,
    ) -> None:
        kernel = self.kernel
        if positions is None:
            positions = kernel.positions()
        agents = kernel.agents
        if settled is None:
            settled = {a for a in self.agent_ids if agents[a].settled}
        events = self.events
        counters = self.counters
        for aid in self.agent_ids:
            new = positions[aid]
            old = self._positions[aid]
            if new != old:
                events.append([t, "move", aid, old, new])
                self._positions[aid] = new
                counters["moves"] += 1
            was = aid in self._settled
            now_settled = aid in settled
            if now_settled and not was:
                agent = agents[aid]
                home = agent.home if agent.settled and agent.home is not None else new
                events.append([t, "settle", aid, home])
                self._settled.add(aid)
                counters["settles"] += 1
            elif was and not now_settled:
                events.append([t, "unsettle", aid])
                self._settled.discard(aid)
                counters["unsettles"] += 1
        injector = kernel.fault_injector
        if injector is not None:
            # The tick that just executed ran at time t-1 (both engines read
            # their counter before incrementing); is_blocked is a pure point
            # query, so asking here cannot move the injector's cursor.
            texec = t - 1 if t > 0 else 0
            for aid in self.agent_ids:
                blocked_now = injector.is_blocked(aid, texec)
                was_blocked = aid in self._blocked
                if blocked_now and not was_blocked:
                    events.append([t, "block", aid])
                    self._blocked.add(aid)
                    counters["blocked"] += 1
                elif was_blocked and not blocked_now:
                    events.append([t, "unblock", aid])
                    self._blocked.discard(aid)
                    counters["unblocked"] += 1
        graph = kernel.graph
        if graph.churn_count != self._churn_seen:
            self._churn_seen = graph.churn_count
            edges = _edge_list(graph)
            old_set = set(self._edges)
            new_set = set(edges)
            removed = sorted(old_set - new_set)
            added = sorted(new_set - old_set)
            events.append(
                [t, "churn", [list(e) for e in removed], [list(e) for e in added]]
            )
            self._edges = edges
            counters["churn_events"] += 1

    # ----------------------------------------------------------- serialization
    def finalize(self) -> None:
        """Catch-up diff for state changed after the last engine tick.

        Driver-side settle passes (e.g. the random-walk baseline settles
        *after* stepping) mutate agents without another ``step``; this folds
        those transitions into the log at the final tick time.  Idempotent.
        """
        if self._final_diffed:
            return
        start = time.perf_counter()
        self._diff(self._now())
        self._final_diffed = True
        self.timings["record_s"] += time.perf_counter() - start

    def segment(self) -> Dict[str, Any]:
        """This recorder's serialized segment (finalizes first)."""
        self.finalize()
        start = time.perf_counter()
        kernel = self.kernel
        agents = kernel.agents
        injector = kernel.fault_injector
        checker = kernel.invariant_checker
        metrics = kernel.metrics
        data: Dict[str, Any] = {
            "granularity": self.granularity,
            "graph": {"nodes": self.num_nodes, "edges": self.initial_edges},
            "agents": list(self.agent_ids),
            "init": {
                "positions": list(self.init_positions),
                "settled": list(self.init_settled),
            },
            "events": [list(e) for e in self.events],
            "faults": (
                [[e.time, e.kind, e.detail] for e in injector.events]
                if injector is not None
                else []
            ),
            "violations": (
                [[v.time, v.name, v.detail] for v in checker.violations]
                if checker is not None
                else []
            ),
            "final": {
                "positions": [self._positions[a] for a in self.agent_ids],
                "settled": sorted(
                    a for a in self.agent_ids if agents[a].settled
                ),
                "metrics": {
                    "rounds": metrics.rounds,
                    "epochs": metrics.epochs,
                    "activations": metrics.activations,
                    "total_moves": metrics.total_moves,
                    "max_moves_per_agent": metrics.max_moves_per_agent,
                },
            },
            "counters": dict(self.counters),
        }
        if self.granularity == "activations":
            data["schedule"] = list(self.schedule)
        self.timings["serialize_s"] += time.perf_counter() - start
        return data


def trace_payload(
    recorders: Sequence[TraceRecorder], algorithm: Optional[str] = None
) -> Dict[str, Any]:
    """Serialize every recorder of one run into a ``repro-trace-v1`` payload."""
    payload: Dict[str, Any] = {
        "format": TRACE_FORMAT,
        "algorithm": algorithm,
        "segments": [recorder.segment() for recorder in recorders],
    }
    return payload


def canonical_trace_json(payload: Mapping[str, Any]) -> str:
    """Canonical compact JSON of a payload (the byte-identity the suite pins)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def trace_digest(payload: Mapping[str, Any]) -> str:
    """Hex SHA-256 of the canonical payload bytes (content address)."""
    return hashlib.sha256(canonical_trace_json(payload).encode("utf-8")).hexdigest()


def trace_stats(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Cheap summary numbers of a payload (for CLI one-liners)."""
    if payload.get("format") != TRACE_FORMAT:
        raise TraceError(
            f"not a {TRACE_FORMAT} payload (format={payload.get('format')!r})"
        )
    segments = payload.get("segments", [])
    return {
        "segments": len(segments),
        "events": sum(len(s.get("events", [])) for s in segments),
        "faults": sum(len(s.get("faults", [])) for s in segments),
        "violations": sum(len(s.get("violations", [])) for s in segments),
        "granularity": segments[-1]["granularity"] if segments else None,
    }


def replay_segment(segment: Mapping[str, Any]) -> Dict[str, Any]:
    """Apply a segment's event log over its initial state.

    Returns the reconstructed end state (``positions``, sorted ``settled``,
    ``moves`` applied, final ``edges``); raises :class:`TraceError` when an
    event contradicts the reconstructed state (a move from a node the agent is
    not at), which is the conformance suite's corruption check.
    """
    agent_ids = list(segment["agents"])
    positions: Dict[int, int] = dict(zip(agent_ids, segment["init"]["positions"]))
    settled: Set[int] = set(segment["init"]["settled"])
    edges: Set[Tuple[int, int]] = {tuple(e) for e in segment["graph"]["edges"]}
    moves = 0
    for event in segment["events"]:
        kind = event[1]
        if kind == "move":
            _t, _k, aid, src, dst = event
            if positions.get(aid) != src:
                raise TraceError(
                    f"event {event} moves agent {aid} from node {src}, but the "
                    f"replayed position is {positions.get(aid)}"
                )
            positions[aid] = dst
            moves += 1
        elif kind == "settle":
            settled.add(event[2])
        elif kind == "unsettle":
            settled.discard(event[2])
        elif kind == "churn":
            _t, _k, removed, added = event
            for e in removed:
                edges.discard(tuple(e))
            for e in added:
                edges.add(tuple(e))
        elif kind not in ("block", "unblock"):
            raise TraceError(f"unknown trace event kind {kind!r} in {event}")
    return {
        "positions": positions,
        "settled": sorted(settled),
        "moves": moves,
        "edges": sorted(edges),
    }


def verify_trace(payload: Mapping[str, Any]) -> List[str]:
    """Replay every segment and compare against its recorded final state.

    Returns a list of problem descriptions (empty = the trace replays
    exactly); used by ``repro trace --summary`` and the trace-smoke CI job.
    """
    if payload.get("format") != TRACE_FORMAT:
        return [f"not a {TRACE_FORMAT} payload (format={payload.get('format')!r})"]
    problems: List[str] = []
    for index, segment in enumerate(payload.get("segments", [])):
        try:
            state = replay_segment(segment)
        except (TraceError, KeyError, TypeError, ValueError) as exc:
            problems.append(f"segment {index}: replay failed: {exc}")
            continue
        agent_ids = list(segment["agents"])
        final_positions = dict(zip(agent_ids, segment["final"]["positions"]))
        if state["positions"] != final_positions:
            diverged = sorted(
                a
                for a in agent_ids
                if state["positions"].get(a) != final_positions.get(a)
            )
            problems.append(
                f"segment {index}: replayed positions diverge for agent(s) "
                f"{diverged[:5]}"
            )
        if state["settled"] != sorted(segment["final"]["settled"]):
            problems.append(f"segment {index}: replayed settled set diverges")
    return problems
