"""Execution substrates: one shared world kernel behind synchronous-round and
asynchronous-CCM facades, a pluggable scheduler family spanning the synchrony
spectrum, plus the fault-injection and invariant-checking layers that stress
them."""

from repro.sim.kernel import ExecutionKernel
from repro.sim.sync_engine import SyncEngine
from repro.sim.async_engine import AsyncEngine, Move, Stay, WaitUntil
from repro.sim.adversary import (
    Adversary,
    AdaptiveCollisionAdversary,
    BoundedDelayScheduler,
    LazySettlerAdversary,
    LockstepScheduler,
    RandomAdversary,
    RoundRobinAdversary,
    Scheduler,
    SemiSyncScheduler,
    StarvationAdversary,
)
from repro.sim.faults import FaultEvent, FaultInjector, FaultSpec, parse_faults
from repro.sim.instrumentation import InstrumentationConfig, current, instrument
from repro.sim.invariants import InvariantChecker, InvariantError, InvariantViolation
from repro.sim.metrics import RunMetrics
from repro.sim.result import DispersionResult

__all__ = [
    "ExecutionKernel",
    "SyncEngine",
    "AsyncEngine",
    "Move",
    "Stay",
    "WaitUntil",
    "Scheduler",
    "Adversary",
    "AdaptiveCollisionAdversary",
    "LazySettlerAdversary",
    "RandomAdversary",
    "RoundRobinAdversary",
    "StarvationAdversary",
    "LockstepScheduler",
    "SemiSyncScheduler",
    "BoundedDelayScheduler",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "parse_faults",
    "InstrumentationConfig",
    "current",
    "instrument",
    "InvariantChecker",
    "InvariantError",
    "InvariantViolation",
    "RunMetrics",
    "DispersionResult",
]
