"""Execution substrates: synchronous round engine and asynchronous CCM scheduler,
plus the fault-injection and invariant-checking layers that stress them."""

from repro.sim.sync_engine import SyncEngine
from repro.sim.async_engine import AsyncEngine, Move, Stay, WaitUntil
from repro.sim.adversary import (
    Adversary,
    AdaptiveCollisionAdversary,
    LazySettlerAdversary,
    RandomAdversary,
    RoundRobinAdversary,
    StarvationAdversary,
)
from repro.sim.faults import FaultEvent, FaultInjector, FaultSpec, parse_faults
from repro.sim.instrumentation import InstrumentationConfig, current, instrument
from repro.sim.invariants import InvariantChecker, InvariantError, InvariantViolation
from repro.sim.metrics import RunMetrics
from repro.sim.result import DispersionResult

__all__ = [
    "SyncEngine",
    "AsyncEngine",
    "Move",
    "Stay",
    "WaitUntil",
    "Adversary",
    "AdaptiveCollisionAdversary",
    "LazySettlerAdversary",
    "RandomAdversary",
    "RoundRobinAdversary",
    "StarvationAdversary",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "parse_faults",
    "InstrumentationConfig",
    "current",
    "instrument",
    "InvariantChecker",
    "InvariantError",
    "InvariantViolation",
    "RunMetrics",
    "DispersionResult",
]
