"""Execution substrates: synchronous round engine and asynchronous CCM scheduler."""

from repro.sim.sync_engine import SyncEngine
from repro.sim.async_engine import AsyncEngine, Move, Stay, WaitUntil
from repro.sim.adversary import (
    Adversary,
    RandomAdversary,
    RoundRobinAdversary,
    StarvationAdversary,
)
from repro.sim.metrics import RunMetrics
from repro.sim.result import DispersionResult

__all__ = [
    "SyncEngine",
    "AsyncEngine",
    "Move",
    "Stay",
    "WaitUntil",
    "Adversary",
    "RandomAdversary",
    "RoundRobinAdversary",
    "StarvationAdversary",
    "RunMetrics",
    "DispersionResult",
]
