"""The result object returned by every dispersion algorithm in this package."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.metrics import RunMetrics

__all__ = ["DispersionResult"]


@dataclass
class DispersionResult:
    """Outcome of running a dispersion algorithm.

    Attributes
    ----------
    dispersed:
        True when every agent is settled on a distinct node (verified against
        the simulator's ground truth, not self-reported by the algorithm).
    positions:
        Final ``agent_id -> node`` mapping.
    metrics:
        Time / movement / memory counters for the run.
    dfs_parent:
        For DFS-based algorithms, the parent node of every node in the final
        DFS forest (``None`` for roots and unvisited nodes).  Exposed for tests
        and analysis of the tree-shaped invariants (Lemmas 1–3, 7).
    algorithm:
        Short name of the algorithm that produced this result.
    notes:
        Free-form diagnostic entries (e.g. number of subsumption events).
    """

    dispersed: bool
    positions: Dict[int, int]
    metrics: RunMetrics
    dfs_parent: Optional[List[Optional[int]]] = None
    algorithm: str = ""
    notes: Dict[str, object] = field(default_factory=dict)

    @property
    def time(self) -> int:
        """Headline time figure (rounds for SYNC, epochs for ASYNC)."""
        return self.metrics.time

    def summary(self) -> str:
        """One-line human-readable summary used by examples and benchmarks."""
        unit = "rounds" if self.metrics.rounds else "epochs"
        return (
            f"{self.algorithm or 'dispersion'}: dispersed={self.dispersed} "
            f"time={self.time} {unit} moves={self.metrics.total_moves} "
            f"peak_mem={self.metrics.peak_memory_bits} bits "
            f"({self.metrics.peak_memory_log_units:.2f}·log2(k+Δ))"
        )
