"""Kernel-backend registry: the execution representation axis.

A *backend* decides how the :class:`~repro.sim.kernel.ExecutionKernel` stores
the world and lands moves; the kernel's semantics (fault clock, visibility
contract, metrics) are backend-independent.  Two backends ship:

``reference``
    The original per-agent Python loop (the oracle; always available).
``vectorized``
    numpy struct-of-arrays over the graph's CSR tables, for 10^5..10^6-node
    worlds.  Needs the ``fast`` extra; reported unavailable (not a crash)
    when numpy is missing.

Like the scheduler axis, the backend is selected by *name* so it can travel
through scenario specs, CLI flags, and the ambient instrumentation context:
``resolve_backend`` turns a name (or ``None`` for the default) into a fresh
backend instance, raising :class:`BackendUnavailableError` with install
guidance when the named backend cannot run here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type, Union

from repro.sim.backends.base import KernelBackend
from repro.sim.backends.reference import ReferenceBackend
from repro.sim.backends.vectorized import VectorizedBackend

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "BackendUnavailableError",
    "KernelBackend",
    "ReferenceBackend",
    "VectorizedBackend",
    "available_backends",
    "backend_available",
    "get_backend",
    "require_backend",
    "resolve_backend",
]


class BackendUnavailableError(ValueError):
    """A known backend cannot run in this environment (missing optional dep).

    Subclasses :class:`ValueError` so the CLI's clean-message error funnel
    (and every ``except ValueError`` sweep path) reports it as user-actionable
    configuration, not a crash.
    """


_BACKENDS: Dict[str, Type[KernelBackend]] = {
    ReferenceBackend.name: ReferenceBackend,
    VectorizedBackend.name: VectorizedBackend,
}

#: Backend names a scenario may carry (validated at spec construction, like
#: SCHEDULERS: membership only -- availability is an *environment* property,
#: checked when the backend is actually instantiated or via require_backend,
#: so spec files stay portable across machines with and without numpy).
BACKEND_NAMES = tuple(_BACKENDS)

#: The backend engines use when nothing selects one.  The default is what
#: every pre-backend record, fingerprint, and seed was produced with.
DEFAULT_BACKEND = ReferenceBackend.name


def backend_available(name: str) -> bool:
    """Whether ``name`` can be instantiated in this environment."""
    cls = _BACKENDS.get(name)
    if cls is None:
        return False
    checker = getattr(cls, "is_available", None)
    return bool(checker()) if checker is not None else True


def available_backends() -> List[str]:
    """Names of every backend that can run here, registry order."""
    return [name for name in _BACKENDS if backend_available(name)]


def require_backend(name: str) -> None:
    """Validate that ``name`` is a known, runnable backend (else raise).

    The CLI calls this *before* launching a run or sweep so an unavailable
    backend fails fast with one actionable message instead of erroring every
    job mid-sweep.
    """
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; known: {sorted(_BACKENDS)}"
        )
    get_backend(name)  # raises BackendUnavailableError with guidance


def get_backend(name: str) -> KernelBackend:
    """A fresh, unbound backend instance for ``name``."""
    cls = _BACKENDS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown backend {name!r}; known: {sorted(_BACKENDS)}"
        )
    return cls()


def resolve_backend(
    backend: Union[None, str, KernelBackend],
) -> KernelBackend:
    """Coerce a backend selector (``None`` / name / instance) to an instance."""
    if backend is None:
        return get_backend(DEFAULT_BACKEND)
    if isinstance(backend, KernelBackend):
        return backend
    return get_backend(backend)
