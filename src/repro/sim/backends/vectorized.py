"""Numpy struct-of-arrays backend over the graph's CSR port tables.

State layout (``k`` agents, ``n`` nodes):

* ``_ids``        -- int64[k], sorted agent ids; ``_slot`` maps id -> row.
* ``_pos``        -- int64[k], current node per agent (authoritative; kept in
  lockstep with the ``Agent`` objects so the two views never diverge).
* ``_occ_count``  -- int64[n], the per-node occupancy histogram.
* ``_occ``        -- the same live ``List[Set[int]]`` the reference backend
  keeps.  Exact query parity (sorted-id communication queries, adversaries
  that inspect ``engine._occupancy``) requires the id sets; the histogram
  answers the pure counting queries without touching them.
* CSR views      -- zero-copy int64 views of the graph's flat
  ``(offsets, neighbors, reverse_ports)`` arrays plus a degree vector,
  refreshed whenever :attr:`PortLabeledGraph.churn_count` moves (edge churn
  rebuilds the flat arrays in place).

The **per-operation tier** stays observably identical to the reference
backend: batched moves are *planned* with one fancy-indexing pass over the
CSR tables (bounds check, destination and reverse-port lookup, first
offending move reported with the graph's exact error message), then landed
on the Agent objects in the same order the reference loop lands them.  The
**batch-stepping tier** (:meth:`VectorizedBackend.run_walk`) never leaves
numpy between rounds -- port draws, edge crossings, fault masks, and the
settle rule are all array ops -- and syncs the Agent objects, occupancy sets,
and metrics back once at the end.

numpy is an optional dependency (the ``fast`` extra): importing this module
is always safe, constructing the backend without numpy raises
:class:`~repro.sim.backends.BackendUnavailableError` with install guidance.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set

try:  # pragma: no cover - exercised via is_available() in both states
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less environments
    np = None

from repro.agents.agent import Agent
from repro.sim.backends.base import KernelBackend

__all__ = ["VectorizedBackend"]


class VectorizedBackend(KernelBackend):
    """Struct-of-arrays world state for interactive 10^5..10^6-node runs."""

    name = "vectorized"

    def __init__(self) -> None:
        if np is None:
            from repro.sim.backends import BackendUnavailableError

            raise BackendUnavailableError(
                "the 'vectorized' backend needs numpy, which is not installed; "
                "install the fast extra (pip install 'repro-dispersion[fast]') "
                "or use --backend reference"
            )
        super().__init__()

    @classmethod
    def is_available(cls) -> bool:
        return np is not None

    # ------------------------------------------------------------------ state
    def rebuild(self) -> None:
        kernel = self.kernel
        n = kernel.graph.num_nodes
        ids = sorted(kernel.agents)
        self._ids = np.asarray(ids, dtype=np.int64)
        self._slot: Dict[int, int] = {agent_id: i for i, agent_id in enumerate(ids)}
        self._pos = np.asarray(
            [kernel.agents[a].position for a in ids], dtype=np.int64
        )
        self._occ_count = np.bincount(self._pos, minlength=n).astype(np.int64)
        self._occ: List[Set[int]] = [set() for _ in range(n)]
        for agent_id, node in zip(ids, self._pos.tolist()):
            self._occ[node].add(agent_id)
        # Settled-agent indexes behind the deterministic driver-phase
        # primitives: a per-node count and id-sum of settled *bodies* (count
        # and idsum together decide "is a settled agent other than X here"
        # exactly: ids are unique, so count>=2 always has another, and the
        # count==1 body is agent idsum), plus home-node -> settled ids for the
        # home-settler queries.  Kept current by the Agent settle/unsettle
        # observer hooks and by the settled-mover updates in the move paths.
        self._settled_count = np.zeros(n, dtype=np.int64)
        self._settled_idsum = np.zeros(n, dtype=np.int64)
        self._home_ids: Dict[int, Set[int]] = {}
        for agent in kernel.agents.values():
            agent._observer = self
            if agent.settled:
                self._settled_count[agent.position] += 1
                self._settled_idsum[agent.position] += agent.agent_id
                self._home_ids.setdefault(agent.home, set()).add(agent.agent_id)
        self._churn_seen: Optional[int] = None
        self._refresh_csr()

    # ------------------------------------------------- settled-index upkeep
    def notify_settle(self, agent: Agent) -> None:
        """Agent observer hook: ``agent`` just settled (position == home)."""
        node = agent.position
        self._settled_count[node] += 1
        self._settled_idsum[node] += agent.agent_id
        self._home_ids.setdefault(agent.home, set()).add(agent.agent_id)

    def notify_unsettle(self, agent: Agent) -> None:
        """Agent observer hook: ``agent`` is about to unsettle (state intact)."""
        node = agent.position
        self._settled_count[node] -= 1
        self._settled_idsum[node] -= agent.agent_id
        ids = self._home_ids.get(agent.home)
        if ids is not None:
            ids.discard(agent.agent_id)
            if not ids:
                del self._home_ids[agent.home]

    def _settled_body_moved(self, agent: Agent, src: int, dst: int) -> None:
        """Re-key the settled-presence index when a settled body crosses an
        edge (oscillators move while settled; their home entry is unchanged)."""
        self._settled_count[src] -= 1
        self._settled_idsum[src] -= agent.agent_id
        self._settled_count[dst] += 1
        self._settled_idsum[dst] += agent.agent_id

    def _refresh_csr(self) -> None:
        """(Re)view the graph's CSR arrays; cheap no-op while churn is quiet."""
        graph = self.kernel.graph
        if graph.churn_count == self._churn_seen:
            return
        offsets, neighbors, reverse = graph.adjacency_arrays()
        # array('l') is 64-bit on the platforms we target; frombuffer gives a
        # zero-copy view that stays valid until the next rewire (tracked by
        # churn_count, which every rewire bumps).
        self._offsets = np.frombuffer(offsets, dtype=np.int64)
        self._nbr = np.frombuffer(neighbors, dtype=np.int64)
        self._rev = np.frombuffer(reverse, dtype=np.int64)
        self._deg = self._offsets[1:] - self._offsets[:-1]
        self._churn_seen = graph.churn_count

    @property
    def occupancy(self) -> List[Set[int]]:
        return self._occ

    # ---------------------------------------------------------------- movement
    def apply_move(self, agent: Agent, port: int) -> None:
        # A single activation moves a single agent: the scalar graph lookup is
        # both faster than a 1-element array pass and exactly the reference
        # code path (same bounds check, same error message).
        kernel = self.kernel
        src = agent.position
        dst, rev = kernel.graph.move(src, port)
        self._occ[src].discard(agent.agent_id)
        agent.arrive(dst, rev)
        self._occ[dst].add(agent.agent_id)
        if agent.settled:
            self._settled_body_moved(agent, src, dst)
        slot = self._slot[agent.agent_id]
        self._pos[slot] = dst
        self._occ_count[src] -= 1
        self._occ_count[dst] += 1
        kernel.metrics.total_moves += 1
        count = kernel.moves_per_agent.get(agent.agent_id, 0) + 1
        kernel.moves_per_agent[agent.agent_id] = count
        if count > kernel.metrics.max_moves_per_agent:
            kernel.metrics.max_moves_per_agent = count

    def apply_batch(self, moves: Mapping[int, Optional[int]]) -> None:
        kernel = self.kernel
        movers: List[Agent] = []
        slots_list: List[int] = []
        ports_list: List[int] = []
        for agent_id, port in moves.items():
            if port is None:
                continue
            movers.append(kernel.agents[agent_id])
            slots_list.append(self._slot[agent_id])
            ports_list.append(port)
        if not movers:
            return
        self._refresh_csr()
        slots = np.asarray(slots_list, dtype=np.int64)
        ports = np.asarray(ports_list, dtype=np.int64)
        src = self._pos[slots]
        deg = self._deg[src]
        bad = (ports < 1) | (ports > deg)
        if bad.any():
            # Report the first offender in mapping order, with the exact
            # message PortLabeledGraph.move raises, before mutating anything.
            i = int(np.flatnonzero(bad)[0])
            raise ValueError(
                f"node {int(src[i])} has no port {int(ports[i])} "
                f"(degree {int(deg[i])})"
            )
        edge = self._offsets[src] + ports - 1
        dst = self._nbr[edge]
        rev = self._rev[edge]
        occupancy = self._occ
        for agent, s in zip(movers, src.tolist()):
            occupancy[s].discard(agent.agent_id)
        moves_per_agent = kernel.moves_per_agent
        max_moves = kernel.metrics.max_moves_per_agent
        for agent, s, d, r in zip(movers, src.tolist(), dst.tolist(), rev.tolist()):
            agent.arrive(d, r)
            occupancy[d].add(agent.agent_id)
            if agent.settled:
                self._settled_body_moved(agent, s, d)
            count = moves_per_agent.get(agent.agent_id, 0) + 1
            moves_per_agent[agent.agent_id] = count
            if count > max_moves:
                max_moves = count
        self._pos[slots] = dst
        np.subtract.at(self._occ_count, src, 1)
        np.add.at(self._occ_count, dst, 1)
        kernel.metrics.total_moves += len(movers)
        kernel.metrics.max_moves_per_agent = max_moves

    # ------------------------------------------------------------ observation
    def present_ids(self, node: int) -> List[int]:
        return sorted(self._occ[node])

    def occupied(self, node: int) -> bool:
        return bool(self._occ_count[node])

    def positions(self) -> Dict[int, int]:
        # Answered from the arrays (the authoritative vectorized state); dict
        # equality with the reference answer is part of the parity contract.
        return {
            int(agent_id): int(node)
            for agent_id, node in zip(self._ids, self._pos)
        }

    def occupancy_counts(self) -> Sequence[int]:
        return self._occ_count.tolist()

    # ------------------------------------------------------- batch stepping
    def run_walk(self, rounds: int, seed: int, settle: bool = False) -> int:
        """Array-only random-walk rounds; syncs world state back at the end.

        Same workload semantics as the generic implementation (uniform port
        per unsettled unblocked agent, simultaneous landing, min-id settle
        rule, early stop when everyone settled, crash/freeze masks and churn
        honoured per round) -- but the per-round work is pure numpy, which is
        where the backend's steps-per-second headroom comes from.
        """
        kernel = self.kernel
        agents = kernel.agents
        injector = kernel.fault_injector
        rng = np.random.default_rng(seed)
        k = len(self._ids)
        n = kernel.graph.num_nodes
        self._refresh_csr()
        pos = self._pos.copy()
        pin = np.full(k, -1, dtype=np.int64)  # -1: never moved in this block
        moved = np.zeros(k, dtype=np.int64)
        settled = np.asarray(
            [agents[a].settled for a in self._ids.tolist()], dtype=bool
        )
        # node -> has a settled home agent (settled agents never move here).
        has_settler = np.zeros(n, dtype=bool)
        for agent in agents.values():
            if agent.settled and agent.home is not None:
                has_settler[agent.home] = True
        steps = 0
        for _ in range(rounds):
            if settle and bool(settled.all()):
                break
            now = kernel.metrics.rounds
            blocked = np.zeros(k, dtype=bool)
            if injector is not None:
                injector.begin_tick(now, kernel)
                self._refresh_csr()  # churn may have rewired edges this tick
                for agent_id in injector.blocked_cycle_agents(now):
                    slot = self._slot.get(agent_id)
                    if slot is not None:
                        blocked[slot] = True
            active = ~settled & ~blocked
            count = int(active.sum())
            if count:
                src = pos[active]
                deg = self._deg[src]
                ports = (rng.random(count) * deg).astype(np.int64)  # 0-based
                edge = self._offsets[src] + ports
                pos[active] = self._nbr[edge]
                pin[active] = self._rev[edge]
                moved[active] += 1
                steps += count
            kernel.metrics.rounds += 1
            if settle:
                candidates = np.flatnonzero(~settled & ~blocked)
                if candidates.size:
                    nodes = pos[candidates]
                    open_node = ~has_settler[nodes]
                    candidates = candidates[open_node]
                    nodes = nodes[open_node]
                    if candidates.size:
                        # Min-slot (== min-id: slots are id-sorted) per node.
                        order = np.lexsort((candidates, nodes))
                        candidates = candidates[order]
                        nodes = nodes[order]
                        first = np.ones(len(nodes), dtype=bool)
                        first[1:] = nodes[1:] != nodes[:-1]
                        winners = candidates[first]
                        settled[winners] = True
                        has_settler[nodes[first]] = True
            if kernel.trace is not None:
                # The Agent objects only sync back after the block, so the
                # recorder diffs against the live arrays instead; the RNG
                # stream is untouched, so tracing cannot change the walk.
                ids = self._ids.tolist()
                kernel.trace.record_tick(
                    positions={
                        int(a): int(p) for a, p in zip(ids, pos.tolist())
                    },
                    settled={
                        int(a) for a, s in zip(ids, settled.tolist()) if s
                    },
                )
        self._sync_back(pos, pin, moved, settled)
        return steps

    def _sync_back(self, pos, pin, moved, settled) -> None:
        """Land the block's end state on the Agents, occupancy, and metrics."""
        kernel = self.kernel
        agents = kernel.agents
        occupancy = self._occ
        moves_per_agent = kernel.moves_per_agent
        max_moves = kernel.metrics.max_moves_per_agent
        for slot, agent_id in enumerate(self._ids.tolist()):
            agent = agents[agent_id]
            count = int(moved[slot])
            if count:
                occupancy[agent.position].discard(agent_id)
                agent.arrive(int(pos[slot]), int(pin[slot]))
                occupancy[agent.position].add(agent_id)
                total = moves_per_agent.get(agent_id, 0) + count
                moves_per_agent[agent_id] = total
                if total > max_moves:
                    max_moves = total
            if settled[slot] and not agent.settled:
                agent.settle(int(pos[slot]), None)
        kernel.metrics.total_moves += int(moved.sum())
        kernel.metrics.max_moves_per_agent = max_moves
        self._pos[:] = pos
        self._occ_count = np.bincount(
            pos, minlength=kernel.graph.num_nodes
        ).astype(np.int64)

    # ------------------------------------------------- settled-agent queries
    # Deterministic primitives: index-answered only when no fault injector is
    # installed (fault filtering needs the injector's per-agent view, which is
    # exactly the generic path), byte-identical either way.

    def settled_present(self, node: int, exclude_id: Optional[int] = None) -> bool:
        if self.kernel.fault_injector is not None:
            return super().settled_present(node, exclude_id)
        count = int(self._settled_count[node])
        if count == 0:
            return False
        if count > 1 or exclude_id is None:
            return True
        return int(self._settled_idsum[node]) != exclude_id

    def home_settler_at(self, node: int) -> Optional[Agent]:
        if self.kernel.fault_injector is not None:
            return super().home_settler_at(node)
        ids = self._home_ids.get(node)
        if not ids:
            return None
        agents = self.kernel.agents
        best: Optional[Agent] = None
        for agent_id in ids:
            agent = agents[agent_id]
            if agent.position == node and (best is None or agent_id < best.agent_id):
                best = agent
        return best

    def has_home_settler(self, node: int, exclude_id: Optional[int] = None) -> bool:
        if self.kernel.fault_injector is not None:
            return super().has_home_settler(node, exclude_id)
        ids = self._home_ids.get(node)
        if not ids:
            return False
        agents = self.kernel.agents
        for agent_id in ids:
            if agent_id != exclude_id and agents[agent_id].position == node:
                return True
        return False

    def run_probe_round(
        self, nodes: Sequence[int], exclude_ids: Sequence[int]
    ) -> List[bool]:
        if self.kernel.fault_injector is not None:
            return super().run_probe_round(nodes, exclude_ids)
        nodes_arr = np.asarray(nodes, dtype=np.int64)
        excl = np.asarray(exclude_ids, dtype=np.int64)
        count = self._settled_count[nodes_arr]
        met = (count > 1) | ((count == 1) & (self._settled_idsum[nodes_arr] != excl))
        return met.tolist()

    # --------------------------------------------------------- phase driving
    def run_phase(self, engine: "SyncEngine", rounds: int) -> None:
        kernel = self.kernel
        if (
            kernel.fault_injector is not None
            or kernel.invariant_checker is not None
            or kernel.trace is not None
        ):
            return super().run_phase(engine, rounds)
        if rounds <= 0:
            return
        metrics = kernel.metrics
        # Idle rounds with nothing observing them collapse to arithmetic on
        # the round counter; the max_rounds cap fails exactly like the
        # per-round loop (counter parked at the cap, same message).
        if engine.max_rounds is not None and metrics.rounds + rounds > engine.max_rounds:
            metrics.rounds = max(metrics.rounds, engine.max_rounds)
            raise RuntimeError(
                f"exceeded max_rounds={engine.max_rounds}; "
                "the algorithm is probably not terminating"
            )
        metrics.rounds += rounds

    def run_scatter(
        self,
        engine: "SyncEngine",
        walker_ids: Sequence[int],
        start: int,
        ports: Sequence[int],
        counter: Optional[str] = None,
    ) -> int:
        kernel = self.kernel
        if kernel.invariant_checker is not None or kernel.trace is not None:
            # Those observers must see every individual round; the generic
            # per-round engine.step path is the contract bearer there.
            return super().run_scatter(engine, walker_ids, start, ports, counter)
        agents = kernel.agents
        metrics = kernel.metrics
        injector = kernel.fault_injector
        self._refresh_csr()
        # The generic path builds one moves dict per hop, so duplicate walker
        # ids collapse; mirror that before tracking per-walker state.
        walker_ids = list(dict.fromkeys(walker_ids))
        k = len(walker_ids)
        wagents = [agents[a] for a in walker_ids]
        wslots = np.asarray(
            [self._slot[a] for a in walker_ids], dtype=np.int64
        )
        wpos = self._pos[wslots].copy() if k else np.zeros(0, dtype=np.int64)
        start_pos = wpos.copy()
        wpin = np.zeros(k, dtype=np.int64)
        wmoved = np.zeros(k, dtype=np.int64)
        current = start
        error: Optional[Exception] = None
        for port in ports:
            if engine.max_rounds is not None and metrics.rounds >= engine.max_rounds:
                error = RuntimeError(
                    f"exceeded max_rounds={engine.max_rounds}; "
                    "the algorithm is probably not terminating"
                )
                break
            movers = wpos == current
            if injector is not None:
                now = metrics.rounds
                injector.begin_tick(now, engine)
                self._refresh_csr()  # churn may have rewired edges this tick
                blocked = injector.blocked_cycle_agents(now)
                if blocked:
                    for agent_id in sorted(blocked):
                        if agent_id in agents:
                            injector.record_blocked(agent_id, now)
                    # blocked_for_move is exactly blocked-for-cycle membership
                    # (v2 contract), applied array-side.
                    movers &= np.asarray(
                        [a not in blocked for a in walker_ids], dtype=bool
                    )
            moving = bool(movers.any())
            deg = int(self._deg[current])
            valid = 1 <= port <= deg
            if moving and not valid:
                # apply_batch raises inside step(), before the round counts.
                error = ValueError(
                    f"node {current} has no port {port} (degree {deg})"
                )
                break
            if moving:
                i = int(self._offsets[current]) + port - 1
                wpos[movers] = self._nbr[i]
                wpin[movers] = self._rev[i]
                wmoved[movers] += 1
            metrics.rounds += 1
            if not valid:
                # graph.neighbor raises after the step already counted.
                error = ValueError(
                    f"node {current} has no port {port} (degree {deg})"
                )
                break
            current = int(self._nbr[int(self._offsets[current]) + port - 1])
            if counter is not None:
                metrics.bump(counter)
        # Land partial state before re-raising: the per-round path mutates as
        # it goes, so post-error world state must match it exactly.
        self._finish_scatter(wagents, wslots, wpos, wpin, wmoved, start_pos)
        if error is not None:
            raise error
        return current

    def _finish_scatter(
        self, wagents, wslots, wpos, wpin, wmoved, start_pos
    ) -> None:
        """Sync the scatter pack's end state back onto the per-op structures."""
        kernel = self.kernel
        occupancy = self._occ
        moves_per_agent = kernel.moves_per_agent
        max_moves = kernel.metrics.max_moves_per_agent
        total = 0
        for i, agent in enumerate(wagents):
            count = int(wmoved[i])
            if not count:
                continue
            src = int(start_pos[i])
            dst = int(wpos[i])
            occupancy[src].discard(agent.agent_id)
            agent.arrive(dst, int(wpin[i]))
            occupancy[dst].add(agent.agent_id)
            if agent.settled:
                self._settled_body_moved(agent, src, dst)
            total += count
            tally = moves_per_agent.get(agent.agent_id, 0) + count
            moves_per_agent[agent.agent_id] = tally
            if tally > max_moves:
                max_moves = tally
        if not total:
            return
        kernel.metrics.total_moves += total
        kernel.metrics.max_moves_per_agent = max_moves
        self._pos[wslots] = wpos
        moved_mask = wmoved > 0
        np.subtract.at(self._occ_count, start_pos[moved_mask], 1)
        np.add.at(self._occ_count, wpos[moved_mask], 1)
