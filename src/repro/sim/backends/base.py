"""The kernel-backend protocol: world state + move mechanics, swappable.

The :class:`~repro.sim.kernel.ExecutionKernel` owns the *semantics* of a run
(the fault clock, the v2 fault-visibility contract, metrics finalization); a
:class:`KernelBackend` owns the *representation* -- where agent positions and
per-node occupancy live and how a batch of moves lands.  Splitting the two
gives one engine facade pair (SYNC/ASYNC) over interchangeable state layouts:

* :class:`~repro.sim.backends.reference.ReferenceBackend` -- the original
  per-agent Python loop, extracted unchanged.  It is the **oracle**: the
  differential suite pins every other backend to its observable behaviour.
* :class:`~repro.sim.backends.vectorized.VectorizedBackend` -- numpy
  struct-of-arrays over the graph's CSR port tables, for 10^5..10^6-node
  worlds (requires the ``fast`` extra).

Backends expose two tiers:

**Per-operation tier** (``apply_move`` / ``apply_batch`` and the raw state
queries).  This is the engine contract: every backend must be *exactly*
interchangeable here -- same mutations, same metrics accounting, same error
messages, same query results -- so algorithm drivers produce byte-identical
records on any backend.

**Batch-stepping tier**.  Whole phases executed inside the backend, without
returning to Python per agent.  This is where a vectorized backend earns its
keep: the base class provides generic per-agent implementations (the oracle
legs of ``repro bench``), and fast backends override them with array code.
The tier has two determinism grades:

* :meth:`KernelBackend.run_walk` is seed-deterministic *per backend* but not
  across backends (they draw from different RNG families); cross-backend
  tests assert semantic invariants, not byte equality.
* The driver-phase primitives -- the settled-agent queries
  (:meth:`settled_present` / :meth:`home_settler_at` /
  :meth:`has_home_settler`), :meth:`run_probe_round`, :meth:`run_scatter`,
  and :meth:`run_phase` -- are **deterministic**, so they inherit the per-op
  parity contract: every backend must produce byte-identical records (same
  mutations, metrics, error messages, query answers).  The DFS/probe-style
  algorithm drivers in :mod:`repro.core` ride these, which is what puts the
  paper's own algorithms on the fast path
  (``tests/test_backend_differential.py`` pins the equivalence).

The batch tier honours crash/freeze fault masks and edge churn via the
kernel's injector; ``run_walk`` does not run the invariant checker, while the
driver-phase primitives defer to the generic per-round path whenever a
checker or trace recorder must observe every round.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar, Dict, List, Mapping, Optional, Sequence, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.agent import Agent
    from repro.sim.kernel import ExecutionKernel
    from repro.sim.sync_engine import SyncEngine

__all__ = ["KernelBackend"]


class KernelBackend(ABC):
    """World-state representation behind one :class:`ExecutionKernel`.

    A backend instance is bound to exactly one kernel (:meth:`bind`); the
    kernel delegates all state mutation and raw observation to it, keeping
    fault filtering and metrics finalization to itself.
    """

    #: Registry name (``"reference"``, ``"vectorized"``, ...).
    name: ClassVar[str] = "abstract"

    def __init__(self) -> None:
        self.kernel: Optional["ExecutionKernel"] = None

    def bind(self, kernel: "ExecutionKernel") -> None:
        """Attach to ``kernel`` and build state from its agent table."""
        self.kernel = kernel
        # Detach any settled-index observer a previously bound backend left on
        # the agents; backends that keep an index re-attach in rebuild().
        for agent in kernel.agents.values():
            agent._observer = None
        self.rebuild()

    # ------------------------------------------------------------------ state
    @abstractmethod
    def rebuild(self) -> None:
        """(Re)derive all backend state from ``self.kernel``'s agents/graph."""

    @property
    @abstractmethod
    def occupancy(self) -> List[Set[int]]:
        """Dense per-node sets of present agent ids.

        The *same live object* across calls: adversaries and tests hold a
        reference to it, so backends must update it in place.
        """

    # --------------------------------------------------------------- movement
    @abstractmethod
    def apply_move(self, agent: "Agent", port: int) -> None:
        """Cross one edge in a single-agent activation (the ASYNC primitive)."""

    @abstractmethod
    def apply_batch(self, moves: Mapping[int, Optional[int]]) -> None:
        """Apply one round's move batch simultaneously (the SYNC primitive)."""

    # ------------------------------------------------------------ observation
    @abstractmethod
    def present_ids(self, node: int) -> List[int]:
        """Sorted ids of every agent body at ``node`` (no fault filtering)."""

    @abstractmethod
    def occupied(self, node: int) -> bool:
        """True when at least one agent body is at ``node``."""

    @abstractmethod
    def positions(self) -> Dict[int, int]:
        """Snapshot of ``agent_id -> node``."""

    @abstractmethod
    def occupancy_counts(self) -> Sequence[int]:
        """Per-node body counts (the occupancy histogram)."""

    # ------------------------------------------------------- batch stepping
    def run_walk(self, rounds: int, seed: int, settle: bool = False) -> int:
        """Run up to ``rounds`` lockstep random-walk rounds inside the backend.

        Each round, every unsettled agent that is not fault-blocked exits
        through a uniformly random port of its current node; with ``settle``,
        after the moves land each node holding no settled agent settles its
        minimum-id unblocked visitor (the random-walk dispersion heuristic).
        Stops early once every agent is settled.  Returns the number of edge
        crossings performed; agent objects, occupancy, ``moves_per_agent``,
        and ``metrics`` (rounds/total_moves/max_moves_per_agent) are left
        exactly as if the rounds had been stepped one by one.

        This generic implementation walks agents in Python (it is the bench's
        reference leg); vectorized backends override it with array code.
        """
        kernel = self.kernel
        assert kernel is not None, "backend not bound to a kernel"
        graph = kernel.graph
        agents = kernel.agents
        rng = random.Random(seed)
        ordered = [agents[a] for a in sorted(agents)]
        injector = kernel.fault_injector
        steps = 0
        for _ in range(rounds):
            if settle and all(a.settled for a in ordered):
                break
            now = kernel.metrics.rounds
            blocked: frozenset[int] = frozenset()
            if injector is not None:
                injector.begin_tick(now, kernel)
                blocked = injector.blocked_cycle_agents(now)
            moves: Dict[int, Optional[int]] = {}
            for agent in ordered:
                if agent.settled or agent.agent_id in blocked:
                    continue
                moves[agent.agent_id] = rng.randint(1, graph.degree(agent.position))
            self.apply_batch(moves)
            steps += len(moves)
            kernel.metrics.rounds += 1
            if settle:
                self._settle_pass(blocked)
            if kernel.trace is not None:
                kernel.trace.record_tick()
        return steps

    def _settle_pass(self, blocked: frozenset[int]) -> None:
        """Settle the min-id unblocked visitor at every settler-free node."""
        kernel = self.kernel
        agents = kernel.agents
        settled_nodes = {a.home for a in agents.values() if a.settled}
        by_node: Dict[int, int] = {}
        for agent_id in sorted(agents):
            agent = agents[agent_id]
            if agent.settled or agent.agent_id in blocked:
                continue
            if agent.position in settled_nodes or agent.position in by_node:
                continue
            by_node[agent.position] = agent_id
        for node, agent_id in by_node.items():
            agents[agent_id].settle(node, None)

    # ------------------------------------------------- settled-agent queries
    # Driver-phase primitives.  Unlike run_walk these are deterministic, so
    # they inherit the per-op parity contract: overrides must be observably
    # exact.  The generic bodies below are the repro.core driver loops they
    # replaced, verbatim -- fault filtering rides kernel.agents_at (the v2
    # Communicate query), and none of them count trace probes (the loops they
    # replaced never did; only settled_agent_at/settled_agents_at do).

    def settled_present(self, node: int, exclude_id: Optional[int] = None) -> bool:
        """True when a settled agent other than ``exclude_id`` communicates at
        ``node`` (Sync_Probe's "did my seeker meet anyone" question)."""
        for other in self.kernel.agents_at(node):
            if other.agent_id != exclude_id and other.settled:
                return True
        return False

    def home_settler_at(self, node: int) -> Optional["Agent"]:
        """The min-id communicating agent settled with ``home == node``."""
        for agent in self.kernel.agents_at(node):
            if agent.settled and agent.home == node:
                return agent
        return None

    def has_home_settler(self, node: int, exclude_id: Optional[int] = None) -> bool:
        """True when some communicating agent other than ``exclude_id`` is
        settled with ``home == node`` (the scatter "is this node free" test)."""
        for agent in self.kernel.agents_at(node):
            if agent.settled and agent.home == node and agent.agent_id != exclude_id:
                return True
        return False

    def run_probe_round(
        self, nodes: Sequence[int], exclude_ids: Sequence[int]
    ) -> List[bool]:
        """One probe round, batched: element ``i`` answers whether a settled
        agent other than ``exclude_ids[i]`` communicates at ``nodes[i]``.

        The two parallel sequences (rather than pairs) let bulk callers pass
        prebuilt arrays straight through to a vectorized override.
        """
        return [
            self.settled_present(node, exclude)
            for node, exclude in zip(nodes, exclude_ids)
        ]

    # --------------------------------------------------------- phase driving
    def run_scatter(
        self,
        engine: "SyncEngine",
        walker_ids: Sequence[int],
        start: int,
        ports: Sequence[int],
        counter: Optional[str] = None,
    ) -> int:
        """Drive a scatter pack from ``start`` down the port path, one engine
        round per hop; returns the node at the end of the path.

        Each hop moves exactly the walkers still standing on the path head (a
        walker whose move was fault-dropped falls out of the pack, exactly as
        in the per-round driver loop this replaces), and bumps ``counter``
        when given.  Every hop is a real :meth:`SyncEngine.step`, so fault
        gates, invariant checks, and tracing all fire per round.
        """
        kernel = self.kernel
        agents = kernel.agents
        graph = kernel.graph
        walkers = [agents[a] for a in walker_ids]
        current = start
        for port in ports:
            moves = {a.agent_id: port for a in walkers if a.position == current}
            engine.step(moves)
            current = graph.neighbor(current, port)
            if counter is not None:
                kernel.metrics.bump(counter)
        return current

    def run_phase(self, engine: "SyncEngine", rounds: int) -> None:
        """Advance ``rounds`` idle rounds (nobody the caller controls moves)
        in one backend call; vectorized backends collapse the fault-free,
        untraced case to O(1) instead of O(rounds) Python iterations."""
        for _ in range(rounds):
            engine.step({})
