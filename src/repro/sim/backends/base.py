"""The kernel-backend protocol: world state + move mechanics, swappable.

The :class:`~repro.sim.kernel.ExecutionKernel` owns the *semantics* of a run
(the fault clock, the v2 fault-visibility contract, metrics finalization); a
:class:`KernelBackend` owns the *representation* -- where agent positions and
per-node occupancy live and how a batch of moves lands.  Splitting the two
gives one engine facade pair (SYNC/ASYNC) over interchangeable state layouts:

* :class:`~repro.sim.backends.reference.ReferenceBackend` -- the original
  per-agent Python loop, extracted unchanged.  It is the **oracle**: the
  differential suite pins every other backend to its observable behaviour.
* :class:`~repro.sim.backends.vectorized.VectorizedBackend` -- numpy
  struct-of-arrays over the graph's CSR port tables, for 10^5..10^6-node
  worlds (requires the ``fast`` extra).

Backends expose two tiers:

**Per-operation tier** (``apply_move`` / ``apply_batch`` and the raw state
queries).  This is the engine contract: every backend must be *exactly*
interchangeable here -- same mutations, same metrics accounting, same error
messages, same query results -- so algorithm drivers produce byte-identical
records on any backend.

**Batch-stepping tier** (:meth:`KernelBackend.run_walk`).  A whole block of
random-walk rounds executed inside the backend, without returning to Python
per agent.  This is where a vectorized backend earns its keep: the base class
provides a generic per-agent implementation (the oracle leg of ``repro
bench``), and fast backends override it with array code.  The walk is
seed-deterministic *per backend* but not across backends (they draw from
different RNG families); cross-backend tests assert semantic invariants, not
byte equality.  The batch tier honours crash/freeze fault masks and edge
churn via the kernel's injector, but does not run the invariant checker.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar, Dict, List, Mapping, Optional, Sequence, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.agent import Agent
    from repro.sim.kernel import ExecutionKernel

__all__ = ["KernelBackend"]


class KernelBackend(ABC):
    """World-state representation behind one :class:`ExecutionKernel`.

    A backend instance is bound to exactly one kernel (:meth:`bind`); the
    kernel delegates all state mutation and raw observation to it, keeping
    fault filtering and metrics finalization to itself.
    """

    #: Registry name (``"reference"``, ``"vectorized"``, ...).
    name: ClassVar[str] = "abstract"

    def __init__(self) -> None:
        self.kernel: Optional["ExecutionKernel"] = None

    def bind(self, kernel: "ExecutionKernel") -> None:
        """Attach to ``kernel`` and build state from its agent table."""
        self.kernel = kernel
        self.rebuild()

    # ------------------------------------------------------------------ state
    @abstractmethod
    def rebuild(self) -> None:
        """(Re)derive all backend state from ``self.kernel``'s agents/graph."""

    @property
    @abstractmethod
    def occupancy(self) -> List[Set[int]]:
        """Dense per-node sets of present agent ids.

        The *same live object* across calls: adversaries and tests hold a
        reference to it, so backends must update it in place.
        """

    # --------------------------------------------------------------- movement
    @abstractmethod
    def apply_move(self, agent: "Agent", port: int) -> None:
        """Cross one edge in a single-agent activation (the ASYNC primitive)."""

    @abstractmethod
    def apply_batch(self, moves: Mapping[int, Optional[int]]) -> None:
        """Apply one round's move batch simultaneously (the SYNC primitive)."""

    # ------------------------------------------------------------ observation
    @abstractmethod
    def present_ids(self, node: int) -> List[int]:
        """Sorted ids of every agent body at ``node`` (no fault filtering)."""

    @abstractmethod
    def occupied(self, node: int) -> bool:
        """True when at least one agent body is at ``node``."""

    @abstractmethod
    def positions(self) -> Dict[int, int]:
        """Snapshot of ``agent_id -> node``."""

    @abstractmethod
    def occupancy_counts(self) -> Sequence[int]:
        """Per-node body counts (the occupancy histogram)."""

    # ------------------------------------------------------- batch stepping
    def run_walk(self, rounds: int, seed: int, settle: bool = False) -> int:
        """Run up to ``rounds`` lockstep random-walk rounds inside the backend.

        Each round, every unsettled agent that is not fault-blocked exits
        through a uniformly random port of its current node; with ``settle``,
        after the moves land each node holding no settled agent settles its
        minimum-id unblocked visitor (the random-walk dispersion heuristic).
        Stops early once every agent is settled.  Returns the number of edge
        crossings performed; agent objects, occupancy, ``moves_per_agent``,
        and ``metrics`` (rounds/total_moves/max_moves_per_agent) are left
        exactly as if the rounds had been stepped one by one.

        This generic implementation walks agents in Python (it is the bench's
        reference leg); vectorized backends override it with array code.
        """
        kernel = self.kernel
        assert kernel is not None, "backend not bound to a kernel"
        graph = kernel.graph
        agents = kernel.agents
        rng = random.Random(seed)
        ordered = [agents[a] for a in sorted(agents)]
        injector = kernel.fault_injector
        steps = 0
        for _ in range(rounds):
            if settle and all(a.settled for a in ordered):
                break
            now = kernel.metrics.rounds
            blocked: frozenset[int] = frozenset()
            if injector is not None:
                injector.begin_tick(now, kernel)
                blocked = injector.blocked_cycle_agents(now)
            moves: Dict[int, Optional[int]] = {}
            for agent in ordered:
                if agent.settled or agent.agent_id in blocked:
                    continue
                moves[agent.agent_id] = rng.randint(1, graph.degree(agent.position))
            self.apply_batch(moves)
            steps += len(moves)
            kernel.metrics.rounds += 1
            if settle:
                self._settle_pass(blocked)
            if kernel.trace is not None:
                kernel.trace.record_tick()
        return steps

    def _settle_pass(self, blocked: frozenset[int]) -> None:
        """Settle the min-id unblocked visitor at every settler-free node."""
        kernel = self.kernel
        agents = kernel.agents
        settled_nodes = {a.home for a in agents.values() if a.settled}
        by_node: Dict[int, int] = {}
        for agent_id in sorted(agents):
            agent = agents[agent_id]
            if agent.settled or agent.agent_id in blocked:
                continue
            if agent.position in settled_nodes or agent.position in by_node:
                continue
            by_node[agent.position] = agent_id
        for node, agent_id in by_node.items():
            agents[agent_id].settle(node, None)
