"""The oracle backend: the kernel's original per-agent Python loops.

This is the pre-backend :class:`~repro.sim.kernel.ExecutionKernel` state and
move mechanics, extracted verbatim: a dense per-node list of id sets for
occupancy, dict/attribute mutation per agent per move.  Every other backend
is differentially tested against this one (see
``tests/test_backend_differential.py``), so treat changes here as semantic
changes to the simulator itself -- they require a ``code_version`` bump for
every registered algorithm.

The batch-stepping tier -- ``run_walk`` plus the deterministic driver-phase
primitives (``settled_present`` / ``home_settler_at`` / ``has_home_settler``
/ ``run_probe_round`` / ``run_scatter`` / ``run_phase``) -- is inherited
unchanged from :class:`~repro.sim.backends.base.KernelBackend`: the generic
bodies there *are* this oracle's implementation (the original per-round
driver loops, extracted verbatim), exactly as the per-op tier below is the
original kernel loop.  Vectorized backends override them with array code and
are pinned to the answers produced here.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set

from repro.agents.agent import Agent
from repro.sim.backends.base import KernelBackend

__all__ = ["ReferenceBackend"]


class ReferenceBackend(KernelBackend):
    """Pure-Python world state; correct first, fast second."""

    name = "reference"

    def rebuild(self) -> None:
        kernel = self.kernel
        # Occupancy is a dense per-node list of id sets: node indices are the
        # kernel's hottest keys, so direct indexing beats dict hashing.
        self._occupancy: List[Set[int]] = [set() for _ in range(kernel.graph.num_nodes)]
        for agent in kernel.agents.values():
            self._occupancy[agent.position].add(agent.agent_id)

    @property
    def occupancy(self) -> List[Set[int]]:
        return self._occupancy

    # ---------------------------------------------------------------- movement
    def apply_move(self, agent: Agent, port: int) -> None:
        kernel = self.kernel
        dst, rev = kernel.graph.move(agent.position, port)
        self._occupancy[agent.position].discard(agent.agent_id)
        agent.arrive(dst, rev)
        self._occupancy[dst].add(agent.agent_id)
        kernel.metrics.total_moves += 1
        count = kernel.moves_per_agent.get(agent.agent_id, 0) + 1
        kernel.moves_per_agent[agent.agent_id] = count
        if count > kernel.metrics.max_moves_per_agent:
            kernel.metrics.max_moves_per_agent = count

    def apply_batch(self, moves: Mapping[int, Optional[int]]) -> None:
        kernel = self.kernel
        edge = kernel.graph.move
        occupancy = self._occupancy
        planned: List[tuple[Agent, int, int]] = []  # agent, dst, rev_port
        for agent_id, port in moves.items():
            if port is None:
                continue
            agent = kernel.agents[agent_id]
            dst, rev = edge(agent.position, port)
            planned.append((agent, dst, rev))
        for agent, _dst, _rev in planned:
            occupancy[agent.position].discard(agent.agent_id)
        moves_per_agent = kernel.moves_per_agent
        max_moves = kernel.metrics.max_moves_per_agent
        for agent, dst, rev in planned:
            agent.arrive(dst, rev)
            occupancy[dst].add(agent.agent_id)
            count = moves_per_agent.get(agent.agent_id, 0) + 1
            moves_per_agent[agent.agent_id] = count
            if count > max_moves:
                max_moves = count
        kernel.metrics.total_moves += len(planned)
        kernel.metrics.max_moves_per_agent = max_moves

    # ------------------------------------------------------------ observation
    def present_ids(self, node: int) -> List[int]:
        return sorted(self._occupancy[node])

    def occupied(self, node: int) -> bool:
        return bool(self._occupancy[node])

    def positions(self) -> Dict[int, int]:
        return {a.agent_id: a.position for a in self.kernel.agents.values()}

    def occupancy_counts(self) -> List[int]:
        return [len(ids) for ids in self._occupancy]
