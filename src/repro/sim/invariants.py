"""Run-time invariant checking for dispersion executions.

The algorithms of the paper maintain a handful of safety properties at *every*
step, not only at the end; a fault or a bug can violate them long before the
final configuration is inspected.  :class:`InvariantChecker` hooks into
:meth:`repro.sim.sync_engine.SyncEngine.step` and
:meth:`repro.sim.async_engine.AsyncEngine._activate` and continuously verifies:

* **unique settlement** -- no two settled agents claim the same home node
  (the ≤ 1 settled agent per node safety property of dispersion);
* **settled consistency** -- the simulator's ``agent.settled`` attribute agrees
  with the agent's persistent ``settled`` memory bit, and every settled agent
  has a home;
* **monotone settled count** -- the number of settled agents never drops except
  through the sanctioned :meth:`repro.agents.agent.Agent.unsettle` protocol
  (Backtrack_Move / subsumption), i.e. no state corruption un-settles agents;
* **port bijection** -- after every churn event
  (:meth:`repro.graph.port_graph.PortLabeledGraph.rewire`) the ports at each
  node are again a bijection onto ``1..deg`` with consistent reverse ports;
* **final dispersion validity** -- at finalization, settled agents sit on
  pairwise distinct nodes, each at its recorded home.

Violations are collected as data by default (a falsification harness must keep
running to count them); ``strict=True`` turns the first violation into an
:class:`InvariantError` for use in tests.  Checking is O(k) per tick, so the
``check_every`` knob exists for large sweeps; the port-bijection check is O(m)
but runs only when the graph's churn counter moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.agent import Agent
    from repro.graph.port_graph import PortLabeledGraph

__all__ = ["InvariantError", "InvariantViolation", "InvariantChecker"]


class InvariantError(AssertionError):
    """Raised in strict mode when an invariant is violated."""


@dataclass(frozen=True)
class InvariantViolation:
    """One detected violation: when, which invariant, and what was observed."""

    time: int
    name: str
    detail: str


class InvariantChecker:
    """Continuously verifies dispersion safety properties during a run.

    Parameters
    ----------
    check_every:
        Run the per-tick checks every this many ticks (1 = every tick).  The
        final checks always run at :meth:`finalize` regardless.
    strict:
        Raise :class:`InvariantError` on the first violation instead of
        collecting it.
    max_recorded:
        Cap on stored :class:`InvariantViolation` entries (counting continues
        past the cap; only the details are dropped).
    """

    def __init__(
        self,
        check_every: int = 1,
        strict: bool = False,
        max_recorded: int = 100,
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.check_every = check_every
        self.strict = strict
        self.max_recorded = max_recorded
        self.violations: List[InvariantViolation] = []
        self.violation_count = 0
        self.checks_run = 0
        self._graph: "PortLabeledGraph" | None = None
        self._agents: Mapping[int, "Agent"] = {}
        self._prev_settled = 0
        self._prev_unsettles = 0
        self._seen_churn = 0
        self._tick_counter = 0

    # ------------------------------------------------------------------ wiring
    def attach(self, graph: "PortLabeledGraph", agents: Mapping[int, "Agent"]) -> None:
        """Bind to an engine's world; resets the monotonicity baseline."""
        self._graph = graph
        self._agents = agents
        self._prev_settled = sum(1 for a in agents.values() if a.settled)
        self._prev_unsettles = sum(a.unsettle_count for a in agents.values())
        self._seen_churn = graph.churn_count
        self._tick_counter = 0

    # ------------------------------------------------------------------ checks
    def after_tick(self, time: int) -> None:
        """Engine hook: verify the continuous invariants at tick ``time``."""
        self._tick_counter += 1
        if self._tick_counter % self.check_every:
            return
        self.checks_run += 1
        agents = self._agents

        homes: Dict[int, int] = {}
        settled_now = 0
        for agent in agents.values():
            if agent.settled:
                settled_now += 1
                if agent.home is None:
                    self._record(time, "settled_consistency",
                                 f"agent {agent.agent_id} is settled without a home")
                elif agent.home in homes:
                    self._record(
                        time, "unique_settlement",
                        f"agents {homes[agent.home]} and {agent.agent_id} both "
                        f"claim home node {agent.home}",
                    )
                else:
                    homes[agent.home] = agent.agent_id
            if bool(agent.memory.read("settled")) != agent.settled:
                self._record(
                    time, "settled_consistency",
                    f"agent {agent.agent_id}: settled attribute "
                    f"{agent.settled} != persisted bit {agent.memory.read('settled')}",
                )

        unsettles_now = sum(a.unsettle_count for a in agents.values())
        sanctioned = unsettles_now - self._prev_unsettles
        drop = self._prev_settled - settled_now
        if drop > sanctioned:
            self._record(
                time, "monotone_settled",
                f"settled count fell {self._prev_settled} -> {settled_now} with only "
                f"{sanctioned} sanctioned unsettle(s) since the last check",
            )
        self._prev_settled = settled_now
        self._prev_unsettles = unsettles_now

        graph = self._graph
        if graph is not None and graph.churn_count != self._seen_churn:
            self._seen_churn = graph.churn_count
            try:
                graph.validate()
            except AssertionError as exc:
                self._record(time, "port_bijection", f"after churn: {exc}")

    def finalize(self, time: int) -> None:
        """Engine hook at :meth:`finalize_metrics`: final dispersion validity."""
        self.checks_run += 1
        positions: Dict[int, int] = {}
        for agent in self._agents.values():
            if not agent.settled:
                continue
            if agent.home is not None and agent.position != agent.home:
                self._record(
                    time, "final_dispersion",
                    f"settled agent {agent.agent_id} finished at node "
                    f"{agent.position}, not its home {agent.home}",
                )
            if agent.position in positions:
                self._record(
                    time, "final_dispersion",
                    f"settled agents {positions[agent.position]} and "
                    f"{agent.agent_id} both occupy node {agent.position}",
                )
            else:
                positions[agent.position] = agent.agent_id
        graph = self._graph
        if graph is not None and graph.churn_count:
            try:
                graph.validate()
            except AssertionError as exc:
                self._record(time, "port_bijection", f"at finalization: {exc}")

    # ---------------------------------------------------------------- reports
    def _record(self, time: int, name: str, detail: str) -> None:
        self.violation_count += 1
        if len(self.violations) < self.max_recorded:
            self.violations.append(InvariantViolation(time, name, detail))
        if self.strict:
            raise InvariantError(f"[t={time}] {name}: {detail}")

    def metrics_extra(self) -> Dict[str, float]:
        """Counters folded into :class:`~repro.sim.metrics.RunMetrics` extras."""
        return {
            "invariant_violations": float(self.violation_count),
            "invariant_checks": float(self.checks_run),
        }

    def summary(self) -> str:
        """One line for logs: total violations and the first few details."""
        if not self.violation_count:
            return f"invariants ok ({self.checks_run} checks)"
        head = "; ".join(
            f"[t={v.time}] {v.name}: {v.detail}" for v in self.violations[:3]
        )
        return f"{self.violation_count} invariant violation(s): {head}"
