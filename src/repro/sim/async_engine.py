"""Asynchronous execution engine (the paper's ASYNC setting).

Agents have no common notion of time.  An *activation* is one full
Communicate–Compute–Move cycle of a single agent; the scheduler
(:mod:`repro.sim.adversary`) decides who is activated next, subject only to the
fairness guarantee that every agent is activated infinitely often.  Time is
measured in *epochs*: epoch ``i`` is the smallest interval after epoch ``i-1``
within which every agent has completed at least one cycle.  The engine counts
epochs exactly that way -- the algorithms never self-report time.

Algorithms drive agents through small *programs*: Python generators that yield
one action per CCM cycle.  Three actions exist:

* :class:`Move` -- exit the current node through a port (one edge per cycle),
* :class:`Stay` -- a cycle with no movement (pure compute/communicate),
* :class:`WaitUntil` -- remain at the node until a locally-observable predicate
  becomes true; every failed check consumes one cycle, which is how the paper's
  algorithms "wait for all probers to return" under asynchrony.

Program code runs only while its agent is activated, so any reads/writes it
performs against co-located agents model the Communicate/Compute phases of that
agent's own cycle.

Like :class:`~repro.sim.sync_engine.SyncEngine`, this engine is a thin facade
over the shared :class:`~repro.sim.kernel.ExecutionKernel`: the kernel owns
the world (agent table, occupancy, move mechanics, fault wiring, observation
queries) while this class contributes the activation-level scheduling
discipline -- program/pending bookkeeping, epoch counting, and the per-cycle
fault clock.  Because scheduling is fully delegated to the pluggable
:class:`~repro.sim.adversary.Scheduler` family, the same engine covers the
entire non-lockstep synchrony spectrum: classic ASYNC adversaries,
semi-synchronous round subsets, and k-bounded-delay schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Union

from repro.agents.agent import Agent
from repro.graph.port_graph import PortLabeledGraph
from repro.sim.adversary import Adversary, RandomAdversary
from repro.sim.backends import KernelBackend
from repro.sim.faults import AgentFaultView, FaultInjector
from repro.sim.invariants import InvariantChecker
from repro.sim.kernel import ExecutionKernel
from repro.sim.metrics import RunMetrics

__all__ = ["Move", "Stay", "WaitUntil", "AsyncEngine"]


@dataclass(frozen=True)
class Move:
    """Exit the current node through ``port`` this cycle."""

    port: int


@dataclass(frozen=True)
class Stay:
    """A cycle in which the agent does not move."""


@dataclass(frozen=True)
class WaitUntil:
    """Block at the current node until ``predicate()`` is true.

    The predicate must depend only on information observable at the agent's
    node (co-located agents' memory and the agent's own state); every check
    consumes one activation of the waiting agent.
    """

    predicate: Callable[[], bool]


Action = Union[Move, Stay, WaitUntil]
Program = Iterator[Action]


class AsyncEngine:
    """Activation-level scheduler for ASYNC executions.

    Parameters
    ----------
    graph, agents:
        The substrate and population, as for :class:`~repro.sim.sync_engine.SyncEngine`.
    adversary:
        Activation policy (any :class:`~repro.sim.adversary.Scheduler`);
        defaults to :class:`RandomAdversary` with seed 0.
    max_activations:
        Safety cap turning livelock bugs into test failures.
    fault_injector, invariant_checker:
        Optional fault model and run-time safety checks (see
        :mod:`repro.sim.faults` / :mod:`repro.sim.invariants`); resolved from
        the ambient :mod:`repro.sim.instrumentation` context when omitted.
    backend:
        World-state representation (:mod:`repro.sim.backends`): a registry
        name or instance; ``None`` resolves from the ambient context, falling
        back to the ``"reference"`` default.

    Construction is fully delegated to
    :meth:`ExecutionKernel.for_engine` (shared verbatim with
    :class:`~repro.sim.sync_engine.SyncEngine`); scenario-level wiring lives
    one layer up in :func:`repro.runner.execute.build_engine`.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        agents: Iterable[Agent],
        adversary: Optional[Adversary] = None,
        max_activations: Optional[int] = None,
        fault_injector: Optional[FaultInjector] = None,
        invariant_checker: Optional[InvariantChecker] = None,
        backend: Union[None, str, KernelBackend] = None,
    ) -> None:
        self._kernel = ExecutionKernel.for_engine(
            "async",
            graph,
            agents,
            fault_injector=fault_injector,
            invariant_checker=invariant_checker,
            backend=backend,
        )
        self.adversary = adversary if adversary is not None else RandomAdversary(0)
        self.adversary.bind(sorted(self._kernel.agents))
        self.adversary.attach(self)
        self.max_activations = max_activations
        self._programs: Dict[int, Optional[Program]] = {
            a: None for a in self._kernel.agents
        }
        self._pending: Dict[int, Optional[Action]] = {
            a: None for a in self._kernel.agents
        }
        self._active_this_epoch: Set[int] = set()

    # ------------------------------------------------------- kernel delegation
    @property
    def kernel(self) -> ExecutionKernel:
        """The shared execution kernel this engine schedules."""
        return self._kernel

    @property
    def graph(self) -> PortLabeledGraph:
        return self._kernel.graph

    @property
    def agents(self) -> Dict[int, Agent]:
        return self._kernel.agents

    @property
    def metrics(self) -> RunMetrics:
        return self._kernel.metrics

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        return self._kernel.fault_injector

    @property
    def invariant_checker(self) -> Optional[InvariantChecker]:
        return self._kernel.invariant_checker

    @property
    def _occupancy(self) -> List[Set[int]]:
        return self._kernel.occupancy

    @property
    def _moves_per_agent(self) -> Dict[int, int]:
        return self._kernel.moves_per_agent

    # ------------------------------------------------------------- programs
    def assign(self, agent_id: int, program: Program) -> None:
        """Install a program on an agent (overwrites any previous program).

        By convention the caller is an algorithm acting on behalf of an agent
        co-located with ``agent_id`` (writing its memory during the Communicate
        phase), or the initial setup before time starts.
        """
        self._programs[agent_id] = program
        self._pending[agent_id] = None

    def is_idle(self, agent_id: int) -> bool:
        """True when the agent has no program and no pending action."""
        return self._programs[agent_id] is None and self._pending[agent_id] is None

    def cancel(self, agent_id: int) -> None:
        """Drop an agent's pending program/action (the instructing agent is
        co-located and rewrites its orders, e.g. a see-off escort that is no
        longer needed)."""
        self._programs[agent_id] = None
        self._pending[agent_id] = None

    # ------------------------------------------------------------ scheduling
    @property
    def epochs(self) -> int:
        """Completed epochs so far (see :meth:`close_epoch` for the final partial one)."""
        return self._kernel.metrics.epochs

    def run_until(self, predicate: Callable[[], bool], check_every: int = 1) -> None:
        """Activate agents (per the scheduler) until ``predicate()`` is true.

        ``check_every`` batches the predicate evaluation: the predicate is
        checked once before the run and then after every ``check_every``
        activations, so an expensive global predicate (e.g. "all agents
        settled" over a large population) amortizes over a burst of cheap
        activations.  The run may therefore overshoot the predicate's first
        true point by up to ``check_every - 1`` activations; the default of 1
        preserves exact per-activation checking.
        """
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        metrics = self._kernel.metrics
        while not predicate():
            for _ in range(check_every):
                agent_id = self.adversary.next_agent()
                self._activate(agent_id)
                if self.max_activations is not None and metrics.activations > self.max_activations:
                    raise RuntimeError(
                        f"exceeded max_activations={self.max_activations}; "
                        "the algorithm is probably livelocked"
                    )
        self.close_epoch()

    def close_epoch(self) -> None:
        """Count a trailing partial epoch (conservative rounding up)."""
        if self._active_this_epoch:
            self._kernel.metrics.epochs += 1
            self._active_this_epoch.clear()

    def _activate(self, agent_id: int) -> None:
        kernel = self._kernel
        agent = kernel.agents[agent_id]
        now = kernel.metrics.activations
        kernel.metrics.activations = now + 1
        injector = kernel.fault_injector
        checker = kernel.invariant_checker
        if injector is not None:
            injector.begin_tick(now, self)
            if injector.view(agent_id, now).blocked_for_cycle:
                # A crashed/frozen agent is scheduled but performs no cycle; it
                # does not count toward the epoch (an epoch ends only when every
                # agent *completes* a CCM cycle).
                injector.record_blocked(agent_id, now)
                if checker is not None:
                    checker.after_tick(now + 1)
                if kernel.trace is not None:
                    kernel.trace.record_activation(agent_id)
                return

        # Program code running below belongs to this activation: any fault
        # query it makes (agents_at, fault_view) is answered at tick ``now``,
        # matching the blocked check above.
        kernel.cycle_time = now
        try:
            action = self._pending[agent_id]
            if action is None:
                program = self._programs[agent_id]
                if program is not None:
                    try:
                        action = next(program)
                    except StopIteration:
                        self._programs[agent_id] = None
                        action = None
            if action is not None:
                if isinstance(action, Move):
                    if (
                        injector is not None
                        and injector.view(agent_id, now).blocked_for_move
                    ):
                        # A mobility-only fault (cycle runs, crossing doesn't):
                        # defer the Move exactly as a failed WaitUntil defers.
                        # Crash/freeze never reach here -- they block the whole
                        # cycle above.
                        self._pending[agent_id] = action
                    else:
                        kernel.apply_move(agent, action.port)
                        self._pending[agent_id] = None
                elif isinstance(action, Stay):
                    self._pending[agent_id] = None
                elif isinstance(action, WaitUntil):
                    if action.predicate():
                        self._pending[agent_id] = None
                    else:
                        self._pending[agent_id] = action
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown action {action!r}")
        finally:
            kernel.cycle_time = None

        # Epoch bookkeeping: this agent completed one CCM cycle.
        self._active_this_epoch.add(agent_id)
        if len(self._active_this_epoch) == len(kernel.agents):
            kernel.metrics.epochs += 1
            self._active_this_epoch.clear()
        if checker is not None:
            checker.after_tick(now + 1)
        if kernel.trace is not None:
            kernel.trace.record_activation(agent_id)

    # ------------------------------------------------------------ observation
    # The kernel's observation queries are the single documented query
    # surface (the v2 fault-visibility contract lives there, shared verbatim
    # with the SYNC engine and with every backend); the fault clock inside an
    # activation is the executing cycle's tick.  The methods below are thin
    # aliases kept for engine-level ergonomics and back-compat; new code --
    # like the migrated drivers in ``repro.core`` -- should call
    # ``engine.kernel.<query>`` directly.

    def fault_view(self, agent_id: int) -> AgentFaultView:
        """The agent's :class:`AgentFaultView` at the current fault clock."""
        return self._kernel.fault_view(agent_id)

    def agents_at(self, node: int) -> List[Agent]:
        """Agents at ``node`` that participate in communication right now."""
        return self._kernel.agents_at(node)

    def occupied(self, node: int) -> bool:
        """True when at least one agent body is at ``node`` (physical query)."""
        return self._kernel.occupied(node)

    def settled_agent_at(self, node: int) -> Optional[Agent]:
        """The settled agent at ``node`` that answers probes right now."""
        return self._kernel.settled_agent_at(node)

    def settled_agents_at(self, node: int) -> List[Agent]:
        """All settled agents at ``node`` that answer probes right now."""
        return self._kernel.settled_agents_at(node)

    def positions(self) -> Dict[int, int]:
        """Snapshot of ``agent_id -> node``."""
        return self._kernel.positions()

    def finalize_metrics(self) -> RunMetrics:
        """Fold per-agent memory peaks (and any fault/invariant counters) into
        the run metrics and return them."""
        self.close_epoch()
        return self._kernel.finalize_metrics()
