"""Asynchronous execution engine (the paper's ASYNC setting).

Agents have no common notion of time.  An *activation* is one full
Communicate–Compute–Move cycle of a single agent; the adversary
(:mod:`repro.sim.adversary`) decides who is activated next, subject only to the
fairness guarantee that every agent is activated infinitely often.  Time is
measured in *epochs*: epoch ``i`` is the smallest interval after epoch ``i-1``
within which every agent has completed at least one cycle.  The engine counts
epochs exactly that way -- the algorithms never self-report time.

Algorithms drive agents through small *programs*: Python generators that yield
one action per CCM cycle.  Three actions exist:

* :class:`Move` -- exit the current node through a port (one edge per cycle),
* :class:`Stay` -- a cycle with no movement (pure compute/communicate),
* :class:`WaitUntil` -- remain at the node until a locally-observable predicate
  becomes true; every failed check consumes one cycle, which is how the paper's
  algorithms "wait for all probers to return" under asynchrony.

Program code runs only while its agent is activated, so any reads/writes it
performs against co-located agents model the Communicate/Compute phases of that
agent's own cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Union

from repro.agents.agent import Agent
from repro.graph.port_graph import PortLabeledGraph
from repro.sim import instrumentation
from repro.sim.adversary import Adversary, RandomAdversary
from repro.sim.faults import AgentFaultView, FaultInjector
from repro.sim.invariants import InvariantChecker
from repro.sim.metrics import RunMetrics

__all__ = ["Move", "Stay", "WaitUntil", "AsyncEngine"]


@dataclass(frozen=True)
class Move:
    """Exit the current node through ``port`` this cycle."""

    port: int


@dataclass(frozen=True)
class Stay:
    """A cycle in which the agent does not move."""


@dataclass(frozen=True)
class WaitUntil:
    """Block at the current node until ``predicate()`` is true.

    The predicate must depend only on information observable at the agent's
    node (co-located agents' memory and the agent's own state); every check
    consumes one activation of the waiting agent.
    """

    predicate: Callable[[], bool]


Action = Union[Move, Stay, WaitUntil]
Program = Iterator[Action]


class AsyncEngine:
    """Activation-level scheduler for ASYNC executions.

    Parameters
    ----------
    graph, agents:
        The substrate and population, as for :class:`~repro.sim.sync_engine.SyncEngine`.
    adversary:
        Activation policy; defaults to :class:`RandomAdversary` with seed 0.
    max_activations:
        Safety cap turning livelock bugs into test failures.
    fault_injector, invariant_checker:
        Optional fault model and run-time safety checks (see
        :mod:`repro.sim.faults` / :mod:`repro.sim.invariants`); resolved from
        the ambient :mod:`repro.sim.instrumentation` context when omitted.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        agents: Iterable[Agent],
        adversary: Optional[Adversary] = None,
        max_activations: Optional[int] = None,
        fault_injector: Optional[FaultInjector] = None,
        invariant_checker: Optional[InvariantChecker] = None,
    ) -> None:
        self.graph = graph
        self.agents: Dict[int, Agent] = {}
        # Dense per-node occupancy (see SyncEngine): indexing by node beats
        # dict hashing on the activation hot path.
        self._occupancy: List[Set[int]] = [set() for _ in range(graph.num_nodes)]
        for agent in agents:
            if agent.agent_id in self.agents:
                raise ValueError(f"duplicate agent id {agent.agent_id}")
            self.agents[agent.agent_id] = agent
            self._occupancy[agent.position].add(agent.agent_id)
        if not self.agents:
            raise ValueError("need at least one agent")
        self.adversary = adversary if adversary is not None else RandomAdversary(0)
        self.adversary.bind(sorted(self.agents))
        self.adversary.attach(self)
        self.max_activations = max_activations
        config = instrumentation.current()
        if fault_injector is None and config is not None:
            fault_injector = config.make_injector(sorted(self.agents))
        if invariant_checker is None and config is not None:
            invariant_checker = config.make_checker(graph, self.agents)
        elif invariant_checker is not None:
            invariant_checker.attach(graph, self.agents)
        self.fault_injector = fault_injector
        self.invariant_checker = invariant_checker

        self.metrics = RunMetrics()
        self._moves_per_agent: Dict[int, int] = {}
        self._programs: Dict[int, Optional[Program]] = {a: None for a in self.agents}
        self._pending: Dict[int, Optional[Action]] = {a: None for a in self.agents}
        self._active_this_epoch: Set[int] = set()
        #: While an activation is executing, the tick it runs at; fault queries
        #: made by program code must see *that* tick, not the already-advanced
        #: activation counter (``None`` between activations).
        self._cycle_time: Optional[int] = None

    # ------------------------------------------------------------- programs
    def assign(self, agent_id: int, program: Program) -> None:
        """Install a program on an agent (overwrites any previous program).

        By convention the caller is an algorithm acting on behalf of an agent
        co-located with ``agent_id`` (writing its memory during the Communicate
        phase), or the initial setup before time starts.
        """
        self._programs[agent_id] = program
        self._pending[agent_id] = None

    def is_idle(self, agent_id: int) -> bool:
        """True when the agent has no program and no pending action."""
        return self._programs[agent_id] is None and self._pending[agent_id] is None

    def cancel(self, agent_id: int) -> None:
        """Drop an agent's pending program/action (the instructing agent is
        co-located and rewrites its orders, e.g. a see-off escort that is no
        longer needed)."""
        self._programs[agent_id] = None
        self._pending[agent_id] = None

    # ------------------------------------------------------------ scheduling
    @property
    def epochs(self) -> int:
        """Completed epochs so far (see :meth:`close_epoch` for the final partial one)."""
        return self.metrics.epochs

    def run_until(self, predicate: Callable[[], bool], check_every: int = 1) -> None:
        """Activate agents (per the adversary) until ``predicate()`` is true."""
        checks = 0
        while not predicate():
            agent_id = self.adversary.next_agent()
            self._activate(agent_id)
            checks += 1
            if self.max_activations is not None and self.metrics.activations > self.max_activations:
                raise RuntimeError(
                    f"exceeded max_activations={self.max_activations}; "
                    "the algorithm is probably livelocked"
                )
        self.close_epoch()

    def close_epoch(self) -> None:
        """Count a trailing partial epoch (conservative rounding up)."""
        if self._active_this_epoch:
            self.metrics.epochs += 1
            self._active_this_epoch.clear()

    def _activate(self, agent_id: int) -> None:
        agent = self.agents[agent_id]
        now = self.metrics.activations
        self.metrics.activations = now + 1
        injector = self.fault_injector
        if injector is not None:
            injector.begin_tick(now, self)
            if injector.view(agent_id, now).blocked_for_cycle:
                # A crashed/frozen agent is scheduled but performs no cycle; it
                # does not count toward the epoch (an epoch ends only when every
                # agent *completes* a CCM cycle).
                injector.record_blocked(agent_id, now)
                if self.invariant_checker is not None:
                    self.invariant_checker.after_tick(now + 1)
                return

        # Program code running below belongs to this activation: any fault
        # query it makes (agents_at, fault_view) is answered at tick ``now``,
        # matching the blocked check above.
        self._cycle_time = now
        try:
            action = self._pending[agent_id]
            if action is None:
                program = self._programs[agent_id]
                if program is not None:
                    try:
                        action = next(program)
                    except StopIteration:
                        self._programs[agent_id] = None
                        action = None
            if action is not None:
                if isinstance(action, Move):
                    if (
                        injector is not None
                        and injector.view(agent_id, now).blocked_for_move
                    ):
                        # A mobility-only fault (cycle runs, crossing doesn't):
                        # defer the Move exactly as a failed WaitUntil defers.
                        # Crash/freeze never reach here -- they block the whole
                        # cycle above.
                        self._pending[agent_id] = action
                    else:
                        self._move(agent, action.port)
                        self._pending[agent_id] = None
                elif isinstance(action, Stay):
                    self._pending[agent_id] = None
                elif isinstance(action, WaitUntil):
                    if action.predicate():
                        self._pending[agent_id] = None
                    else:
                        self._pending[agent_id] = action
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown action {action!r}")
        finally:
            self._cycle_time = None

        # Epoch bookkeeping: this agent completed one CCM cycle.
        self._active_this_epoch.add(agent_id)
        if len(self._active_this_epoch) == len(self.agents):
            self.metrics.epochs += 1
            self._active_this_epoch.clear()
        if self.invariant_checker is not None:
            self.invariant_checker.after_tick(now + 1)

    def _move(self, agent: Agent, port: int) -> None:
        dst, rev = self.graph.move(agent.position, port)
        self._occupancy[agent.position].discard(agent.agent_id)
        agent.arrive(dst, rev)
        self._occupancy[dst].add(agent.agent_id)
        self.metrics.total_moves += 1
        count = self._moves_per_agent.get(agent.agent_id, 0) + 1
        self._moves_per_agent[agent.agent_id] = count
        if count > self.metrics.max_moves_per_agent:
            self.metrics.max_moves_per_agent = count

    # ------------------------------------------------------------ observation
    def _fault_clock(self) -> int:
        """The tick fault queries are answered at: the executing activation's
        tick while inside one, else the upcoming activation index."""
        if self._cycle_time is not None:
            return self._cycle_time
        return self.metrics.activations

    def fault_view(self, agent_id: int) -> AgentFaultView:
        """The agent's :class:`AgentFaultView` at the current fault clock.

        The healthy view when no fault injector is installed; drivers gate
        their on-behalf-of actions (settling an agent, conscripting it into a
        group walk) through this instead of reaching into the injector.
        """
        if self.fault_injector is None:
            return AgentFaultView(agent_id=agent_id)
        return self.fault_injector.view(agent_id, self._fault_clock())

    def agents_at(self, node: int) -> List[Agent]:
        """Agents at ``node`` that participate in communication right now.

        The Communicate-phase query of the v2 fault contract (see
        :meth:`SyncEngine.agents_at <repro.sim.sync_engine.SyncEngine.agents_at>`):
        a crashed/frozen agent's body stays on the node but it is invisible to
        co-located interaction -- it cannot answer probes, be settled, or be
        instructed while blocked.
        """
        present = sorted(self._occupancy[node])
        injector = self.fault_injector
        if injector is None:
            return [self.agents[a] for a in present]
        now = self._fault_clock()
        return [self.agents[a] for a in present if not injector.is_blocked(a, now)]

    def settled_agent_at(self, node: int) -> Optional[Agent]:
        """The settled agent at ``node`` that answers probes right now."""
        for agent in self.agents_at(node):
            if agent.settled and self.fault_view(agent.agent_id).answers_probes:
                return agent
        return None

    def settled_agents_at(self, node: int) -> List[Agent]:
        """All settled agents at ``node`` that answer probes right now."""
        return [
            a
            for a in self.agents_at(node)
            if a.settled and self.fault_view(a.agent_id).answers_probes
        ]

    def positions(self) -> Dict[int, int]:
        """Snapshot of ``agent_id -> node``."""
        return {a.agent_id: a.position for a in self.agents.values()}

    def finalize_metrics(self) -> RunMetrics:
        """Fold per-agent memory peaks (and any fault/invariant counters) into
        the run metrics and return them."""
        self.close_epoch()
        self.metrics.record_memory(self.agents.values())
        if self.invariant_checker is not None:
            self.invariant_checker.finalize(self.metrics.activations)
            for name, value in self.invariant_checker.metrics_extra().items():
                self.metrics.set_extra(name, value)
        if self.fault_injector is not None:
            for name, value in self.fault_injector.metrics_extra().items():
                self.metrics.set_extra(name, value)
        return self.metrics
