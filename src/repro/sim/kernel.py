"""Execution kernel shared by every simulation engine.

The paper's SYNC and ASYNC settings are two points on one scheduling
spectrum: both execute the same Communicate–Compute–Move cycle against the
same world state, they differ only in *who acts when* (every agent in
lockstep rounds vs. adversary-chosen single activations).  Everything that
is a property of the **world** rather than of the **schedule** therefore
lives here, in one :class:`ExecutionKernel` that both
:class:`~repro.sim.sync_engine.SyncEngine` and
:class:`~repro.sim.async_engine.AsyncEngine` are thin facades over:

* the agent table and the pluggable **state backend**
  (:mod:`repro.sim.backends`) holding the dense per-node occupancy and
  applying moves -- the per-agent reference loop or the numpy
  struct-of-arrays layout, selected per scenario,
* move application (single activation moves and simultaneous SYNC batches)
  with the per-agent move accounting behind ``max_moves_per_agent``,
* resolution of the fault injector / invariant checker / backend from
  explicit arguments or the ambient :mod:`repro.sim.instrumentation` context,
* the **fault clock** -- the tick fault queries are answered at: the
  executing activation's tick while program code runs inside one
  (``cycle_time``), else the engine's native counter (rounds or
  activations),
* the v2 fault-visibility observation queries (``agents_at``, ``occupied``,
  ``settled_agent_at``, ``settled_agents_at``, ``fault_view``,
  ``positions``, ``finalize_metrics``): a crashed/frozen agent's body stays
  physically present but it is invisible to co-located interaction -- it can
  neither settle, be settled or instructed, nor answer probes while blocked.

Scheduling policy -- what a "step" is, how time advances, which agent acts
next -- stays in the facades and in the pluggable schedulers of
:mod:`repro.sim.adversary`.  That split is what opens the synchrony
spectrum: a new scheduling discipline (semi-synchronous, bounded-delay)
composes with the kernel instead of re-implementing the world logic.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Union,
)

from repro.agents.agent import Agent
from repro.graph.port_graph import PortLabeledGraph
from repro.sim import instrumentation
from repro.sim.backends import KernelBackend, resolve_backend
from repro.sim.faults import AgentFaultView, FaultInjector
from repro.sim.invariants import InvariantChecker
from repro.sim.metrics import RunMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import TraceRecorder

__all__ = ["ExecutionKernel"]


class ExecutionKernel:
    """World state, move mechanics, and fault-filtered observation queries.

    Parameters
    ----------
    graph:
        The anonymous port-labeled graph.
    agents:
        The agents, each already carrying its start position.
    time_attr:
        Which :class:`~repro.sim.metrics.RunMetrics` counter is the engine's
        native clock: ``"rounds"`` (SYNC) or ``"activations"`` (ASYNC).  The
        fault clock reads it whenever no activation is executing.
    fault_injector, invariant_checker:
        Optional fault model and run-time safety checks (see
        :mod:`repro.sim.faults` / :mod:`repro.sim.invariants`).  When
        omitted, both are resolved from the ambient instrumentation context
        (:mod:`repro.sim.instrumentation`), which is how the experiment
        runner instruments engines that algorithm drivers build internally.
    backend:
        World-state representation (:mod:`repro.sim.backends`): a registry
        name, an unbound :class:`~repro.sim.backends.KernelBackend`
        instance, or ``None`` to resolve from the ambient instrumentation
        context, falling back to the ``"reference"`` default.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        agents: Iterable[Agent],
        time_attr: str = "rounds",
        fault_injector: Optional[FaultInjector] = None,
        invariant_checker: Optional[InvariantChecker] = None,
        backend: Union[None, str, KernelBackend] = None,
    ) -> None:
        if time_attr not in ("rounds", "activations"):
            raise ValueError(f"time_attr must be 'rounds' or 'activations', got {time_attr!r}")
        self.graph = graph
        self.agents: Dict[int, Agent] = {}
        for agent in agents:
            if agent.agent_id in self.agents:
                raise ValueError(f"duplicate agent id {agent.agent_id}")
            self.agents[agent.agent_id] = agent
        if not self.agents:
            raise ValueError("need at least one agent")
        self.metrics = RunMetrics()
        self.moves_per_agent: Dict[int, int] = {}
        self._count_activations = time_attr == "activations"
        #: While an activation is executing, the tick it runs at; fault queries
        #: made by program code must see *that* tick, not the already-advanced
        #: activation counter (``None`` between activations).
        self.cycle_time: Optional[int] = None
        config = instrumentation.current()
        if fault_injector is None and config is not None:
            fault_injector = config.make_injector(sorted(self.agents))
        if invariant_checker is None and config is not None:
            invariant_checker = config.make_checker(graph, self.agents)
        elif invariant_checker is not None:
            invariant_checker.attach(graph, self.agents)
        self.fault_injector = fault_injector
        self.invariant_checker = invariant_checker
        if backend is None and config is not None:
            backend = config.backend
        self.backend = resolve_backend(backend)
        self.backend.bind(self)
        # The recorder snapshots initial positions through the backend, so it
        # must resolve after the bind.  ``None`` is the tracing-off fast path:
        # every hook below is a single attribute check.
        self.trace: Optional["TraceRecorder"] = None
        if config is not None and config.trace:
            self.trace = config.make_recorder(self)

    @classmethod
    def for_engine(
        cls,
        setting: str,
        graph: PortLabeledGraph,
        agents: Iterable[Agent],
        *,
        fault_injector: Optional[FaultInjector] = None,
        invariant_checker: Optional[InvariantChecker] = None,
        backend: Union[None, str, KernelBackend] = None,
    ) -> "ExecutionKernel":
        """The one construction path both engine facades delegate to.

        ``setting`` is ``"sync"`` or ``"async"`` and picks the native clock;
        everything else is the constructor, so fault/invariant/backend wiring
        cannot drift between the facades (see also
        :func:`repro.runner.execute.build_engine`, which layers scenario
        wiring on top of this).
        """
        if setting not in ("sync", "async"):
            raise ValueError(f"setting must be 'sync' or 'async', got {setting!r}")
        return cls(
            graph,
            agents,
            time_attr="activations" if setting == "async" else "rounds",
            fault_injector=fault_injector,
            invariant_checker=invariant_checker,
            backend=backend,
        )

    @property
    def occupancy(self) -> List[Set[int]]:
        """The backend's live per-node id sets (stable object across calls)."""
        return self.backend.occupancy

    # -------------------------------------------------------------- the clock
    def now(self) -> int:
        """The tick fault queries are answered at (the fault clock)."""
        if self.cycle_time is not None:
            return self.cycle_time
        metrics = self.metrics
        return metrics.activations if self._count_activations else metrics.rounds

    # ---------------------------------------------------------------- movement
    def apply_move(self, agent: Agent, port: int) -> None:
        """Cross one edge in a single-agent activation (the ASYNC primitive)."""
        self.backend.apply_move(agent, port)

    def apply_batch(self, moves: Mapping[int, Optional[int]]) -> None:
        """Apply one round's move batch simultaneously (the SYNC primitive).

        ``moves`` maps agent id to exit port; ``None`` ports mean "stay put".
        All moves are validated against the *current* positions first, then
        every source is vacated and the batch lands at once, exactly as in the
        SYNC model (no agent observes another on an edge).
        """
        self.backend.apply_batch(moves)

    # ------------------------------------------------------------ observation
    def fault_view(self, agent_id: int) -> AgentFaultView:
        """The agent's :class:`AgentFaultView` at the current fault clock.

        The healthy view when no fault injector is installed; drivers gate
        their on-behalf-of actions (settling an agent, conscripting it into a
        group move) through this instead of reaching into the injector.
        """
        if self.fault_injector is None:
            return AgentFaultView(agent_id=agent_id)
        return self.fault_injector.view(agent_id, self.now())

    def agents_at(self, node: int) -> List[Agent]:
        """Agents at ``node`` that participate in communication right now.

        This is the Communicate-phase query of the v2 fault contract: a
        crashed/frozen agent's body remains on the node (see
        :meth:`positions` / :meth:`occupied`) but it executes no cycle, so it
        is invisible here -- it cannot answer probes, be settled, or be
        instructed while blocked.
        """
        present = self.backend.present_ids(node)
        injector = self.fault_injector
        if injector is None:
            return [self.agents[a] for a in present]
        now = self.now()
        return [self.agents[a] for a in present if not injector.is_blocked(a, now)]

    def occupied(self, node: int) -> bool:
        """True when at least one agent body is at ``node`` (physical query)."""
        return self.backend.occupied(node)

    def settled_agent_at(self, node: int) -> Optional[Agent]:
        """The settled agent at ``node`` that answers probes right now."""
        found: Optional[Agent] = None
        for agent in self.agents_at(node):
            if agent.settled and self.fault_view(agent.agent_id).answers_probes:
                found = agent
                break
        if self.trace is not None:
            self.trace.count_probe(found is not None)
        return found

    def settled_agents_at(self, node: int) -> List[Agent]:
        """All settled agents at ``node`` that answer probes right now."""
        found = [
            a
            for a in self.agents_at(node)
            if a.settled and self.fault_view(a.agent_id).answers_probes
        ]
        if self.trace is not None:
            self.trace.count_probe(bool(found))
        return found

    def settled_present(self, node: int, exclude_id: Optional[int] = None) -> bool:
        """True when a settled agent other than ``exclude_id`` communicates at
        ``node`` right now.

        Backend-delegated driver-phase query (deterministic batch tier): the
        answer is fault-filtered like :meth:`agents_at`, but -- matching the
        driver loops it replaced -- it does *not* count a trace probe (only
        :meth:`settled_agent_at` / :meth:`settled_agents_at` do).
        """
        return self.backend.settled_present(node, exclude_id)

    def home_settler_at(self, node: int) -> Optional[Agent]:
        """The min-id communicating agent settled with ``home == node``."""
        return self.backend.home_settler_at(node)

    def has_home_settler(self, node: int, exclude_id: Optional[int] = None) -> bool:
        """True when a communicating agent other than ``exclude_id`` is settled
        with ``home == node`` (the scatter drivers' "node is taken" test)."""
        return self.backend.has_home_settler(node, exclude_id)

    def run_probe_round(
        self, nodes: Sequence[int], exclude_ids: Sequence[int]
    ) -> List[bool]:
        """Batched :meth:`settled_present` over parallel sequences."""
        return self.backend.run_probe_round(nodes, exclude_ids)

    def positions(self) -> Dict[int, int]:
        """Snapshot of ``agent_id -> node``."""
        return self.backend.positions()

    def finalize_metrics(self) -> RunMetrics:
        """Fold per-agent memory peaks (and any fault/invariant counters) into
        the run metrics and return them."""
        self.metrics.record_memory(self.agents.values())
        if self.invariant_checker is not None:
            self.invariant_checker.finalize(self.now())
            for name, value in self.invariant_checker.metrics_extra().items():
                self.metrics.set_extra(name, value)
        if self.fault_injector is not None:
            for name, value in self.fault_injector.metrics_extra().items():
                self.metrics.set_extra(name, value)
        return self.metrics
