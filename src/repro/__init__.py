"""repro: a reproduction of "Dispersion is (Almost) Optimal under (A)synchrony".

The package implements, from scratch, everything needed to run and measure the
paper's dispersion algorithms on a laptop:

* an anonymous, port-labeled graph substrate and a topology zoo
  (:mod:`repro.graph`),
* a mobile-agent model with per-agent memory-bit accounting
  (:mod:`repro.agents`),
* synchronous and asynchronous (adversarial) execution engines
  (:mod:`repro.sim`),
* the paper's algorithms -- rooted/general × SYNC/ASYNC -- and their building
  blocks (:mod:`repro.core`),
* the prior-work baselines they are compared against in Table 1
  (:mod:`repro.baselines`),
* verification and scaling analysis used by the benchmark harness
  (:mod:`repro.analysis`).

Quickstart
----------

>>> from repro import generators, rooted_sync_dispersion
>>> g = generators.random_tree(64, seed=1)
>>> result = rooted_sync_dispersion(g, k=64)
>>> result.dispersed
True
"""

from repro.graph import generators, PortLabeledGraph, PortAssignment
from repro.core import (
    rooted_sync_dispersion,
    RootedSyncDispersion,
    rooted_async_dispersion,
    RootedAsyncDispersion,
    select_empty_nodes,
)
from repro.baselines import (
    naive_sync_dispersion,
    ks_async_dispersion,
    sudo_sync_dispersion,
    random_walk_dispersion,
)
from repro.sim import (
    RandomAdversary,
    RoundRobinAdversary,
    StarvationAdversary,
    DispersionResult,
)
from repro.analysis import verify_dispersion, is_dispersed, fit_power_law

__version__ = "1.0.0"

__all__ = [
    "generators",
    "PortLabeledGraph",
    "PortAssignment",
    "rooted_sync_dispersion",
    "RootedSyncDispersion",
    "rooted_async_dispersion",
    "RootedAsyncDispersion",
    "general_sync_dispersion",
    "general_async_dispersion",
    "select_empty_nodes",
    "naive_sync_dispersion",
    "ks_async_dispersion",
    "sudo_sync_dispersion",
    "random_walk_dispersion",
    "RandomAdversary",
    "RoundRobinAdversary",
    "StarvationAdversary",
    "DispersionResult",
    "verify_dispersion",
    "is_dispersed",
    "fit_power_law",
    "__version__",
]


def __getattr__(name):  # pragma: no cover - lazy re-export of the general drivers
    if name in ("general_sync_dispersion", "general_async_dispersion"):
        import repro.core as _core

        return getattr(_core, name)
    raise AttributeError(name)
