"""ASYNC dispersion in the style of Kshemkalyani–Sharma [OPODIS'21].

This is the ``O(min{m, kΔ})``-epoch baseline that the paper's Theorem 7.1
improves to ``O(k log k)``.  The structure is the classical DFS with sequential
neighbor probing, run under the asynchronous CCM scheduler:

* every visited node keeps a settler storing its DFS parent port and a
  ``next_port`` scan cursor;
* the leader scouts the head's unchecked ports one at a time (a 2-activation
  round trip per port), so a node of degree ``δ`` costs ``Θ(δ)`` epochs before
  the DFS can advance or retreat;
* on a forward/backtrack move the leader instructs the co-located unsettled
  agents to cross the chosen edge and waits until they have all arrived before
  continuing (the waiting is what asynchrony costs; the wait is measured in
  real scheduler activations, never assumed).

Time is measured in epochs by :class:`~repro.sim.async_engine.AsyncEngine`
exactly as defined in the paper (Section 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.agents.agent import Agent, AgentRole
from repro.agents.memory import FieldKind, MemoryModel
from repro.analysis.verification import is_dispersed
from repro.graph.port_graph import PortLabeledGraph
from repro.sim.adversary import Adversary
from repro.sim.async_engine import AsyncEngine, Move, Stay, WaitUntil
from repro.sim.result import DispersionResult

__all__ = ["KSAsyncDispersion", "ks_async_dispersion"]


class KSAsyncDispersion:
    """Rooted ASYNC dispersion by sequential-probe DFS (OPODIS'21-style)."""

    def __init__(
        self,
        graph: PortLabeledGraph,
        k: int,
        start_node: int = 0,
        adversary: Optional[Adversary] = None,
        max_activations: Optional[int] = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > graph.num_nodes:
            raise ValueError(f"k={k} agents cannot disperse on n={graph.num_nodes} nodes")
        self.graph = graph
        self.k = k
        self.root = start_node
        self.memory_model = MemoryModel(k=k, max_degree=graph.max_degree)
        self.agents: Dict[int, Agent] = {
            i: Agent(i, start_node, self.memory_model) for i in range(1, k + 1)
        }
        self.leader = self.agents[k]
        self.leader.role = AgentRole.LEADER
        if max_activations is None:
            max_activations = 400 * k * (graph.num_edges + graph.num_nodes) + 100_000
        self.engine = AsyncEngine(
            graph, self.agents.values(), adversary=adversary, max_activations=max_activations
        )
        self.metrics = self.engine.metrics
        self.dfs_parent: List[Optional[int]] = [None] * graph.num_nodes

    # ------------------------------------------------------------------- run
    def run(self) -> DispersionResult:
        self.engine.assign(self.leader.agent_id, self._leader_program())
        self.engine.run_until(lambda: all(a.settled for a in self.agents.values()))
        metrics = self.engine.finalize_metrics()
        return DispersionResult(
            dispersed=is_dispersed(self.agents.values()),
            positions=self.engine.positions(),
            metrics=metrics,
            dfs_parent=list(self.dfs_parent),
            algorithm="KSStyleAsyncDisp",
            notes={"k": self.k},
        )

    # --------------------------------------------------------------- helpers
    def _settler_at(self, node: int) -> Optional[Agent]:
        for agent in self.engine.agents_at(node):
            if agent.settled and agent.home == node:
                return agent
        return None

    def _settle_smallest_at(self, node: int, parent_port: Optional[int]) -> Agent:
        candidates = [a for a in self.engine.agents_at(node) if not a.settled]
        non_leader = [a for a in candidates if a is not self.leader]
        pool = non_leader if non_leader else candidates
        agent = min(pool, key=lambda a: a.agent_id)
        agent.settle(node, parent_port)
        agent.memory.write("next_port", 1, FieldKind.PORT)
        self.metrics.bump("settled")
        return agent

    def _followers_at(self, node: int) -> List[Agent]:
        return [
            a
            for a in self.engine.agents_at(node)
            if not a.settled and a is not self.leader
        ]

    @staticmethod
    def _single_move(port: int):
        yield Move(port)

    def _group_move(self, w: int, port: int):
        """Send every co-located unsettled follower through ``port``; the leader
        follows and then waits until all of them have arrived (one WaitUntil
        check per leader activation, measured by the scheduler)."""
        followers = self._followers_at(w)
        target = self.graph.neighbor(w, port)
        for follower in followers:
            self.engine.assign(follower.agent_id, self._single_move(port))
        yield Move(port)
        follower_ids = [f.agent_id for f in followers]
        yield WaitUntil(
            lambda ids=tuple(follower_ids), t=target: all(
                self.agents[i].position == t for i in ids
            )
        )

    # --------------------------------------------------------------- program
    def _leader_program(self):
        """The leader's CCM-cycle program: settle the root, then DFS."""
        self._settle_smallest_at(self.root, None)
        yield Stay()

        while not all(a.settled for a in self.agents.values()):
            w = self.leader.position
            settler = self._settler_at(w)
            if settler is None:
                raise AssertionError(f"expected a settler at visited node {w}")
            degree = self.graph.degree(w)
            found: Optional[int] = None
            next_port = int(settler.memory.read("next_port", 1))
            while next_port <= degree:
                port = next_port
                next_port += 1
                settler.memory.write("next_port", next_port, FieldKind.PORT)
                target = self.graph.neighbor(w, port)
                yield Move(port)  # scout out
                occupied = self._settler_at(target) is not None
                yield Move(self.graph.reverse_port(w, port))  # scout back
                self.metrics.bump("scout_trips")
                if not occupied:
                    found = port
                    break
            if found is not None:
                u = self.graph.neighbor(w, found)
                yield from self._group_move(w, found)
                parent_port = self.graph.reverse_port(w, found)
                self.dfs_parent[u] = w
                self._settle_smallest_at(u, parent_port)
                self.metrics.bump("forward_moves")
            else:
                parent_port = settler.parent_port
                if parent_port is None:
                    raise RuntimeError(
                        "ASYNC DFS cannot backtrack from the root with agents unsettled"
                    )
                yield from self._group_move(w, parent_port)
                self.metrics.bump("backtrack_moves")


def ks_async_dispersion(
    graph: PortLabeledGraph,
    k: int,
    start_node: int = 0,
    adversary: Optional[Adversary] = None,
    **kwargs,
) -> DispersionResult:
    """Run the OPODIS'21-style ASYNC baseline and return its result."""
    return KSAsyncDispersion(graph, k, start_node, adversary=adversary, **kwargs).run()
