"""Sequential-probe DFS dispersion (the classical ``O(min{m, kΔ})`` baseline).

This is the pre-[DISC'24] state of the art in SYNC (and the growth procedure of
Kshemkalyani–Sharma's OPODIS'21 algorithm): the whole group travels with the
DFS head, every visited node keeps a settler, and the head discovers a fresh
neighbor by sending a *scout* (the leader) through the unchecked ports one at a
time -- a 2-round round trip per port.  The running time is therefore
proportional to the sum of the degrees of the visited nodes,
``O(min{m, kΔ})`` rounds, versus ``O(k)`` for the paper's algorithm.

The module doubles as the small-``k`` fallback of the core algorithms (where
the seeker-set arithmetic of Algorithm 5 degenerates) because for constant
``k`` its running time is also ``O(k)`` up to the constant ``Δ`` factor.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.agents.agent import Agent, AgentRole
from repro.agents.memory import FieldKind, MemoryModel
from repro.analysis.verification import is_dispersed
from repro.graph.port_graph import PortLabeledGraph
from repro.sim.result import DispersionResult
from repro.sim.sync_engine import SyncEngine

__all__ = ["NaiveSyncDFS", "naive_sync_dispersion"]


class NaiveSyncDFS:
    """Rooted SYNC dispersion by sequential-probe DFS.

    Every visited node keeps a settler, which stores its DFS parent port and a
    ``next_port`` cursor (``O(log Δ)`` bits); the leader scouts one port per
    2-round round trip, so the total time is ``Θ(Σ_v δ_v)`` over visited nodes.
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        k: int,
        start_node: int = 0,
        max_rounds: Optional[int] = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > graph.num_nodes:
            raise ValueError(f"k={k} agents cannot disperse on n={graph.num_nodes} nodes")
        self.graph = graph
        self.k = k
        self.root = start_node
        self.memory_model = MemoryModel(k=k, max_degree=graph.max_degree)
        self.agents: Dict[int, Agent] = {
            i: Agent(i, start_node, self.memory_model) for i in range(1, k + 1)
        }
        self.leader = self.agents[k]
        self.leader.role = AgentRole.LEADER
        if max_rounds is None:
            max_rounds = 8 * (graph.num_edges + graph.num_nodes) + 40 * k + 1000
        self.engine = SyncEngine(graph, self.agents.values(), max_rounds=max_rounds)
        self.metrics = self.engine.metrics
        self.visited: Set[int] = set()
        self.dfs_parent: List[Optional[int]] = [None] * graph.num_nodes

    # ------------------------------------------------------------------- run
    def run(self) -> DispersionResult:
        self._settle_smallest_at(self.root, None)
        self.visited.add(self.root)
        while not all(a.settled for a in self.agents.values()):
            w = self.leader.position
            port = self._next_unvisited_port(w)
            if port is not None:
                self._forward(w, port)
            else:
                self._backtrack(w)
        metrics = self.engine.finalize_metrics()
        return DispersionResult(
            dispersed=is_dispersed(self.agents.values()),
            positions=self.engine.positions(),
            metrics=metrics,
            dfs_parent=list(self.dfs_parent),
            algorithm="NaiveSeqProbeDFS",
            notes={"k": self.k},
        )

    # ------------------------------------------------------------- DFS steps
    def _settler_at(self, node: int) -> Optional[Agent]:
        for agent in self.engine.agents_at(node):
            if agent.settled and agent.home == node:
                return agent
        return None

    def _settle_smallest_at(self, node: int, parent_port: Optional[int]) -> Agent:
        candidates = [a for a in self.engine.agents_at(node) if not a.settled]
        # The leader settles only when it is the last unsettled agent.
        non_leader = [a for a in candidates if a is not self.leader]
        pool = non_leader if non_leader else candidates
        agent = min(pool, key=lambda a: a.agent_id)
        agent.settle(node, parent_port)
        agent.memory.write("next_port", 1, FieldKind.PORT)
        self.metrics.bump("settled")
        return agent

    def _next_unvisited_port(self, w: int) -> Optional[int]:
        """Scout unchecked ports of ``w`` one by one; return a port to a fresh node."""
        settler = self._settler_at(w)
        if settler is None:
            raise AssertionError(f"naive DFS expects a settler at every visited node ({w})")
        next_port = int(settler.memory.read("next_port", 1))
        degree = self.graph.degree(w)
        while next_port <= degree:
            port = next_port
            next_port += 1
            settler.memory.write("next_port", next_port, FieldKind.PORT)
            target = self.graph.neighbor(w, port)
            # Scout round trip: leader out, observe, back (2 rounds).
            self.engine.step({self.leader.agent_id: port})
            occupied = self._settler_at(target) is not None
            self.engine.step({self.leader.agent_id: self.graph.reverse_port(w, port)})
            self.metrics.bump("scout_trips")
            if not occupied:
                return port
        return None

    def _forward(self, w: int, port: int) -> None:
        u = self.graph.neighbor(w, port)
        moves = {a.agent_id: port for a in self.engine.agents_at(w) if not a.settled}
        self.engine.step(moves)
        parent_port = self.graph.reverse_port(w, port)
        self.visited.add(u)
        self.dfs_parent[u] = w
        self._settle_smallest_at(u, parent_port)
        self.metrics.bump("forward_moves")

    def _backtrack(self, w: int) -> None:
        settler = self._settler_at(w)
        parent_port = settler.parent_port
        if parent_port is None:
            raise RuntimeError(
                "naive DFS wants to backtrack from the root with unsettled agents left; "
                "k may exceed the number of reachable nodes"
            )
        moves = {a.agent_id: parent_port for a in self.engine.agents_at(w) if not a.settled}
        self.engine.step(moves)
        self.metrics.bump("backtrack_moves")


def naive_sync_dispersion(
    graph: PortLabeledGraph, k: int, start_node: int = 0, **kwargs
) -> DispersionResult:
    """Run the sequential-probe DFS baseline and return its result."""
    return NaiveSyncDFS(graph, k, start_node, **kwargs).run()
