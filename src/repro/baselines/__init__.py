"""Baseline dispersion algorithms from prior work, used for Table-1 comparisons.

* :mod:`repro.baselines.naive_dfs` -- the classical sequential-probe DFS
  (Kshemkalyani–Ali ICDCN'19 style): ``O(min{m, kΔ})`` rounds, every visited
  node keeps a settler.  Also used as the small-``k`` fallback of the core
  algorithms.
* :mod:`repro.baselines.ks_opodis21` -- the Kshemkalyani–Sharma OPODIS'21 style
  DFS in the ASYNC model: ``O(min{m, kΔ})`` epochs, ``O(log(k+Δ))`` bits.
* :mod:`repro.baselines.sudo_disc24` -- the Sudo et al. DISC'24 style rooted
  SYNC algorithm: doubling-helper probing, ``O(k log k)`` rounds.
* :mod:`repro.baselines.random_walk` -- a randomized scattering heuristic (not
  from the paper's table; included as a sanity baseline for the examples).
"""

from repro.baselines.naive_dfs import NaiveSyncDFS, naive_sync_dispersion
from repro.baselines.ks_opodis21 import KSAsyncDispersion, ks_async_dispersion
from repro.baselines.sudo_disc24 import SudoSyncDispersion, sudo_sync_dispersion
from repro.baselines.random_walk import random_walk_dispersion

__all__ = [
    "NaiveSyncDFS",
    "naive_sync_dispersion",
    "KSAsyncDispersion",
    "ks_async_dispersion",
    "SudoSyncDispersion",
    "sudo_sync_dispersion",
    "random_walk_dispersion",
]
