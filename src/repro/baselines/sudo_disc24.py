"""Rooted SYNC dispersion in the style of Sudo et al. [DISC'24].

This is the ``O(k log k)``-round baseline that the paper's Theorem 6.1 improves
to ``O(k)``.  Every visited node keeps a settler (no empty nodes, no
oscillation); the DFS head finds a fresh neighbor by *doubling probes*:

* iteration 1: the unsettled agents at the head probe as many unchecked ports
  as they can in parallel (2 rounds: out and back);
* every prober that found a settled neighbor brings that settler back with it
  as a *helper*, so the number of probers doubles while no fresh node is found;
* after ``O(log min{k, δ_w})`` iterations either a fresh neighbor is known or
  all ports are exhausted; the recruited helpers then walk home in one parallel
  round (safe under synchrony) before the DFS advances.

Total: ``O(log k)`` rounds per DFS step, ``O(k log k)`` rounds overall,
``O(log(k+Δ))`` bits per agent -- matching row "[36] O(k log k)" of Table 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.agents.agent import Agent, AgentRole
from repro.agents.memory import FieldKind, MemoryModel
from repro.analysis.verification import is_dispersed
from repro.graph.port_graph import PortLabeledGraph
from repro.sim.result import DispersionResult
from repro.sim.sync_engine import SyncEngine

__all__ = ["SudoSyncDispersion", "sudo_sync_dispersion"]


class SudoSyncDispersion:
    """Doubling-probe rooted SYNC dispersion (DISC'24-style baseline)."""

    def __init__(
        self,
        graph: PortLabeledGraph,
        k: int,
        start_node: int = 0,
        max_rounds: Optional[int] = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > graph.num_nodes:
            raise ValueError(f"k={k} agents cannot disperse on n={graph.num_nodes} nodes")
        self.graph = graph
        self.k = k
        self.root = start_node
        self.memory_model = MemoryModel(k=k, max_degree=graph.max_degree)
        self.agents: Dict[int, Agent] = {
            i: Agent(i, start_node, self.memory_model) for i in range(1, k + 1)
        }
        self.leader = self.agents[k]
        self.leader.role = AgentRole.LEADER
        if max_rounds is None:
            import math

            max_rounds = 60 * (k + 2) * (int(math.log2(k + 2)) + 2) + 1000
        self.engine = SyncEngine(graph, self.agents.values(), max_rounds=max_rounds)
        self.metrics = self.engine.metrics
        self.visited: Set[int] = set()
        self.dfs_parent: List[Optional[int]] = [None] * graph.num_nodes

    # ------------------------------------------------------------------- run
    def run(self) -> DispersionResult:
        self._settle_smallest_at(self.root, None)
        self.visited.add(self.root)
        while not all(a.settled for a in self.agents.values()):
            w = self.leader.position
            port = self._doubling_probe(w)
            if port is not None:
                self._forward(w, port)
            else:
                self._backtrack(w)
        metrics = self.engine.finalize_metrics()
        return DispersionResult(
            dispersed=is_dispersed(self.agents.values()),
            positions=self.engine.positions(),
            metrics=metrics,
            dfs_parent=list(self.dfs_parent),
            algorithm="SudoStyleSyncDisp",
            notes={"k": self.k},
        )

    # ----------------------------------------------------------------- probe
    def _doubling_probe(self, w: int) -> Optional[int]:
        """Find a fresh neighbor of ``w`` with doubling parallel probes.

        As in the original algorithm the scan restarts from port 1 on every
        call (``(next, checked) ← (⊥, 0)``): a port observed "empty" in an
        earlier call may not have been taken, so only re-probing keeps the
        classification sound.  Each call still costs only ``O(log min{k, δ_w})``
        iterations thanks to the doubling prober pool.
        """
        settler = self._settler_at(w)
        checked = 0
        degree = self.graph.degree(w)
        limit = min(self.k, degree)
        helpers: List[Tuple[Agent, int]] = []  # (settler helper, port of w it came from)
        found: Optional[int] = None
        self.metrics.bump("probe_calls")

        while checked < limit and found is None:
            probers: List[Agent] = [
                a for a in self.engine.agents_at(w) if not a.settled
            ] + [h for h, _ in helpers]
            batch = min(len(probers), limit - checked)
            assigned = []
            out_moves = {}
            for j in range(batch):
                port = checked + 1 + j
                agent = probers[j]
                assigned.append((agent, port, self.graph.neighbor(w, port)))
                out_moves[agent.agent_id] = port
            self.engine.step(out_moves)
            self.metrics.bump("probe_iterations")

            back_moves = {}
            recruits: List[Tuple[Agent, int]] = []
            for agent, port, target in assigned:
                back_moves[agent.agent_id] = self.graph.reverse_port(w, port)
                resident = self._settler_at(target)
                if resident is None:
                    found = port if found is None else min(found, port)
                else:
                    # Bring the settler back to w as an additional prober.
                    back_moves[resident.agent_id] = self.graph.reverse_port(w, port)
                    resident.memory.write("helper_return_port", port, FieldKind.PORT)
                    recruits.append((resident, port))
            self.engine.step(back_moves)
            helpers.extend(recruits)
            checked += batch

        if settler is not None:
            # Persistently charged even though the scan restarts per call (the
            # agent still stores the cursor between rounds within a call).
            settler.memory.write("checked", checked, FieldKind.COUNTER_DELTA)
        # Send every recruited helper home in one parallel round (SYNC-safe).
        if helpers:
            home_moves = {h.agent_id: port for h, port in helpers}
            self.engine.step(home_moves)
            for h, _ in helpers:
                h.memory.clear("helper_return_port")
        return found

    # ------------------------------------------------------------- DFS steps
    def _settler_at(self, node: int) -> Optional[Agent]:
        for agent in self.engine.agents_at(node):
            if agent.settled and agent.home == node:
                return agent
        return None

    def _settle_smallest_at(self, node: int, parent_port: Optional[int]) -> Agent:
        candidates = [a for a in self.engine.agents_at(node) if not a.settled]
        non_leader = [a for a in candidates if a is not self.leader]
        pool = non_leader if non_leader else candidates
        agent = min(pool, key=lambda a: a.agent_id)
        agent.settle(node, parent_port)
        agent.memory.write("checked", 0, FieldKind.COUNTER_DELTA)
        self.metrics.bump("settled")
        return agent

    def _forward(self, w: int, port: int) -> None:
        u = self.graph.neighbor(w, port)
        moves = {a.agent_id: port for a in self.engine.agents_at(w) if not a.settled}
        self.engine.step(moves)
        parent_port = self.graph.reverse_port(w, port)
        self.visited.add(u)
        self.dfs_parent[u] = w
        self._settle_smallest_at(u, parent_port)
        self.metrics.bump("forward_moves")

    def _backtrack(self, w: int) -> None:
        settler = self._settler_at(w)
        parent_port = settler.parent_port
        if parent_port is None:
            raise RuntimeError("cannot backtrack from the DFS root with agents unsettled")
        moves = {a.agent_id: parent_port for a in self.engine.agents_at(w) if not a.settled}
        self.engine.step(moves)
        self.metrics.bump("backtrack_moves")


def sudo_sync_dispersion(
    graph: PortLabeledGraph, k: int, start_node: int = 0, **kwargs
) -> DispersionResult:
    """Run the DISC'24-style doubling-probe baseline and return its result."""
    return SudoSyncDispersion(graph, k, start_node, **kwargs).run()
