"""Randomized scattering baseline (not from the paper's Table 1).

Each unsettled agent performs an independent random walk; when it lands on a
node with no settled agent it settles there (smallest ID wins ties among
co-located unsettled agents).  This is the folklore randomized strategy the
dispersion literature contrasts deterministic algorithms against: it needs no
coordination and no extra memory, but its completion time is only probabilistic
(cover-time-like) and it may fail to finish within the round budget, which the
examples and benchmarks report honestly.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.agents.agent import Agent
from repro.agents.memory import MemoryModel
from repro.analysis.verification import is_dispersed
from repro.graph.port_graph import PortLabeledGraph
from repro.sim.result import DispersionResult
from repro.sim.sync_engine import SyncEngine

__all__ = ["random_walk_dispersion"]


def random_walk_dispersion(
    graph: PortLabeledGraph,
    k: int,
    start_node: int = 0,
    seed: int = 0,
    max_rounds: Optional[int] = None,
) -> DispersionResult:
    """Run the random-walk scattering heuristic from a rooted configuration.

    Returns a result whose ``dispersed`` flag may be ``False`` if the walk did
    not finish within ``max_rounds`` (default ``50 · n`` rounds).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if k > graph.num_nodes:
        raise ValueError(f"k={k} agents cannot disperse on n={graph.num_nodes} nodes")
    rng = random.Random(seed)
    model = MemoryModel(k=k, max_degree=graph.max_degree)
    agents: Dict[int, Agent] = {i: Agent(i, start_node, model) for i in range(1, k + 1)}
    if max_rounds is None:
        max_rounds = 50 * graph.num_nodes + 500
    engine = SyncEngine(graph, agents.values(), max_rounds=max_rounds + 10)

    def settle_pass() -> None:
        by_node: Dict[int, list] = {}
        for agent in agents.values():
            if not agent.settled:
                by_node.setdefault(agent.position, []).append(agent)
        for node, group in by_node.items():
            if any(a.settled and a.home == node for a in engine.agents_at(node)):
                continue
            winner = min(group, key=lambda a: a.agent_id)
            winner.settle(node, None)

    settle_pass()
    rounds = 0
    while rounds < max_rounds and not all(a.settled for a in agents.values()):
        moves = {}
        for agent in agents.values():
            if not agent.settled:
                degree = graph.degree(agent.position)
                moves[agent.agent_id] = rng.randint(1, degree)
        engine.step(moves)
        rounds += 1
        settle_pass()

    metrics = engine.finalize_metrics()
    return DispersionResult(
        dispersed=is_dispersed(agents.values()),
        positions=engine.positions(),
        metrics=metrics,
        algorithm="RandomWalkScatter",
        notes={"k": k, "seed": seed, "round_budget": max_rounds},
    )
