"""Analysis layer: result verification, scaling fits, and report tables."""

from repro.analysis.verification import (
    is_dispersed,
    verify_dispersion,
    check_memory_bound,
)
from repro.analysis.scaling import fit_power_law, fit_linear_ratio, ScalingFit
from repro.analysis.tables import Table, comparison_table

__all__ = [
    "is_dispersed",
    "verify_dispersion",
    "check_memory_bound",
    "fit_power_law",
    "fit_linear_ratio",
    "ScalingFit",
    "Table",
    "comparison_table",
]
