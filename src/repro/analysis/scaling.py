"""Scaling analysis: turn (k, time) sweeps into the shape claims of Table 1.

The paper reports asymptotic bounds; the reproduction checks *shape*: measured
time divided by the claimed bound should stay (roughly) constant as ``k`` grows,
and a log–log power-law fit should recover an exponent close to the claimed one
(1 for ``O(k)``, slightly above 1 for ``O(k log k)``, and noticeably above 1 for
``O(kΔ)``-type baselines on high-degree families).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

__all__ = ["ScalingFit", "fit_power_law", "fit_linear_ratio", "normalized_ratios"]


@dataclass(frozen=True)
class ScalingFit:
    """Result of a log–log least-squares fit ``time ≈ c · k^exponent``."""

    exponent: float
    constant: float
    r_squared: float

    def describe(self) -> str:
        return (
            f"time ≈ {self.constant:.3g} · k^{self.exponent:.3f} "
            f"(R²={self.r_squared:.4f})"
        )


def fit_power_law(ks: Sequence[float], times: Sequence[float]) -> ScalingFit:
    """Least-squares fit of ``log time`` against ``log k``.

    numpy is imported lazily: this module rides along on ``repro.analysis``
    (hence on ``import repro``), and the base install works without the
    ``fast`` extra -- only actually fitting requires numpy.
    """
    try:
        import numpy as np
    except ImportError:
        raise ImportError(
            "fit_power_law needs numpy; install the fast extra "
            "(pip install 'repro-dispersion[fast]')"
        ) from None
    if len(ks) != len(times) or len(ks) < 2:
        raise ValueError("need at least two (k, time) points")
    x = np.log(np.asarray(ks, dtype=float))
    y = np.log(np.asarray(times, dtype=float))
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ScalingFit(exponent=float(slope), constant=float(math.exp(intercept)), r_squared=r2)


def normalized_ratios(
    ks: Sequence[float],
    times: Sequence[float],
    bound: Callable[[float], float],
) -> List[float]:
    """``time / bound(k)`` for every sample -- constant-ish iff the bound is tight."""
    if len(ks) != len(times):
        raise ValueError("ks and times must have the same length")
    return [t / max(1.0, bound(k)) for k, t in zip(ks, times)]


def fit_linear_ratio(
    ks: Sequence[float],
    times: Sequence[float],
    bound: Callable[[float], float],
) -> Tuple[float, float]:
    """Return (max ratio, spread) of ``time / bound(k)`` over the sweep.

    ``spread`` is the max ratio divided by the min ratio; a spread close to 1
    means the measured times scale like the claimed bound across the sweep
    (the constant is not drifting with ``k``).
    """
    ratios = normalized_ratios(ks, times, bound)
    return max(ratios), max(ratios) / min(ratios)
