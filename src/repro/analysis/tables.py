"""Plain-text report tables in the style of the paper's Table 1.

The benchmark harness prints these so that a run of
``pytest benchmarks/ --benchmark-only`` produces, alongside the timing numbers,
the same qualitative rows the paper reports: which algorithm wins in which
setting, by roughly what factor, and how memory compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["Table", "comparison_table", "fault_summary_table"]


@dataclass
class Table:
    """A minimal text table with aligned columns."""

    title: str
    columns: List[str]
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, fmt(self.columns), sep]
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def comparison_table(
    title: str,
    results: Dict[str, Dict[int, float]],
    time_unit: str,
    bound_labels: Optional[Dict[str, str]] = None,
) -> Table:
    """Build a Table-1 style comparison.

    ``results`` maps algorithm name to ``{k: time}``.  Columns are the sorted
    union of k values; a final column shows the claimed bound (if provided).
    """
    ks = sorted({k for series in results.values() for k in series})
    columns = ["algorithm"] + [f"k={k}" for k in ks] + ["unit", "claimed bound"]
    table = Table(title=title, columns=columns)
    for name, series in results.items():
        cells: List[object] = [name]
        for k in ks:
            value = series.get(k)
            cells.append("-" if value is None else f"{value:.0f}")
        cells.append(time_unit)
        cells.append((bound_labels or {}).get(name, ""))
        table.add_row(*cells)
    return table


def fault_summary_table(rows: Sequence[Mapping[str, object]]) -> Table:
    """Fault-sweep scoreboard: one row per (algorithm, fault profile).

    Each row mapping carries ``algorithm``, ``profile``, ``runs``,
    ``dispersed``, ``errors``, ``fault_events`` and ``violations`` (aggregated
    by :func:`repro.runner.artifacts.fault_summary`).  The table answers the
    harness's headline question -- which algorithm survives which world -- and
    CI asserts the ``violations`` column is all zeros for fault-free profiles.
    """
    table = Table(
        title="fault & invariant summary",
        columns=[
            "algorithm",
            "fault profile",
            "runs",
            "dispersed",
            "errors",
            "fault events",
            "violations",
        ],
    )
    for row in rows:
        table.add_row(
            row.get("algorithm", ""),
            row.get("profile", "none"),
            row.get("runs", 0),
            row.get("dispersed", 0),
            row.get("errors", 0),
            row.get("fault_events", 0),
            row.get("violations", 0),
        )
    return table
