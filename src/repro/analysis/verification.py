"""Ground-truth verification of dispersion outcomes and model invariants.

The simulator, not the algorithm, decides whether a run succeeded: a
configuration is a *dispersion configuration* when every agent is settled and no
two agents occupy the same node.  These checks are used by every algorithm
driver before it reports success, and by the test suite as the final arbiter.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence

from repro.agents.agent import Agent
from repro.graph.port_graph import PortLabeledGraph

__all__ = ["is_dispersed", "verify_dispersion", "check_memory_bound", "DispersionError"]


class DispersionError(AssertionError):
    """Raised by :func:`verify_dispersion` when the final configuration is invalid."""


def is_dispersed(agents: Iterable[Agent]) -> bool:
    """True when every agent is settled and all occupy distinct nodes."""
    seen = set()
    for agent in agents:
        if not agent.settled:
            return False
        if agent.position in seen:
            return False
        seen.add(agent.position)
    return True


def verify_dispersion(graph: PortLabeledGraph, agents: Sequence[Agent]) -> None:
    """Raise :class:`DispersionError` describing the first violated condition.

    Checks, in order: every agent settled; positions are valid nodes; positions
    pairwise distinct; settled agents sit at their recorded home node; k <= n.
    """
    if len(agents) > graph.num_nodes:
        raise DispersionError(
            f"k={len(agents)} agents cannot disperse on n={graph.num_nodes} nodes"
        )
    occupied: Dict[int, int] = {}
    for agent in agents:
        if not agent.settled:
            raise DispersionError(f"agent {agent.agent_id} is not settled")
        node = agent.position
        if not (0 <= node < graph.num_nodes):
            raise DispersionError(f"agent {agent.agent_id} is at invalid node {node}")
        if node in occupied:
            raise DispersionError(
                f"agents {occupied[node]} and {agent.agent_id} both occupy node {node}"
            )
        occupied[node] = agent.agent_id
        if agent.home is not None and agent.home != node:
            raise DispersionError(
                f"agent {agent.agent_id} settled with home {agent.home} "
                f"but finished at node {node}"
            )


def check_memory_bound(
    agents: Sequence[Agent],
    k: int,
    max_degree: int,
    constant: float = 12.0,
) -> Optional[str]:
    """Check every agent's peak memory is at most ``constant · log2(k + Δ)`` bits.

    Returns ``None`` when the bound holds, otherwise a human-readable violation
    message (tests assert on ``None`` so the message surfaces in failures).  The
    default constant is generous; the benchmarks report the measured ratio so
    regressions in the constant are visible even while the bound holds.
    """
    unit = math.log2(max(2, k + max_degree))
    worst_ratio = 0.0
    worst_agent = None
    for agent in agents:
        ratio = agent.memory.peak_bits / unit
        if ratio > worst_ratio:
            worst_ratio = ratio
            worst_agent = agent.agent_id
    if worst_ratio > constant:
        return (
            f"agent {worst_agent} used {worst_ratio:.2f}·log2(k+Δ) bits "
            f"(> allowed {constant})"
        )
    return None
